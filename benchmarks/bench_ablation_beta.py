"""Ablation A5: the degree-of-declustering granularity parameter beta.

Expectation (Section V-A): growth triggers when ``N_sup > beta *
N_con``, so eager (small) betas recruit spare nodes sooner than
reluctant (large) betas.  The observable is the time at which the
cluster reaches its final size.
"""


def test_ablation_beta(benchmark, figure):
    exp = figure(benchmark, "ablation_beta", scale=0.05)

    betas = exp.series("beta")
    t_growth = exp.series("t_last_growth_s")
    finals = exp.series("final_active")
    assert betas == sorted(betas)
    # Eager growth finishes no later than reluctant growth.
    assert t_growth[0] <= t_growth[-1]
    # Everybody eventually absorbs the load (growth is about timing).
    assert min(finals) >= 4
