"""Figure 5: average production delay vs arrival rate, 1-2 slaves.

Paper shape: each curve is flat at low rates and rises sharply at its
saturation point; 2 slaves saturate at roughly twice the rate of 1.
"""


def test_fig05(benchmark, figure):
    exp = figure(benchmark, "fig05")

    one = exp.series("avg_delay_s", where={"slaves": 1})
    two = exp.series("avg_delay_s", where={"slaves": 2})
    rates_1 = exp.series("rate", where={"slaves": 1})

    # One slave saturates within the swept range: the delay at the top
    # rate dwarfs the delay at the bottom.
    assert one[-1] > 3 * one[0]
    # Two slaves stay comfortable at rates that overwhelm one.
    top = rates_1[-1]
    two_at_top = exp.series(
        "avg_delay_s", where={"slaves": 2, "rate": top}
    )[0]
    assert two_at_top < one[-1] / 2
    assert len(two) == len(one)
