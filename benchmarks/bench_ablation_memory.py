"""Memory-limited slaves: the paper's disk-I/O future-work extension.

Expectation: with per-slave memory at or above the window share nothing
spills and performance matches the in-memory system; shrinking memory
spills a growing fraction to disk, inflating probe time (busy seconds)
and, once the node saturates, the production delay.
"""


def test_ablation_memory(benchmark, figure):
    exp = figure(benchmark, "ablation_memory", scale=0.05)

    rows = exp.rows
    unlimited = rows[0]
    assert unlimited["memory_over_window"] == float("inf")
    assert unlimited["disk_gb_read"] == 0.0

    tightest = rows[-1]
    assert tightest["disk_gb_read"] > 0.0
    assert tightest["avg_busy_s"] > unlimited["avg_busy_s"]
    assert tightest["avg_delay_s"] >= unlimited["avg_delay_s"]

    # Disk traffic grows monotonically as memory shrinks.
    disk = [r["disk_gb_read"] for r in rows]
    assert disk == sorted(disk)
