"""Figure 10: idle time & communication overhead vs rate
(fine tuning, 4 slaves).

Paper shape: with fine tuning, idle time reaches zero only near
6000 t/s — 50% more capacity than Figure 9's no-tuning system — and
fine tuning itself adds no communication overhead.
"""

from repro.analysis.experiments import run_experiment
from benchmarks.conftest import BENCH_SCALE


def test_fig10(benchmark, figure):
    exp = figure(benchmark, "fig10")

    rows_by_rate = {row["rate"]: row for row in exp.rows}
    rates = sorted(rows_by_rate)
    idle = [rows_by_rate[r]["idle_s"] for r in rates]
    assert idle == sorted(idle, reverse=True)
    assert idle[-1] < 0.25 * idle[0]  # saturation reached near 6000

    # "Fine tuning incurs no communication overhead": at rates both
    # figures cover, the comm curves agree.
    noft = run_experiment("fig09", scale=BENCH_SCALE, quick=True)
    for row in noft.rows:
        if row["rate"] in rows_by_rate:
            ft_comm = rows_by_rate[row["rate"]]["comm_s"]
            assert abs(ft_comm - row["comm_s"]) < 0.1 * max(row["comm_s"], 1e-9)
