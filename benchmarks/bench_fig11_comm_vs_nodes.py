"""Figure 11: communication overhead vs total nodes (rate 1500 t/s).

Paper shape: per-node communication time decreases with the degree of
declustering; the aggregate over all slaves increases roughly linearly;
the adaptive variant's aggregate stays low (it refuses to spread a
light load over needless nodes).
"""


def test_fig11(benchmark, figure):
    exp = figure(benchmark, "fig11", scale=0.05)

    nodes = exp.series("nodes")
    per_node = exp.series("per_node_s")
    aggregate = exp.series("aggregate_s")
    adaptive = exp.series("adaptive_aggregate_s")

    assert per_node == sorted(per_node, reverse=True)
    assert aggregate == sorted(aggregate)
    # Adaptive aggregate at the largest cluster stays below the
    # non-adaptive aggregate (it uses fewer nodes at 1500 t/s).
    assert adaptive[-1] < aggregate[-1]
    assert nodes[0] == 1
