"""Benchmark harness configuration.

Each ``bench_fig*.py`` regenerates one table/figure of the paper via
the canned experiments in :mod:`repro.analysis.experiments` (quick
sweep grids at a reduced geometric scale — see ``scaled()`` in
repro/config.py; saturation rates and crossovers are scale-invariant),
prints the series, asserts the paper's qualitative shape, and reports
the wall time of the sweep through pytest-benchmark.

Run with::

    pytest benchmarks/ --benchmark-only
"""

from __future__ import annotations

import pytest

from repro.analysis.experiments import run_experiment
from repro.analysis.series import Experiment

#: Geometric scale used by the benchmark sweeps (12 s windows, 24 s
#: runs).  Saturation rates match the paper's full-scale system.
BENCH_SCALE = 0.02


@pytest.fixture
def figure():
    """Run a named experiment once under the benchmark timer and print
    its table; returns the Experiment for shape assertions."""

    def _run(benchmark, name: str, scale: float = BENCH_SCALE) -> Experiment:
        result = benchmark.pedantic(
            lambda: run_experiment(name, scale=scale, quick=True),
            iterations=1,
            rounds=1,
        )
        print()
        print(result.render())
        benchmark.extra_info["rows"] = result.rows
        return result

    return _run
