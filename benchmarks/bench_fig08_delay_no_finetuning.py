"""Figure 8: average delay vs rate *without* fine tuning (4 slaves).

Paper shape: delay explodes near 4000 t/s (tens of seconds), while the
fine-tuned system at the same rate sits near 2 s (compare Figure 6).
"""

from repro.analysis.experiments import base_config
from repro.core.system import JoinSystem


def test_fig08(benchmark, figure):
    exp = figure(benchmark, "fig08", scale=0.05)

    delays = exp.series("avg_delay_s")
    rates = exp.series("rate")
    # Saturation blow-up within the sweep (the paper reports ~48 s at
    # 4000 t/s over its 10-minute measurement; our shorter window shows
    # the same divergence at smaller magnitude).
    assert delays == sorted(delays)
    assert delays[-1] > 3 * delays[0]

    # The paper's headline comparison: at the rate that melts the
    # untuned system, the tuned system still answers in ~epoch time.
    tuned = JoinSystem(
        base_config(0.05).with_(num_slaves=4, rate=float(rates[-1]))
    ).run()
    assert tuned.avg_delay < delays[-1] / 2
