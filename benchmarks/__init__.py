"""Benchmark package (pytest-benchmark harness reproducing the paper's
tables and figures; see conftest.py)."""
