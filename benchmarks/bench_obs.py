"""Observability overhead benchmark: what tracing and metrics cost.

The observability plane's contract is *near-zero cost when off* (rules
OBS001/OBS002: every hook guards event construction behind
``tracer.enabled`` / ``registry.enabled``) and *bounded cost when on*.
This benchmark quantifies both ends:

* **hot-path micro-costs** — nanoseconds per instrumentation site for
  the disabled guard (the price every un-traced run pays), a tracer
  emitting into a :class:`MemoryExporter`, a tracer emitting into a
  :class:`JsonlExporter`, and the metric instruments (guarded no-op
  counter vs live counter/histogram updates);
* **end-to-end run overhead** — wall time of an identical sim-backend
  run with observability off, with metrics on, with in-memory tracing,
  and with JSONL tracing (transport spans on, the chattiest tracer
  configuration), reported as percent overhead versus the baseline.

The sim backend is used for the end-to-end runs because its wall time
is pure compute (no real sleeps), so tracer overhead is not hidden
inside idle waits.  Each variant runs ``--reps`` times and the fastest
run is published (minimum = least-interference estimate, same rule as
``bench_backends.py``).

Writes a JSON report (CI publishes it as a build artifact; the file is
gitignored — results are machine-specific)::

    python benchmarks/bench_obs.py --out BENCH_obs.json
"""

from __future__ import annotations

import argparse
import json
import os
import tempfile
import time
import typing as t

from repro.config import ObservabilityConfig, SystemConfig
from repro.core.system import JoinSystem
from repro.obs.events import TransportEvent
from repro.obs.exporters import JsonlExporter, MemoryExporter
from repro.obs.metrics import NULL_REGISTRY, MetricsRegistry
from repro.obs.tracer import NULL_TRACER, Tracer


def _best_ns_per_op(
    run_once: t.Callable[[int], None], n_ops: int, reps: int
) -> float:
    """Fastest-of-``reps`` cost of one operation, in nanoseconds."""
    best = float("inf")
    for _ in range(max(1, reps)):
        t0 = time.perf_counter()
        run_once(n_ops)
        best = min(best, time.perf_counter() - t0)
    return best / n_ops * 1e9


def _emit_loop(tracer: Tracer) -> t.Callable[[int], None]:
    def run(n: int) -> None:
        for i in range(n):
            # The full site cost: guard + event construction + emit.
            if tracer.enabled:
                tracer.emit(
                    TransportEvent(
                        t=float(i),
                        node=2,
                        dst=0,
                        msg="Report",
                        nbytes=64,
                        duration=0.001,
                        phase="send",
                        xfer_seq=i,
                    )
                )

    return run


def bench_hot_paths(args: argparse.Namespace, tmpdir: str) -> dict[str, t.Any]:
    n_emit, n_metric = args.emit_ops, args.metric_ops

    jsonl_path = os.path.join(tmpdir, "bench_tracer.jsonl")
    jsonl_tracer = Tracer([JsonlExporter(jsonl_path)])
    memory_tracer = Tracer([MemoryExporter()])

    registry = MetricsRegistry(node=2)
    live_counter = registry.counter("bench_ops", "benchmark counter")
    live_hist = registry.histogram("bench_lat", "benchmark histogram")
    null_counter = NULL_REGISTRY.counter("bench_ops")

    def guarded_null_counter(n: int) -> None:
        for _ in range(n):
            if NULL_REGISTRY.enabled:
                null_counter.inc()

    def live_counter_inc(n: int) -> None:
        for _ in range(n):
            if registry.enabled:
                live_counter.inc()

    def live_hist_observe(n: int) -> None:
        for i in range(n):
            if registry.enabled:
                live_hist.observe(i * 1e-4)

    out = {
        "tracer_disabled_guard_ns": _best_ns_per_op(
            _emit_loop(NULL_TRACER), n_emit, args.reps
        ),
        "tracer_memory_emit_ns": _best_ns_per_op(
            _emit_loop(memory_tracer), n_emit, args.reps
        ),
        "tracer_jsonl_emit_ns": _best_ns_per_op(
            _emit_loop(jsonl_tracer), n_emit, args.reps
        ),
        "metrics_disabled_guard_ns": _best_ns_per_op(
            guarded_null_counter, n_metric, args.reps
        ),
        "metrics_counter_inc_ns": _best_ns_per_op(
            live_counter_inc, n_metric, args.reps
        ),
        "metrics_histogram_observe_ns": _best_ns_per_op(
            live_hist_observe, n_metric, args.reps
        ),
    }
    jsonl_tracer.close()
    return {k: round(v, 1) for k, v in out.items()}


def bench_cfg(args: argparse.Namespace) -> SystemConfig:
    return (
        SystemConfig.paper_defaults()
        .scaled(0.05)
        .with_(
            backend="sim",
            num_slaves=args.slaves,
            rate=args.rate,
            run_seconds=args.run_seconds,
            warmup_seconds=min(30.0, args.run_seconds / 4),
            seed=args.seed,
        )
    )


#: End-to-end variants, chattiest last.  ``trace_transport`` is on for
#: the tracing variants so every message send becomes a trace record —
#: the worst realistic event rate.
def _variants(tmpdir: str) -> list[tuple[str, ObservabilityConfig]]:
    return [
        ("off", ObservabilityConfig()),
        ("metrics", ObservabilityConfig(metrics=True)),
        (
            "trace_memory",
            ObservabilityConfig(
                trace_memory=True, trace_transport=True, sample_period=5.0
            ),
        ),
        (
            "trace_jsonl",
            ObservabilityConfig(
                trace_path=os.path.join(tmpdir, "bench_run.jsonl"),
                trace_transport=True,
                sample_period=5.0,
            ),
        ),
    ]


def bench_end_to_end(
    args: argparse.Namespace, tmpdir: str
) -> list[dict[str, t.Any]]:
    cfg = bench_cfg(args)
    rows: list[dict[str, t.Any]] = []
    baseline: float | None = None
    for name, obs in _variants(tmpdir):
        best_wall, trace_records = float("inf"), 0
        for _ in range(max(1, args.reps)):
            t0 = time.perf_counter()
            result = JoinSystem(cfg.with_(obs=obs)).run()
            wall = time.perf_counter() - t0
            if wall < best_wall:
                best_wall = wall
                trace_records = len(result.trace or ())
        if baseline is None:
            baseline = best_wall
        rows.append(
            {
                "variant": name,
                "wall_seconds": round(best_wall, 3),
                "overhead_pct": round(100.0 * (best_wall / baseline - 1.0), 1),
                "trace_records": trace_records,
            }
        )
    return rows


def main(argv: t.Sequence[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--rate", type=float, default=1000.0)
    parser.add_argument("--slaves", type=int, default=4)
    parser.add_argument("--run-seconds", type=float, default=120.0)
    parser.add_argument("--seed", type=int, default=20130724)
    parser.add_argument("--reps", type=int, default=3)
    parser.add_argument("--emit-ops", type=int, default=50_000)
    parser.add_argument("--metric-ops", type=int, default=200_000)
    parser.add_argument("--out", default="BENCH_obs.json")
    args = parser.parse_args(argv)

    started = time.perf_counter()
    with tempfile.TemporaryDirectory(prefix="bench_obs_") as tmpdir:
        hot = bench_hot_paths(args, tmpdir)
        runs = bench_end_to_end(args, tmpdir)

    cfg = bench_cfg(args)
    report = {
        "benchmark": "obs",
        "reps": max(1, args.reps),
        "config": {
            "rate": cfg.rate,
            "slaves": cfg.num_slaves,
            "npart": cfg.npart,
            "run_s": cfg.run_seconds,
            "seed": cfg.seed,
            "emit_ops": args.emit_ops,
            "metric_ops": args.metric_ops,
        },
        "hot_path_ns": hot,
        "runs": runs,
        "summary": {
            # The disabled guard is the cost every production run pays
            # at every instrumentation site; it must stay trivial.
            "disabled_guard_ns": hot["tracer_disabled_guard_ns"],
            "guard_is_cheap": hot["tracer_disabled_guard_ns"] < 1000.0,
            "memory_trace_overhead_pct": runs[2]["overhead_pct"],
            "jsonl_trace_overhead_pct": runs[3]["overhead_pct"],
            "metrics_overhead_pct": runs[1]["overhead_pct"],
        },
        "wall_seconds": round(time.perf_counter() - started, 2),
    }
    with open(args.out, "w", encoding="utf-8") as fh:
        json.dump(report, fh, indent=2)
        fh.write("\n")
    for key, value in hot.items():
        print(f"{key:>32}: {value:>10.1f} ns/op")
    for row in runs:
        print(
            f"{row['variant']:>32}: wall={row['wall_seconds']:.3f}s "
            f"overhead={row['overhead_pct']:+.1f}% "
            f"records={row['trace_records']:,}"
        )
    print(f"wrote {args.out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
