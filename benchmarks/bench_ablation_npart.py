"""Ablation A2: the level of indirection (number of hash partitions).

Expectation: delay is flat over a wide middle range — the paper's 60
partitions is an uncritical choice; fine tuning bounds probe scans
regardless of the partition count.
"""


def test_ablation_npart(benchmark, figure):
    exp = figure(benchmark, "ablation_npart")

    delays = exp.series("avg_delay_s")
    # No pathological configuration: all delays within 3x of the best.
    best = min(delays)
    assert max(delays) < 3 * best
