"""Backend benchmark: equal-work throughput and CPU, sim vs thread vs
process vs tcp.

All four backends replay the *same* pregenerated trace (so workload
generation — pure Python, GIL-bound — is paid once, outside the
measured runs) under a near-zero modeled cost model: wall time is then
dominated by the real numpy join work, which is exactly what
distinguishes the backends.  The DES backend executes it single
threaded by construction, the thread backend is GIL-bound, and the
process and tcp backends spread the per-slave probe work across cores
— tcp additionally paying real socket framing for every inter-node
message (run loopback here, so the delta over ``process`` prices the
TCP stack, not the network).

Two measurement rules keep the comparison apples-to-apples:

* **The trace ends three distribution epochs before ``run_seconds``**,
  so the master's last pre-halt ingestion pass covers it on every
  backend — sim and the wall backends all ingest the *entire* trace
  and the throughput denominator is the same ``len(trace)`` for all
  three runs.
* **``outputs`` counts ungated joined pairs** (``collect_pairs``
  mode), not the gate-windowed ``RunResult.outputs`` delay statistic.
  The modeled measurement gate closes at ``run_seconds`` of *modeled*
  time; at a small ``--time-scale`` the wall backends' real compute
  overruns the compressed clock, so gated metrics undercount by
  design there (see DESIGN.md, "Determinism contract") and must never
  be compared across backends.  The pair multiset is backend-invariant
  and the benchmark *verifies* that: it refuses to publish a speedup
  (exit 1) unless sim, thread, process and tcp produced the identical
  joined-output multiset from the identical ingested trace.

The default geometry (wide windows, few partitions) makes per-slave
probe compute dominate the master's serial shipping path.  Reported
per backend:

* **wall_seconds** — end-to-end run time;
* **cpu_seconds** — process CPU (self + reaped children);
* **cpu_utilization** — cpu/wall: effective busy cores;
* **throughput_tuples_per_s** — trace tuples joined per wall second.

Interpreting the summary: ``cpu_utilization > 1`` for the process
backend demonstrates multicore parallelism, which is only *possible*
when ``cores_available > 1`` (the JSON records the host's allowed CPU
count, and ``multicore_capable`` makes the precondition explicit).  On
a single-core host the process backend can still beat the thread
backend on wall time for the same verified work, because the
GIL-sharing threads pay contention overhead that the per-node
processes do not — visible as the thread run's higher ``cpu_seconds``
(``thread_cpu_overhead_seconds``) — but no parallel speedup is
measurable there.  Each backend runs ``--reps`` times and the fastest
wall-clock run is published (noisy shared hosts routinely vary run
time by 2x; the minimum is the least-interference estimate).

Writes a JSON report (CI publishes it as a build artifact; the file is
gitignored — results are machine-specific)::

    python benchmarks/bench_backends.py --out BENCH_backends.json
"""

from __future__ import annotations

import argparse
import json
import os
import resource
import time
import typing as t

import numpy as np

from repro.config import CostModelConfig, SystemConfig
from repro.core.system import JoinSystem
from repro.simul.rng import RngRegistry
from repro.workload.generator import TwoStreamWorkload
from repro.workload.traces import TraceReplayer

BACKENDS = ("sim", "thread", "process", "tcp")

#: Near-zero modeled costs: the DES cost model charges simulated
#: seconds (slept on the wall backends); zeroing it makes the *real*
#: compute the only load, the quantity this benchmark compares.
CHEAP_COST = CostModelConfig(
    tuple_cost=1e-7,
    scan_byte_cost=1e-13,
    state_move_byte_cost=1e-12,
    expire_byte_cost=0.0,
)


def bench_cfg(args: argparse.Namespace) -> SystemConfig:
    return (
        SystemConfig.paper_defaults()
        .scaled(0.05)
        .with_(
            num_slaves=args.slaves,
            npart=8,
            rate=args.rate,
            window_seconds=120.0,
            run_seconds=150.0,
            warmup_seconds=30.0,
            time_scale=args.time_scale,
            cost=CHEAP_COST,
            seed=args.seed,
        )
    )


def cpu_seconds() -> float:
    mine = resource.getrusage(resource.RUSAGE_SELF)
    kids = resource.getrusage(resource.RUSAGE_CHILDREN)
    return mine.ru_utime + mine.ru_stime + kids.ru_utime + kids.ru_stime


def canonical_pairs(pairs: np.ndarray | None) -> np.ndarray:
    if pairs is None or not len(pairs):
        return np.empty((0, 2), dtype=np.int64)
    return pairs[np.lexsort((pairs[:, 1], pairs[:, 0]))]


def measure(
    cfg: SystemConfig, backend: str, trace: t.Any
) -> tuple[dict[str, t.Any], np.ndarray]:
    wall0, cpu0 = time.perf_counter(), cpu_seconds()
    result = JoinSystem(
        cfg.with_(backend=backend),
        collect_pairs=True,
        workload=TraceReplayer(trace),
    ).run()
    wall = time.perf_counter() - wall0
    cpu = cpu_seconds() - cpu0
    pairs = canonical_pairs(result.pairs)
    return {
        "backend": backend,
        "wall_seconds": round(wall, 3),
        "cpu_seconds": round(cpu, 3),
        "cpu_utilization": round(cpu / wall, 3),
        "throughput_tuples_per_s": round(len(trace.ts) / wall, 1),
        "tuples": result.tuples_generated,
        "outputs": int(len(pairs)),
    }, pairs


def main(argv: t.Sequence[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--rate", type=float, default=4000.0)
    parser.add_argument("--slaves", type=int, default=4)
    parser.add_argument("--time-scale", type=float, default=0.005)
    parser.add_argument("--seed", type=int, default=20130724)
    parser.add_argument("--reps", type=int, default=3)
    parser.add_argument("--out", default="BENCH_backends.json")
    args = parser.parse_args(argv)

    cfg = bench_cfg(args)
    workload = TwoStreamWorkload.poisson_bmodel(
        RngRegistry(cfg.seed), cfg.rate, cfg.b_skew, cfg.key_domain
    )
    # Stop the trace three distribution epochs early: the master's last
    # ingestion pass happens before the final (halt) epoch, so a trace
    # running right up to run_seconds would lose a backend-dependent
    # tail on the DES backend.
    trace = workload.generate(0.0, cfg.run_seconds - 3.0 * cfg.dist_epoch)

    started = time.perf_counter()
    runs, reference_pairs, equal_pairs, all_tuples = [], None, True, set()
    for backend in BACKENDS:
        best: dict[str, t.Any] | None = None
        for _ in range(max(1, args.reps)):
            run, pairs = measure(cfg, backend, trace)
            if reference_pairs is None:
                reference_pairs = pairs
            equal_pairs &= bool(np.array_equal(pairs, reference_pairs))
            all_tuples.add(run["tuples"])
            if best is None or run["wall_seconds"] < best["wall_seconds"]:
                best = run
        assert best is not None
        runs.append(best)
    by_backend = {run["backend"]: run for run in runs}

    equal_work = equal_pairs and len(all_tuples) == 1
    cores = len(os.sched_getaffinity(0))

    speedup = (
        by_backend["thread"]["wall_seconds"]
        / by_backend["process"]["wall_seconds"]
    )
    tcp_speedup = (
        by_backend["thread"]["wall_seconds"]
        / by_backend["tcp"]["wall_seconds"]
    )
    report = {
        "benchmark": "backends",
        "trace_tuples": int(len(trace.ts)),
        "cores_available": cores,
        "reps": max(1, args.reps),
        "config": {
            "rate": cfg.rate,
            "slaves": cfg.num_slaves,
            "npart": cfg.npart,
            "window_s": cfg.window_seconds,
            "run_s": cfg.run_seconds,
            "time_scale": cfg.time_scale,
            "seed": cfg.seed,
        },
        "runs": runs,
        "summary": {
            "equal_work_verified": equal_work,
            "process_over_thread_speedup": round(speedup, 2),
            "process_beats_thread": speedup > 1.0,
            "multicore_capable": cores > 1,
            "tcp_over_thread_speedup": round(tcp_speedup, 2),
            # Both loopback backends do the same multicore work; their
            # wall-time ratio prices the TCP stack against mp.Pipe.
            "tcp_over_process_ratio": round(
                by_backend["process"]["wall_seconds"]
                / by_backend["tcp"]["wall_seconds"],
                2,
            ),
            "process_cpu_utilization": by_backend["process"][
                "cpu_utilization"
            ],
            "tcp_cpu_utilization": by_backend["tcp"]["cpu_utilization"],
            "thread_cpu_utilization": by_backend["thread"]["cpu_utilization"],
            # CPU the thread backend burned beyond the process backend
            # for the same verified work: the price of GIL contention.
            "thread_cpu_overhead_seconds": round(
                by_backend["thread"]["cpu_seconds"]
                - by_backend["process"]["cpu_seconds"],
                3,
            ),
            "note": (
                ""
                if cores > 1
                else "single-core host: cpu_utilization is capped at "
                "1.0 and no parallel speedup is measurable; "
                "process-vs-thread differences reflect GIL contention "
                "and IPC overheads only"
            ),
        },
        "wall_seconds": round(time.perf_counter() - started, 2),
    }
    with open(args.out, "w", encoding="utf-8") as fh:
        json.dump(report, fh, indent=2)
        fh.write("\n")
    for run in runs:
        print(
            f"{run['backend']:>8}: wall={run['wall_seconds']:.2f}s "
            f"cpu={run['cpu_seconds']:.2f}s "
            f"util={run['cpu_utilization']:.2f} "
            f"outputs={run['outputs']:,} "
            f"throughput={run['throughput_tuples_per_s']:,.0f} t/s"
        )
    print(json.dumps(report["summary"], indent=2))
    print(f"wrote {args.out}")
    if not equal_work:
        detail = {
            b: {
                "outputs": by_backend[b]["outputs"],
                "tuples": by_backend[b]["tuples"],
            }
            for b in BACKENDS
        }
        print(
            "ERROR: backends did not perform identical join work; the "
            f"speedup above is not publishable: {detail}"
        )
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
