"""Backend benchmark: throughput and CPU utilization, sim vs thread vs
process.

All three backends replay the *same* pregenerated trace (so workload
generation — pure Python, GIL-bound — is paid once, outside the
measured runs) under a near-zero modeled cost model: wall time is then
dominated by the real numpy join work, which is exactly what
distinguishes the backends.  The DES backend executes it single
threaded by construction, the thread backend is GIL-bound, and the
process backend spreads the per-slave probe work across cores.

The default geometry (wide windows, few partitions) makes per-slave
probe compute dominate the master's serial shipping path, so the
process backend's multicore advantage is visible over its fork/wire
overhead.  Reported per backend:

* **wall_seconds** — end-to-end run time;
* **cpu_seconds** — process CPU (self + reaped children);
* **cpu_utilization** — cpu/wall: effective busy cores;
* **throughput_tuples_per_s** — trace tuples ingested per wall second.

Writes a JSON report (CI publishes it as ``BENCH_backends.json``)::

    python benchmarks/bench_backends.py --out BENCH_backends.json
"""

from __future__ import annotations

import argparse
import json
import resource
import time
import typing as t

from repro.config import CostModelConfig, SystemConfig
from repro.core.system import JoinSystem
from repro.simul.rng import RngRegistry
from repro.workload.generator import TwoStreamWorkload
from repro.workload.traces import TraceReplayer

BACKENDS = ("sim", "thread", "process")

#: Near-zero modeled costs: the DES cost model charges simulated
#: seconds (slept on the wall backends); zeroing it makes the *real*
#: compute the only load, the quantity this benchmark compares.
CHEAP_COST = CostModelConfig(
    tuple_cost=1e-7,
    scan_byte_cost=1e-13,
    state_move_byte_cost=1e-12,
    expire_byte_cost=0.0,
)


def bench_cfg(args: argparse.Namespace) -> SystemConfig:
    return (
        SystemConfig.paper_defaults()
        .scaled(0.05)
        .with_(
            num_slaves=args.slaves,
            npart=8,
            rate=args.rate,
            window_seconds=120.0,
            run_seconds=150.0,
            warmup_seconds=30.0,
            time_scale=args.time_scale,
            cost=CHEAP_COST,
            seed=args.seed,
        )
    )


def cpu_seconds() -> float:
    mine = resource.getrusage(resource.RUSAGE_SELF)
    kids = resource.getrusage(resource.RUSAGE_CHILDREN)
    return mine.ru_utime + mine.ru_stime + kids.ru_utime + kids.ru_stime


def measure(cfg: SystemConfig, backend: str, trace: t.Any) -> dict[str, t.Any]:
    wall0, cpu0 = time.perf_counter(), cpu_seconds()
    result = JoinSystem(
        cfg.with_(backend=backend), workload=TraceReplayer(trace)
    ).run()
    wall = time.perf_counter() - wall0
    cpu = cpu_seconds() - cpu0
    return {
        "backend": backend,
        "wall_seconds": round(wall, 3),
        "cpu_seconds": round(cpu, 3),
        "cpu_utilization": round(cpu / wall, 3),
        "throughput_tuples_per_s": round(result.tuples_generated / wall, 1),
        "tuples": result.tuples_generated,
        "outputs": result.outputs,
    }


def main(argv: t.Sequence[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--rate", type=float, default=4000.0)
    parser.add_argument("--slaves", type=int, default=4)
    parser.add_argument("--time-scale", type=float, default=0.005)
    parser.add_argument("--seed", type=int, default=20130724)
    parser.add_argument("--out", default="BENCH_backends.json")
    args = parser.parse_args(argv)

    cfg = bench_cfg(args)
    workload = TwoStreamWorkload.poisson_bmodel(
        RngRegistry(cfg.seed), cfg.rate, cfg.b_skew, cfg.key_domain
    )
    trace = workload.generate(0.0, cfg.run_seconds)

    started = time.perf_counter()
    runs = [measure(cfg, backend, trace) for backend in BACKENDS]
    by_backend = {run["backend"]: run for run in runs}
    speedup = (
        by_backend["thread"]["wall_seconds"]
        / by_backend["process"]["wall_seconds"]
    )
    report = {
        "benchmark": "backends",
        "trace_tuples": int(len(trace.ts)),
        "config": {
            "rate": cfg.rate,
            "slaves": cfg.num_slaves,
            "npart": cfg.npart,
            "window_s": cfg.window_seconds,
            "run_s": cfg.run_seconds,
            "time_scale": cfg.time_scale,
            "seed": cfg.seed,
        },
        "runs": runs,
        "summary": {
            "process_over_thread_speedup": round(speedup, 2),
            "process_beats_thread": speedup > 1.0,
            "process_cpu_utilization": by_backend["process"][
                "cpu_utilization"
            ],
            "thread_cpu_utilization": by_backend["thread"]["cpu_utilization"],
        },
        "wall_seconds": round(time.perf_counter() - started, 2),
    }
    with open(args.out, "w", encoding="utf-8") as fh:
        json.dump(report, fh, indent=2)
        fh.write("\n")
    for run in runs:
        print(
            f"{run['backend']:>8}: wall={run['wall_seconds']:.2f}s "
            f"cpu={run['cpu_seconds']:.2f}s "
            f"util={run['cpu_utilization']:.2f} "
            f"throughput={run['throughput_tuples_per_s']:,.0f} t/s"
        )
    print(json.dumps(report["summary"], indent=2))
    print(f"wrote {args.out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
