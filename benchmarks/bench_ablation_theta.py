"""Ablation A1: sensitivity to the tuning parameter theta.

Expectation: a huge theta behaves like no tuning (probes scan whole
partitions, CPU rises); the paper's 1.5 MB sits in the flat optimum.
"""


def test_ablation_theta(benchmark, figure):
    exp = figure(benchmark, "ablation_theta")

    rows = {row["theta_mb_fullscale"]: row for row in exp.rows}
    thetas = sorted(rows)
    # The largest theta approaches no-tuning behaviour: more CPU than
    # the paper's default.
    assert rows[thetas[-1]]["avg_cpu_s"] > rows[1.5]["avg_cpu_s"]
    # Smaller thetas split more.
    assert rows[thetas[0]]["splits"] >= rows[thetas[-1]]["splits"]
