"""Micro-benchmarks of the hot kernels (true pytest-benchmark targets).

These are the inner loops the HPC guides say to profile before
optimizing: the vectorized probe, key generation, hash partitioning,
directory routing and the DES event loop.
"""

import numpy as np
import pytest

from repro.core.hashing import directory_hash, partition_of
from repro.core.partition_group import JoinGeometry, PartitionGroup
from repro.core.probe import probe_sorted
from repro.simul.kernel import Simulator
from repro.workload.bmodel import BModelKeys


@pytest.fixture(scope="module")
def probe_inputs():
    rng = np.random.default_rng(0)
    n_window, n_probe = 100_000, 64
    window_key = np.sort(rng.integers(0, 1_000_000, n_window))
    window_ts = rng.uniform(0, 600, n_window)
    probe_key = rng.integers(0, 1_000_000, n_probe)
    probe_ts = rng.uniform(500, 600, n_probe)
    seq = np.arange(n_probe)
    return probe_ts, probe_key, seq, window_key, window_ts


def test_probe_kernel(benchmark, probe_inputs):
    """One head-block probe against a 100k-tuple sorted window."""
    probe_ts, probe_key, seq, window_key, window_ts = probe_inputs
    result = benchmark(
        probe_sorted,
        probe_ts,
        probe_key,
        seq,
        window_key,
        window_ts,
        None,
        600.0,
    )
    assert result.n_pairs >= 0


def test_bmodel_generation(benchmark):
    """Drawing one distribution epoch's worth of skewed keys."""
    model = BModelKeys(10_000_001, 0.7, np.random.default_rng(0))
    keys = benchmark(model.draw, 12_000)
    assert len(keys) == 12_000


def test_partition_hash(benchmark):
    keys = np.random.default_rng(0).integers(0, 10_000_001, 12_000)
    pids = benchmark(partition_of, keys, 60)
    assert pids.max() < 60


def test_directory_hash(benchmark):
    keys = np.random.default_rng(0).integers(0, 10_000_001, 12_000)
    g = benchmark(directory_hash, keys)
    assert len(g) == 12_000


def test_directory_routing(benchmark):
    from repro.data.tuples import TupleBatch

    geometry = JoinGeometry(64, 4096, 32 * 1024, 600.0, True, 64)
    group = PartitionGroup(0, geometry)
    rng = np.random.default_rng(0)
    keys = rng.integers(0, 10_000_001, 20_000)
    # Fill the single initial mini-group, then split to a fixed point
    # so routing exercises a real multi-level directory.
    patterns, buckets = group.route(keys)
    for pattern in sorted(buckets):
        mini = buckets[pattern].payload
        idx = np.flatnonzero(patterns == pattern)
        mini.windows[0].install_committed(
            TupleBatch.build(
                ts=np.sort(rng.uniform(0, 600, len(idx))), key=keys[idx]
            )
        )
    while group.oversized_buckets():
        group.split_bucket(group.oversized_buckets()[0])
    assert group.n_mini_groups > 4

    batch_keys = rng.integers(0, 10_000_001, 4096)
    patterns, buckets = benchmark(group.route, batch_keys)
    assert len(patterns) == 4096


def test_event_loop_throughput(benchmark):
    """Raw kernel speed: schedule and process 10k timeouts."""

    def run_loop():
        sim = Simulator()

        def ticker(sim):
            for _ in range(10_000):
                yield sim.timeout(0.001)

        sim.process(ticker(sim))
        sim.run(None)
        return sim.now

    now = benchmark(run_loop)
    assert now == pytest.approx(10.0, rel=0.01)
