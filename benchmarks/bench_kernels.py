"""Join-kernel benchmarks: micro targets plus the kernel matrix.

Two layers:

* **pytest-benchmark micro targets** (``pytest benchmarks/``): the
  inner loops the HPC guides say to profile before optimizing — the
  vectorized probe, key generation, hash partitioning, directory
  routing and the DES event loop.
* **The kernel-matrix benchmark** (``python benchmarks/bench_kernels.py
  --out BENCH_kernels.json``): sustained probe-commit-expire cycles at
  realistic window sizes for every registered join kernel, plus an
  end-to-end cross-kernel x cross-backend verification pass.

The matrix measures the pattern production runs actually execute —
probe a head block, commit it, advance the expiry watermark — because
that is where the kernels diverge: each commit invalidates block-NLJ's
sorted-key snapshot (a full ``argsort`` of the window on the next
probe), while the indexed kernel's hash buckets absorb the same commit
incrementally and expire lazily.  Probing an *unchanging* window would
flatter blocknlj (its snapshot would be built once and binary-searched
forever) and measure nothing real.

No speedup is publishable without proof of equal work: the matrix
refuses to write a report (exit 1) unless (a) every kernel produced
the identical joined-pair multiset over the identical probe stream at
every window size, and (b) end-to-end runs on the sim and thread
backends for every kernel reproduced the ``naive_window_join`` oracle
exactly.  The JSON's ``"verified"`` flag records that both held.
"""

from __future__ import annotations

import argparse
import json
import time
import typing as t

import numpy as np
import pytest

from repro.config import SystemConfig
from repro.core.hashing import directory_hash, partition_of
from repro.core.kernels import available_kernels
from repro.core.partition_group import JoinGeometry, PartitionGroup
from repro.core.probe import probe_sorted
from repro.core.system import JoinSystem
from repro.core.window import StreamWindow
from repro.reference import naive_window_join
from repro.simul.kernel import Simulator
from repro.simul.rng import RngRegistry
from repro.workload.generator import TwoStreamWorkload
from repro.workload.traces import TraceReplayer


@pytest.fixture(scope="module")
def probe_inputs():
    rng = np.random.default_rng(0)
    n_window, n_probe = 100_000, 64
    window_key = np.sort(rng.integers(0, 1_000_000, n_window))
    window_ts = rng.uniform(0, 600, n_window)
    probe_key = rng.integers(0, 1_000_000, n_probe)
    probe_ts = rng.uniform(500, 600, n_probe)
    seq = np.arange(n_probe)
    return probe_ts, probe_key, seq, window_key, window_ts


def test_probe_kernel(benchmark, probe_inputs):
    """One head-block probe against a 100k-tuple sorted window."""
    probe_ts, probe_key, seq, window_key, window_ts = probe_inputs
    result = benchmark(
        probe_sorted,
        probe_ts,
        probe_key,
        seq,
        window_key,
        window_ts,
        None,
        600.0,
    )
    assert result.n_pairs >= 0


def test_bmodel_generation(benchmark):
    """Drawing one distribution epoch's worth of skewed keys."""
    model = BModelKeys(10_000_001, 0.7, np.random.default_rng(0))
    keys = benchmark(model.draw, 12_000)
    assert len(keys) == 12_000


def test_partition_hash(benchmark):
    keys = np.random.default_rng(0).integers(0, 10_000_001, 12_000)
    pids = benchmark(partition_of, keys, 60)
    assert pids.max() < 60


def test_directory_hash(benchmark):
    keys = np.random.default_rng(0).integers(0, 10_000_001, 12_000)
    g = benchmark(directory_hash, keys)
    assert len(g) == 12_000


def test_directory_routing(benchmark):
    from repro.data.tuples import TupleBatch

    geometry = JoinGeometry(64, 4096, 32 * 1024, 600.0, True, 64)
    group = PartitionGroup(0, geometry)
    rng = np.random.default_rng(0)
    keys = rng.integers(0, 10_000_001, 20_000)
    # Fill the single initial mini-group, then split to a fixed point
    # so routing exercises a real multi-level directory.
    patterns, buckets = group.route(keys)
    for pattern in sorted(buckets):
        mini = buckets[pattern].payload
        idx = np.flatnonzero(patterns == pattern)
        mini.windows[0].install_committed(
            TupleBatch.build(
                ts=np.sort(rng.uniform(0, 600, len(idx))), key=keys[idx]
            )
        )
    while group.oversized_buckets():
        group.split_bucket(group.oversized_buckets()[0])
    assert group.n_mini_groups > 4

    batch_keys = rng.integers(0, 10_000_001, 4096)
    patterns, buckets = benchmark(group.route, batch_keys)
    assert len(patterns) == 4096


def test_event_loop_throughput(benchmark):
    """Raw kernel speed: schedule and process 10k timeouts."""

    def run_loop():
        sim = Simulator()

        def ticker(sim):
            for _ in range(10_000):
                yield sim.timeout(0.001)

        sim.process(ticker(sim))
        sim.run(None)
        return sim.now

    now = benchmark(run_loop)
    assert now == pytest.approx(10.0, rel=0.01)


@pytest.mark.parametrize("kernel", available_kernels())
def test_probe_commit_cycle(benchmark, kernel):
    """One probe-then-commit cycle per kernel at a 20k-tuple window —
    the micro version of the matrix below."""
    win, clock, dt = _build_window(kernel, 20_000, window_seconds=600.0)
    rng = np.random.default_rng(1)

    state = {"clock": clock, "seq": 1_000_000}

    def cycle():
        ts = state["clock"] + dt * np.arange(1, 65)
        key = rng.integers(0, 20_000 // 8, 64)
        seq = np.arange(state["seq"], state["seq"] + 64)
        r = win.probe_committed(ts, key, seq, 600.0)
        win.append_fresh(ts, key, seq)
        win.commit_fresh()
        state["clock"] = float(ts[-1])
        state["seq"] += 64
        return r

    result = benchmark(cycle)
    assert result.n_pairs >= 0


# ---------------------------------------------------------------------------
# The kernel matrix (argparse entry point).
# ---------------------------------------------------------------------------
WINDOW_SIZES = (10_000, 100_000)
BATCH = 64  # head-block size at the paper's 4 KiB blocks / 64 B tuples


def _build_window(
    kernel: str, n_window: int, window_seconds: float
) -> tuple[StreamWindow, float, float]:
    """A committed window of *n_window* tuples spanning exactly one
    window length, so steady-state expiry balances steady-state commit.
    Returns ``(window, clock, dt)``."""
    win = StreamWindow(0, BATCH, BATCH * 64, kernel=kernel)
    rng = np.random.default_rng(0)
    dt = window_seconds / n_window
    ts = dt * np.arange(n_window)
    key = rng.integers(0, max(1, n_window // 8), n_window).astype(np.int64)
    seq = np.arange(n_window, dtype=np.int64)
    win.committed.append(ts, key, seq)
    win.kernel.warm()
    return win, float(ts[-1]), dt


def measure_kernel(
    kernel: str, n_window: int, iters: int, window_seconds: float = 600.0
) -> dict[str, t.Any]:
    """Sustained probe/commit/expire throughput for one kernel at one
    window size, returning the stats and the full pair multiset."""
    build0 = time.perf_counter()
    win, clock, dt = _build_window(kernel, n_window, window_seconds)
    build = time.perf_counter() - build0

    rng = np.random.default_rng(42)  # same probe stream for every kernel
    probe_keys = rng.integers(
        0, max(1, n_window // 8), (iters, BATCH)
    ).astype(np.int64)
    all_pairs: list[np.ndarray] = []
    n_pairs = 0

    wall0 = time.perf_counter()
    for i in range(iters):
        ts = clock + dt * np.arange(1, BATCH + 1)
        key = probe_keys[i]
        seq = np.arange(1_000_000 + i * BATCH, 1_000_000 + (i + 1) * BATCH)
        result = win.probe_committed(ts, key, seq, window_seconds,
                                     collect_pairs=True)
        n_pairs += result.n_pairs
        all_pairs.append(result.pairs)
        # The steady-state mutation pattern: commit what we probed,
        # advance the expiry watermark one head block's worth.
        win.append_fresh(ts, key, seq)
        win.commit_fresh()
        clock = float(ts[-1])
        win.expire_before(clock - window_seconds)
    wall = time.perf_counter() - wall0

    pairs = (
        np.concatenate(all_pairs)
        if all_pairs
        else np.empty((0, 2), dtype=np.int64)
    )
    pairs = pairs[np.lexsort((pairs[:, 1], pairs[:, 0]))]
    return {
        "kernel": kernel,
        "window_tuples": n_window,
        "iters": iters,
        "build_seconds": round(build, 4),
        "wall_seconds": round(wall, 4),
        "probe_tuples_per_s": round(iters * BATCH / wall, 1),
        "pairs": int(n_pairs),
        "_multiset": pairs,
    }


def verify_end_to_end(seed: int) -> tuple[bool, dict[str, t.Any]]:
    """Every kernel x {sim, thread} reproduces the naive oracle."""
    cfg = (
        SystemConfig.paper_defaults()
        .scaled(0.01)
        .with_(
            num_slaves=2,
            npart=8,
            rate=300.0,
            run_seconds=10.0,
            warmup_seconds=2.0,
            window_seconds=3.0,
            time_scale=0.02,
            seed=seed,
        )
    )
    wl = TwoStreamWorkload.poisson_bmodel(
        RngRegistry(seed), cfg.rate, cfg.b_skew, 10_000
    )
    trace = wl.generate(0.0, cfg.run_seconds - 3 * cfg.dist_epoch)
    oracle = naive_window_join(trace, cfg.window_seconds)
    detail: dict[str, t.Any] = {"oracle_pairs": int(len(oracle))}
    ok = len(oracle) > 0
    for kernel in available_kernels():
        for backend in ("sim", "thread"):
            result = JoinSystem(
                cfg.with_(kernel=kernel, backend=backend),
                collect_pairs=True,
                workload=TraceReplayer(trace),
            ).run()
            pairs = result.pairs
            pairs = pairs[np.lexsort((pairs[:, 1], pairs[:, 0]))]
            match = bool(np.array_equal(pairs, oracle))
            detail[f"{kernel}/{backend}"] = (
                "oracle-exact" if match else f"DIVERGED ({len(pairs)} pairs)"
            )
            ok &= match
    return ok, detail


def main(argv: t.Sequence[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--iters", type=int, default=150,
                        help="probe-commit-expire cycles per cell")
    parser.add_argument("--seed", type=int, default=20130724)
    parser.add_argument("--out", default="BENCH_kernels.json")
    args = parser.parse_args(argv)

    started = time.perf_counter()
    kernels = available_kernels()
    cells: list[dict[str, t.Any]] = []
    multisets_equal = True
    for n_window in WINDOW_SIZES:
        reference: np.ndarray | None = None
        for kernel in kernels:
            cell = measure_kernel(kernel, n_window, args.iters)
            multiset = cell.pop("_multiset")
            if reference is None:
                reference = multiset
            elif not np.array_equal(multiset, reference):
                multisets_equal = False
                cell["DIVERGED"] = True
            cells.append(cell)
            print(
                f"{kernel:>9} @ {n_window:>7,} tuples: "
                f"{cell['probe_tuples_per_s']:>12,.0f} probe t/s  "
                f"({cell['wall_seconds']:.3f}s, {cell['pairs']:,} pairs)"
            )

    e2e_ok, e2e_detail = verify_end_to_end(args.seed)
    verified = multisets_equal and e2e_ok

    def cell_of(kernel: str, n: int) -> dict[str, t.Any]:
        return next(
            c for c in cells
            if c["kernel"] == kernel and c["window_tuples"] == n
        )

    speedups = {
        str(n): round(
            cell_of("indexed", n)["probe_tuples_per_s"]
            / cell_of("blocknlj", n)["probe_tuples_per_s"],
            2,
        )
        for n in WINDOW_SIZES
        if "indexed" in kernels and "blocknlj" in kernels
    }
    report = {
        "benchmark": "kernels",
        "verified": verified,
        "iters": args.iters,
        "batch": BATCH,
        "cells": cells,
        "indexed_over_blocknlj_speedup": speedups,
        "end_to_end": e2e_detail,
        "wall_seconds": round(time.perf_counter() - started, 2),
    }
    with open(args.out, "w", encoding="utf-8") as fh:
        json.dump(report, fh, indent=2)
        fh.write("\n")
    print(json.dumps({k: v for k, v in report.items() if k != "cells"},
                     indent=2))
    print(f"wrote {args.out}")
    if not verified:
        print(
            "ERROR: kernels did not perform identical join work "
            "(multisets_equal=%s, end_to_end=%s); the speedups above "
            "are not publishable." % (multisets_equal, e2e_ok)
        )
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
