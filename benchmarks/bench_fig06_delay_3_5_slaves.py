"""Figure 6: average production delay vs arrival rate, 3-5 slaves.

Paper shape: below saturation all curves sit near a couple of seconds;
capacity grows with the slave count (more slaves keep the delay flat to
higher rates).
"""


def test_fig06(benchmark, figure):
    exp = figure(benchmark, "fig06")

    rates = sorted(set(exp.series("rate")))
    top = rates[-1]
    d3 = exp.series("avg_delay_s", where={"slaves": 3, "rate": top})[0]
    d5 = exp.series("avg_delay_s", where={"slaves": 5, "rate": top})[0]
    # At the top rate (~8000 t/s) 3 slaves are deep in overload while 5
    # are near their capacity edge.
    assert d5 < d3
    # At the bottom rate everyone is comfortable (delay ~ an epoch or two).
    bottom = rates[0]
    for n in (3, 4, 5):
        d = exp.series("avg_delay_s", where={"slaves": n, "rate": bottom})[0]
        assert d < 5.0
