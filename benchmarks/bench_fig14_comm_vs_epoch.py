"""Figure 14: communication overhead vs distribution epoch (3 slaves).

Paper shape: the overhead rises steeply as the epoch shrinks (more
messages for the same payload) — the tradeoff against Figure 13.
"""


def test_fig14(benchmark, figure):
    exp = figure(benchmark, "fig14")

    comm = exp.series("comm_s")
    assert comm == sorted(comm, reverse=True)  # shrinking epoch costs more
    assert comm[0] > 2 * comm[-1]  # steep, not marginal
