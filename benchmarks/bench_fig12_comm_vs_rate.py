"""Figure 12: communication overhead vs rate, min/max/avg over the 4
slaves.

Paper shape: communication time grows with the arrival rate, and the
serial distribution order makes it non-uniform across slaves, with the
divergence widening as the rate grows.
"""


def test_fig12(benchmark, figure):
    exp = figure(benchmark, "fig12")

    avg = exp.series("avg_s")
    assert avg == sorted(avg)  # grows with rate

    spread_low = exp.rows[0]["max_s"] - exp.rows[0]["min_s"]
    spread_high = exp.rows[-1]["max_s"] - exp.rows[-1]["min_s"]
    assert spread_high >= spread_low  # divergence widens
    for row in exp.rows:
        assert row["min_s"] <= row["avg_s"] <= row["max_s"]
