"""Section V-B: sub-group communication and the master's peak buffer.

Paper equation: ``M_buf = (r*t_d/2)(1 + 1/ng)`` per stream — with many
groups the peak buffer approaches half the single-group value.
"""


def test_subgroup_buffer(benchmark, figure):
    exp = figure(benchmark, "subgroup_buffer")

    measured = exp.series("measured_peak_bytes")
    bound = exp.series("analytic_bound_bytes")
    # Peak shrinks as groups are added.
    assert measured == sorted(measured, reverse=True)
    # Measured peaks track the analytic bound within a factor ~2
    # (Poisson fluctuations and block rounding on top of the formula).
    for got, expect in zip(measured, bound):
        assert 0.4 * expect < got < 2.5 * expect
    # ng=4 saves a third or more of the ng=1 peak.
    assert measured[-1] < 0.75 * measured[0]
