"""Figure 13: average production delay vs distribution epoch (3 slaves).

Paper shape: delay decreases roughly linearly as the epoch shrinks —
tuples wait about half an epoch in the master's buffer.
"""


def test_fig13(benchmark, figure):
    exp = figure(benchmark, "fig13")

    epochs = exp.series("dist_epoch_s")
    delays = exp.series("avg_delay_s")
    assert delays == sorted(delays)  # monotone in the epoch
    # Roughly linear: delay grows by at least a third of the epoch
    # increase (the master-side wait component is epoch/2).
    assert (delays[-1] - delays[0]) > 0.3 * (epochs[-1] - epochs[0])
