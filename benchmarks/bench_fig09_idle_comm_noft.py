"""Figure 9: idle time & communication overhead vs rate
(no fine tuning, 4 slaves).

Paper shape: idle time falls towards zero as the rate approaches the
~4000 t/s saturation point; communication overhead grows mildly and
monotonically.
"""


def test_fig09(benchmark, figure):
    exp = figure(benchmark, "fig09")

    idle = exp.series("idle_s")
    comm = exp.series("comm_s")
    assert idle == sorted(idle, reverse=True)  # monotone decreasing
    assert idle[-1] < 0.25 * idle[0]  # near-saturation at 4000
    assert comm == sorted(comm)  # monotone increasing
    assert comm[-1] < idle[0]  # comm stays a minor cost
