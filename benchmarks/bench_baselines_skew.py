"""Ablation A4: our system vs ATR vs CTR (Section VII's comparison).

Expectations:

* at a per-node-absorbable rate, ATR concentrates ~the full two-stream
  window on the segment node (multiples of our per-node max window);
* at a rate that needs the whole cluster, ATR's one-node-at-a-time
  processing saturates and its delay dwarfs ours;
* CTR forwards every tuple to every node: its slaves receive ~N times
  our payload bytes at any rate.
"""


def _row(exp, rate, system):
    return next(
        r for r in exp.rows if r["rate"] == rate and r["system"] == system
    )


def test_baselines_skew(benchmark, figure):
    exp = figure(benchmark, "baselines_skew", scale=0.05)

    for b in sorted(set(exp.series("b_skew"))):
        rows = [r for r in exp.rows if r["b_skew"] == b]
        fair, stress = 1200.0, 3000.0

        ours_fair = _row(exp, fair, "ours")
        atr_fair = _row(exp, fair, "atr")
        assert atr_fair["max_window_mb"] > 2.0 * ours_fair["max_window_mb"]

        ours_stress = _row(exp, stress, "ours")
        atr_stress = _row(exp, stress, "atr")
        assert atr_stress["avg_delay_s"] > 2.0 * ours_stress["avg_delay_s"]

        for rate in (fair, stress):
            ctr = _row(exp, rate, "ctr")
            ours = _row(exp, rate, "ours")
            assert ctr["slave_bytes_mb"] > 2.0 * ours["slave_bytes_mb"]
        assert rows  # non-empty per skew
