"""Chaos benchmark: what does surviving a slave crash cost?

For a matrix of seeds and crash times, runs the same seeded workload
fault-free and with one slave crashed mid-run, then reports:

* **recovery latency** — master detection to partition reassignment,
  per failure (also available in ``RunResult.recovery_latencies``);
* **degraded-output fraction** — ``1 - outputs_fault / outputs_ref``,
  the share of the oracle output lost with the dead slave's window
  state (adopted partitions restart empty; see DESIGN.md §8).

Writes a JSON report (CI publishes it as ``BENCH_faults.json``)::

    python benchmarks/bench_faults.py --out BENCH_faults.json
"""

from __future__ import annotations

import argparse
import json
import time
import typing as t

from repro.config import SystemConfig
from repro.core.system import JoinSystem
from repro.faults.plan import FaultPlan

#: Crash times against the chaos config's schedule (dist_epoch=2,
#: reorg_epoch=4): before the first shipment, mid-epoch, late.
CRASH_TIMES = (1.0, 5.0, 8.05)
VICTIM = 1  # slave index


def chaos_cfg(seed: int, faults: FaultPlan | None = None) -> SystemConfig:
    overrides: dict[str, t.Any] = dict(
        npart=12,
        rate=400.0,
        num_slaves=3,
        run_seconds=16.0,
        warmup_seconds=6.0,
        window_seconds=3.0,
        reorg_epoch=4.0,
        seed=seed,
    )
    if faults is not None:
        overrides["faults"] = faults
    return SystemConfig.paper_defaults().scaled(0.01).with_(**overrides)


def measure(seed: int, crash_at: float) -> dict[str, t.Any]:
    reference = JoinSystem(chaos_cfg(seed)).run()
    faulted = JoinSystem(
        chaos_cfg(
            seed, faults=FaultPlan.parse([f"crash:{VICTIM}@{crash_at}s"])
        )
    ).run()
    assert faulted.degraded, "the injected crash must be detected"
    degraded_fraction = (
        1.0 - faulted.outputs / reference.outputs
        if reference.outputs
        else 0.0
    )
    return {
        "seed": seed,
        "crash_at": crash_at,
        "outputs_ref": reference.outputs,
        "outputs_fault": faulted.outputs,
        "degraded_output_fraction": degraded_fraction,
        "recovery_latencies": faulted.recovery_latencies,
        "detected_at": [f["detected_at"] for f in faulted.faults],
    }


def main(argv: t.Sequence[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--seed-base", type=int, default=1)
    parser.add_argument("--seeds", type=int, default=5)
    parser.add_argument("--out", default="BENCH_faults.json")
    args = parser.parse_args(argv)

    started = time.perf_counter()
    runs = [
        measure(args.seed_base + i, crash_at)
        for i in range(args.seeds)
        for crash_at in CRASH_TIMES
    ]
    latencies = [lat for run in runs for lat in run["recovery_latencies"]]
    fractions = [run["degraded_output_fraction"] for run in runs]
    report = {
        "benchmark": "faults",
        "seed_base": args.seed_base,
        "runs": runs,
        "summary": {
            "n_runs": len(runs),
            "n_recovered": len(latencies),
            "recovery_latency_mean_s": (
                sum(latencies) / len(latencies) if latencies else None
            ),
            "recovery_latency_max_s": max(latencies) if latencies else None,
            "degraded_output_fraction_mean": sum(fractions) / len(fractions),
            "degraded_output_fraction_max": max(fractions),
        },
        "wall_seconds": round(time.perf_counter() - started, 2),
    }
    with open(args.out, "w", encoding="utf-8") as fh:
        json.dump(report, fh, indent=2)
        fh.write("\n")
    print(json.dumps(report["summary"], indent=2))
    print(f"wrote {args.out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
