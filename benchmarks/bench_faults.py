"""Chaos benchmark: what does surviving a slave crash cost?

For a matrix of seeds and crash times, runs the same seeded workload
fault-free and with one slave crashed mid-run, then reports:

* **recovery latency** — master detection to partition reassignment,
  per failure (also available in ``RunResult.recovery_latencies``);
* **degraded-output fraction** — ``1 - outputs_fault / outputs_ref``,
  the share of the output lost with the dead slave's window state
  (``--replication off``: adopted partitions restart empty; with
  replication on, the run must be lossless and the benchmark asserts
  ``degraded == False``; see DESIGN.md §8);
* **replication byte overhead** — the master's ``replication_bytes``
  meter (teed shipments + checkpoints), on the crash-free reference
  and the faulted run.

Writes a JSON report (CI publishes it as ``BENCH_faults.json``)::

    python benchmarks/bench_faults.py --out BENCH_faults.json
    python benchmarks/bench_faults.py --replication checkpoint+log
"""

from __future__ import annotations

import argparse
import json
import time
import typing as t

from repro.config import SystemConfig
from repro.core.system import JoinSystem
from repro.faults.plan import FaultPlan

#: Crash times against the chaos config's schedule (dist_epoch=2,
#: reorg_epoch=4): before the first shipment, mid-epoch, late.
CRASH_TIMES = (1.0, 5.0, 8.05)
VICTIM = 1  # slave index


def chaos_cfg(
    seed: int,
    faults: FaultPlan | None = None,
    replication: str = "off",
) -> SystemConfig:
    overrides: dict[str, t.Any] = dict(
        npart=12,
        rate=400.0,
        num_slaves=3,
        run_seconds=16.0,
        warmup_seconds=6.0,
        window_seconds=3.0,
        reorg_epoch=4.0,
        seed=seed,
        replication=replication,
    )
    if faults is not None:
        overrides["faults"] = faults
    return SystemConfig.paper_defaults().scaled(0.01).with_(**overrides)


def measure(
    seed: int, crash_at: float, replication: str
) -> dict[str, t.Any]:
    reference = JoinSystem(chaos_cfg(seed, replication=replication)).run()
    faulted = JoinSystem(
        chaos_cfg(
            seed,
            faults=FaultPlan.parse([f"crash:{VICTIM}@{crash_at}s"]),
            replication=replication,
        )
    ).run()
    assert faulted.faults, "the injected crash must be detected"
    if replication == "off":
        assert faulted.degraded, "crash without replicas must degrade"
    else:
        assert not faulted.degraded, (
            f"replication={replication} must recover losslessly "
            f"(seed {seed}, crash at {crash_at})"
        )
    degraded_fraction = (
        1.0 - faulted.outputs / reference.outputs
        if reference.outputs
        else 0.0
    )
    return {
        "seed": seed,
        "crash_at": crash_at,
        "replication": replication,
        "outputs_ref": reference.outputs,
        "outputs_fault": faulted.outputs,
        "degraded_output_fraction": degraded_fraction,
        "recovery_latencies": faulted.recovery_latencies,
        "detected_at": [f["detected_at"] for f in faulted.faults],
        "restored_pids": [
            list(f.get("restored_pids", ())) for f in faulted.faults
        ],
        "replication_bytes_ref": reference.master["replication_bytes"],
        "replication_bytes_fault": faulted.master["replication_bytes"],
    }


def main(argv: t.Sequence[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--seed-base", type=int, default=1)
    parser.add_argument("--seeds", type=int, default=5)
    parser.add_argument(
        "--replication",
        choices=("off", "log", "checkpoint+log", "all"),
        default="off",
        help="replication mode(s) to benchmark (all = sweep the three)",
    )
    parser.add_argument("--out", default="BENCH_faults.json")
    args = parser.parse_args(argv)
    modes = (
        ("off", "log", "checkpoint+log")
        if args.replication == "all"
        else (args.replication,)
    )

    started = time.perf_counter()
    runs = [
        measure(args.seed_base + i, crash_at, mode)
        for mode in modes
        for i in range(args.seeds)
        for crash_at in CRASH_TIMES
    ]
    latencies = [lat for run in runs for lat in run["recovery_latencies"]]
    fractions = [run["degraded_output_fraction"] for run in runs]
    overhead = [
        run["replication_bytes_ref"]
        for run in runs
        if run["replication"] != "off"
    ]
    report = {
        "benchmark": "faults",
        "seed_base": args.seed_base,
        "replication_modes": list(modes),
        "runs": runs,
        "summary": {
            "n_runs": len(runs),
            "n_recovered": len(latencies),
            "recovery_latency_mean_s": (
                sum(latencies) / len(latencies) if latencies else None
            ),
            "recovery_latency_max_s": max(latencies) if latencies else None,
            "degraded_output_fraction_mean": sum(fractions) / len(fractions),
            "degraded_output_fraction_max": max(fractions),
            "replication_bytes_mean": (
                sum(overhead) / len(overhead) if overhead else None
            ),
        },
        "wall_seconds": round(time.perf_counter() - started, 2),
    }
    with open(args.out, "w", encoding="utf-8") as fh:
        json.dump(report, fh, indent=2)
        fh.write("\n")
    print(json.dumps(report["summary"], indent=2))
    print(f"wrote {args.out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
