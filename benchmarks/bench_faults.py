"""Chaos benchmark: what does surviving a slave crash cost?

For a matrix of seeds and crash times, runs the same seeded workload
fault-free and with one slave crashed mid-run, then reports:

* **recovery latency** — master detection to partition reassignment,
  per failure (also available in ``RunResult.recovery_latencies``);
* **degraded-output fraction** — ``1 - outputs_fault / outputs_ref``,
  the share of the output lost with the dead slave's window state
  (``--replication off``: adopted partitions restart empty; with
  replication on, the run must be lossless and the benchmark asserts
  ``degraded == False``; see DESIGN.md §8);
* **replication byte overhead** — the master's ``replication_bytes``
  meter (teed shipments + checkpoints), on the crash-free reference
  and the faulted run.

With ``--master-kill``, benchmarks master failover instead: runs with a
standby coordinator, SIGKILLs (or simulates killing) the master
mid-run, and reports the **election latency** — death detection to the
last slave's Rejoin — per backend and kill time.  The run must complete
undegraded (the standby replays the fatal round losslessly) or the
benchmark fails.

Writes a JSON report (CI publishes it as ``BENCH_faults.json``)::

    python benchmarks/bench_faults.py --out BENCH_faults.json
    python benchmarks/bench_faults.py --replication checkpoint+log
    python benchmarks/bench_faults.py --master-kill --backend thread
"""

from __future__ import annotations

import argparse
import json
import time
import typing as t

from repro.config import SystemConfig
from repro.core.system import JoinSystem
from repro.faults.plan import FaultPlan

#: Crash times against the chaos config's schedule (dist_epoch=2,
#: reorg_epoch=4): before the first shipment, mid-epoch, late.
CRASH_TIMES = (1.0, 5.0, 8.05)
VICTIM = 1  # slave index

#: Master-kill times: before the first reorg, and mid-epoch after
#: state moved around (mirrors tests/faults/test_master_failover.py).
MASTER_KILL_TIMES = {"before-reorg": 3.0, "mid-epoch": 5.0}


def chaos_cfg(
    seed: int,
    faults: FaultPlan | None = None,
    replication: str = "off",
    **extra: t.Any,
) -> SystemConfig:
    overrides: dict[str, t.Any] = dict(
        npart=12,
        rate=400.0,
        num_slaves=3,
        run_seconds=16.0,
        warmup_seconds=6.0,
        window_seconds=3.0,
        reorg_epoch=4.0,
        seed=seed,
        replication=replication,
    )
    if faults is not None:
        overrides["faults"] = faults
    overrides.update(extra)
    return SystemConfig.paper_defaults().scaled(0.01).with_(**overrides)


def measure(
    seed: int, crash_at: float, replication: str
) -> dict[str, t.Any]:
    reference = JoinSystem(chaos_cfg(seed, replication=replication)).run()
    faulted = JoinSystem(
        chaos_cfg(
            seed,
            faults=FaultPlan.parse([f"crash:{VICTIM}@{crash_at}s"]),
            replication=replication,
        )
    ).run()
    assert faulted.faults, "the injected crash must be detected"
    if replication == "off":
        assert faulted.degraded, "crash without replicas must degrade"
    else:
        assert not faulted.degraded, (
            f"replication={replication} must recover losslessly "
            f"(seed {seed}, crash at {crash_at})"
        )
    degraded_fraction = (
        1.0 - faulted.outputs / reference.outputs
        if reference.outputs
        else 0.0
    )
    return {
        "seed": seed,
        "crash_at": crash_at,
        "replication": replication,
        "outputs_ref": reference.outputs,
        "outputs_fault": faulted.outputs,
        "degraded_output_fraction": degraded_fraction,
        "recovery_latencies": faulted.recovery_latencies,
        "detected_at": [f["detected_at"] for f in faulted.faults],
        "restored_pids": [
            list(f.get("restored_pids", ())) for f in faulted.faults
        ],
        "replication_bytes_ref": reference.master["replication_bytes"],
        "replication_bytes_fault": faulted.master["replication_bytes"],
        # None-safe halt accounting: a failure the run halted on keeps
        # recovery_latency=None and is flagged unrecovered_at_halt.
        "unrecovered_at_halt": sum(
            1 for f in faulted.faults if f.get("unrecovered_at_halt")
        ),
    }


def measure_master_kill(
    seed: int, kill_name: str, backend: str
) -> dict[str, t.Any]:
    """One master-failover run: kill the coordinator, time the election."""
    kill_at = MASTER_KILL_TIMES[kill_name]
    overrides: dict[str, t.Any] = dict(standby=True, backend=backend)
    if backend != "sim":
        overrides["time_scale"] = 0.05
    faulted = JoinSystem(
        chaos_cfg(
            seed,
            faults=FaultPlan.parse([f"crash:master@{kill_at}s"]),
            replication="checkpoint+log",
            **overrides,
        )
    ).run()
    takeovers = [
        f
        for f in faulted.faults
        if f.get("where") == "standby" and f.get("recovery_latency") is not None
    ]
    assert takeovers, "the standby never recorded a takeover"
    assert not faulted.degraded, (
        f"master failover must be lossless "
        f"(backend {backend}, kill {kill_name}, seed {seed})"
    )
    return {
        "seed": seed,
        "backend": backend,
        "kill": kill_name,
        "kill_at": kill_at,
        "outputs": faulted.outputs,
        "election_latency_s": takeovers[0]["recovery_latency"],
        "detected_at": takeovers[0]["detected_at"],
        "unrecovered_at_halt": sum(
            1 for f in faulted.faults if f.get("unrecovered_at_halt")
        ),
    }


def _master_kill_main(args: argparse.Namespace) -> int:
    """The ``--master-kill`` report: election latency per kill time."""
    started = time.perf_counter()
    runs = [
        measure_master_kill(args.seed_base + i, kill_name, args.backend)
        for i in range(args.seeds)
        for kill_name in sorted(MASTER_KILL_TIMES)
    ]
    latencies = [run["election_latency_s"] for run in runs]
    report = {
        "benchmark": "master-failover",
        "seed_base": args.seed_base,
        "backend": args.backend,
        "runs": runs,
        "summary": {
            "n_runs": len(runs),
            "election_latency_mean_s": sum(latencies) / len(latencies),
            "election_latency_max_s": max(latencies),
        },
        "wall_seconds": round(time.perf_counter() - started, 2),
    }
    with open(args.out, "w", encoding="utf-8") as fh:
        json.dump(report, fh, indent=2)
        fh.write("\n")
    print(json.dumps(report["summary"], indent=2))
    print(f"wrote {args.out}")
    return 0


def main(argv: t.Sequence[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--seed-base", type=int, default=1)
    parser.add_argument("--seeds", type=int, default=5)
    parser.add_argument(
        "--replication",
        choices=("off", "log", "checkpoint+log", "all"),
        default="off",
        help="replication mode(s) to benchmark (all = sweep the three)",
    )
    parser.add_argument(
        "--master-kill",
        action="store_true",
        help="benchmark master failover (election latency) instead of "
        "slave-crash recovery",
    )
    parser.add_argument(
        "--backend",
        choices=("sim", "thread", "process"),
        default="sim",
        help="backend for --master-kill runs",
    )
    parser.add_argument("--out", default="BENCH_faults.json")
    args = parser.parse_args(argv)
    if args.master_kill:
        return _master_kill_main(args)
    modes = (
        ("off", "log", "checkpoint+log")
        if args.replication == "all"
        else (args.replication,)
    )

    started = time.perf_counter()
    runs = [
        measure(args.seed_base + i, crash_at, mode)
        for mode in modes
        for i in range(args.seeds)
        for crash_at in CRASH_TIMES
    ]
    latencies = [lat for run in runs for lat in run["recovery_latencies"]]
    fractions = [run["degraded_output_fraction"] for run in runs]
    overhead = [
        run["replication_bytes_ref"]
        for run in runs
        if run["replication"] != "off"
    ]
    report = {
        "benchmark": "faults",
        "seed_base": args.seed_base,
        "replication_modes": list(modes),
        "runs": runs,
        "summary": {
            "n_runs": len(runs),
            "n_recovered": len(latencies),
            "recovery_latency_mean_s": (
                sum(latencies) / len(latencies) if latencies else None
            ),
            "recovery_latency_max_s": max(latencies) if latencies else None,
            "degraded_output_fraction_mean": sum(fractions) / len(fractions),
            "degraded_output_fraction_max": max(fractions),
            "replication_bytes_mean": (
                sum(overhead) / len(overhead) if overhead else None
            ),
        },
        "wall_seconds": round(time.perf_counter() - started, 2),
    }
    with open(args.out, "w", encoding="utf-8") as fh:
        json.dump(report, fh, indent=2)
        fh.write("\n")
    print(json.dumps(report["summary"], indent=2))
    print(f"wrote {args.out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
