"""Ablation A3: supplier threshold sensitivity.

Expectation: lower thresholds trigger rebalancing earlier (at least as
many moves as high thresholds); the default 0.5 performs on par with
the best setting.
"""


def test_ablation_thresholds(benchmark, figure):
    exp = figure(benchmark, "ablation_thresholds")

    rows = {row["th_sup"]: row for row in exp.rows}
    sups = sorted(rows)
    assert rows[sups[0]]["moves"] >= rows[sups[-1]]["moves"]
    best = min(row["avg_delay_s"] for row in exp.rows)
    default = rows[0.5]["avg_delay_s"] if 0.5 in rows else best
    assert default < 2.5 * best
