"""Figure 7: average CPU time vs rate, fine tuning on/off (4 slaves).

Paper shape: without fine tuning CPU time rises much faster with rate;
with fine tuning the curve stays well below (about half at high rates).
"""


def test_fig07(benchmark, figure):
    exp = figure(benchmark, "fig07", scale=0.05)

    rates = sorted(set(exp.series("rate")))
    ratios = []
    for rate in rates:
        tuned = exp.series(
            "avg_cpu_s", where={"rate": rate, "fine_tuning": True}
        )[0]
        untuned = exp.series(
            "avg_cpu_s", where={"rate": rate, "fine_tuning": False}
        )[0]
        # Tuning never costs CPU...
        assert tuned <= 1.05 * untuned
        ratios.append(untuned / max(tuned, 1e-9))
    # ...and wins clearly somewhere in the swept range.  (At the very
    # top both hit the 100%-utilization ceiling; at the very bottom
    # partitions sit below 2*theta and the curves coincide.)
    assert max(ratios) > 1.2

    # At the lowest rate the two coincide (partitions near 2*theta).
    assert ratios[0] < 1.35

    # Both curves increase with rate.
    tuned_series = exp.series("avg_cpu_s", where={"fine_tuning": True})
    assert tuned_series == sorted(tuned_series)
