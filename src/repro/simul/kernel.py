"""The discrete-event simulation loop.

The :class:`Simulator` keeps a binary heap of ``(time, priority, serial,
event)`` entries.  The monotonically increasing *serial* guarantees FIFO
order among events scheduled for the same instant, which makes every run
fully deterministic for a fixed seed.
"""

from __future__ import annotations

import heapq
import typing as t
from itertools import count

from repro.errors import DeadlockError, SimulationError
from repro.simul.events import AllOf, AnyOf, Event, Timeout
from repro.simul.process import Process

#: Default event priority.  Lower values are processed first among
#: events scheduled for the same simulated instant.
PRIORITY_NORMAL = 1
#: Priority used for "urgent" bookkeeping events (process resumption).
PRIORITY_URGENT = 0


class Simulator:
    """A deterministic discrete-event simulator.

    Typical use::

        sim = Simulator()

        def clock(sim, tick):
            while True:
                yield sim.timeout(tick)
                print(sim.now)

        sim.process(clock(sim, 1.0))
        sim.run(until=10.0)
    """

    def __init__(self, start_time: float = 0.0) -> None:
        self._now = float(start_time)
        self._queue: list[tuple[float, int, int, Event]] = []
        self._serial = count()
        self._active_processes = 0

    # -- clock -----------------------------------------------------------
    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    # -- factories -------------------------------------------------------
    def event(self, name: str = "") -> Event:
        """Create a fresh, untriggered :class:`Event`."""
        return Event(self, name=name)

    def timeout(self, delay: float, value: t.Any = None) -> Timeout:
        """Create an event firing ``delay`` seconds from now."""
        return Timeout(self, delay, value)

    def process(self, generator: t.Generator, name: str = "") -> Process:
        """Spawn a cooperative process driving *generator*."""
        return Process(self, generator, name=name)

    def any_of(self, events: t.Sequence[Event]) -> AnyOf:
        """Event firing when any of *events* fires."""
        return AnyOf(self, events)

    def all_of(self, events: t.Sequence[Event]) -> AllOf:
        """Event firing when all of *events* have fired."""
        return AllOf(self, events)

    # -- scheduling (kernel internal) -------------------------------------
    def _schedule(
        self, event: Event, delay: float = 0.0, priority: int = PRIORITY_NORMAL
    ) -> None:
        if delay < 0:
            raise SimulationError(f"cannot schedule in the past (delay={delay!r})")
        heapq.heappush(
            self._queue, (self._now + delay, priority, next(self._serial), event)
        )

    # -- execution ---------------------------------------------------------
    def step(self) -> None:
        """Process exactly one event from the queue."""
        if not self._queue:
            raise SimulationError("step() on an empty event queue")
        self._now, _, _, event = heapq.heappop(self._queue)
        callbacks, event.callbacks = event.callbacks, None
        if callbacks is None:  # pragma: no cover - defensive; cannot requeue
            raise SimulationError(f"{event!r} processed twice")
        for callback in callbacks:
            callback(event)

    def peek(self) -> float:
        """Time of the next scheduled event, or ``inf`` if none."""
        return self._queue[0][0] if self._queue else float("inf")

    def run(self, until: float | Event | None = None) -> t.Any:
        """Run the simulation.

        ``until`` may be:

        * ``None`` — run until the event queue is exhausted;
        * a number — run until simulated time reaches it;
        * an :class:`Event` — run until that event is processed and
          return its value (raising if the event failed).

        Raises :class:`~repro.errors.DeadlockError` when the queue
        empties while waiting for an ``until`` event, which almost
        always indicates processes blocked on each other.
        """
        if until is None:
            while self._queue:
                self.step()
            return None

        if isinstance(until, Event):
            stop: list[Event] = []
            until.add_callback(stop.append)
            while not stop:
                if not self._queue:
                    raise DeadlockError(
                        f"event queue empty before {until!r} fired; "
                        f"{self._active_processes} process(es) still blocked"
                    )
                self.step()
            if not until.ok:
                raise until.value
            return until.value

        horizon = float(until)
        if horizon < self._now:
            raise SimulationError(
                f"cannot run until {horizon!r}, already at {self._now!r}"
            )
        while self._queue and self._queue[0][0] <= horizon:
            self.step()
        self._now = horizon
        return None
