"""Discrete-event simulation kernel.

A small, self-contained, SimPy-flavoured kernel:

* :class:`~repro.simul.kernel.Simulator` — the event loop (binary heap of
  timestamped events, deterministic FIFO tie-breaking).
* :class:`~repro.simul.events.Event` — one-shot occurrences carrying a
  value or an exception.
* :class:`~repro.simul.process.Process` — generator-based cooperative
  processes; a process ``yield``\\ s events and is resumed with the
  event's value when it fires.
* :mod:`~repro.simul.resources` — FIFO :class:`Store`, counting
  :class:`Resource` and a synchronous :class:`Gate` used by the network
  layer to model rendezvous (blocking) message exchange.
* :mod:`~repro.simul.rng` — named, reproducible random substreams.

The kernel is deliberately minimal: every feature here is exercised by
the cluster model, and nothing else is included.
"""

from repro.simul.events import AllOf, AnyOf, Event, Timeout
from repro.simul.kernel import Simulator
from repro.simul.process import Process, ProcessKilled
from repro.simul.resources import Gate, Resource, Store
from repro.simul.rng import RngRegistry

__all__ = [
    "Simulator",
    "Event",
    "Timeout",
    "AnyOf",
    "AllOf",
    "Process",
    "ProcessKilled",
    "Store",
    "Resource",
    "Gate",
    "RngRegistry",
]
