"""Shared resources for simulated processes.

* :class:`Store` — an unbounded-or-bounded FIFO of items with blocking
  ``get`` and ``put`` events.
* :class:`Resource` — a counting semaphore (``request`` / ``release``).
* :class:`Gate` — a reusable synchronization point: any number of
  processes wait, one process opens it, everyone is released.  Used by
  the epoch schedulers.
"""

from __future__ import annotations

import typing as t
from collections import deque

from repro.errors import ChannelClosedError, SimulationError
from repro.simul.events import Event

if t.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.simul.kernel import Simulator


class Store:
    """FIFO store of items with blocking get/put.

    ``capacity`` bounds the number of items held; ``put`` blocks while
    the store is full.  ``close()`` fails all pending and future getters
    with :class:`~repro.errors.ChannelClosedError` once drained.
    """

    def __init__(
        self, sim: "Simulator", capacity: float = float("inf"), name: str = ""
    ) -> None:
        if capacity <= 0:
            raise SimulationError(f"store capacity must be positive: {capacity!r}")
        self.sim = sim
        self.capacity = capacity
        self.name = name
        self.items: deque[t.Any] = deque()
        self._getters: deque[Event] = deque()
        self._putters: deque[tuple[Event, t.Any]] = deque()
        self._closed = False

    def __len__(self) -> int:
        return len(self.items)

    @property
    def closed(self) -> bool:
        return self._closed

    def put(self, item: t.Any) -> Event:
        """Event firing once *item* has been accepted by the store."""
        if self._closed:
            raise ChannelClosedError(f"put() on closed store {self.name!r}")
        event = self.sim.event(name=f"put:{self.name}")
        if len(self.items) < self.capacity:
            self.items.append(item)
            event.succeed()
            self._wake_getters()
        else:
            self._putters.append((event, item))
        return event

    def get(self) -> Event:
        """Event firing with the next item (FIFO)."""
        event = self.sim.event(name=f"get:{self.name}")
        if self.items:
            event.succeed(self.items.popleft())
            self._admit_putters()
        elif self._closed:
            event.fail(ChannelClosedError(f"get() on closed store {self.name!r}"))
        else:
            self._getters.append(event)
        return event

    def close(self) -> None:
        """Close the store: pending/future gets fail once items drain."""
        self._closed = True
        while self._getters:
            self._getters.popleft().fail(
                ChannelClosedError(f"store {self.name!r} closed")
            )

    # -- internal --------------------------------------------------------
    def _wake_getters(self) -> None:
        while self._getters and self.items:
            self._getters.popleft().succeed(self.items.popleft())
            self._admit_putters()

    def _admit_putters(self) -> None:
        while self._putters and len(self.items) < self.capacity:
            event, item = self._putters.popleft()
            self.items.append(item)
            event.succeed()


class Resource:
    """A counting semaphore with FIFO granting."""

    def __init__(self, sim: "Simulator", capacity: int = 1, name: str = "") -> None:
        if capacity < 1:
            raise SimulationError(f"resource capacity must be >= 1: {capacity!r}")
        self.sim = sim
        self.capacity = capacity
        self.name = name
        self._in_use = 0
        self._waiters: deque[Event] = deque()

    @property
    def in_use(self) -> int:
        return self._in_use

    def request(self) -> Event:
        """Event firing once a unit of the resource is granted."""
        event = self.sim.event(name=f"request:{self.name}")
        if self._in_use < self.capacity:
            self._in_use += 1
            event.succeed()
        else:
            self._waiters.append(event)
        return event

    def release(self) -> None:
        """Return one unit; grants the oldest waiter if any."""
        if self._in_use <= 0:
            raise SimulationError(f"release() of idle resource {self.name!r}")
        if self._waiters:
            self._waiters.popleft().succeed()
        else:
            self._in_use -= 1


class Gate:
    """A reusable broadcast gate.

    ``wait()`` returns an event that fires at the next ``open()``.  Each
    ``open(value)`` releases every process currently waiting, passing
    them *value*; the gate then resets for the next round.
    """

    def __init__(self, sim: "Simulator", name: str = "") -> None:
        self.sim = sim
        self.name = name
        self._waiters: list[Event] = []
        self._generation = 0

    @property
    def n_waiting(self) -> int:
        return len(self._waiters)

    @property
    def generation(self) -> int:
        """Number of times the gate has been opened."""
        return self._generation

    def wait(self) -> Event:
        event = self.sim.event(name=f"gate:{self.name}")
        self._waiters.append(event)
        return event

    def open(self, value: t.Any = None) -> int:
        """Release all current waiters; returns how many were released."""
        waiters, self._waiters = self._waiters, []
        self._generation += 1
        for event in waiters:
            event.succeed(value)
        return len(waiters)
