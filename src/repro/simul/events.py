"""Event primitives for the simulation kernel.

An :class:`Event` is a one-shot occurrence.  It starts *pending*, becomes
*triggered* when given a value (or an exception) and scheduled on the
simulator queue, and *processed* once the kernel has run its callbacks.
Processes block on events by ``yield``\\ ing them (see
:mod:`repro.simul.process`).
"""

from __future__ import annotations

import typing as t

from repro.errors import SimulationError

if t.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.simul.kernel import Simulator

_PENDING = object()


class Event:
    """A one-shot occurrence on a :class:`~repro.simul.kernel.Simulator`.

    Callbacks are invoked in registration order when the event is
    processed by the kernel.  An event may *succeed* with a value or
    *fail* with an exception; a failed event re-raises its exception in
    every process waiting on it.
    """

    __slots__ = ("sim", "callbacks", "_value", "_ok", "name")

    def __init__(self, sim: "Simulator", name: str = "") -> None:
        self.sim = sim
        self.callbacks: list[t.Callable[[Event], None]] | None = []
        self._value: t.Any = _PENDING
        self._ok = True
        self.name = name

    # -- state ---------------------------------------------------------
    @property
    def triggered(self) -> bool:
        """True once the event has a value and is on the queue."""
        return self._value is not _PENDING

    @property
    def processed(self) -> bool:
        """True once the kernel has run this event's callbacks."""
        return self.callbacks is None

    @property
    def ok(self) -> bool:
        """True when the event succeeded (only meaningful if triggered)."""
        return self._ok

    @property
    def value(self) -> t.Any:
        """The event's value (or exception instance if it failed)."""
        if self._value is _PENDING:
            raise SimulationError(f"value of {self!r} is not yet available")
        return self._value

    # -- triggering ----------------------------------------------------
    def succeed(self, value: t.Any = None, *, delay: float = 0.0) -> "Event":
        """Trigger the event successfully with *value*.

        The event is scheduled ``delay`` simulated seconds in the future
        (default: immediately, i.e. at the current simulation time).
        """
        if self.triggered:
            raise SimulationError(f"{self!r} has already been triggered")
        self._ok = True
        self._value = value
        self.sim._schedule(self, delay)
        return self

    def fail(self, exception: BaseException, *, delay: float = 0.0) -> "Event":
        """Trigger the event with an *exception*.

        Processes waiting on the event will have the exception thrown
        into them at their ``yield`` statement.
        """
        if not isinstance(exception, BaseException):
            raise TypeError("fail() requires an exception instance")
        if self.triggered:
            raise SimulationError(f"{self!r} has already been triggered")
        self._ok = False
        self._value = exception
        self.sim._schedule(self, delay)
        return self

    def add_callback(self, callback: t.Callable[["Event"], None]) -> None:
        """Register *callback* to run when the event is processed.

        If the event was already processed the callback runs
        immediately (synchronously).
        """
        if self.callbacks is None:
            callback(self)
        else:
            self.callbacks.append(callback)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = (
            "processed"
            if self.processed
            else "triggered"
            if self.triggered
            else "pending"
        )
        label = f" {self.name!r}" if self.name else ""
        return f"<{type(self).__name__}{label} {state} at {id(self):#x}>"


class Timeout(Event):
    """An event that fires ``delay`` simulated seconds after creation."""

    __slots__ = ("delay",)

    def __init__(self, sim: "Simulator", delay: float, value: t.Any = None) -> None:
        if delay < 0:
            raise SimulationError(f"negative timeout delay: {delay!r}")
        super().__init__(sim, name=f"timeout({delay:g})")
        self.delay = float(delay)
        self._ok = True
        self._value = value
        sim._schedule(self, delay)


class _Condition(Event):
    """Shared machinery for :class:`AnyOf` / :class:`AllOf`."""

    __slots__ = ("events", "_n_fired")

    def __init__(self, sim: "Simulator", events: t.Sequence[Event]) -> None:
        super().__init__(sim, name=type(self).__name__)
        self.events = tuple(events)
        if any(ev.sim is not sim for ev in self.events):
            raise SimulationError("all condition events must share a simulator")
        self._n_fired = 0
        if not self.events:
            self.succeed({})
            return
        for ev in self.events:
            ev.add_callback(self._on_fire)

    def _on_fire(self, event: Event) -> None:
        if self.triggered:
            return
        if not event.ok:
            self.fail(event.value)
            return
        self._n_fired += 1
        if self._satisfied():
            self.succeed(self._collect())

    def _satisfied(self) -> bool:  # pragma: no cover - abstract
        raise NotImplementedError

    def _collect(self) -> dict[Event, t.Any]:
        # Only events whose callbacks have run count as "fired" here —
        # a Timeout is *triggered* (scheduled, value set) from birth.
        return {ev: ev.value for ev in self.events if ev.processed and ev.ok}


class AnyOf(_Condition):
    """Fires when *any* of the given events has fired.

    The value is a dict mapping each already-fired event to its value.
    """

    __slots__ = ()

    def _satisfied(self) -> bool:
        return self._n_fired >= 1


class AllOf(_Condition):
    """Fires when *all* of the given events have fired."""

    __slots__ = ()

    def _satisfied(self) -> bool:
        return self._n_fired == len(self.events)
