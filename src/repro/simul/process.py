"""Generator-based cooperative processes.

A :class:`Process` wraps a generator.  The generator ``yield``\\ s
:class:`~repro.simul.events.Event` instances; when a yielded event fires
the process resumes with the event's value (or the event's exception is
thrown into the generator).  A process is itself an event that fires
with the generator's return value, so processes can wait on each other.
"""

from __future__ import annotations

import typing as t

from repro.errors import SimulationError
from repro.simul.events import Event

if t.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.simul.kernel import Simulator


class ProcessKilled(Exception):
    """Thrown into a process generator by :meth:`Process.kill`."""


class Process(Event):
    """A cooperative process executing a generator on the simulator."""

    __slots__ = ("_generator", "_waiting_on")

    def __init__(
        self, sim: "Simulator", generator: t.Generator, name: str = ""
    ) -> None:
        if not hasattr(generator, "send") or not hasattr(generator, "throw"):
            raise SimulationError(
                f"process body must be a generator, got {type(generator).__name__}"
            )
        super().__init__(sim, name=name or getattr(generator, "__name__", "process"))
        self._generator = generator
        self._waiting_on: Event | None = None
        sim._active_processes += 1
        # Bootstrap: resume the process at the current instant.
        boot = Event(sim, name=f"boot:{self.name}")
        boot.add_callback(self._resume)
        boot.succeed()

    @property
    def is_alive(self) -> bool:
        """True while the generator has not finished."""
        return not self.triggered

    def kill(self, reason: str = "") -> None:
        """Throw :class:`ProcessKilled` into the process.

        A process may catch it to clean up; if it does not re-raise, the
        process terminates normally (its event fails with the kill).
        """
        if self.triggered:
            return
        self._step(None, ProcessKilled(reason))

    # -- kernel plumbing -------------------------------------------------
    def _resume(self, event: Event) -> None:
        if self.triggered:
            # The process was killed while waiting on this event.
            return
        self._waiting_on = None
        if event.ok:
            self._step(event.value, None)
        else:
            self._step(None, event.value)

    def _step(self, value: t.Any, exc: BaseException | None) -> None:
        try:
            if exc is None:
                target = self._generator.send(value)
            else:
                target = self._generator.throw(exc)
        except StopIteration as stop:
            self.sim._active_processes -= 1
            self.succeed(stop.value)
            return
        except ProcessKilled as kill:
            self.sim._active_processes -= 1
            self.fail(kill)
            return
        except BaseException as error:
            self.sim._active_processes -= 1
            self.fail(error)
            raise_on_unhandled = not self.callbacks
            if raise_on_unhandled:
                # Nobody is waiting on this process: surface the crash
                # instead of silently swallowing it.
                raise
            return

        if not isinstance(target, Event):
            self.sim._active_processes -= 1
            bad = SimulationError(
                f"process {self.name!r} yielded {target!r}, expected an Event"
            )
            self.fail(bad)
            raise bad
        if target.sim is not self.sim:
            self.sim._active_processes -= 1
            bad = SimulationError(
                f"process {self.name!r} yielded an event from another simulator"
            )
            self.fail(bad)
            raise bad
        self._waiting_on = target
        target.add_callback(self._resume)
