"""Named, reproducible random substreams.

Every stochastic component of the system (arrival processes, key
generators, the master's random partition-group choice, ...) draws from
its own named substream derived from a single root seed, so adding a new
consumer never perturbs the randomness seen by existing ones.
"""

from __future__ import annotations

import zlib

import numpy as np


class RngRegistry:
    """Hands out independent :class:`numpy.random.Generator` substreams.

    Substreams are keyed by string; the same ``(root_seed, key)`` pair
    always yields an identically-seeded generator.
    """

    def __init__(self, root_seed: int = 0) -> None:
        self.root_seed = int(root_seed)
        self._cache: dict[str, np.random.Generator] = {}

    def get(self, key: str) -> np.random.Generator:
        """Return the substream for *key*, creating it on first use."""
        gen = self._cache.get(key)
        if gen is None:
            # crc32 is stable across processes/runs (unlike hash()).
            child = zlib.crc32(key.encode("utf-8"))
            seq = np.random.SeedSequence(entropy=self.root_seed, spawn_key=(child,))
            gen = np.random.default_rng(seq)
            self._cache[key] = gen
        return gen

    def fork(self, sub_root: str) -> "RngRegistry":
        """A registry whose streams are all independent of this one."""
        child = zlib.crc32(sub_root.encode("utf-8"))
        return RngRegistry(root_seed=(self.root_seed * 0x9E3779B1 + child) % 2**63)
