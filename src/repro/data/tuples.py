"""Tuple batches: the unit of data exchanged between nodes.

A :class:`TupleBatch` is an immutable-by-convention structure-of-arrays
holding ``n`` stream tuples:

* ``ts``     — arrival timestamp at the system (float64 seconds),
* ``key``    — join-attribute value (int64),
* ``seq``    — per-stream sequence number (int64), unique tuple identity,
* ``stream`` — source stream id (uint8; the paper's "augmented stream-ID
  attribute" used when tuples of several streams travel in one message).

Logical wire/window size is ``n * tuple_bytes`` regardless of the
in-memory representation.
"""

from __future__ import annotations

import typing as t

import numpy as np
import numpy.typing as npt

TS_DTYPE: t.Final = np.float64
KEY_DTYPE: t.Final = np.int64
SEQ_DTYPE: t.Final = np.int64
STREAM_DTYPE: t.Final = np.uint8

TsArray = npt.NDArray[np.float64]
KeyArray = npt.NDArray[np.int64]
SeqArray = npt.NDArray[np.int64]
StreamArray = npt.NDArray[np.uint8]

#: An integer index/mask array selecting rows out of a batch.
IndexArray = npt.NDArray[np.intp]
MaskArray = npt.NDArray[np.bool_]


class TupleBatch:
    """A batch of stream tuples in structure-of-arrays layout."""

    __slots__ = ("ts", "key", "seq", "stream")

    ts: TsArray
    key: KeyArray
    seq: SeqArray
    stream: StreamArray

    def __init__(
        self,
        ts: npt.NDArray[t.Any],
        key: npt.NDArray[t.Any],
        seq: npt.NDArray[t.Any],
        stream: npt.NDArray[t.Any],
    ) -> None:
        n = len(ts)
        if not (len(key) == len(seq) == len(stream) == n):
            raise ValueError("all columns must have equal length")
        self.ts = np.asarray(ts, dtype=TS_DTYPE)
        self.key = np.asarray(key, dtype=KEY_DTYPE)
        self.seq = np.asarray(seq, dtype=SEQ_DTYPE)
        self.stream = np.asarray(stream, dtype=STREAM_DTYPE)

    # -- constructors ------------------------------------------------------
    @classmethod
    def empty(cls) -> "TupleBatch":
        return cls(
            np.empty(0, TS_DTYPE),
            np.empty(0, KEY_DTYPE),
            np.empty(0, SEQ_DTYPE),
            np.empty(0, STREAM_DTYPE),
        )

    @classmethod
    def build(
        cls,
        ts: t.Sequence[float],
        key: t.Sequence[int],
        seq: t.Sequence[int] | None = None,
        stream: int | t.Sequence[int] = 0,
    ) -> "TupleBatch":
        """Convenience constructor from Python sequences (tests, examples)."""
        ts_arr = np.asarray(ts, dtype=TS_DTYPE)
        n = len(ts_arr)
        seq_arr = (
            np.arange(n, dtype=SEQ_DTYPE)
            if seq is None
            else np.asarray(seq, dtype=SEQ_DTYPE)
        )
        stream_arr = (
            np.full(n, stream, dtype=STREAM_DTYPE)
            if np.isscalar(stream)
            else np.asarray(stream, dtype=STREAM_DTYPE)
        )
        return cls(ts_arr, np.asarray(key, dtype=KEY_DTYPE), seq_arr, stream_arr)

    @classmethod
    def concat(cls, batches: t.Sequence["TupleBatch"]) -> "TupleBatch":
        batches = [b for b in batches if len(b)]
        if not batches:
            return cls.empty()
        if len(batches) == 1:
            return batches[0]
        return cls(
            np.concatenate([b.ts for b in batches]),
            np.concatenate([b.key for b in batches]),
            np.concatenate([b.seq for b in batches]),
            np.concatenate([b.stream for b in batches]),
        )

    # -- views ---------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.ts)

    def slice(self, start: int, stop: int) -> "TupleBatch":
        """Zero-copy sub-batch (numpy views)."""
        return TupleBatch(
            self.ts[start:stop],
            self.key[start:stop],
            self.seq[start:stop],
            self.stream[start:stop],
        )

    def take(self, index: IndexArray) -> "TupleBatch":
        return TupleBatch(
            self.ts[index], self.key[index], self.seq[index], self.stream[index]
        )

    def select(self, mask: MaskArray) -> "TupleBatch":
        return self.take(np.flatnonzero(mask))

    def by_stream(self, stream_id: int) -> "TupleBatch":
        """Tuples of one source stream (demultiplexing a merged message)."""
        return self.select(self.stream == stream_id)

    # -- accounting -----------------------------------------------------------
    def payload_bytes(self, tuple_bytes: int) -> int:
        """Logical wire/window size of the batch."""
        return len(self) * tuple_bytes

    def min_ts(self) -> float:
        return float(self.ts.min()) if len(self) else float("inf")

    def max_ts(self) -> float:
        return float(self.ts.max()) if len(self) else float("-inf")

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        if not len(self):
            return "<TupleBatch empty>"
        return (
            f"<TupleBatch n={len(self)} ts=[{self.ts[0]:.3f}..{self.ts[-1]:.3f}] "
            f"streams={sorted(set(self.stream.tolist()))}>"
        )
