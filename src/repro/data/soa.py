"""Growable structure-of-arrays with cheap front expiry.

Window partitions append new tuples at the back and expire old tuples
from the front (temporal order).  :class:`GrowableSoA` implements this
with amortized O(1) appends (geometric growth), O(1) logical pops
(a start offset) and periodic compaction, following the
"views-not-copies" guidance of the HPC coding guides.
"""

from __future__ import annotations

import typing as t

import numpy as np

from repro.data.tuples import (
    KEY_DTYPE,
    SEQ_DTYPE,
    TS_DTYPE,
    KeyArray,
    SeqArray,
    TsArray,
    TupleBatch,
)

_MIN_CAPACITY: t.Final = 64


class GrowableSoA:
    """Append-at-back / expire-at-front columnar tuple storage.

    Columns mirror :class:`~repro.data.tuples.TupleBatch` minus the
    stream id (a window partition belongs to exactly one stream).
    ``ts`` is non-decreasing by construction (tuples are appended in
    arrival order), which makes expiry a binary search.
    """

    __slots__ = ("_ts", "_key", "_seq", "_start", "_stop", "_appended", "_expired")

    _ts: TsArray
    _key: KeyArray
    _seq: SeqArray
    _start: int
    _stop: int
    _appended: int
    _expired: int

    def __init__(self, capacity: int = _MIN_CAPACITY) -> None:
        capacity = max(int(capacity), _MIN_CAPACITY)
        self._ts = np.empty(capacity, TS_DTYPE)
        self._key = np.empty(capacity, KEY_DTYPE)
        self._seq = np.empty(capacity, SEQ_DTYPE)
        self._start = 0
        self._stop = 0
        self._appended = 0
        self._expired = 0

    def __len__(self) -> int:
        return self._stop - self._start

    # -- logical positions ---------------------------------------------------
    # Every appended tuple gets a monotonically increasing *logical id*
    # (0, 1, 2, ...) that survives internal rebases (`_reserve`,
    # `_compact`).  Expiry only ever removes a prefix, so the live ids
    # are exactly [expired_total, appended_total) and the tuple with
    # logical id L sits at view offset ``L - expired_total``.  External
    # index structures (:mod:`repro.core.kernels.indexed`) store logical
    # ids and never need rebase notifications.
    @property
    def appended_total(self) -> int:
        """Count of tuples ever appended (next logical id)."""
        return self._appended

    @property
    def expired_total(self) -> int:
        """Count of tuples ever dropped from the front (first live id)."""
        return self._expired

    # -- views (valid until the next mutation) ------------------------------
    @property
    def ts(self) -> TsArray:
        return self._ts[self._start : self._stop]

    @property
    def key(self) -> KeyArray:
        return self._key[self._start : self._stop]

    @property
    def seq(self) -> SeqArray:
        return self._seq[self._start : self._stop]

    # -- mutation -------------------------------------------------------------
    def append(self, ts: TsArray, key: KeyArray, seq: SeqArray) -> None:
        """Append tuples (must not predate the current back of the store)."""
        n = len(ts)
        if n == 0:
            return
        if len(self) and ts[0] < self._ts[self._stop - 1]:
            raise ValueError(
                "appending out of temporal order: "
                f"{ts[0]!r} < {self._ts[self._stop - 1]!r}"
            )
        self._reserve(n)
        stop = self._stop
        self._ts[stop : stop + n] = ts
        self._key[stop : stop + n] = key
        self._seq[stop : stop + n] = seq
        self._stop = stop + n
        self._appended += n

    def expire_before(self, cutoff_ts: float) -> int:
        """Drop all tuples with ``ts < cutoff_ts``; returns count dropped.

        Relies on ``ts`` being non-decreasing.
        """
        idx = int(np.searchsorted(self.ts, cutoff_ts, side="left"))
        self._start += idx
        self._expired += idx
        if self._start == self._stop:
            self._start = self._stop = 0
        elif self._start > max(_MIN_CAPACITY, len(self)):
            self._compact()
        return idx

    def pop_all(self) -> TupleBatch:
        """Remove and return the whole contents (used by the state mover)."""
        batch = self.snapshot()
        self._start = self._stop = 0
        self._expired = self._appended
        return batch

    def snapshot(self, stream_id: int = 0) -> TupleBatch:
        """A copying :class:`TupleBatch` of the current contents."""
        n = len(self)
        return TupleBatch(
            self.ts.copy(),
            self.key.copy(),
            self.seq.copy(),
            np.full(n, stream_id, dtype=np.uint8),
        )

    # -- internal ---------------------------------------------------------------
    def _reserve(self, n: int) -> None:
        needed = self._stop + n
        if needed <= len(self._ts):
            return
        live = len(self)
        new_cap = max(len(self._ts) * 2, live + n, _MIN_CAPACITY)
        for name in ("_ts", "_key", "_seq"):
            old = getattr(self, name)
            fresh = np.empty(new_cap, old.dtype)
            fresh[:live] = old[self._start : self._stop]
            setattr(self, name, fresh)
        self._start, self._stop = 0, live

    def _compact(self) -> None:
        live = len(self)
        for name in ("_ts", "_key", "_seq"):
            arr = getattr(self, name)
            arr[:live] = arr[self._start : self._stop]
        self._start, self._stop = 0, live
