"""Block arithmetic.

The paper stores window partitions as chains of fixed-size blocks
(4 KB blocks of 64-byte tuples, i.e. 64 tuples per block) and processes
the join at block granularity.  These helpers slice tuple batches into
block-sized views and convert tuple counts to occupied-block sizes.
"""

from __future__ import annotations

import typing as t

from repro.data.tuples import TupleBatch


__all__ = ["n_blocks", "block_bytes_used", "BlockView", "iter_blocks"]


def n_blocks(n_tuples: int, tuples_per_block: int) -> int:
    """Blocks occupied by ``n_tuples`` (a partial head block counts)."""
    if n_tuples < 0:
        raise ValueError(f"negative tuple count: {n_tuples}")
    return -(-n_tuples // tuples_per_block)


def block_bytes_used(n_tuples: int, tuples_per_block: int, block_bytes: int) -> int:
    """Block-granular storage footprint of ``n_tuples``."""
    return n_blocks(n_tuples, tuples_per_block) * block_bytes


class BlockView(t.NamedTuple):
    """A block-sized window onto a batch (zero-copy)."""

    index: int
    batch: TupleBatch
    #: True when the block is full (``len(batch) == tuples_per_block``).
    full: bool


def iter_blocks(
    batch: TupleBatch, tuples_per_block: int
) -> t.Iterator[BlockView]:
    """Yield consecutive block-sized views of *batch*.

    The final view may be partial (``full=False``) — it corresponds to
    the paper's not-yet-full head block.
    """
    if tuples_per_block < 1:
        raise ValueError(f"tuples_per_block must be >= 1: {tuples_per_block}")
    n = len(batch)
    for i, start in enumerate(range(0, n, tuples_per_block)):
        stop = min(start + tuples_per_block, n)
        yield BlockView(i, batch.slice(start, stop), stop - start == tuples_per_block)
