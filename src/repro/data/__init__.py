"""Data plane: tuple batches, growable columnar storage, block math.

Stream tuples are 64 logical bytes on the wire and in windows (the
paper's Section VI-A); in memory we keep only the columns the join
needs — timestamp, join key, sequence number, stream id — as numpy
arrays (structure-of-arrays), and account for the logical payload size
separately.
"""

from repro.data.blocks import BlockView, iter_blocks, n_blocks
from repro.data.soa import GrowableSoA
from repro.data.tuples import TupleBatch

__all__ = ["TupleBatch", "GrowableSoA", "BlockView", "iter_blocks", "n_blocks"]
