"""Reference implementations used as correctness oracles in tests."""

from repro.reference.naive_join import naive_window_join

__all__ = ["naive_window_join"]
