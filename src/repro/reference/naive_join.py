"""The textbook tuple-at-a-time sliding-window equi-join.

Semantics (Section II of the paper): tuples ``a`` from stream 0 and
``b`` from stream 1 join iff ``a.key == b.key`` and each was inside the
other's window when the later of the two arrived — i.e.
``|a.ts - b.ts| <= W``.

This oracle is deliberately simple (no blocks, no partitions, no
parallelism) and is used by property-based tests to check that the full
master/slaves pipeline produces exactly the same multiset of join
pairs under hash partitioning, head-block batching, fine-tuning
splits/merges, repartitioning moves, and declustering changes.
"""

from __future__ import annotations

import numpy as np

from repro.data.tuples import TupleBatch


def naive_window_join(batch: TupleBatch, window_seconds: float) -> np.ndarray:
    """All join pairs of a two-stream batch.

    Returns an ``(n, 2)`` int64 array of ``(stream-0 seq, stream-1 seq)``
    pairs, sorted lexicographically (deterministic for comparisons).
    """
    s0 = batch.by_stream(0)
    s1 = batch.by_stream(1)
    if not len(s0) or not len(s1):
        return np.empty((0, 2), dtype=np.int64)

    order = np.argsort(s1.key, kind="stable")
    k1 = s1.key[order]
    t1 = s1.ts[order]
    q1 = s1.seq[order]

    lo = np.searchsorted(k1, s0.key, side="left")
    hi = np.searchsorted(k1, s0.key, side="right")
    counts = hi - lo
    total = int(counts.sum())
    if total == 0:
        return np.empty((0, 2), dtype=np.int64)

    owner = np.repeat(np.arange(len(s0)), counts)
    first = np.cumsum(counts) - counts
    offsets = np.arange(total) - np.repeat(first, counts)
    positions = np.repeat(lo, counts) + offsets

    valid = np.abs(t1[positions] - s0.ts[owner]) <= window_seconds
    pairs = np.column_stack((s0.seq[owner[valid]], q1[positions[valid]]))
    if len(pairs):
        view = pairs[np.lexsort((pairs[:, 1], pairs[:, 0]))]
        return np.ascontiguousarray(view, dtype=np.int64)
    return pairs.astype(np.int64)
