"""Deterministic fault plans (the injection vocabulary).

A :class:`FaultPlan` describes every fault of a run *up front*, as part
of :class:`~repro.config.SystemConfig` — fault schedules are therefore
seeded, serialized and replayed exactly like the workload itself.  The
plan knows three fault shapes:

* :class:`CrashFault` — fail-stop: slave *i* (0-based index) dies at
  simulated time *t*.  Its processes are killed, pending channel
  operations are resolved (peers observe ``NodeDown``), and anything
  later sent to it is silently discarded, like writes into a TCP
  buffer whose remote end is gone.
* :class:`MessageFault` — the *k*-th message posted on the directed
  pair ``(src, dst)`` (1-based, node ids) is dropped, or delayed by a
  fixed number of seconds.
* :class:`SlowFault` — slave *i*'s CPU costs are multiplied by
  ``factor`` over ``[start, stop)``, modeling a non-dedicated node
  losing its CPU to background load mid-run.

An *empty* plan is the default and guarantees byte-identical behavior
with pre-fault-layer builds: no timers are armed, no counters consulted,
no extra events scheduled.

The CLI spec grammar (``swjoin run --fault SPEC``, repeatable)::

    crash:2@35s            crash slave 2 at t=35
    crash:master@35s       crash the master at t=35 (needs --standby)
    drop:2->0@3            drop the 3rd message slave-node 2 sends node 0
    delay:2->0@3+0.5s      delay that message by 0.5 s instead
    slow:1x4@10-20s        slave 1 runs 4x slower during [10, 20)

Trailing ``s`` on seconds is optional everywhere.  ``crash:master``
kills the coordinator itself (node 0); the run only survives it when a
standby is configured (``swjoin run --standby``).
"""

from __future__ import annotations

import re
import typing as t
from dataclasses import dataclass

from repro.errors import ConfigError

__all__ = [
    "CrashFault",
    "MessageFault",
    "SlowFault",
    "FaultPlan",
    "MASTER_CRASH",
    "parse_fault",
]

#: Sentinel ``CrashFault.slave`` value naming the *master* (node 0)
#: rather than a slave index.  Kept out of the non-negative slave-index
#: space so existing plans never collide with it.
MASTER_CRASH = -1


@dataclass(frozen=True)
class CrashFault:
    """Fail-stop crash of one slave at a simulated time."""

    #: Slave *index* (0-based; node id is assigned by the cluster).
    slave: int
    #: Simulated time of the crash, seconds.
    at: float

    @property
    def targets_master(self) -> bool:
        return self.slave == MASTER_CRASH

    def validated(self, num_slaves: int | None = None) -> "CrashFault":
        if self.slave < 0 and not self.targets_master:
            raise ConfigError(f"crash slave index must be >= 0: {self.slave}")
        if (
            not self.targets_master
            and num_slaves is not None
            and self.slave >= num_slaves
        ):
            raise ConfigError(
                f"crash targets slave {self.slave} but the cluster has "
                f"only {num_slaves} slaves"
            )
        if self.at < 0:
            raise ConfigError(f"crash time must be >= 0: {self.at}")
        return self

    def spec(self) -> str:
        target = "master" if self.targets_master else str(self.slave)
        return f"crash:{target}@{self.at:g}s"


@dataclass(frozen=True)
class MessageFault:
    """Drop or delay one scheduled message on a directed node pair."""

    #: Sender node id (0 = master, 1 = collector, slaves from 2).
    src: int
    #: Receiver node id.
    dst: int
    #: Which message: the k-th posted on the pair, 1-based.
    k: int
    #: ``"drop"`` or ``"delay"``.
    action: str = "drop"
    #: Extra transfer seconds when ``action == "delay"``.
    delay: float = 0.0

    def validated(self) -> "MessageFault":
        if self.src < 0 or self.dst < 0 or self.src == self.dst:
            raise ConfigError(
                f"message fault needs distinct non-negative endpoints: "
                f"{self.src}->{self.dst}"
            )
        if self.k < 1:
            raise ConfigError(f"message ordinal is 1-based: {self.k}")
        if self.action not in ("drop", "delay"):
            raise ConfigError(f"unknown message-fault action: {self.action!r}")
        if self.action == "delay" and self.delay <= 0:
            raise ConfigError("delay faults need a positive delay")
        if self.action == "drop" and self.delay:
            raise ConfigError("drop faults take no delay")
        return self

    def spec(self) -> str:
        if self.action == "drop":
            return f"drop:{self.src}->{self.dst}@{self.k}"
        return f"delay:{self.src}->{self.dst}@{self.k}+{self.delay:g}s"


@dataclass(frozen=True)
class SlowFault:
    """CPU slowdown of one slave over a time interval."""

    #: Slave index (0-based).
    slave: int
    #: CPU cost multiplier (> 1 means slower).
    factor: float
    #: Interval ``[start, stop)`` in simulated seconds.
    start: float
    stop: float

    def validated(self, num_slaves: int | None = None) -> "SlowFault":
        if self.slave < 0:
            raise ConfigError(f"slow slave index must be >= 0: {self.slave}")
        if num_slaves is not None and self.slave >= num_slaves:
            raise ConfigError(
                f"slowdown targets slave {self.slave} but the cluster "
                f"has only {num_slaves} slaves"
            )
        if self.factor <= 0:
            raise ConfigError(f"slowdown factor must be positive: {self.factor}")
        if self.start < 0 or self.stop <= self.start:
            raise ConfigError(
                f"slowdown needs 0 <= start < stop: [{self.start}, {self.stop})"
            )
        return self

    def spec(self) -> str:
        return f"slow:{self.slave}x{self.factor:g}@{self.start:g}-{self.stop:g}s"


_CRASH_RE = re.compile(r"^crash:(\d+|master)@([0-9.]+)s?$")
_DROP_RE = re.compile(r"^drop:(\d+)->(\d+)@(\d+)$")
_DELAY_RE = re.compile(r"^delay:(\d+)->(\d+)@(\d+)\+([0-9.]+)s?$")
_SLOW_RE = re.compile(r"^slow:(\d+)x([0-9.]+)@([0-9.]+)-([0-9.]+)s?$")

Fault = t.Union[CrashFault, MessageFault, SlowFault]


def parse_fault(spec: str) -> Fault:
    """Parse one ``--fault`` spec string (see module docstring)."""
    text = spec.strip()
    m = _CRASH_RE.match(text)
    if m:
        target = (
            MASTER_CRASH if m.group(1) == "master" else int(m.group(1))
        )
        return CrashFault(target, float(m.group(2))).validated()
    m = _DROP_RE.match(text)
    if m:
        return MessageFault(
            int(m.group(1)), int(m.group(2)), int(m.group(3)), "drop"
        ).validated()
    m = _DELAY_RE.match(text)
    if m:
        return MessageFault(
            int(m.group(1)),
            int(m.group(2)),
            int(m.group(3)),
            "delay",
            float(m.group(4)),
        ).validated()
    m = _SLOW_RE.match(text)
    if m:
        return SlowFault(
            int(m.group(1)),
            float(m.group(2)),
            float(m.group(3)),
            float(m.group(4)),
        ).validated()
    raise ConfigError(
        f"unparseable fault spec {spec!r} (expected crash:I@T, "
        f"drop:SRC->DST@K, delay:SRC->DST@K+D or slow:IxF@T0-T1)"
    )


@dataclass(frozen=True)
class FaultPlan:
    """The complete, deterministic fault schedule of one run."""

    crashes: tuple[CrashFault, ...] = ()
    messages: tuple[MessageFault, ...] = ()
    slowdowns: tuple[SlowFault, ...] = ()
    #: Heartbeat timeout (seconds) for the master's scheduled receives.
    #: ``None`` defaults to one distribution epoch *when the plan is
    #: enabled*; with an empty plan no timeout is ever armed.
    detect_timeout: float | None = None

    @property
    def enabled(self) -> bool:
        """True when this plan changes anything about the run."""
        return bool(
            self.crashes
            or self.messages
            or self.slowdowns
            or self.detect_timeout is not None
        )

    def effective_timeout(self, dist_epoch: float) -> float:
        """The armed detection timeout (defaults to one dist epoch)."""
        return self.detect_timeout if self.detect_timeout is not None else dist_epoch

    def validated(self, num_slaves: int | None = None) -> "FaultPlan":
        for crash in self.crashes:
            crash.validated(num_slaves)
        for msg in self.messages:
            msg.validated()
        for slow in self.slowdowns:
            slow.validated(num_slaves)
        if self.detect_timeout is not None and self.detect_timeout <= 0:
            raise ConfigError("detect_timeout must be positive (or None)")
        seen: set[tuple[int, int, int]] = set()
        for msg in self.messages:
            key = (msg.src, msg.dst, msg.k)
            if key in seen:
                raise ConfigError(
                    f"duplicate message fault on pair "
                    f"{msg.src}->{msg.dst} ordinal {msg.k}"
                )
            seen.add(key)
        return self

    def specs(self) -> list[str]:
        """Round-trippable spec strings (CLI echo, trace metadata)."""
        faults: list[Fault] = [*self.crashes, *self.messages, *self.slowdowns]
        return [f.spec() for f in faults]

    @classmethod
    def parse(
        cls,
        specs: t.Sequence[str],
        detect_timeout: float | None = None,
    ) -> "FaultPlan":
        """Build a plan from CLI ``--fault`` spec strings."""
        crashes: list[CrashFault] = []
        messages: list[MessageFault] = []
        slowdowns: list[SlowFault] = []
        for spec in specs:
            fault = parse_fault(spec)
            if isinstance(fault, CrashFault):
                crashes.append(fault)
            elif isinstance(fault, MessageFault):
                messages.append(fault)
            else:
                slowdowns.append(fault)
        return cls(
            crashes=tuple(crashes),
            messages=tuple(messages),
            slowdowns=tuple(slowdowns),
            detect_timeout=detect_timeout,
        ).validated()
