"""Run-time enforcement of a :class:`~repro.faults.plan.FaultPlan`.

One :class:`FaultInjector` is shared by the transport (message faults,
crash reaping), the slaves (CPU slowdowns) and the system layer (crash
processes).  All of its decisions are pure functions of the plan and
deterministic counters, so a seeded run with a given plan replays
byte-identically.

The injector also keeps the authoritative log of *injections that
actually fired* (:attr:`FaultInjector.injected`) — a crash scheduled
past the end of the run, or a message ordinal never reached, is part of
the plan but not of the injection record.
"""

from __future__ import annotations

import typing as t

from repro.core.cluster import MASTER_ID
from repro.faults.plan import CrashFault, FaultPlan, MessageFault, SlowFault
from repro.obs.events import FaultEvent
from repro.obs.tracer import NULL_TRACER, Tracer


class FaultInjector:
    """Deterministic fault-plan enforcement shared across layers."""

    def __init__(
        self,
        plan: FaultPlan,
        slave_ids: t.Sequence[int],
        dist_epoch: float,
        tracer: Tracer = NULL_TRACER,
    ) -> None:
        self.plan = plan.validated(num_slaves=len(slave_ids))
        self.tracer = tracer
        #: Timeout armed on the master's scheduled receives; ``None``
        #: with an empty plan (zero behavior change).
        self.detect_timeout: float | None = (
            plan.effective_timeout(dist_epoch) if plan.enabled else None
        )
        # MASTER_CRASH is a sentinel, not a slave index: naively
        # indexing slave_ids[-1] would silently target the last slave.
        self._crash_by_node: dict[int, CrashFault] = {
            (MASTER_ID if c.targets_master else slave_ids[c.slave]): c
            for c in plan.crashes
        }
        self._slow_by_node: dict[int, list[SlowFault]] = {}
        for slow in plan.slowdowns:
            self._slow_by_node.setdefault(slave_ids[slow.slave], []).append(slow)
        self._message_faults: dict[tuple[int, int, int], MessageFault] = {
            (m.src, m.dst, m.k): m for m in plan.messages
        }
        self._send_counts: dict[tuple[int, int], int] = {}
        self._slow_fired: set[SlowFault] = set()
        #: Injections that actually fired, in firing order.
        self.injected: list[dict[str, t.Any]] = []

    @property
    def enabled(self) -> bool:
        return self.plan.enabled

    # -- crash faults ---------------------------------------------------
    def crash_targets(self) -> list[tuple[int, CrashFault]]:
        """``(node_id, fault)`` for every planned crash, by node id."""
        return sorted(self._crash_by_node.items())

    def crash_process(
        self,
        node_id: int,
        crash: CrashFault,
        runtime: t.Any,
        transport: t.Any,
        victims: t.Sequence[t.Any],
    ) -> t.Generator[t.Any, t.Any, None]:
        """Killer process: fail-stop *node_id* at the planned time.

        The transport is told first — pending channel entries of the
        victim are purged and its peers' receives resolve to
        ``NodeDown`` — and only then are the victim's processes killed,
        so no stale rendezvous entry can ever match a live peer.
        """
        yield runtime.sleep_until(crash.at)
        now = float(runtime.now())
        transport.kill_node(node_id)
        for proc in victims:
            proc.kill(f"fault injection: crash of node {node_id} at t={now:g}")
        self._record("crash", node_id, now, info=crash.at)

    # -- message faults -------------------------------------------------
    def send_action(
        self, src: int, dst: int, now: float
    ) -> tuple[str, float] | None:
        """Fault decision for the next message posted on ``(src, dst)``.

        Counts *every* posted message on the pair (control and payload
        alike — the schedule is fixed, so ordinals are reproducible)
        and returns ``("drop", 0.0)`` or ``("delay", seconds)`` when the
        plan names this ordinal, else ``None``.
        """
        key = (src, dst)
        count = self._send_counts.get(key, 0) + 1
        self._send_counts[key] = count
        fault = self._message_faults.get((src, dst, count))
        if fault is None:
            return None
        self._record(fault.action, dst, now, info=fault.delay, src=src)
        return (fault.action, fault.delay)

    # -- CPU slowdowns --------------------------------------------------
    def scaled_cpu(self, node_id: int, now: float, cost: float) -> float:
        """CPU cost of *node_id* at *now*, with slowdowns applied."""
        slows = self._slow_by_node.get(node_id)
        if not slows:
            return cost
        for slow in slows:
            if slow.start <= now < slow.stop:
                cost *= slow.factor
                if slow not in self._slow_fired:
                    self._slow_fired.add(slow)
                    self._record("slow", node_id, now, info=slow.factor)
        return cost

    # -- bookkeeping ----------------------------------------------------
    def _record(
        self,
        action: str,
        target: int,
        now: float,
        info: float = 0.0,
        src: int | None = None,
    ) -> None:
        record: dict[str, t.Any] = {
            "action": action,
            "node": target,
            "t": now,
            "info": info,
        }
        if src is not None:
            record["src"] = src
        self.injected.append(record)
        if self.tracer.enabled:
            self.tracer.emit(
                FaultEvent(
                    t=now,
                    node=src if src is not None else target,
                    action=action,
                    target=target,
                    info=info,
                )
            )

    def injected_records(self) -> list[dict[str, t.Any]]:
        """Copy of the fired-injection log (threaded into RunResult)."""
        return [dict(r) for r in self.injected]
