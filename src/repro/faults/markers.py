"""In-band failure markers synthesized by the transport layer.

These are *not* wire messages — no node ever sends one.  The transport
resolves a pending or future ``recv`` with a marker when the rendezvous
cannot complete, so node loops observe a failure as a value at their
usual ``yield`` point instead of blocking forever:

* :class:`NodeDown` — the peer is known dead (crashed and reaped);
* :class:`RecvTimeout` — the armed detection timeout elapsed with no
  matching send (the peer may be dead, wedged, or its message was
  lost).

``Communicator.recv_expect`` returns markers unchecked (they can arrive
wherever a message was scheduled); callers on fault-aware paths test
with :func:`peer_silent`.
"""

from __future__ import annotations

import typing as t
from dataclasses import dataclass

__all__ = ["NodeDown", "RecvTimeout", "peer_silent"]


@dataclass(frozen=True)
class NodeDown:
    """The transport knows the sender-side node is dead."""

    #: Node id of the dead peer.
    node: int


@dataclass(frozen=True)
class RecvTimeout:
    """A timed ``recv`` elapsed without a matching send."""

    #: The timeout that was armed, seconds.
    timeout: float = 0.0


def peer_silent(message: t.Any) -> bool:
    """True when *message* is a failure marker rather than a payload."""
    return isinstance(message, (NodeDown, RecvTimeout))
