"""Deterministic fault injection and failure markers (``repro.faults``).

The package splits into three modules:

* :mod:`repro.faults.plan` — the declarative :class:`FaultPlan`
  vocabulary carried by :class:`~repro.config.SystemConfig`;
* :mod:`repro.faults.markers` — in-band ``NodeDown``/``RecvTimeout``
  values the transport synthesizes at failed rendezvous points;
* :mod:`repro.faults.injector` — the run-time enforcement object
  shared by transport, slaves and system layer.

Only the dependency-free ``plan`` and ``markers`` modules are exported
here: :mod:`repro.config` imports this package, and the injector (which
depends on the observability layer) must stay out of that import cycle.
Import it explicitly as ``from repro.faults.injector import
FaultInjector``.
"""

from repro.faults.markers import NodeDown, RecvTimeout, peer_silent
from repro.faults.plan import (
    CrashFault,
    FaultPlan,
    MessageFault,
    SlowFault,
    parse_fault,
)

__all__ = [
    "CrashFault",
    "FaultPlan",
    "MessageFault",
    "NodeDown",
    "RecvTimeout",
    "SlowFault",
    "parse_fault",
    "peer_silent",
]
