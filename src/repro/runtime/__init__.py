"""Runtime abstraction: one node implementation, two execution targets.

Node logic (master / slave / collector loops) is written as generators
that ``yield`` *awaitables* produced by a :class:`~repro.runtime.base.Runtime`
and by transport endpoints.  Two interchangeable backends exist:

* :class:`~repro.runtime.sim.SimRuntime` — virtual time on the
  discrete-event kernel; deterministic, used by all experiments.
* :class:`~repro.runtime.thread.ThreadRuntime` — wall-clock time on
  real threads with queue-based rendezvous channels; used by the "live
  cluster" examples.
"""

from repro.runtime.base import Runtime
from repro.runtime.sim import SimRuntime
from repro.runtime.thread import ThreadRuntime

__all__ = ["Runtime", "SimRuntime", "ThreadRuntime"]
