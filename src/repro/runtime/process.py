"""Multicore process backend: one OS process per cluster node.

``backend="process"`` runs the master, each slave and the collector as
real OS processes (``fork``), connected by one full-duplex
``socket.socketpair()`` per node pair carrying :mod:`repro.net.wire`
frames.  Each child rebuilds the *full* cluster deterministically from
the config (same seed, same round-robin partition map) but spawns only
its own node's generators, driven by a per-process
:class:`~repro.runtime.thread.ThreadRuntime` — the identical generator
code that runs on the DES kernel and the thread backend.

Startup protocol (per child, over a parent<->child pipe):

1. build the cluster, report ``("ready", node_id)``;
2. receive the shared clock *origin* (a ``time.monotonic()`` value —
   system-wide on Linux — placed slightly in the future so every node
   starts modeled t=0 simultaneously, after all setup work);
3. rebase runtime and transport, spawn the node's generators;
4. on completion, ship a pickled metrics payload back and exit —
   process exit closes the sockets, so peers observe EOF exactly when
   the node is truly gone.

Crash faults (``crash:<slave>@<t>``) are injected by the parent:
a timer SIGKILLs the victim's process at the scaled wall time.  Peer
EOF then drives the same ``NodeDown`` detection/recovery machinery the
DES fault plane exercises.  Message and slowdown faults hang off the
simulated transport and are rejected up front.

Distributed tracing: each child owns a node-local
:class:`~repro.obs.tracer.Tracer` writing to a :class:`PipeExporter`,
which batches records back to the parent as ``("trace", node_id,
batch)`` pipe messages.  Timestamps are already on the shared modeled
clock (every child rebased onto the broadcast origin), so the parent
just merges all buffers with
:func:`~repro.obs.exporters.merge_records` — a stable ``(t, node,
seq)`` order — and replays them into the configured sinks.  Batches
flush every :data:`TRACE_BATCH` records *during* the run, so a
SIGKILLed victim loses at most the tail of its trace, never the whole
thing.

Determinism caveat: the joined-output *multiset* is backend-invariant,
but wall-clock scheduling makes per-epoch timing, metric values and —
under a detection timeout — the exact detection epoch load-dependent.
See DESIGN.md ("Runtime backends").
"""

from __future__ import annotations

import multiprocessing as mp
import socket
import threading
import time
import traceback
import typing as t
from multiprocessing import connection as mp_connection

import numpy as np

from repro.config import SystemConfig
from repro.core.cluster import (
    COLLECTOR_ID,
    MASTER_ID,
    Cluster,
    build_cluster,
    slave_node_id,
    standby_node_id,
    trace_meta,
)
from repro.core.metrics import DelayStats, MeasurementWindow, SlaveMetrics
from repro.core.system import RunResult, master_snapshot, start_admin_server
from repro.errors import ConfigError, DeadlockError
from repro.net.proc_transport import ProcTransport
from repro.obs.exporters import (
    ConsoleSummaryExporter,
    Exporter,
    JsonlExporter,
    merge_records,
    replay_records,
)
from repro.obs.tracer import NULL_TRACER, Tracer
from repro.runtime.thread import ThreadRuntime, reject_unsupported

#: Wall seconds between "all nodes ready" and modeled t=0: covers pipe
#: latency, the rebase and thread spawning in every child.
STARTUP_GRACE = 0.5
#: Wall seconds the parent waits for each child's "ready".
SETUP_TIMEOUT = 120.0
#: Trace records per ``("trace", ...)`` pipe message.  Large enough
#: that pickling doesn't dominate high-volume tracing (transport
#: spans); the wall-time bound below covers low-volume tracers.
TRACE_BATCH = 64
#: Maximum wall seconds a buffered trace record may wait before it is
#: flushed to the parent.  Bounds how much of its trace a SIGKILLed
#: victim can lose, regardless of event rate.
TRACE_FLUSH_WALL_S = 0.05

_Pair = tuple[int, int]
_Sockets = dict[_Pair, tuple[socket.socket, socket.socket]]


class PipeExporter(Exporter):
    """Trace sink that ships records to the parent over the child pipe.

    Records accumulate in a local buffer and flush as ``("trace",
    node_id, batch)`` messages every :data:`TRACE_BATCH` records, when
    the oldest buffered record is :data:`TRACE_FLUSH_WALL_S` old, and
    on :meth:`close`.  The tracer's emit lock already serializes
    ``export`` calls; the exporter's own lock additionally guards the
    buffer against a concurrent ``close`` and keeps pickled messages
    from interleaving on the pipe.
    """

    def __init__(self, conn: t.Any, node_id: int) -> None:
        self._conn = conn
        self._node_id = node_id
        self._buffer: list[dict[str, t.Any]] = []
        self._lock = threading.Lock()
        self._last_flush = time.monotonic()
        self.n_records = 0
        self.n_batches = 0

    def export(self, record: dict[str, t.Any]) -> None:
        with self._lock:
            self._buffer.append(record)
            self.n_records += 1
            if (
                len(self._buffer) >= TRACE_BATCH
                or time.monotonic() - self._last_flush >= TRACE_FLUSH_WALL_S
            ):
                self._flush_locked()

    def _flush_locked(self) -> None:
        self._last_flush = time.monotonic()
        if not self._buffer:
            return
        self._conn.send(("trace", self._node_id, self._buffer))
        self._buffer = []
        self.n_batches += 1

    def close(self) -> None:
        with self._lock:
            try:
                self._flush_locked()
            except (BrokenPipeError, OSError):  # pragma: no cover
                pass  # parent gone: nothing left to ship the tail to


def _owner_of(name: str, standby_id: int | None = None) -> int:
    """Cluster node id owning a generator from ``Cluster.processes()``."""
    if name == "master":
        return MASTER_ID
    if name == "standby":
        if standby_id is None:
            raise RuntimeError("standby generator without a standby node")
        return standby_id
    if name.startswith("collector"):
        return COLLECTOR_ID
    if name.startswith("slave"):
        return int(name[len("slave"): name.index(".")])
    raise RuntimeError(f"generator {name!r} has no owning cluster node")


def _node_payload(
    node_id: int, cluster: Cluster, collect_pairs: bool
) -> dict[str, t.Any]:
    """This node's contribution to the RunResult, pickled to the parent."""
    if node_id == MASTER_ID or (
        cluster.standby is not None and node_id == cluster.standby.node_id
    ):
        if node_id != MASTER_ID and not cluster.standby.took_over:
            # Dormant standby: the master survived, so this node has no
            # coordinator state worth shipping.
            return {"took_over": False}
        # In the standby's own process ``acting_master`` resolves to
        # the shadow master after a takeover, so a killed master's
        # payload is reconstructed here, not lost with the process.
        acting = cluster.acting_master
        mm = acting.metrics
        workload = acting.workload
        return {
            "took_over": node_id != MASTER_ID,
            "master": master_snapshot(cluster),
            "dod_trace": list(mm.dod_changes),
            "faults": list(mm.failures),
            "pairs": acting.pair_rows if collect_pairs else [],
            "tuples_generated": (
                workload.tuples_generated
                if hasattr(workload, "tuples_generated")
                else mm.tuples_ingested
            ),
        }
    if node_id == COLLECTOR_ID:
        return {
            "delays": cluster.collector.delays,
            "timeline": cluster.collector.timeline_rows(),
        }
    metrics = cluster.slave_metrics[node_id - 2]
    return {
        "snapshot": metrics.snapshot(),
        "delays": metrics.delays,
        "pairs": metrics.pair_chunks() if collect_pairs else [],
    }


def _obs_payload(node_id: int, cluster: Cluster) -> dict[str, t.Any]:
    """Observability extras every node ships: its local gauge series
    (keys are ``n<node>.<gauge>``, disjoint across children) and its
    metric-registry snapshot (``None`` when metrics are off)."""
    registry = cluster.registries.get(node_id)
    return {
        "series": (
            cluster.sampler.series_dict()
            if cluster.sampler is not None
            else None
        ),
        "metrics": registry.snapshot() if registry is not None else None,
    }


def _node_main(
    node_id: int,
    cfg: SystemConfig,
    sockets: _Sockets,
    pipes: dict[int, tuple[t.Any, t.Any]],
    workload: t.Any,
    collect_pairs: bool,
) -> None:
    """Child entry point (runs post-fork, inherits all fds)."""
    conn = pipes[node_id][1]
    try:
        # Keep only this node's socket ends.  Critical: a leaked foreign
        # fd would keep a dead peer's channel open and suppress the EOF
        # its peers rely on for failure detection.
        peers: dict[int, socket.socket] = {}
        for (a, b), (sock_a, sock_b) in sockets.items():
            if a == node_id:
                peers[b] = sock_a
                sock_b.close()
            elif b == node_id:
                peers[a] = sock_b
                sock_a.close()
            else:
                sock_a.close()
                sock_b.close()
        for other, (parent_conn, child_conn) in pipes.items():
            parent_conn.close()
            if other != node_id:
                child_conn.close()

        runtime = ThreadRuntime(time_scale=cfg.time_scale)
        # Node-local tracer: records ship to the parent over the pipe
        # and merge there — children never touch the JSONL/console
        # sinks themselves.
        tracer = (
            Tracer([PipeExporter(conn, node_id)])
            if cfg.obs.tracing
            else NULL_TRACER
        )
        transport = ProcTransport(
            node_id,
            peers,
            cfg.tuple_bytes,
            time_scale=cfg.time_scale,
            tracer=tracer if cfg.obs.trace_transport else NULL_TRACER,
            now_fn=runtime.now,
        )
        cluster = build_cluster(
            cfg,
            runtime,
            transport,
            workload=workload,
            collect_pairs=collect_pairs,
            tracer=tracer,
            local_node=node_id,
        )
        # The sampler generator is node-local: every child runs one,
        # and ``local_node`` restricts it to this node's gauges.
        sid = standby_node_id(cfg) if cfg.standby else None
        mine = [
            (name, gen)
            for name, gen in cluster.processes()
            if name == "sampler" or _owner_of(name, sid) == node_id
        ]

        conn.send(("ready", node_id))
        origin = conn.recv()
        runtime.rebase(origin)
        transport.rebase(origin)

        # The admin endpoint lives wherever the master runs.
        admin = (
            start_admin_server(cfg, cluster, runtime.now, "process")
            if node_id == MASTER_ID
            else None
        )
        try:
            for name, gen in mine:
                runtime.spawn(gen, name=name)
            # No local timeout: the parent owns the deadline and SIGKILLs
            # stragglers, which peers then observe as EOF.
            runtime.join_all()
        finally:
            if admin is not None:
                admin.close()
        # Flush the trace tail before the result: the parent treats the
        # result message as this node's end-of-stream.
        tracer.close()
        payload = _node_payload(node_id, cluster, collect_pairs)
        payload.update(_obs_payload(node_id, cluster))
        conn.send(("result", node_id, payload))
    except BaseException as error:  # noqa: BLE001 - shipped to the parent
        detail = traceback.format_exc()
        try:
            conn.send(("error", node_id, error, detail))
        except Exception:
            try:
                conn.send(("error", node_id, None, detail))
            except Exception:
                pass
    finally:
        try:
            conn.close()
        except Exception:
            pass


class ProcessBackend:
    """One OS process per cluster node (``backend="process"``).

    The only backend where slaves execute their numpy join work on
    separate cores — the GIL bounds the thread backend to one core.
    """

    name = "process"
    supports_observability = True

    def run(
        self,
        cfg: SystemConfig,
        collect_pairs: bool = False,
        workload: t.Any = None,
    ) -> RunResult:
        reject_unsupported(cfg, self.name, crash_ok=True)
        try:
            ctx = mp.get_context("fork")
        except ValueError as error:  # pragma: no cover - non-POSIX hosts
            raise ConfigError(
                "the process backend requires the 'fork' start method "
                "(POSIX only)"
            ) from error

        node_ids = [MASTER_ID, COLLECTOR_ID] + [
            slave_node_id(i) for i in range(cfg.num_slaves)
        ]
        if cfg.standby:
            node_ids.append(standby_node_id(cfg))
        # Full mesh: every unordered node pair shares one socketpair.
        # All fds exist before the first fork so every child can close
        # exactly the foreign ones.
        sockets: _Sockets = {}
        for i, a in enumerate(node_ids):
            for b in node_ids[i + 1:]:
                sockets[(a, b)] = socket.socketpair()
        pipes = {nid: ctx.Pipe() for nid in node_ids}

        procs: dict[int, t.Any] = {}
        timers: list[threading.Timer] = []
        try:
            for nid in node_ids:
                proc = ctx.Process(
                    target=_node_main,
                    args=(nid, cfg, sockets, pipes, workload, collect_pairs),
                    name=f"swjoin-node{nid}",
                    daemon=True,
                )
                procs[nid] = proc
                proc.start()
        finally:
            # The parent is pure control plane: it must hold no data
            # sockets (a parent-held fd would suppress peer EOF), and no
            # child ends of the pipes (EOF on a pipe = its child died).
            for sock_a, sock_b in sockets.values():
                sock_a.close()
                sock_b.close()
            for _, child_conn in pipes.values():
                child_conn.close()

        conns = {nid: parent_conn for nid, (parent_conn, _) in pipes.items()}
        killed: set[int] = set()
        injected: list[dict[str, t.Any]] = []
        traces: dict[int, list[dict[str, t.Any]]] = {}
        try:
            origin = self._start_barrier(conns, procs)
            deadline = origin + cfg.run_seconds * cfg.time_scale * 4.0 + 60.0
            timers = self._arm_crashes(cfg, origin, procs, killed, injected)
            payloads = self._collect(conns, procs, killed, deadline, traces)
        finally:
            for timer in timers:
                timer.cancel()
            for proc in procs.values():
                if proc.is_alive():
                    proc.kill()
                proc.join(timeout=10.0)
            for conn in conns.values():
                conn.close()

        return self._assemble(cfg, payloads, injected, collect_pairs, traces)

    # -- run phases ----------------------------------------------------------
    def _start_barrier(
        self, conns: dict[int, t.Any], procs: dict[int, t.Any]
    ) -> float:
        """Wait for every child's "ready", then broadcast the shared
        clock origin (slightly in the future, so nobody starts late)."""
        for nid, conn in conns.items():
            if not conn.poll(timeout=SETUP_TIMEOUT):
                raise DeadlockError(
                    f"node {nid} never became ready (setup wedged)"
                )
            msg = conn.recv()
            if msg[0] == "error":
                self._raise_node_error(msg)
            if msg[0] != "ready":
                raise RuntimeError(
                    f"node {nid} sent {msg[0]!r} before the start barrier"
                )
        origin = time.monotonic() + STARTUP_GRACE
        for conn in conns.values():
            conn.send(origin)
        return origin

    def _arm_crashes(
        self,
        cfg: SystemConfig,
        origin: float,
        procs: dict[int, t.Any],
        killed: set[int],
        injected: list[dict[str, t.Any]],
    ) -> list[threading.Timer]:
        """One timer per planned crash: SIGKILL the victim at the
        scaled wall time.  EOF on its sockets is the failure signal."""
        timers = []
        for crash in cfg.faults.crashes:
            nid = (
                MASTER_ID
                if crash.targets_master
                else slave_node_id(crash.slave)
            )
            victim = procs[nid]

            def fire(nid: int = nid, victim: t.Any = victim,
                     at: float = crash.at) -> None:
                if not victim.is_alive():
                    return  # finished before the crash time: nothing fired
                killed.add(nid)
                injected.append(
                    {"action": "crash", "node": nid, "t": at, "info": at}
                )
                victim.kill()

            delay = (origin - time.monotonic()) + crash.at * cfg.time_scale
            timer = threading.Timer(max(0.0, delay), fire)
            timer.daemon = True
            timers.append(timer)
            timer.start()
        return timers

    def _collect(
        self,
        conns: dict[int, t.Any],
        procs: dict[int, t.Any],
        killed: set[int],
        deadline: float,
        traces: dict[int, list[dict[str, t.Any]]],
    ) -> dict[int, dict[str, t.Any]]:
        """Gather result payloads until every node reported or died.

        ``("trace", node_id, batch)`` messages stream in throughout the
        run and accumulate into *traces*; a node killed by the fault
        plane keeps every batch it flushed before dying."""
        payloads: dict[int, dict[str, t.Any]] = {}
        pending = dict(conns)
        while pending:
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                for proc in procs.values():
                    if proc.is_alive():
                        proc.kill()
                raise DeadlockError(
                    f"node processes never finished: {sorted(pending)}"
                )
            ready = mp_connection.wait(
                list(pending.values()), timeout=min(remaining, 1.0)
            )
            for conn in ready:
                nid = next(n for n, c in pending.items() if c is conn)
                try:
                    msg = conn.recv()
                except (EOFError, OSError):
                    # Child gone without a payload: expected if and only
                    # if the fault plane killed it.
                    del pending[nid]
                    if nid not in killed:
                        raise RuntimeError(
                            f"node {nid} process died without reporting "
                            "a result or an error"
                        ) from None
                    continue
                if msg[0] == "error":
                    self._raise_node_error(msg)
                if msg[0] == "trace":
                    traces.setdefault(nid, []).extend(msg[2])
                    continue
                del pending[nid]
                payloads[nid] = msg[2]
        return payloads

    @staticmethod
    def _raise_node_error(msg: tuple) -> t.NoReturn:
        _, nid, error, detail = msg
        if isinstance(error, BaseException):
            raise RuntimeError(
                f"node {nid} process failed:\n{detail}"
            ) from error
        raise RuntimeError(f"node {nid} process failed:\n{detail}")

    @staticmethod
    def _finish_trace(
        cfg: SystemConfig, traces: dict[int, list[dict[str, t.Any]]]
    ) -> list[dict[str, t.Any]] | None:
        """Merge the per-node trace buffers and drive the configured
        sinks; returns the merged records when ``trace_memory`` asked
        for them on the RunResult."""
        if not cfg.obs.tracing:
            return None
        merged = merge_records(traces)
        sinks: list[Exporter] = []
        if cfg.obs.trace_path:
            sinks.append(JsonlExporter(cfg.obs.trace_path, meta=trace_meta(cfg)))
        if cfg.obs.console_summary:
            sinks.append(ConsoleSummaryExporter())
        replay_records(merged, sinks)
        return merged if cfg.obs.trace_memory else None

    def _assemble(
        self,
        cfg: SystemConfig,
        payloads: dict[int, dict[str, t.Any]],
        injected: list[dict[str, t.Any]],
        collect_pairs: bool,
        traces: dict[int, list[dict[str, t.Any]]],
    ) -> RunResult:
        master = payloads.get(MASTER_ID)
        if cfg.standby:
            standby_payload = payloads.get(standby_node_id(cfg))
            if standby_payload is not None and standby_payload.get("took_over"):
                # The master was killed mid-run; the acting master's
                # payload carries the authoritative coordinator state.
                master = standby_payload
        if master is None:
            raise RuntimeError(
                "master process produced no result payload and no standby "
                "took over"
            )
        collector = payloads[COLLECTOR_ID]
        gate = MeasurementWindow(cfg.warmup_seconds, cfg.run_seconds)

        merged = DelayStats()
        snapshots: list[dict[str, t.Any]] = []
        replicated = cfg.replication != "off"
        # Mirrors collect_result: the master's banked pairs come first,
        # and a slave the master fenced contributes none — its output
        # either was banked or re-emerges from the backup's replay.
        pair_chunks: list[np.ndarray] = (
            list(master["pairs"]) if replicated and collect_pairs else []
        )
        fenced = set(master["master"].get("dead_slaves", ()))
        for i in range(cfg.num_slaves):
            nid = slave_node_id(i)
            payload = payloads.get(nid)
            if payload is None:
                # Killed mid-run: its window state (and metrics) died
                # with it — without replication, a degraded run, same
                # as the DES fault plane.
                snapshots.append(SlaveMetrics(nid, gate).snapshot())
                continue
            merged.merge(payload["delays"])
            snapshots.append(payload["snapshot"])
            if not (replicated and nid in fenced):
                pair_chunks.extend(payload["pairs"])

        pairs: np.ndarray | None = None
        if collect_pairs:
            pairs = (
                np.concatenate(pair_chunks)
                if pair_chunks
                else np.empty((0, 2), dtype=np.int64)
            )

        # Per-node gauge series carry disjoint "n<node>.<gauge>" keys,
        # so the cluster view is a plain dict union.
        series: dict[str, list[tuple[float, float]]] | None = None
        if cfg.obs.sample_period is not None:
            series = {}
            for nid in sorted(payloads):
                node_series = payloads[nid].get("series")
                if node_series:
                    series.update(node_series)
        node_metrics: dict[int, dict[str, t.Any]] | None = None
        if cfg.obs.metrics_enabled:
            node_metrics = {
                nid: payloads[nid]["metrics"]
                for nid in sorted(payloads)
                if payloads[nid].get("metrics") is not None
            }

        return RunResult(
            cfg=cfg,
            duration=cfg.run_seconds - cfg.warmup_seconds,
            delays=merged,
            collector_delays=collector["delays"],
            slaves=snapshots,
            master=master["master"],
            dod_trace=master["dod_trace"],
            delay_timeline=collector["timeline"],
            tuples_generated=master["tuples_generated"],
            pairs=pairs,
            trace=self._finish_trace(cfg, traces),
            series=series,
            node_metrics=node_metrics,
            faults=master["faults"],
            injected_faults=injected,
        )
