"""Simulated-time runtime backend."""

from __future__ import annotations

import typing as t

from repro.simul.events import Event, Timeout
from repro.simul.kernel import Simulator
from repro.simul.process import Process


class SimRuntime:
    """Adapts the DES kernel to the :class:`~repro.runtime.base.Runtime`
    protocol.  Awaitables are kernel events."""

    def __init__(self, sim: Simulator) -> None:
        self.sim = sim

    def now(self) -> float:
        return self.sim.now

    def sleep(self, delay: float) -> Timeout:
        return self.sim.timeout(max(0.0, delay))

    def sleep_until(self, deadline: float) -> Timeout:
        return self.sim.timeout(max(0.0, deadline - self.sim.now))

    def cpu(self, cost: float) -> Timeout:
        return self.sim.timeout(max(0.0, cost))

    def spawn(self, generator: t.Generator, name: str = "") -> Process:
        return self.sim.process(generator, name=name)

    def event(self, name: str = "") -> Event:
        return self.sim.event(name)

    def make_lock(self, name: str = ""):
        from repro.runtime.sync import SimLock

        return SimLock(self.sim, name=name)

    def make_queue(self, name: str = ""):
        from repro.runtime.sync import SimQueue

        return SimQueue(self.sim, name=name)
