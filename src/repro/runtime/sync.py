"""Backend-agnostic synchronization primitives for node code.

A node generator uses a lock to serialize join-state access between its
comm and join processes, and a queue to hand work tokens from comm to
join.  Both exist in a simulated and a threaded flavour with the same
yield-style API:

* ``yield lock.acquire()`` / ``lock.release()``
* ``yield q.put(item)`` / ``item = yield q.get()``
"""

from __future__ import annotations

import queue as _queue
import threading
import typing as t

from repro.runtime.thread import Thunk
from repro.simul.kernel import Simulator
from repro.simul.resources import Resource, Store


class SimLock:
    """Mutex on the simulation kernel."""

    def __init__(self, sim: Simulator, name: str = "") -> None:
        self._resource = Resource(sim, capacity=1, name=name)

    def acquire(self) -> t.Any:
        return self._resource.request()

    def release(self) -> None:
        self._resource.release()


class SimQueue:
    """Unbounded FIFO on the simulation kernel."""

    def __init__(self, sim: Simulator, name: str = "") -> None:
        self._store = Store(sim, name=name)

    def put(self, item: t.Any) -> t.Any:
        return self._store.put(item)

    def get(self) -> t.Any:
        return self._store.get()

    def __len__(self) -> int:
        return len(self._store)


class ThreadLock:
    """Mutex for the thread backend."""

    def __init__(self, name: str = "") -> None:
        self._lock = threading.Lock()

    def acquire(self) -> Thunk:
        return Thunk(self._lock.acquire)

    def release(self) -> None:
        self._lock.release()


class ThreadQueue:
    """Unbounded FIFO for the thread backend."""

    def __init__(self, name: str = "") -> None:
        self._queue: _queue.Queue = _queue.Queue()

    def put(self, item: t.Any) -> Thunk:
        return Thunk(lambda: self._queue.put(item))

    def get(self) -> Thunk:
        return Thunk(self._queue.get)

    def __len__(self) -> int:
        return self._queue.qsize()
