"""Wall-clock runtime backend: node generators driven by real threads.

Used by the "live cluster" examples: the very same master/slave/collector
generators that run on the DES kernel are executed here on one thread
per node, with :class:`~repro.net.thread_transport.ThreadTransport`
providing real queue-based rendezvous channels.

``time_scale`` compresses time: with ``time_scale=0.1`` a simulated
second lasts 100 wall milliseconds, so a 60-second scenario demos in 6.
"""

from __future__ import annotations

import threading
import time
import typing as t


class Thunk:
    """An awaitable for the thread backend: a blocking callable."""

    __slots__ = ("fn",)

    def __init__(self, fn: t.Callable[[], t.Any]) -> None:
        self.fn = fn

    def run(self) -> t.Any:
        return self.fn()


class ThreadHandle:
    """Join handle for a spawned node thread."""

    def __init__(self, thread: threading.Thread) -> None:
        self.thread = thread
        self.error: BaseException | None = None

    def join(self, timeout: float | None = None) -> None:
        self.thread.join(timeout)
        if self.error is not None:
            raise self.error

    @property
    def is_alive(self) -> bool:
        return self.thread.is_alive()


class ThreadRuntime:
    """Runtime backend executing node generators on real threads."""

    def __init__(self, time_scale: float = 1.0) -> None:
        if time_scale <= 0:
            raise ValueError("time_scale must be positive")
        self.time_scale = time_scale
        self._origin = time.monotonic()
        self.handles: list[ThreadHandle] = []

    # -- Runtime protocol ---------------------------------------------------
    def now(self) -> float:
        return (time.monotonic() - self._origin) / self.time_scale

    def sleep(self, delay: float) -> Thunk:
        wall = max(0.0, delay) * self.time_scale
        return Thunk(lambda: time.sleep(wall))

    def sleep_until(self, deadline: float) -> Thunk:
        def fn() -> None:
            remaining = (deadline - self.now()) * self.time_scale
            if remaining > 0:
                time.sleep(remaining)

        return Thunk(fn)

    def cpu(self, cost: float) -> Thunk:
        return self.sleep(cost)

    def spawn(self, generator: t.Generator, name: str = "") -> ThreadHandle:
        handle = ThreadHandle(
            threading.Thread(
                target=self._drive, args=(generator,), name=name, daemon=True
            )
        )
        # Late binding: the drive loop needs the handle to report errors.
        handle.thread._repro_handle = handle  # type: ignore[attr-defined]
        self.handles.append(handle)
        handle.thread.start()
        return handle

    # -- driver ---------------------------------------------------------------
    @staticmethod
    def _drive(generator: t.Generator) -> None:
        handle: ThreadHandle = threading.current_thread()._repro_handle  # type: ignore[attr-defined]
        try:
            value: t.Any = None
            while True:
                op = generator.send(value)
                if not hasattr(op, "run"):
                    raise TypeError(
                        f"node generator yielded {op!r}; thread backend "
                        "requires awaitables with a run() method"
                    )
                value = op.run()
        except StopIteration:
            pass
        except BaseException as error:  # noqa: BLE001 - reported on join
            handle.error = error

    def join_all(self, timeout: float | None = None) -> None:
        """Wait for every spawned node; re-raises the first node error."""
        for handle in self.handles:
            handle.join(timeout)

    def make_lock(self, name: str = ""):
        from repro.runtime.sync import ThreadLock

        return ThreadLock(name=name)

    def make_queue(self, name: str = ""):
        from repro.runtime.sync import ThreadQueue

        return ThreadQueue(name=name)
