"""Wall-clock runtime backend: node generators driven by real threads.

Used by the "live cluster" examples: the very same master/slave/collector
generators that run on the DES kernel are executed here on one thread
per node, with :class:`~repro.net.thread_transport.ThreadTransport`
providing real queue-based rendezvous channels.

``time_scale`` compresses time: with ``time_scale=0.1`` a simulated
second lasts 100 wall milliseconds, so a 60-second scenario demos in 6.
"""

from __future__ import annotations

import threading
import time
import typing as t


class KilledNode(BaseException):
    """Raised inside a node generator when its node was crash-injected.

    A ``BaseException`` so it can't be swallowed by a broad ``except
    Exception`` in node code: fail-stop means the generator unwinds
    immediately.  The drive loop treats it as clean termination."""


class Thunk:
    """An awaitable for the thread backend: a blocking callable."""

    __slots__ = ("fn",)

    def __init__(self, fn: t.Callable[[], t.Any]) -> None:
        self.fn = fn

    def run(self) -> t.Any:
        return self.fn()


class ThreadHandle:
    """Join handle for a spawned node thread."""

    def __init__(self, thread: threading.Thread) -> None:
        self.thread = thread
        self.error: BaseException | None = None

    def join(self, timeout: float | None = None) -> None:
        self.thread.join(timeout)
        if self.error is not None:
            raise self.error

    @property
    def is_alive(self) -> bool:
        return self.thread.is_alive()


class ThreadRuntime:
    """Runtime backend executing node generators on real threads.

    *origin* is the ``time.monotonic()`` value corresponding to modeled
    t=0 (defaults to "now").  The process backend passes a shared origin
    so every node process agrees on the modeled clock —
    ``CLOCK_MONOTONIC`` is system-wide on Linux.
    """

    def __init__(
        self, time_scale: float = 1.0, origin: float | None = None
    ) -> None:
        if time_scale <= 0:
            raise ValueError("time_scale must be positive")
        self.time_scale = time_scale
        self._origin = time.monotonic() if origin is None else origin
        self.handles: list[ThreadHandle] = []

    def rebase(self, origin: float) -> None:
        """Move modeled t=0 to the given ``time.monotonic()`` value.

        Only valid before any generator is spawned (the process backend
        rebases after its start barrier, once every node is built)."""
        if self.handles:
            raise RuntimeError("cannot rebase a runtime with live threads")
        self._origin = origin

    # -- Runtime protocol ---------------------------------------------------
    def now(self) -> float:
        return (time.monotonic() - self._origin) / self.time_scale

    def sleep(self, delay: float) -> Thunk:
        wall = max(0.0, delay) * self.time_scale
        return Thunk(lambda: time.sleep(wall))

    def sleep_until(self, deadline: float) -> Thunk:
        def fn() -> None:
            remaining = (deadline - self.now()) * self.time_scale
            if remaining > 0:
                time.sleep(remaining)

        return Thunk(fn)

    def cpu(self, cost: float) -> Thunk:
        return self.sleep(cost)

    def spawn(self, generator: t.Generator, name: str = "") -> ThreadHandle:
        handle = ThreadHandle(
            threading.Thread(
                target=self._drive, args=(generator,), name=name, daemon=True
            )
        )
        # Late binding: the drive loop needs the handle to report errors.
        handle.thread._repro_handle = handle  # type: ignore[attr-defined]
        self.handles.append(handle)
        handle.thread.start()
        return handle

    # -- driver ---------------------------------------------------------------
    @staticmethod
    def _drive(generator: t.Generator) -> None:
        handle: ThreadHandle = threading.current_thread()._repro_handle  # type: ignore[attr-defined]
        try:
            value: t.Any = None
            while True:
                op = generator.send(value)
                if not hasattr(op, "run"):
                    raise TypeError(
                        f"node generator yielded {op!r}; thread backend "
                        "requires awaitables with a run() method"
                    )
                value = op.run()
        except StopIteration:
            pass
        except KilledNode:
            pass  # fail-stop injection: the node is simply gone
        except BaseException as error:  # noqa: BLE001 - reported on join
            handle.error = error

    def join_all(self, timeout: float | None = None) -> None:
        """Wait for every spawned node; re-raises the first node error."""
        for handle in self.handles:
            handle.join(timeout)

    def make_lock(self, name: str = ""):
        from repro.runtime.sync import ThreadLock

        return ThreadLock(name=name)

    def make_queue(self, name: str = ""):
        from repro.runtime.sync import ThreadQueue

        return ThreadQueue(name=name)


def reject_unsupported(
    cfg: t.Any, backend: str, crash_ok: bool = False
) -> None:
    """Fail fast on config features a wall-clock backend cannot honor.

    The fault plane's message/slowdown injection hangs off the DES
    transport; the wall-clock backends support only ``crash:`` specs
    (*crash_ok*) — the thread backend reaps the victim's threads, the
    process backend SIGKILLs the victim's OS process.  (Observability
    is supported everywhere since the tracer went thread-safe: records
    are stamped with a per-node ``seq`` under a lock.)
    """
    from repro.errors import ConfigError

    if not cfg.faults.enabled:
        return
    if not crash_ok:
        raise ConfigError(
            f"the {backend} backend does not support fault injection; "
            "use backend='sim' or backend='process' (crash faults only)"
        )
    unsupported = [
        f.spec() for f in (*cfg.faults.messages, *cfg.faults.slowdowns)
    ]
    if unsupported:
        raise ConfigError(
            f"the {backend} backend supports only crash: fault specs "
            f"(the victim's OS process is killed); unsupported: "
            f"{', '.join(unsupported)} — use backend='sim'"
        )


class _JoinLoopVictim:
    """Kill handle for a crash-injected slave's join-loop thread.

    The transport's ``kill_node`` wakes the victim's *comm* thread (it
    is blocked in a channel op), but the join loop blocks on the
    slave-local work queue, which the fault plane cannot reach — so the
    kill pushes the loop's own halt token instead.
    """

    def __init__(self, slave: t.Any) -> None:
        self.slave = slave

    def kill(self, reason: str) -> None:
        from repro.core.slave import HALT_TOKEN

        self.slave.work_queue.put(HALT_TOKEN).run()


class ThreadBackend:
    """Wall-clock backend: one OS thread per node generator
    (``backend="thread"``).

    Runs the very same generators as the DES kernel, with
    :class:`~repro.net.thread_transport.ThreadTransport` rendezvous
    channels.  Time runs compressed by ``cfg.time_scale``.
    """

    name = "thread"
    supports_observability = True

    def run(
        self,
        cfg: t.Any,
        collect_pairs: bool = False,
        workload: t.Any = None,
    ) -> t.Any:
        # Local imports: repro.runtime.thread must stay importable
        # without the core layer (proc_transport pulls in Thunk).
        from repro.core.cluster import build_cluster, trace_meta
        from repro.core.system import (
            collect_result,
            slave_node_id,
            start_admin_server,
        )
        from repro.errors import DeadlockError
        from repro.net.thread_transport import ThreadTransport
        from repro.obs.tracer import NULL_TRACER, build_tracer

        reject_unsupported(cfg, self.name, crash_ok=True)
        runtime = ThreadRuntime(time_scale=cfg.time_scale)
        tracer = build_tracer(cfg.obs, meta=trace_meta(cfg))
        transport = ThreadTransport(
            cfg.tuple_bytes,
            time_scale=cfg.time_scale,
            tracer=tracer if cfg.obs.trace_transport else NULL_TRACER,
            now_fn=runtime.now,
        )
        injector = None
        if cfg.faults.enabled:
            from repro.faults.injector import FaultInjector

            injector = FaultInjector(
                cfg.faults,
                [slave_node_id(i) for i in range(cfg.num_slaves)],
                cfg.dist_epoch,
            )
        cluster = build_cluster(
            cfg,
            runtime,
            transport,
            workload=workload,
            collect_pairs=collect_pairs,
            tracer=tracer,
            faults=injector,
        )
        admin = start_admin_server(cfg, cluster, runtime.now, self.name)
        for name, gen in cluster.processes():
            runtime.spawn(gen, name=name)
        if injector is not None:
            victims_by_node = {
                slave.node_id: [_JoinLoopVictim(slave)]
                for slave in cluster.slaves
            }
            for nid, crash in injector.crash_targets():
                runtime.spawn(
                    injector.crash_process(
                        nid,
                        crash,
                        runtime,
                        transport,
                        victims_by_node.get(nid, ()),
                    ),
                    name=f"fault.crash{nid}",
                )
        # The modeled horizon plus slack for real compute overruns: the
        # generators' numpy work takes however long it takes, regardless
        # of the compressed clock.
        budget = cfg.run_seconds * cfg.time_scale * 4.0 + 60.0
        try:
            runtime.join_all(timeout=budget)
        finally:
            if admin is not None:
                admin.close()
        stuck = [h.thread.name for h in runtime.handles if h.is_alive]
        if stuck:
            raise DeadlockError(f"node threads never finished: {stuck}")
        return collect_result(cfg, cluster, collect_pairs)
