"""True multi-host TCP backend: one worker process per cluster node,
connected over real sockets.

``backend="tcp"`` runs the same per-node worker logic as the process
backend, but over a full-mesh of TCP connections established with the
:mod:`repro.net.tcp_transport` handshake instead of pre-forked
socketpairs — so nodes can live on *different hosts*.  Topology:

* The launcher (``swjoin run --backend tcp``) knows every node's
  listen address.  Remote nodes come from the static ``--peers`` map
  (``NODE=HOST:PORT``, one ``swjoin worker --listen HOST:PORT`` per
  entry); every node *not* in the map is forked locally on an
  ephemeral loopback port, so the single-host default needs no setup
  and CI drives the whole topology over loopback.
* The launcher opens one **control** connection per node (handshake
  kind ``KIND_CONTROL``) and ships the pickled
  :class:`WorkerJob` — config, node id, the full address map, the
  workload.  The control plane is trusted: it only ever connects a
  launcher to workers it started itself (pickle is not exposed to the
  data plane, which speaks the versioned wire codec only).
* Each worker then builds the **peer mesh**: it connects to every node
  with a *greater* id (bounded retry + deterministic backoff) and
  accepts from every lesser id, validating each handshake.  A peer
  connection arriving before the worker knows its own node id is
  stashed and answered once the job assigns it.
* Ready/start mirrors the process backend: all workers report ready,
  the launcher broadcasts the shared clock origin.  Locally forked
  workers share the launcher's ``time.monotonic()`` origin; a remote
  worker receives ``None`` and anchors ``t=0`` to its own clock plus
  :data:`~repro.runtime.process.STARTUP_GRACE` (skew is bounded by
  control-message latency, and correctness never depends on clock
  agreement — the protocol is message-driven).

Fault machinery is reused unchanged from PR 3/5: a crash fault SIGKILLs
the (local) victim worker, its peers observe EOF → ``NodeDown``, and
the master's timeout/fencing/backup-replay path restores the run
losslessly under ``--replication checkpoint+log``.  Crash faults that
name a *remote* node are rejected up front — the launcher can only
signal processes it owns.

Each worker serves exactly one run and exits; ``swjoin worker`` is a
one-shot process by design (restart it per run, e.g. under a loop or a
supervisor), which keeps run isolation trivial.
"""

from __future__ import annotations

import multiprocessing as mp
import pickle
import socket
import threading
import time
import traceback
import typing as t
from dataclasses import dataclass
from queue import Empty, Queue

from repro.config import SystemConfig
from repro.core.cluster import (
    COLLECTOR_ID,
    MASTER_ID,
    build_cluster,
    slave_node_id,
    standby_node_id,
)
from repro.core.system import RunResult, start_admin_server
from repro.errors import ConfigError, ConnectError, DeadlockError, WireError
from repro.net.proc_transport import _EOF, _TIMED_OUT, FrameReader, write_frame
from repro.net.tcp_transport import (
    HANDSHAKE_TIMEOUT,
    KIND_CONTROL,
    KIND_PEER,
    TcpTransport,
    connect_with_retry,
    read_hello,
    send_hello,
)
from repro.obs.tracer import NULL_TRACER, Tracer
from repro.runtime.process import (
    PipeExporter,
    ProcessBackend,
    SETUP_TIMEOUT,
    STARTUP_GRACE,
    _node_payload,
    _obs_payload,
    _owner_of,
)
from repro.runtime.thread import ThreadRuntime, reject_unsupported
from repro.simul.rng import RngRegistry

#: Listen backlog: the whole mesh may connect while a worker is busy.
_BACKLOG = 16


def parse_hostport(addr: str) -> tuple[str, int]:
    """Parse ``HOST:PORT`` (the CLI/--peers address syntax)."""
    host, sep, port = addr.rpartition(":")
    if not sep or not host or not port.isdigit() or not 0 <= int(port) < 65536:
        raise ConfigError(f"address must be HOST:PORT, got {addr!r}")
    return host, int(port)


@dataclass(frozen=True)
class WorkerJob:
    """Everything a worker needs to run one cluster node."""

    node_id: int
    cfg: SystemConfig
    #: node id -> (host, port) listen address, for every node.
    addresses: dict[int, tuple[str, int]]
    collect_pairs: bool
    workload: t.Any


class ControlConn:
    """Pickled-object control plane over one length-prefixed stream.

    Gives the launcher<->worker link the same ``send(obj)``/``recv()``
    surface as a multiprocessing pipe, so :class:`PipeExporter` and the
    process backend's payload protocol work verbatim over TCP.
    """

    def __init__(self, sock: socket.socket) -> None:
        self.sock = sock
        self._reader = FrameReader(sock)
        self._lock = threading.Lock()

    def send(self, obj: t.Any) -> None:
        payload = pickle.dumps(obj)
        with self._lock:
            write_frame(self.sock, payload)

    def recv(self, timeout: float | None = None) -> t.Any:
        frame = self._reader.read_frame(timeout)
        if frame is _EOF:
            raise EOFError("control connection closed")
        if frame is _TIMED_OUT:
            raise TimeoutError(f"no control message within {timeout:g}s")
        return pickle.loads(frame)

    def close(self) -> None:
        try:
            self.sock.shutdown(socket.SHUT_RDWR)
        except OSError:
            pass
        self.sock.close()


# -- worker side -------------------------------------------------------------
def _await_control(
    listen_sock: socket.socket,
) -> tuple[ControlConn, dict[int, socket.socket]]:
    """Accept until the launcher's control connection arrives.

    Peer-mesh connections may land first (another node already got its
    job): they are stashed *unanswered* — the hello reply needs our
    node id, which only the job carries.  Garbage connections (port
    scans, wrong version) are dropped without killing the worker.
    """
    stash: dict[int, socket.socket] = {}
    while True:
        conn, _ = listen_sock.accept()
        try:
            kind, node_id = read_hello(conn, HANDSHAKE_TIMEOUT)
        except (WireError, ConnectError, OSError):
            conn.close()
            continue
        if kind == KIND_CONTROL:
            send_hello(conn, KIND_CONTROL, -1)
            conn.settimeout(None)
            return ControlConn(conn), stash
        old = stash.pop(node_id, None)
        if old is not None:
            old.close()  # the connector abandoned it and retried
        stash[node_id] = conn


def _establish_mesh(
    node_id: int,
    cfg: SystemConfig,
    addresses: dict[int, tuple[str, int]],
    listen_sock: socket.socket,
    stash: dict[int, socket.socket],
) -> dict[int, socket.socket]:
    """Build this node's full-mesh peer sockets.

    Mesh rule: the lower node id connects, the higher accepts — each
    pair gets exactly one connection with no simultaneous-open races.
    Backoff jitter comes from a per-directed-pair RNG substream, so
    the retry schedule is a pure function of ``(seed, src, dst)``.
    """
    lower = sorted(n for n in addresses if n < node_id)
    higher = sorted(n for n in addresses if n > node_id)
    peers: dict[int, socket.socket] = {}

    for nid, sock in list(stash.items()):
        if nid in lower and nid not in peers:
            try:
                send_hello(sock, KIND_PEER, node_id)
                sock.settimeout(None)
                peers[nid] = sock
                continue
            except OSError:
                pass  # connector gave up on this attempt; it will retry
        sock.close()

    accept_errors: list[BaseException] = []

    def accept_lower() -> None:
        want = set(lower) - set(peers)
        try:
            while want:
                listen_sock.settimeout(SETUP_TIMEOUT)
                conn, _ = listen_sock.accept()
                try:
                    kind, nid = read_hello(conn, HANDSHAKE_TIMEOUT)
                except (WireError, ConnectError, OSError):
                    conn.close()
                    continue
                if kind != KIND_PEER or nid not in want:
                    conn.close()
                    continue
                send_hello(conn, KIND_PEER, node_id)
                conn.settimeout(None)
                peers[nid] = conn
                want.discard(nid)
        except OSError as error:
            accept_errors.append(error)

    acceptor = threading.Thread(
        target=accept_lower, name=f"tcp-accept:n{node_id}", daemon=True
    )
    acceptor.start()

    rng = RngRegistry(cfg.seed)
    for nid in higher:
        peers[nid] = connect_with_retry(
            addresses[nid],
            KIND_PEER,
            node_id,
            rng=rng.get(f"tcp.backoff.{node_id}->{nid}"),
            expect_node=nid,
        )
    acceptor.join(timeout=SETUP_TIMEOUT)
    missing = sorted(set(lower) - set(peers))
    if acceptor.is_alive() or accept_errors or missing:
        raise ConnectError(
            f"node {node_id} never completed its peer mesh: waiting on "
            f"nodes {missing or sorted(lower)} ({accept_errors or 'timeout'})"
        )
    return peers


def worker_main(listen_sock: socket.socket) -> None:
    """Serve exactly one cluster node over *listen_sock*.

    Mirrors the process backend's ``_node_main`` with the pipe replaced
    by a :class:`ControlConn` and the inherited socketpairs replaced by
    the handshaken TCP mesh.  Errors (including setup failures) ship to
    the launcher as ``("error", node_id, exception, traceback)``.
    """
    listen_sock.listen(_BACKLOG)
    control, stash = _await_control(listen_sock)
    node_id = -1
    transport = None
    try:
        msg = control.recv(timeout=SETUP_TIMEOUT)
        if msg[0] != "job":
            raise RuntimeError(f"expected a job, got {msg[0]!r}")
        job: WorkerJob = msg[1]
        node_id = job.node_id
        cfg = job.cfg
        peers = _establish_mesh(
            node_id, cfg, job.addresses, listen_sock, stash
        )

        runtime = ThreadRuntime(time_scale=cfg.time_scale)
        tracer = (
            Tracer([PipeExporter(control, node_id)])
            if cfg.obs.tracing
            else NULL_TRACER
        )
        transport = TcpTransport(
            node_id,
            peers,
            cfg.tuple_bytes,
            time_scale=cfg.time_scale,
            tracer=tracer if cfg.obs.trace_transport else NULL_TRACER,
            now_fn=runtime.now,
        )
        cluster = build_cluster(
            cfg,
            runtime,
            transport,
            workload=job.workload,
            collect_pairs=job.collect_pairs,
            tracer=tracer,
            local_node=node_id,
        )
        registry = cluster.registries.get(node_id)
        if registry is not None:
            transport.attach_registry(registry)
        sid = standby_node_id(cfg) if cfg.standby else None
        mine = [
            (name, gen)
            for name, gen in cluster.processes()
            if name == "sampler" or _owner_of(name, sid) == node_id
        ]

        control.send(("ready", node_id))
        msg = control.recv(timeout=SETUP_TIMEOUT)
        if msg[0] != "start":
            raise RuntimeError(f"expected the start barrier, got {msg[0]!r}")
        origin = msg[1]
        if origin is None:
            # Remote host: no shared monotonic clock.  Anchor t=0 to
            # our own clock; the protocol is message-driven, so only
            # wall-time *reporting* shifts by the (bounded) skew.
            origin = time.monotonic() + STARTUP_GRACE
        runtime.rebase(origin)
        transport.rebase(origin)

        admin = (
            start_admin_server(cfg, cluster, runtime.now, "tcp")
            if node_id == MASTER_ID
            else None
        )
        try:
            for name, gen in mine:
                runtime.spawn(gen, name=name)
            runtime.join_all()
        finally:
            if admin is not None:
                admin.close()
        tracer.close()
        payload = _node_payload(node_id, cluster, job.collect_pairs)
        payload.update(_obs_payload(node_id, cluster))
        payload["tcp"] = transport.pair_stats()
        control.send(("result", node_id, payload))
    except BaseException as error:  # noqa: BLE001 - shipped to the launcher
        detail = traceback.format_exc()
        try:
            control.send(("error", node_id, error, detail))
        except Exception:
            try:
                control.send(("error", node_id, None, detail))
            except Exception:
                pass
    finally:
        if transport is not None:
            transport.close()
        control.close()


def serve_worker(host: str, port: int) -> int:
    """``swjoin worker`` entry: serve one run on ``host:port``, exit.

    Binding port 0 picks an ephemeral port; the bound address is
    announced on stdout either way so launch scripts can scrape it.
    """
    listen_sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
    listen_sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
    listen_sock.bind((host, port))
    # Listen before announcing: the banner is the "safe to connect"
    # signal for launch scripts scraping stdout.
    listen_sock.listen(_BACKLOG)
    bound_host, bound_port = listen_sock.getsockname()[:2]
    print(f"swjoin worker listening on {bound_host}:{bound_port}", flush=True)
    try:
        worker_main(listen_sock)
    finally:
        listen_sock.close()
    return 0


def _local_worker(
    node_id: int, listeners: dict[int, socket.socket]
) -> None:
    """Forked-child entry for a node with no ``--peers`` entry."""
    own = listeners[node_id]
    # Leaked foreign listen fds would mask peer death: close them.
    for nid, sock in listeners.items():
        if nid != node_id:
            sock.close()
    try:
        worker_main(own)
    finally:
        own.close()


# -- launcher side -----------------------------------------------------------
class TcpBackend(ProcessBackend):
    """One worker per cluster node over TCP (``backend="tcp"``).

    Inherits the process backend's crash timers, error surfacing, trace
    merging and result assembly; replaces fork-inherited socketpairs
    and pipes with handshaken TCP connections so workers may live on
    other hosts.
    """

    name = "tcp"
    supports_observability = True

    def run(
        self,
        cfg: SystemConfig,
        collect_pairs: bool = False,
        workload: t.Any = None,
    ) -> RunResult:
        reject_unsupported(cfg, self.name, crash_ok=True)
        try:
            ctx = mp.get_context("fork")
        except ValueError as error:  # pragma: no cover - non-POSIX hosts
            raise ConfigError(
                "the tcp backend requires the 'fork' start method for "
                "its local workers (POSIX only)"
            ) from error

        node_ids = [MASTER_ID, COLLECTOR_ID] + [
            slave_node_id(i) for i in range(cfg.num_slaves)
        ]
        if cfg.standby:
            node_ids.append(standby_node_id(cfg))
        remote = {
            nid: parse_hostport(addr) for nid, addr in cfg.tcp_peers
        }
        unknown = sorted(set(remote) - set(node_ids))
        if unknown:
            raise ConfigError(
                f"--peers names nodes {unknown} outside this cluster "
                f"(valid node ids: {node_ids})"
            )
        for crash in cfg.faults.crashes:
            victim = (
                MASTER_ID
                if crash.targets_master
                else slave_node_id(crash.slave)
            )
            if victim in remote:
                raise ConfigError(
                    f"crash fault targets remote node {victim}: the "
                    "launcher can only SIGKILL local workers"
                )

        # Every node without a --peers entry forks locally on an
        # ephemeral port.  Listen sockets are bound before the first
        # fork so the launcher can connect before a child reaches
        # accept (the kernel backlog holds the connection).
        local_ids = [nid for nid in node_ids if nid not in remote]
        listeners: dict[int, socket.socket] = {}
        addresses: dict[int, tuple[str, int]] = dict(remote)
        for nid in local_ids:
            sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
            sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
            sock.bind((cfg.tcp_host, 0))
            sock.listen(_BACKLOG)
            listeners[nid] = sock
            addresses[nid] = sock.getsockname()[:2]

        procs: dict[int, t.Any] = {}
        timers: list[threading.Timer] = []
        try:
            for nid in local_ids:
                proc = ctx.Process(
                    target=_local_worker,
                    args=(nid, listeners),
                    name=f"swjoin-tcp-node{nid}",
                    daemon=True,
                )
                procs[nid] = proc
                proc.start()
        finally:
            for sock in listeners.values():
                sock.close()

        controls: dict[int, ControlConn] = {}
        inbox: "Queue[tuple[int, t.Any]]" = Queue()
        killed: set[int] = set()
        injected: list[dict[str, t.Any]] = []
        traces: dict[int, list[dict[str, t.Any]]] = {}
        try:
            rng = RngRegistry(cfg.seed)
            for nid in node_ids:
                sock = connect_with_retry(
                    addresses[nid],
                    KIND_CONTROL,
                    -1,
                    rng=rng.get(f"tcp.backoff.control->{nid}"),
                )
                controls[nid] = ControlConn(sock)
                controls[nid].send(
                    ("job", WorkerJob(
                        node_id=nid,
                        cfg=cfg,
                        addresses=addresses,
                        collect_pairs=collect_pairs,
                        workload=workload,
                    ))
                )
                self._start_pump(nid, controls[nid], inbox)
            origin = self._tcp_start_barrier(
                controls, inbox, set(local_ids)
            )
            deadline = origin + cfg.run_seconds * cfg.time_scale * 4.0 + 60.0
            timers = self._arm_crashes(cfg, origin, procs, killed, injected)
            payloads = self._collect_tcp(
                inbox, set(node_ids), procs, killed, deadline, traces
            )
        finally:
            for timer in timers:
                timer.cancel()
            for proc in procs.values():
                if proc.is_alive():
                    proc.kill()
                proc.join(timeout=10.0)
            for control in controls.values():
                control.close()

        return self._assemble(cfg, payloads, injected, collect_pairs, traces)

    # -- run phases ----------------------------------------------------------
    @staticmethod
    def _start_pump(
        nid: int, control: ControlConn, inbox: "Queue[tuple[int, t.Any]]"
    ) -> None:
        """One reader thread per control connection, funneling messages
        into the shared inbox.  EOF (worker exit, clean or killed) is
        delivered as ``(nid, None)``."""

        def pump() -> None:
            while True:
                try:
                    msg = control.recv(None)
                except Exception:  # noqa: BLE001 - EOF/reset/unpickle all mean "worker gone"
                    inbox.put((nid, None))
                    return
                inbox.put((nid, msg))

        thread = threading.Thread(
            target=pump, name=f"tcp-control:n{nid}", daemon=True
        )
        thread.start()

    def _tcp_start_barrier(
        self,
        controls: dict[int, ControlConn],
        inbox: "Queue[tuple[int, t.Any]]",
        local_ids: set[int],
    ) -> float:
        """Wait for every worker's "ready", then broadcast the start.

        Local forked workers share the launcher's monotonic clock and
        get the real origin; remote workers get ``None`` and anchor to
        their own clock (see :func:`worker_main`)."""
        waiting = set(controls)
        deadline = time.monotonic() + SETUP_TIMEOUT
        while waiting:
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                raise DeadlockError(
                    f"tcp workers never became ready: {sorted(waiting)}"
                )
            try:
                nid, msg = inbox.get(timeout=min(remaining, 1.0))
            except Empty:
                continue
            if msg is None:
                raise RuntimeError(
                    f"node {nid} worker died during setup"
                )
            if msg[0] == "error":
                self._raise_node_error(msg)
            if msg[0] != "ready":
                raise RuntimeError(
                    f"node {nid} sent {msg[0]!r} before the start barrier"
                )
            waiting.discard(nid)
        origin = time.monotonic() + STARTUP_GRACE
        for nid, control in controls.items():
            control.send(("start", origin if nid in local_ids else None))
        return origin

    def _collect_tcp(
        self,
        inbox: "Queue[tuple[int, t.Any]]",
        node_set: set[int],
        procs: dict[int, t.Any],
        killed: set[int],
        deadline: float,
        traces: dict[int, list[dict[str, t.Any]]],
    ) -> dict[int, dict[str, t.Any]]:
        """Gather result payloads until every node reported or died."""
        payloads: dict[int, dict[str, t.Any]] = {}
        pending = set(node_set)
        while pending:
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                for proc in procs.values():
                    if proc.is_alive():
                        proc.kill()
                raise DeadlockError(
                    f"tcp workers never finished: {sorted(pending)}"
                )
            try:
                nid, msg = inbox.get(timeout=min(remaining, 1.0))
            except Empty:
                continue
            if nid not in pending:
                continue  # late EOF after this node already reported
            if msg is None:
                pending.discard(nid)
                if nid not in killed:
                    raise RuntimeError(
                        f"node {nid} tcp worker died without reporting "
                        "a result or an error"
                    )
                continue
            if msg[0] == "error":
                self._raise_node_error(msg)
            if msg[0] == "trace":
                traces.setdefault(nid, []).extend(msg[2])
                continue
            if msg[0] == "result":
                payloads[nid] = msg[2]
                pending.discard(nid)
        return payloads
