"""The runtime interface node code is written against."""

from __future__ import annotations

import typing as t


class Runtime(t.Protocol):
    """What a node loop may do besides communicating.

    Every method returning an *awaitable* must be ``yield``\\ ed by the
    node generator; the backend resumes the generator when the operation
    completes.  ``now`` is synchronous.
    """

    def now(self) -> float:
        """Current time (virtual or wall-clock seconds since start)."""
        ...  # pragma: no cover

    def sleep(self, delay: float) -> t.Any:
        """Awaitable that completes after *delay* seconds."""
        ...  # pragma: no cover

    def sleep_until(self, deadline: float) -> t.Any:
        """Awaitable that completes at *deadline* (immediately if past)."""
        ...  # pragma: no cover

    def cpu(self, cost: float) -> t.Any:
        """Awaitable modeling *cost* seconds of CPU work.

        On the simulated backend this advances virtual time exactly like
        :meth:`sleep`; the distinction exists so the thread backend can
        scale modeled work independently of protocol waits.
        """
        ...  # pragma: no cover

    def spawn(self, generator: t.Generator, name: str = "") -> t.Any:
        """Start another node-style generator concurrently."""
        ...  # pragma: no cover
