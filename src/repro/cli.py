"""Command-line interface.

Examples::

    swjoin run --rate 3000 --slaves 4 --scale 0.05
    swjoin run --scale 0.05 --adaptive --trace trace.jsonl
    swjoin run --scale 0.05 --fault crash:2@35s
    swjoin run --backend tcp --peers 3=10.0.0.2:7000
    swjoin worker --listen 0.0.0.0:7000
    swjoin report trace.jsonl
    swjoin experiment fig07 --scale 0.05
    swjoin experiment all --out EXPERIMENTS.generated.md
    swjoin lint
    swjoin list
"""

from __future__ import annotations

import argparse
import sys
import time
import typing as t

from repro._version import __version__
from repro.analysis.experiments import DEFAULT_SCALE, EXPERIMENTS, run_experiment
from repro.config import ObservabilityConfig, SystemConfig
from repro.core.system import JoinSystem
from repro.errors import ConfigError
from repro.faults.plan import FaultPlan


def _add_run_parser(sub: t.Any) -> None:
    p = sub.add_parser("run", help="run one simulated cluster configuration")
    p.add_argument("--rate", type=float, default=1500.0, help="tuples/s/stream")
    p.add_argument("--slaves", type=int, default=4)
    p.add_argument("--scale", type=float, default=DEFAULT_SCALE)
    p.add_argument("--b-skew", type=float, default=0.7)
    p.add_argument("--npart", type=int, default=60)
    p.add_argument("--dist-epoch", type=float, default=2.0)
    p.add_argument("--subgroups", type=int, default=1)
    p.add_argument("--seed", type=int, default=20130724)
    p.add_argument("--backend", choices=("sim", "thread", "process", "tcp"),
                   default="sim",
                   help="runtime backend: deterministic DES (sim, default), "
                        "one thread per node generator (thread), one OS "
                        "process per cluster node (process), or one worker "
                        "per node over real TCP connections, optionally "
                        "spanning hosts via `swjoin worker` (tcp)")
    p.add_argument("--peers", metavar="NODE=HOST:PORT", action="append",
                   help="tcp backend only: static peer map entry for a "
                        "remote node served by `swjoin worker --listen`; "
                        "repeatable, comma-separable.  Unlisted nodes are "
                        "forked locally on loopback")
    p.add_argument("--bind-host", metavar="HOST", default="127.0.0.1",
                   help="tcp backend only: address local workers listen "
                        "on (default loopback; use a routable address "
                        "when remote workers must reach local nodes)")
    p.add_argument("--time-scale", type=float, default=None,
                   metavar="FACTOR",
                   help="wall seconds per modeled second on the thread/"
                        "process backends (default 0.05; ignored by sim)")
    p.add_argument("--kernel", choices=("blocknlj", "indexed"),
                   default="blocknlj",
                   help="join kernel probing each window: the paper's "
                        "block-NLJ sorted scan (blocknlj, default) or the "
                        "hash-index kernel with incremental insert and "
                        "lazy bulk expiry (indexed)")
    p.add_argument("--no-fine-tuning", action="store_true")
    p.add_argument("--adaptive", action="store_true",
                   help="enable adaptive degree of declustering")
    p.add_argument("--no-load-balancing", action="store_true")
    p.add_argument("--trace", metavar="PATH",
                   help="write a JSONL event trace to PATH")
    p.add_argument("--trace-transport", action="store_true",
                   help="also trace per-transfer network spans (verbose)")
    p.add_argument("--sample-period", type=float, metavar="SECONDS",
                   help="sample per-node gauges every SECONDS of sim time "
                        "(default: the distribution epoch when tracing)")
    p.add_argument("--metrics", action="store_true",
                   help="register typed per-node metric instruments and "
                        "print their cluster snapshot after the run")
    p.add_argument("--admin-port", type=int, metavar="PORT",
                   help="serve the admin/health HTTP endpoint on PORT "
                        "for the duration of the run (0 = ephemeral; "
                        "implies --metrics)")
    p.add_argument("--plot-gauge", metavar="GAUGE",
                   help="chart one sampled gauge after the run "
                        "(e.g. occupancy, window_bytes, queue_depth)")
    p.add_argument("--replication", choices=("off", "log", "checkpoint+log"),
                   default="off",
                   help="replicate partition-group state to backup slaves "
                        "so crash recovery is lossless (default: off)")
    p.add_argument("--standby", action="store_true",
                   help="run a standby coordinator mirroring the master's "
                        "durable state every epoch; it takes over "
                        "deterministically if the master dies (required "
                        "for crash:master fault specs)")
    p.add_argument("--fault", metavar="SPEC", action="append",
                   help="inject a fault; repeatable.  SPECs: "
                        "crash:<slave>@<t>s, crash:master@<t>s, "
                        "drop:<src>-><dst>@<k>, "
                        "delay:<src>-><dst>@<k>+<s>s, "
                        "slow:<slave>x<factor>@<t0>-<t1>s")
    p.add_argument("--detect-timeout", type=float, metavar="SECONDS",
                   help="failure-detection timeout on the master's "
                        "scheduled receives (default: one distribution "
                        "epoch when faults are injected)")


def _parse_peers(specs: t.Sequence[str]) -> tuple[tuple[int, str], ...]:
    """Parse repeated/comma-separated ``NODE=HOST:PORT`` peer entries."""
    peers: list[tuple[int, str]] = []
    for spec in specs:
        for item in spec.split(","):
            item = item.strip()
            if not item:
                continue
            node, sep, addr = item.partition("=")
            if not sep or not node.strip().isdigit():
                raise ConfigError(
                    f"--peers entries must look like NODE=HOST:PORT, "
                    f"got {item!r}"
                )
            peers.append((int(node.strip()), addr.strip()))
    return tuple(peers)


def _obs_config(args: argparse.Namespace) -> ObservabilityConfig:
    sample_period = args.sample_period
    if sample_period is None and (args.trace or args.plot_gauge):
        # Traces should carry gauge samples by default; once per
        # distribution epoch matches the system's own cadence.
        sample_period = args.dist_epoch
    return ObservabilityConfig(
        trace_path=args.trace,
        trace_transport=args.trace_transport,
        sample_period=sample_period,
        metrics=args.metrics,
        admin_port=args.admin_port,
    )


def _cmd_run(args: argparse.Namespace) -> int:
    cfg = SystemConfig.paper_defaults()
    if args.scale != 1.0:
        cfg = cfg.scaled(args.scale)
    if args.time_scale is None:
        # A watchable default: 5% wall speed demos a scaled run in a
        # few seconds without starving the real compute.
        args.time_scale = 0.05
    cfg = cfg.with_(
        rate=args.rate,
        num_slaves=args.slaves,
        b_skew=args.b_skew,
        npart=args.npart,
        dist_epoch=args.dist_epoch,
        num_subgroups=args.subgroups,
        seed=args.seed,
        backend=args.backend,
        tcp_peers=_parse_peers(args.peers or ()),
        tcp_host=args.bind_host,
        time_scale=args.time_scale,
        kernel=args.kernel,
        fine_tuning=not args.no_fine_tuning,
        adaptive_declustering=args.adaptive,
        load_balancing=not args.no_load_balancing,
        replication=args.replication,
        standby=args.standby,
        obs=_obs_config(args),
    )
    if args.fault or args.detect_timeout is not None:
        cfg = cfg.with_(
            faults=FaultPlan.parse(
                args.fault or (), detect_timeout=args.detect_timeout
            )
        )
    started = time.perf_counter()
    result = JoinSystem(cfg).run()
    elapsed = time.perf_counter() - started
    print(result.summary())
    print(f"(simulated {cfg.run_seconds:g}s in {elapsed:.1f}s wall)")
    if args.trace:
        print(f"trace written to {args.trace} (inspect: swjoin report {args.trace})")
    if args.metrics and result.node_metrics:
        for node, snapshot in sorted(result.node_metrics.items()):
            parts = []
            for name, sample in sorted(snapshot.items()):
                value = sample.get("value", sample.get("count"))
                parts.append(f"{name}={value:g}")
            print(f"metrics n{node}: {' '.join(parts)}")
    if args.plot_gauge:
        from repro.analysis.plots import plot_run_series

        print()
        print(plot_run_series(result, args.plot_gauge))
    return 0


def _cmd_worker(args: argparse.Namespace) -> int:
    # Lazy import: only the tcp backend pulls in the socket runtime.
    from repro.runtime.tcp import parse_hostport, serve_worker

    host, port = parse_hostport(args.listen)
    return serve_worker(host, port)


def _cmd_report(args: argparse.Namespace) -> int:
    # Lazy import: the report module pulls in the analysis layer.
    from repro.obs.report import load_trace, render_report

    try:
        meta, records = load_trace(args.path)
    except (OSError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    print(render_report(meta, records, top=args.top))
    return 0


def _cmd_experiment(args: argparse.Namespace) -> int:
    names = sorted(EXPERIMENTS) if args.name == "all" else [args.name]
    sections = []
    for name in names:
        started = time.perf_counter()
        exp = run_experiment(name, scale=args.scale, quick=args.quick)
        elapsed = time.perf_counter() - started
        print(exp.render())
        if args.plot:
            from repro.analysis.plots import plot_experiment

            print()
            print(plot_experiment(exp))
        print(f"({elapsed:.1f}s wall)\n")
        sections.append(exp.to_markdown())
    if args.out:
        with open(args.out, "w", encoding="utf-8") as fh:
            fh.write(f"# Generated experiment results (v{__version__})\n\n")
            fh.write("\n".join(sections))
        print(f"wrote {args.out}")
    return 0


def _cmd_lint(args: argparse.Namespace) -> int:
    # Lazy import: linting is a dev workflow, not a run-time dependency.
    from repro.lint.cli import cmd_lint

    return cmd_lint(args)


def _cmd_list(_args: argparse.Namespace) -> int:
    width = max(len(n) for n in EXPERIMENTS)
    for name in sorted(EXPERIMENTS):
        doc = (EXPERIMENTS[name].__doc__ or "").strip().splitlines()
        print(f"{name.ljust(width)}  {doc[0] if doc else ''}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="swjoin",
        description=(
            "Parallel windowed stream joins over a (simulated) "
            "shared-nothing cluster — reproduction of Chakraborty & "
            "Singh, CLUSTER 2013."
        ),
    )
    parser.add_argument("--version", action="version", version=__version__)
    sub = parser.add_subparsers(dest="command", required=True)
    _add_run_parser(sub)

    p = sub.add_parser("experiment", help="reproduce a paper figure")
    p.add_argument("name", help="experiment id (e.g. fig07) or 'all'")
    p.add_argument("--scale", type=float, default=DEFAULT_SCALE)
    p.add_argument("--quick", action="store_true", help="coarse sweep grid")
    p.add_argument("--plot", action="store_true", help="ASCII chart too")
    p.add_argument("--out", help="also write markdown to this file")

    p = sub.add_parser(
        "worker",
        help="serve one cluster node for a remote "
             "`swjoin run --backend tcp` launcher, then exit",
    )
    p.add_argument("--listen", required=True, metavar="HOST:PORT",
                   help="address to listen on (port 0 = ephemeral; the "
                        "bound address is printed on startup)")

    p = sub.add_parser("report", help="summarize a JSONL trace file")
    p.add_argument("path", help="trace file written by `swjoin run --trace`")
    p.add_argument("--top", type=int, default=5,
                   help="how many hot partitions to list")

    from repro.lint.cli import add_lint_parser

    add_lint_parser(sub)

    sub.add_parser("list", help="list available experiments")
    return parser


def main(argv: t.Sequence[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    if args.command == "run":
        return _cmd_run(args)
    if args.command == "worker":
        return _cmd_worker(args)
    if args.command == "experiment":
        return _cmd_experiment(args)
    if args.command == "report":
        return _cmd_report(args)
    if args.command == "lint":
        return _cmd_lint(args)
    if args.command == "list":
        return _cmd_list(args)
    raise AssertionError("unreachable")  # pragma: no cover


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
