"""Exception hierarchy for the repro package.

All library-raised exceptions derive from :class:`ReproError` so callers
can catch everything from this package with a single ``except`` clause.
"""


class ReproError(Exception):
    """Base class for all errors raised by the repro package."""


class SimulationError(ReproError):
    """Raised for illegal operations on the simulation kernel."""


class DeadlockError(SimulationError):
    """Raised when the event queue empties while processes are blocked."""


class ChannelClosedError(ReproError):
    """Raised when sending to or receiving from a closed channel."""


class ConfigError(ReproError):
    """Raised for invalid or inconsistent configuration values."""


class ProtocolError(ReproError):
    """Raised when a node receives a message violating the fixed
    communication schedule (unexpected type, epoch, or sender).

    The message names the receiving node, the peer rank and the
    expected vs. actual message types, so a chaos-test failure can be
    triaged straight from the traceback."""


class FaultInjectionError(ReproError):
    """Raised for invalid fault-plane operations at run time (e.g.
    crashing a node the transport does not know, or re-killing a node
    that is already dead)."""


class WireError(ReproError):
    """Raised by the wire codec for malformed frames: bad magic, an
    unsupported version, an unknown message tag, truncation, or
    trailing bytes.  A decode failure never yields a partial message —
    the frame is rejected whole."""


class ConnectError(ReproError):
    """Raised when the TCP backend cannot establish a required
    connection: the bounded connect/accept retry schedule is exhausted,
    the handshake times out, or a peer answers the handshake with the
    wrong node identity.  The message names the peer node and its
    address so a mislaunched topology is triaged straight from the
    traceback.  (Version skew is a :class:`WireError` instead — it can
    never be resolved by retrying.)"""


class CapacityError(ReproError):
    """Raised when a bounded buffer would exceed its allotted capacity."""


class LintError(ReproError):
    """Raised for malformed lint inputs (e.g. a bad baseline file)."""
