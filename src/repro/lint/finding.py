"""The lint finding record.

A finding pins one rule violation to a ``path:line`` anchor.  Its
:attr:`Finding.key` — ``"<rule> <path>:<line>"`` — is the stable
identity used by the baseline file, so a finding stays recognized until
either the offending line moves or the violation is fixed.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True, order=True)
class Finding:
    """One rule violation anchored at ``path:line``."""

    path: str
    line: int
    rule: str
    message: str

    @property
    def key(self) -> str:
        """Stable identity used by the baseline file."""
        return f"{self.rule} {self.path}:{self.line}"

    def render(self) -> str:
        """Human-readable one-liner (``path:line: RULE message``)."""
        return f"{self.path}:{self.line}: {self.rule} {self.message}"

    def to_record(self) -> dict[str, object]:
        """Flat JSON-serializable record (``--format json``)."""
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "message": self.message,
        }
