"""The lint finding record.

A finding pins one rule violation to a ``path:line`` anchor.  Its
:attr:`Finding.key` — ``"<rule> <path>:<line>"`` — is the stable
identity used by the baseline file, so a finding stays recognized until
either the offending line moves or the violation is fixed.

Interprocedural findings (SIM004/SIM005/PERF001) additionally carry a
*witness chain*: the call path from the flagged site down to the
external sink, one rendered hop per element, ending with the sink name.
The chain travels in the JSON output and is what
``swjoin lint --explain RULE file:line`` prints; it is **not** part of
the finding's identity (the anchor line is).
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True, order=True)
class Finding:
    """One rule violation anchored at ``path:line``."""

    path: str
    line: int
    rule: str
    message: str
    #: Witness call chain (interprocedural rules only): rendered hops
    #: ``"qualname (path:line)"`` ending with the external sink name.
    chain: tuple[str, ...] = field(default=())

    @property
    def key(self) -> str:
        """Stable identity used by the baseline file."""
        return f"{self.rule} {self.path}:{self.line}"

    def render(self) -> str:
        """Human-readable one-liner (``path:line: RULE message``)."""
        return f"{self.path}:{self.line}: {self.rule} {self.message}"

    def render_chain(self) -> str:
        """Multi-line witness chain (``--explain`` output body)."""
        if not self.chain:
            return "(no recorded call chain for this finding)"
        lines = []
        for depth, hop in enumerate(self.chain):
            arrow = "   " * depth + ("-> " if depth else "")
            lines.append(f"  {arrow}{hop}")
        return "\n".join(lines)

    def to_record(self) -> dict[str, object]:
        """Flat JSON-serializable record (``--format json``)."""
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "message": self.message,
            "chain": list(self.chain),
        }

    @classmethod
    def from_record(cls, record: dict[str, object]) -> "Finding":
        """Inverse of :meth:`to_record` (result-cache reload path)."""
        chain = record.get("chain") or ()
        if not isinstance(chain, (list, tuple)):
            chain = ()
        line = record["line"]
        return cls(
            path=str(record["path"]),
            line=line if isinstance(line, int) else int(str(line)),
            rule=str(record["rule"]),
            message=str(record["message"]),
            chain=tuple(str(hop) for hop in chain),
        )
