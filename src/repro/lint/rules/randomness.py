"""SIM002 — all randomness flows through the seeded registry.

Every stochastic component draws from a named substream handed out by
:class:`repro.simul.rng.RngRegistry`; the registry derives each stream
from the single root seed, so runs are bit-reproducible and adding a
consumer never perturbs existing ones.  Direct use of the stdlib
``random`` module or of ``numpy.random`` module-level state
(``default_rng``, ``seed``, the legacy ``rand``/``randint`` helpers)
bypasses that discipline.

Accepting a ``numpy.random.Generator``/``BitGenerator`` as a parameter
or annotation is fine — that is exactly how registry streams travel.
"""

from __future__ import annotations

import ast
import typing as t

from repro.lint.astutil import ImportTable
from repro.lint.finding import Finding
from repro.lint.registry import FileRule, register
from repro.lint.source import SourceFile

#: The one module allowed to construct generators.
RNG_ALLOWED_SUFFIXES: tuple[str, ...] = ("repro/simul/rng.py",)

#: ``numpy.random`` attributes that are types, not stream state; using
#: them in annotations does not bypass the registry.
_NUMPY_TYPE_NAMES = frozenset({"Generator", "BitGenerator"})


@register
class NoDirectRandom(FileRule):
    """SIM002: direct ``random``/``numpy.random`` use outside simul/rng.py."""

    id = "SIM002"
    summary = (
        "randomness must flow through simul/rng.py's seeded substreams; "
        "no stdlib random, no numpy.random module state"
    )

    def check_file(self, src: SourceFile) -> t.Iterator[Finding]:
        if src.path.endswith(RNG_ALLOWED_SUFFIXES):
            return
        imports = ImportTable(src.tree)
        seen_lines: set[int] = set()
        # Only maximal Name/Attribute chains: `np.random` inside
        # `np.random.Generator` must not be flagged on its own.
        consumed = {
            id(node.value)
            for node in ast.walk(src.tree)
            if isinstance(node, ast.Attribute)
        }

        def flag(line: int, message: str) -> Finding | None:
            if line in seen_lines:
                return None
            seen_lines.add(line)
            return Finding(path=src.path, line=line, rule=self.id, message=message)

        for node in ast.walk(src.tree):
            if id(node) in consumed:
                continue
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.name == "random" or alias.name.startswith("random."):
                        found = flag(
                            node.lineno,
                            "stdlib `random` import — draw from a named "
                            "RngRegistry substream instead",
                        )
                        if found:
                            yield found
            elif isinstance(node, ast.ImportFrom):
                if node.level == 0 and node.module == "random":
                    found = flag(
                        node.lineno,
                        "stdlib `random` import — draw from a named "
                        "RngRegistry substream instead",
                    )
                    if found:
                        yield found
            elif isinstance(node, (ast.Attribute, ast.Name)):
                if not isinstance(node.ctx, ast.Load):
                    continue
                full = imports.resolve(node)
                if full is None:
                    continue
                if full == "random" or full.startswith("random."):
                    found = flag(
                        node.lineno,
                        f"stdlib random use `{full}` — draw from a named "
                        "RngRegistry substream instead",
                    )
                    if found:
                        yield found
                elif full.startswith("numpy.random"):
                    tail = full[len("numpy.random") :].lstrip(".")
                    head = tail.split(".", 1)[0] if tail else ""
                    if head in _NUMPY_TYPE_NAMES:
                        continue
                    found = flag(
                        node.lineno,
                        f"`{full}` touches numpy.random module state — "
                        "ask the RngRegistry for a named substream instead",
                    )
                    if found:
                        yield found
