"""Simulated-time purity rules.

**SIM001 — no wall-clock reads.**  Simulated components must take time
from their runtime (``rt.now()``), never from the host: a single
``time.time()`` inside ``simul``/``core``/``net.sim_transport`` makes a
run irreproducible and silently skews the Figures 7-10 reproduction.
Only the wall-clock-backed thread runtime, the thread transport and the
CLI (which reports wall time *about* a run, not *inside* it) may touch
the host clock.

**SIM003 — no float equality on simulated timestamps.**  Simulated
timestamps are float64 seconds built from epoch arithmetic; comparing
them with ``==``/``!=`` works until a rescaled epoch length stops being
exactly representable.  Ordering comparisons and tolerance windows are
fine; exact equality is not.
"""

from __future__ import annotations

import ast
import typing as t

from repro.lint.astutil import ImportTable, terminal_name
from repro.lint.finding import Finding
from repro.lint.registry import FileRule, register
from repro.lint.source import SourceFile

#: Host-clock reads (and wall-clock sleeps) banned outside the allowlist.
WALL_CLOCK_NAMES = frozenset(
    {
        "time.time",
        "time.time_ns",
        "time.monotonic",
        "time.monotonic_ns",
        "time.perf_counter",
        "time.perf_counter_ns",
        "time.process_time",
        "time.process_time_ns",
        "time.sleep",
        "datetime.datetime.now",
        "datetime.datetime.today",
        "datetime.datetime.utcnow",
        "datetime.date.today",
    }
)

#: Files that legitimately touch the host clock: the wall-clock-backed
#: thread/process runtime and transport pairs and the CLI's
#: elapsed-time reporting.
WALL_CLOCK_ALLOWED_SUFFIXES: tuple[str, ...] = (
    "repro/runtime/thread.py",
    "repro/runtime/process.py",
    "repro/runtime/tcp.py",
    "repro/net/thread_transport.py",
    "repro/net/proc_transport.py",
    # The TCP transport/backend pair is real-socket infrastructure:
    # handshake timeouts, retry backoff sleeps and the shared start
    # barrier are wall-clock by nature, like the process pair above.
    "repro/net/tcp_transport.py",
    # The admin HTTP server reports real uptime: it is wall-clock
    # infrastructure by definition, never part of the modeled cluster.
    "repro/obs/admin.py",
    "repro/cli.py",
)


@register
class NoWallClock(FileRule):
    """SIM001: wall-clock reads outside the thread runtime/CLI."""

    id = "SIM001"
    summary = (
        "no host-clock reads (time.time/perf_counter/datetime.now) outside "
        "runtime/thread.py, net/thread_transport.py and cli.py"
    )

    def check_file(self, src: SourceFile) -> t.Iterator[Finding]:
        if src.path.endswith(WALL_CLOCK_ALLOWED_SUFFIXES):
            return
        imports = ImportTable(src.tree)
        seen: set[tuple[int, str]] = set()
        for node in ast.walk(src.tree):
            if not isinstance(node, (ast.Attribute, ast.Name)):
                continue
            if not isinstance(node.ctx, ast.Load):
                continue
            full = imports.resolve(node)
            if full in WALL_CLOCK_NAMES and (node.lineno, full) not in seen:
                seen.add((node.lineno, full))
                yield Finding(
                    path=src.path,
                    line=node.lineno,
                    rule=self.id,
                    message=(
                        f"wall-clock read `{full}` — simulated components "
                        "must take time from the runtime (rt.now())"
                    ),
                )


#: Call names whose result is a simulated timestamp.
_TS_CALL_NAMES = frozenset({"now", "min_ts", "max_ts"})
#: Variable/attribute names conventionally holding simulated timestamps.
_TS_NAMES = frozenset(
    {
        "ts",
        "t0",
        "t1",
        "now",
        "epoch_start",
        "epoch_end",
        "cutoff_ts",
        "deadline",
        "timestamp",
        "sim_time",
        "arrival_ts",
        "posted_at",
    }
)


def _is_timestampish(node: ast.expr) -> bool:
    if isinstance(node, ast.Call):
        return terminal_name(node.func) in _TS_CALL_NAMES
    return terminal_name(node) in _TS_NAMES


def _is_none(node: ast.expr) -> bool:
    return isinstance(node, ast.Constant) and node.value is None


@register
class NoFloatTimestampEquality(FileRule):
    """SIM003: ``==``/``!=`` on simulated timestamps."""

    id = "SIM003"
    summary = (
        "no float equality on simulated timestamps (use ordering or an "
        "explicit tolerance)"
    )

    def check_file(self, src: SourceFile) -> t.Iterator[Finding]:
        for node in ast.walk(src.tree):
            if not isinstance(node, ast.Compare):
                continue
            operands = [node.left, *node.comparators]
            for i, op in enumerate(node.ops):
                if not isinstance(op, (ast.Eq, ast.NotEq)):
                    continue
                left, right = operands[i], operands[i + 1]
                if _is_none(left) or _is_none(right):
                    continue
                if _is_timestampish(left) or _is_timestampish(right):
                    yield Finding(
                        path=src.path,
                        line=node.lineno,
                        rule=self.id,
                        message=(
                            "float equality on a simulated timestamp — "
                            "timestamps come from epoch arithmetic; compare "
                            "with ordering or an explicit tolerance"
                        ),
                    )
                    break
