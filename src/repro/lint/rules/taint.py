"""Interprocedural purity rules: SIM004, SIM005, PERF001.

The per-file rules (SIM001/SIM002) police *direct* sink use with a
module allowlist; these project rules close the indirect hole: a helper
that calls ``time.time()`` is caught by SIM001 **at the helper**, but
every simulated component that *calls the helper* was previously
invisible.  Here the shared project call graph
(:meth:`~repro.lint.source.Project.callgraph`) is taint-analyzed
(:mod:`repro.lint.dataflow`) and each call edge into a tainted function
becomes a finding carrying the witness chain down to the sink.

**SIM004 — wall-clock taint.**  A function transitively reaching
``time.time``/``perf_counter``/``datetime.now`` (the SIM001 sink set)
is wall-clock-tainted.  Calling such a function from outside the
runtime/transport allowlist is a finding.  Allowlisted modules are
taint *barriers*: the thread runtime is entitled to the clock, so
chains that pass through it are absorbed, not reported.

**SIM005 — RNG-substream taint.**  Randomness must flow from
``simul/rng.py`` substreams; any function transitively touching stdlib
``random`` or ``numpy.random`` module state taints its callers the same
way (``numpy.random.Generator``/``BitGenerator`` *type* references stay
exempt, as in SIM002).

**PERF001 — blocking-call reachability.**  The master epoch loop
(``core/master.py``), the probe path (``core/join_module.py``) and the
columnar store (``data/soa.py``) are the modeled hot paths: one real
``socket``/``select``/``sleep``/file-I/O call inside them stalls the
epoch-synchronized schedule for every node.  Direct blocking calls in
those modules are flagged, and so is any call whose resolvable chain
reaches one; the runtime/transport/observability/CLI layers — which
exist to block — are barriers.
"""

from __future__ import annotations

import typing as t

from repro.lint.callgraph import CallGraph, CallSite
from repro.lint.dataflow import TaintResult, TaintSpec, propagate
from repro.lint.finding import Finding
from repro.lint.registry import ProjectRule, register
from repro.lint.rules.randomness import RNG_ALLOWED_SUFFIXES, _NUMPY_TYPE_NAMES
from repro.lint.rules.simtime import (
    WALL_CLOCK_ALLOWED_SUFFIXES,
    WALL_CLOCK_NAMES,
)
from repro.lint.source import Project

#: The modeled hot paths PERF001 protects (reachability roots).
BLOCKING_SCOPE_SUFFIXES: tuple[str, ...] = (
    "repro/core/master.py",
    "repro/core/join_module.py",
    "repro/core/probe.py",
    "repro/core/kernels/__init__.py",
    "repro/core/kernels/blocknlj.py",
    "repro/core/kernels/indexed.py",
    "repro/data/soa.py",
)

#: Layers that exist to block: wall-clock backends, real transports,
#: observability exporters/admin, the CLI, analysis plotting, and the
#: lint engine itself (it reads source trees from disk).
BLOCKING_ALLOWED_FRAGMENTS: tuple[str, ...] = (
    "repro/runtime/",
    "repro/net/",
    "repro/obs/",
    "repro/analysis/",
    "repro/lint/",
)
BLOCKING_ALLOWED_SUFFIXES: tuple[str, ...] = ("repro/cli.py",)

#: Blocking sink prefixes (module state) and exact names.
_BLOCKING_PREFIXES: tuple[str, ...] = (
    "socket.",
    "select.",
    "selectors.",
    "subprocess.",
    "http.",
    "urllib.",
)
_BLOCKING_NAMES = frozenset(
    {
        "open",
        "input",
        "time.sleep",
        "io.open",
        "os.open",
        "os.read",
        "os.write",
        "os.fsync",
        "os.fdopen",
        "os.popen",
        "os.system",
    }
)


def _is_wall_clock(name: str) -> bool:
    return name in WALL_CLOCK_NAMES


def _is_rng(name: str) -> bool:
    if name == "random" or name.startswith("random."):
        return True
    if name == "numpy.random" or name.startswith("numpy.random."):
        tail = name[len("numpy.random") :].lstrip(".")
        head = tail.split(".", 1)[0] if tail else ""
        return head not in _NUMPY_TYPE_NAMES
    return False


def _is_blocking(name: str) -> bool:
    return name in _BLOCKING_NAMES or name.startswith(_BLOCKING_PREFIXES)


def _chain_strings(
    caller: str, site: CallSite, taints: TaintResult
) -> tuple[str, ...]:
    """Rendered witness: flagged call site, then each hop, then the sink."""
    hops = [f"{caller} ({site.path}:{site.lineno})"]
    hops.extend(step.render() for step in taints.chain(site.callee))
    hops.append(taints.sink(site.callee))
    return tuple(hops)


def _chain_text(chain: tuple[str, ...]) -> str:
    """Compact qualname-only arrow chain for the finding message."""
    names = [hop.split(" (", 1)[0] for hop in chain]
    return " -> ".join(names)


class _TaintRule(ProjectRule):
    """Shared finding emission: every call edge into a tainted function."""

    spec_name: t.ClassVar[str] = ""
    remedy: t.ClassVar[str] = ""

    def _spec(self) -> TaintSpec:
        raise NotImplementedError  # pragma: no cover

    def _in_scope(self, path: str) -> bool:
        """May the flagged caller live in *path*?  (Rule-specific.)"""
        raise NotImplementedError  # pragma: no cover

    def check_project(self, project: Project) -> t.Iterator[Finding]:
        graph: CallGraph = project.callgraph()
        spec = self._spec()
        taints = propagate(graph, spec)
        seen: set[tuple[str, int, str]] = set()
        for caller in graph.all_callers():
            path = graph.path_of(caller)
            if spec.is_barrier(path) or not self._in_scope(path):
                continue
            for site in graph.calls.get(caller, []):
                if site.callee not in taints:
                    continue
                anchor = (site.path, site.lineno, site.callee)
                if anchor in seen:
                    continue
                seen.add(anchor)
                chain = _chain_strings(caller, site, taints)
                sink = taints.sink(site.callee)
                verb = (
                    "may invoke" if site.kind == "ref" else "transitively reaches"
                )
                yield Finding(
                    path=site.path,
                    line=site.lineno,
                    rule=self.id,
                    message=(
                        f"`{site.callee}` {verb} {self.spec_name} "
                        f"`{sink}` (call chain: {_chain_text(chain)}) — "
                        f"{self.remedy}"
                    ),
                    chain=chain,
                )
            yield from self._direct_findings(graph, caller, spec)

    def _direct_findings(
        self, graph: CallGraph, caller: str, spec: TaintSpec
    ) -> t.Iterator[Finding]:
        """Hook: rules that also flag direct sink calls override this."""
        return iter(())


@register
class WallClockTaint(_TaintRule):
    """SIM004: calling a wall-clock-tainted function off the allowlist."""

    id = "SIM004"
    summary = (
        "no call chain may reach the host clock from outside the "
        "runtime/transport allowlist (interprocedural SIM001)"
    )
    spec_name = "wall-clock"
    remedy = "simulated components must take time from the runtime (rt.now())"

    def _spec(self) -> TaintSpec:
        return TaintSpec(
            name="wall-clock",
            is_source=_is_wall_clock,
            is_barrier=lambda path: path.endswith(WALL_CLOCK_ALLOWED_SUFFIXES),
        )

    def _in_scope(self, path: str) -> bool:
        return True


@register
class RngTaint(_TaintRule):
    """SIM005: calling an RNG-tainted function outside simul/rng.py."""

    id = "SIM005"
    summary = (
        "no call chain may reach stdlib random / numpy.random module "
        "state except through simul/rng.py substreams (interprocedural "
        "SIM002)"
    )
    spec_name = "unseeded randomness"
    remedy = (
        "randomness must flow from a named RngRegistry substream "
        "(simul/rng.py)"
    )

    def _spec(self) -> TaintSpec:
        return TaintSpec(
            name="rng",
            is_source=_is_rng,
            is_barrier=lambda path: path.endswith(RNG_ALLOWED_SUFFIXES),
        )

    def _in_scope(self, path: str) -> bool:
        return True


def _blocking_barrier(path: str) -> bool:
    return path.endswith(BLOCKING_ALLOWED_SUFFIXES) or any(
        fragment in path for fragment in BLOCKING_ALLOWED_FRAGMENTS
    )


@register
class BlockingReachability(_TaintRule):
    """PERF001: blocking calls reachable from the modeled hot paths."""

    id = "PERF001"
    summary = (
        "no socket/select/sleep/file-I/O reachable from the master "
        "epoch loop, the join-module probe path, or data/soa.py"
    )
    spec_name = "a blocking call"
    remedy = (
        "the epoch-synchronized hot path must never block on the host "
        "(move the I/O behind the runtime/transport layer)"
    )

    def _spec(self) -> TaintSpec:
        return TaintSpec(
            name="blocking",
            is_source=_is_blocking,
            is_barrier=_blocking_barrier,
        )

    def _in_scope(self, path: str) -> bool:
        return path.endswith(BLOCKING_SCOPE_SUFFIXES)

    def _direct_findings(
        self, graph: CallGraph, caller: str, spec: TaintSpec
    ) -> t.Iterator[Finding]:
        # Unlike SIM004/SIM005 (where SIM001/SIM002 already flag the
        # direct sink line), nothing else polices a literal `open()` or
        # `socket.socket()` on the hot path — flag it here.
        for ext in graph.externals.get(caller, []):
            if spec.is_source(ext.name):
                chain = (f"{caller} ({ext.path}:{ext.lineno})", ext.name)
                yield Finding(
                    path=ext.path,
                    line=ext.lineno,
                    rule=self.id,
                    message=(
                        f"blocking call `{ext.name}` on the modeled hot "
                        f"path (call chain: {_chain_text(chain)}) — "
                        f"{self.remedy}"
                    ),
                    chain=chain,
                )
