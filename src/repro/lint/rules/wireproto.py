"""PROTO002 — wire-codec consistency and append-only tag discipline.

PROTO001 keeps the *schedule* exhaustive (every protocol message
constructed and dispatched); PROTO002 keeps the *codec* exhaustive and
the byte format stable.  It cross-checks, all statically:

* the ``Message`` subclass set of ``core/protocol.py`` (the same
  extraction PROTO001 dispatch/send checking is built on);
* ``net/wire.py``'s ``_TAGS`` registry — every wire-codable type needs
  an encoder, a decoder and a tag; tag numbers must be literal ints and
  unique;
* ``net/wire.py``'s ``_TAG_LEDGER`` — the append-only history mapping
  each ``WIRE_VERSION`` to the tags it introduced.

Findings: a message type with no tag (it would raise
:class:`~repro.errors.WireError` at the first send on the process
backend), a ``_TAGS`` entry naming an unknown type or an undefined
encoder/decoder, duplicate or renumbered tags, a tag present in
``_TAGS`` but missing from the ledger (a tag-set change without a
``WIRE_VERSION`` bump), a ledger entry whose tag vanished from
``_TAGS`` (tags are append-only: deprecate, never delete), and a
``WIRE_VERSION`` that does not match the ledger's newest version.

The rule is silent when either file is absent (fixture projects that
exercise only the schedule rules).
"""

from __future__ import annotations

import ast
import typing as t
from dataclasses import dataclass, field

from repro.lint.astutil import terminal_name
from repro.lint.finding import Finding
from repro.lint.registry import ProjectRule, register
from repro.lint.rules.protocol import PROTOCOL_SUFFIX, _message_classes
from repro.lint.source import Project, SourceFile

#: Where the codec lives.
WIRE_SUFFIX = "net/wire.py"

_TAGS_NAME = "_TAGS"
_LEDGER_NAME = "_TAG_LEDGER"
_VERSION_NAME = "WIRE_VERSION"


@dataclass
class _TagEntry:
    tag: int
    lineno: int
    type_name: str | None = None
    encoder: str | None = None
    decoder: str | None = None


@dataclass
class _WireSurface:
    """Everything PROTO002 reads out of ``net/wire.py``'s AST."""

    tags_lineno: int | None = None
    entries: list[_TagEntry] = field(default_factory=list)
    bad_keys: list[int] = field(default_factory=list)  #: non-literal key lines
    version: int | None = None
    version_lineno: int | None = None
    ledger_lineno: int | None = None
    #: version -> [(tag, type name, lineno)]
    ledger: dict[int, list[tuple[int, str, int]]] = field(default_factory=dict)
    toplevel_defs: set[str] = field(default_factory=set)


def _assigned_value(node: ast.stmt, name: str) -> ast.expr | None:
    if isinstance(node, ast.Assign):
        if any(
            isinstance(target, ast.Name) and target.id == name
            for target in node.targets
        ):
            return node.value
    elif isinstance(node, ast.AnnAssign):
        if isinstance(node.target, ast.Name) and node.target.id == name:
            return node.value
    return None


def _int_const(node: ast.expr | None) -> int | None:
    if (
        isinstance(node, ast.Constant)
        and isinstance(node.value, int)
        and not isinstance(node.value, bool)
    ):
        return node.value
    return None


def _parse_tags(value: ast.expr, surface: _WireSurface) -> None:
    if not isinstance(value, ast.Dict):
        return
    for key, item in zip(value.keys, value.values):
        if key is None:
            continue
        tag = _int_const(key)
        if tag is None:
            surface.bad_keys.append(key.lineno)
            continue
        entry = _TagEntry(tag=tag, lineno=key.lineno)
        if isinstance(item, ast.Tuple) and len(item.elts) == 3:
            entry.type_name = terminal_name(item.elts[0])
            entry.encoder = terminal_name(item.elts[1])
            entry.decoder = terminal_name(item.elts[2])
        surface.entries.append(entry)


def _parse_ledger(value: ast.expr, surface: _WireSurface) -> None:
    if not isinstance(value, ast.Dict):
        return
    for key, item in zip(value.keys, value.values):
        version = _int_const(key)
        if version is None or not isinstance(item, (ast.Tuple, ast.List)):
            continue
        rows: list[tuple[int, str, int]] = []
        for element in item.elts:
            if not isinstance(element, (ast.Tuple, ast.List)):
                continue
            if len(element.elts) != 2:
                continue
            tag = _int_const(element.elts[0])
            name_node = element.elts[1]
            if tag is None or not isinstance(name_node, ast.Constant):
                continue
            if not isinstance(name_node.value, str):
                continue
            rows.append((tag, name_node.value, element.lineno))
        surface.ledger[version] = rows


def _read_wire(wire: SourceFile) -> _WireSurface:
    surface = _WireSurface()
    for node in wire.tree.body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            surface.toplevel_defs.add(node.name)
            continue
        value = _assigned_value(node, _TAGS_NAME)
        if value is not None:
            surface.tags_lineno = node.lineno
            _parse_tags(value, surface)
            continue
        value = _assigned_value(node, _LEDGER_NAME)
        if value is not None:
            surface.ledger_lineno = node.lineno
            _parse_ledger(value, surface)
            continue
        value = _assigned_value(node, _VERSION_NAME)
        if value is not None:
            surface.version = _int_const(value)
            surface.version_lineno = node.lineno
    return surface


@register
class WireProtocolConsistency(ProjectRule):
    """PROTO002: _TAGS == Message set == append-only ledger @ WIRE_VERSION."""

    id = "PROTO002"
    summary = (
        "every protocol message has a unique wire tag + encoder/decoder; "
        "tags are append-only and any tag-set change bumps WIRE_VERSION"
    )

    def check_project(self, project: Project) -> t.Iterator[Finding]:
        wire = project.find(WIRE_SUFFIX)
        proto = project.find(PROTOCOL_SUFFIX)
        if wire is None or proto is None:
            return
        messages = _message_classes(proto)
        surface = _read_wire(wire)

        if surface.tags_lineno is None:
            yield Finding(
                path=wire.path,
                line=1,
                rule=self.id,
                message=(
                    f"no `{_TAGS_NAME}` registry found — the wire codec "
                    "must map every message type to (type, encoder, "
                    "decoder) under a literal int tag"
                ),
            )
            return

        for lineno in surface.bad_keys:
            yield Finding(
                path=wire.path,
                line=lineno,
                rule=self.id,
                message=(
                    f"`{_TAGS_NAME}` key is not a literal int — tags are "
                    "part of the wire format and must be auditable "
                    "constants"
                ),
            )

        yield from self._check_entries(wire, surface, messages)
        yield from self._check_coverage(proto, surface, messages)
        yield from self._check_ledger(wire, surface)

    # -- individual checks -------------------------------------------------
    def _check_entries(
        self,
        wire: SourceFile,
        surface: _WireSurface,
        messages: dict[str, int],
    ) -> t.Iterator[Finding]:
        seen_tags: dict[int, int] = {}
        for entry in surface.entries:
            if entry.tag in seen_tags:
                yield Finding(
                    path=wire.path,
                    line=entry.lineno,
                    rule=self.id,
                    message=(
                        f"duplicate wire tag {entry.tag} (first assigned "
                        f"at line {seen_tags[entry.tag]}) — tag numbers "
                        "must be unique"
                    ),
                )
            else:
                seen_tags[entry.tag] = entry.lineno
            if entry.type_name is None:
                yield Finding(
                    path=wire.path,
                    line=entry.lineno,
                    rule=self.id,
                    message=(
                        f"tag {entry.tag} entry is not a (type, encoder, "
                        "decoder) triple"
                    ),
                )
                continue
            if entry.type_name not in messages:
                yield Finding(
                    path=wire.path,
                    line=entry.lineno,
                    rule=self.id,
                    message=(
                        f"tag {entry.tag} references `{entry.type_name}`, "
                        f"which is not a Message subclass in "
                        f"{PROTOCOL_SUFFIX} — stale codec entry"
                    ),
                )
            for role, fname in (
                ("encoder", entry.encoder),
                ("decoder", entry.decoder),
            ):
                if fname is not None and fname not in surface.toplevel_defs:
                    yield Finding(
                        path=wire.path,
                        line=entry.lineno,
                        rule=self.id,
                        message=(
                            f"tag {entry.tag} ({entry.type_name}) names "
                            f"{role} `{fname}`, which is not defined in "
                            f"{WIRE_SUFFIX}"
                        ),
                    )

    def _check_coverage(
        self,
        proto: SourceFile,
        surface: _WireSurface,
        messages: dict[str, int],
    ) -> t.Iterator[Finding]:
        coded = {
            entry.type_name
            for entry in surface.entries
            if entry.type_name is not None
        }
        for name in sorted(messages):
            if name not in coded:
                yield Finding(
                    path=proto.path,
                    line=messages[name],
                    rule=self.id,
                    message=(
                        f"message `{name}` has no wire tag/encoder/decoder "
                        f"in {WIRE_SUFFIX} — the process backend would "
                        "raise WireError on the first send"
                    ),
                )

    def _check_ledger(
        self, wire: SourceFile, surface: _WireSurface
    ) -> t.Iterator[Finding]:
        tags_line = surface.tags_lineno or 1
        if surface.ledger_lineno is None:
            yield Finding(
                path=wire.path,
                line=tags_line,
                rule=self.id,
                message=(
                    f"no `{_LEDGER_NAME}` found — record each wire "
                    "version's tags so tag-set changes without a "
                    f"{_VERSION_NAME} bump are machine-checked"
                ),
            )
            return

        ledger_rows: dict[int, tuple[str, int, int]] = {}
        for version in sorted(surface.ledger):
            for tag, type_name, lineno in surface.ledger[version]:
                if tag in ledger_rows:
                    yield Finding(
                        path=wire.path,
                        line=lineno,
                        rule=self.id,
                        message=(
                            f"tag {tag} appears twice in `{_LEDGER_NAME}` "
                            "— the ledger is append-only, one row per tag"
                        ),
                    )
                    continue
                ledger_rows[tag] = (type_name, version, lineno)

        current = {e.tag: e for e in surface.entries if e.type_name is not None}
        for tag in sorted(current):
            entry = current[tag]
            row = ledger_rows.get(tag)
            if row is None:
                yield Finding(
                    path=wire.path,
                    line=entry.lineno,
                    rule=self.id,
                    message=(
                        f"tag {tag} ({entry.type_name}) is not in "
                        f"`{_LEDGER_NAME}` — a tag-set change must be "
                        f"recorded under a new version and {_VERSION_NAME} "
                        "bumped"
                    ),
                )
            elif row[0] != entry.type_name:
                yield Finding(
                    path=wire.path,
                    line=entry.lineno,
                    rule=self.id,
                    message=(
                        f"tag {tag} is `{entry.type_name}` in "
                        f"`{_TAGS_NAME}` but `{row[0]}` in "
                        f"`{_LEDGER_NAME}` — tags must never be reassigned"
                    ),
                )
        for tag in sorted(ledger_rows):
            type_name, _version, lineno = ledger_rows[tag]
            if tag not in current:
                yield Finding(
                    path=wire.path,
                    line=lineno,
                    rule=self.id,
                    message=(
                        f"ledger tag {tag} ({type_name}) is missing from "
                        f"`{_TAGS_NAME}` — tags are append-only: old "
                        "frames must stay decodable (deprecate, never "
                        "delete)"
                    ),
                )

        # Append-only numbering: a later version may only add tags above
        # everything earlier versions used.
        high = 0
        for version in sorted(surface.ledger):
            rows = surface.ledger[version]
            for tag, type_name, lineno in rows:
                if tag <= high and version > min(surface.ledger):
                    yield Finding(
                        path=wire.path,
                        line=lineno,
                        rule=self.id,
                        message=(
                            f"version {version} introduces tag {tag} below "
                            f"an earlier version's high-water mark {high} "
                            "— tags are allocated append-only"
                        ),
                    )
            if rows:
                high = max(high, max(tag for tag, _n, _l in rows))

        if surface.version is not None and surface.ledger:
            newest = max(surface.ledger)
            if surface.version != newest:
                yield Finding(
                    path=wire.path,
                    line=surface.version_lineno or tags_line,
                    rule=self.id,
                    message=(
                        f"{_VERSION_NAME} is {surface.version} but "
                        f"`{_LEDGER_NAME}`'s newest entry is version "
                        f"{newest} — bump {_VERSION_NAME} whenever the "
                        "tag set changes"
                    ),
                )
