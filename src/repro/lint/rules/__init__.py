"""Built-in rule set.

Importing this package registers every rule with
:data:`repro.lint.registry.RULES`.  The rules encode the reproduction's
simulation-purity and protocol invariants:

=========  ==========================================================
SIM001     no wall-clock reads outside the thread runtime / CLI
SIM002     all randomness flows through simul/rng.py substreams
SIM003     no float equality on simulated timestamps
SIM004     no *call chain* to the wall clock off the allowlist
           (interprocedural SIM001 over the project call graph)
SIM005     no *call chain* to stdlib random / numpy.random module
           state outside simul/rng.py (interprocedural SIM002)
OBS001     trace-event construction guarded by the null-tracer check
OBS002     metric instrument updates guarded by registry.enabled
PERF001    no blocking call (socket/select/sleep/file I/O) reachable
           from the master epoch loop, probe path, or data/soa.py
PROTO001   protocol message set == dispatched set (no dead surface)
PROTO002   wire _TAGS == Message set; tags unique + append-only, and
           tag-set changes bump WIRE_VERSION (ledger-checked)
CFG001     every SystemConfig/ObservabilityConfig field is read
=========  ==========================================================
"""

from repro.lint.rules.configuse import ConfigFieldsRead
from repro.lint.rules.protocol import ProtocolExhaustiveness
from repro.lint.rules.randomness import NoDirectRandom
from repro.lint.rules.simtime import NoFloatTimestampEquality, NoWallClock
from repro.lint.rules.taint import BlockingReachability, RngTaint, WallClockTaint
from repro.lint.rules.tracing import GuardedMetricUpdate, GuardedTraceEmit
from repro.lint.rules.wireproto import WireProtocolConsistency

__all__ = [
    "NoWallClock",
    "NoDirectRandom",
    "NoFloatTimestampEquality",
    "WallClockTaint",
    "RngTaint",
    "BlockingReachability",
    "GuardedTraceEmit",
    "GuardedMetricUpdate",
    "ProtocolExhaustiveness",
    "WireProtocolConsistency",
    "ConfigFieldsRead",
]
