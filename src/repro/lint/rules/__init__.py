"""Built-in rule set.

Importing this package registers every rule with
:data:`repro.lint.registry.RULES`.  The rules encode the reproduction's
simulation-purity and protocol invariants:

=========  ==========================================================
SIM001     no wall-clock reads outside the thread runtime / CLI
SIM002     all randomness flows through simul/rng.py substreams
SIM003     no float equality on simulated timestamps
OBS001     trace-event construction guarded by the null-tracer check
PROTO001   protocol message set == dispatched set (no dead surface)
CFG001     every SystemConfig/ObservabilityConfig field is read
=========  ==========================================================
"""

from repro.lint.rules.configuse import ConfigFieldsRead
from repro.lint.rules.protocol import ProtocolExhaustiveness
from repro.lint.rules.randomness import NoDirectRandom
from repro.lint.rules.simtime import NoFloatTimestampEquality, NoWallClock
from repro.lint.rules.tracing import GuardedTraceEmit

__all__ = [
    "NoWallClock",
    "NoDirectRandom",
    "NoFloatTimestampEquality",
    "GuardedTraceEmit",
    "ProtocolExhaustiveness",
    "ConfigFieldsRead",
]
