"""CFG001 — every config field must be read somewhere.

A :class:`~repro.config.SystemConfig` /
:class:`~repro.config.ObservabilityConfig` field nobody reads is worse
than dead code: callers set it, experiments sweep it, and it silently
does nothing — exactly how a reproduction drifts from the paper it
claims to reproduce.

A field counts as *read* when some module contains an attribute load
``<receiver>.<field>`` whose receiver looks like a config object
(terminal name ``cfg``/``config``/``self``/``obs``), or a
``getattr(x, "<field>")`` call with a literal name.  Reads inside the
config module's own plumbing (``with_``, ``validated``, ``scaled``) do
not count — copying and checking a field is not consuming it.
"""

from __future__ import annotations

import ast
import typing as t

from repro.lint.astutil import terminal_name
from repro.lint.finding import Finding
from repro.lint.registry import ProjectRule, register
from repro.lint.source import Project, SourceFile

#: Where the config dataclasses live.
CONFIG_SUFFIX = "repro/config.py"
#: The dataclasses whose fields must all be consumed.
TARGET_CLASSES: tuple[str, ...] = ("SystemConfig", "ObservabilityConfig")
#: Config-module functions whose reads are plumbing, not consumption.
PLUMBING_FUNCTIONS = frozenset({"with_", "validated", "scaled"})
#: Receiver spellings that plausibly hold a config object.
_RECEIVER_NAMES = frozenset({"cfg", "config", "self", "obs"})


def _declared_fields(config: SourceFile) -> dict[str, tuple[str, int]]:
    """``{field: (class, line)}`` for annotated fields of the targets."""
    fields: dict[str, tuple[str, int]] = {}
    for node in config.tree.body:
        if not isinstance(node, ast.ClassDef) or node.name not in TARGET_CLASSES:
            continue
        for stmt in node.body:
            if not isinstance(stmt, ast.AnnAssign):
                continue
            if not isinstance(stmt.target, ast.Name):
                continue
            if "ClassVar" in ast.dump(stmt.annotation):
                continue
            name = stmt.target.id
            if not name.startswith("_"):
                fields[name] = (node.name, stmt.lineno)
    return fields


def _plumbing_lines(config: SourceFile) -> set[int]:
    """Line numbers inside the config module's plumbing functions."""
    lines: set[int] = set()
    for node in ast.walk(config.tree):
        if (
            isinstance(node, ast.FunctionDef)
            and node.name in PLUMBING_FUNCTIONS
            and node.end_lineno is not None
        ):
            lines.update(range(node.lineno, node.end_lineno + 1))
    return lines


def _reads_in(src: SourceFile, fields: t.Collection[str], skip: set[int]) -> set[str]:
    reads: set[str] = set()
    for node in ast.walk(src.tree):
        if isinstance(node, ast.Attribute):
            if (
                isinstance(node.ctx, ast.Load)
                and node.attr in fields
                and node.lineno not in skip
                and terminal_name(node.value) in _RECEIVER_NAMES
            ):
                reads.add(node.attr)
        elif (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Name)
            and node.func.id == "getattr"
            and len(node.args) >= 2
            and isinstance(node.args[1], ast.Constant)
            and isinstance(node.args[1].value, str)
            and node.args[1].value in fields
            and node.lineno not in skip
        ):
            reads.add(node.args[1].value)
    return reads


@register
class ConfigFieldsRead(ProjectRule):
    """CFG001: a config field nobody reads is a silent no-op knob."""

    id = "CFG001"
    summary = (
        "every SystemConfig/ObservabilityConfig field must be read by "
        "some component (a knob nobody reads silently does nothing)"
    )

    def check_project(self, project: Project) -> t.Iterator[Finding]:
        config = project.find(CONFIG_SUFFIX)
        if config is None:
            return
        fields = _declared_fields(config)
        if not fields:
            return
        plumbing = _plumbing_lines(config)
        reads: set[str] = set()
        for path in sorted(project.files):
            src = project.files[path]
            skip = plumbing if src is config else set()
            reads |= _reads_in(src, fields, skip)
            if reads >= fields.keys():
                break
        for name in sorted(fields.keys() - reads):
            cls, line = fields[name]
            yield Finding(
                path=config.path,
                line=line,
                rule=self.id,
                message=(
                    f"config field `{cls}.{name}` is never read — wire it "
                    "into the system or delete the knob"
                ),
            )
