"""PROTO001 — protocol exhaustiveness.

The wire protocol (:mod:`repro.core.protocol`) is a *fixed schedule*:
every message type corresponds to exactly one step of the epoch
structure, and the node loops dispatch on message type via
``comm.recv_expect(src, Type, ...)`` and ``isinstance(msg, Type)``.
That makes the protocol easy to extend and easy to break silently: a
new message nobody dispatches deadlocks the run at the first exchange
(or dies with a runtime :class:`~repro.errors.ProtocolError`), and a
handler naming a removed message keeps a dead code path alive.

This rule cross-checks three sets, all computed statically:

* **message types** — subclasses of ``Message`` in ``core/protocol.py``;
* **dispatch sites** — type names in ``recv_expect``/``isinstance``
  calls in the node-loop modules (master, slave, collector, and the
  baseline framework);
* **send/construction sites** — ``X.send(dst, Type(...))`` calls and
  plain ``Type(...)`` constructions anywhere in the project.

Findings: a message that is sent but never dispatched, a message never
constructed at all (dead protocol surface), and a dispatch site naming
something that is not a message type.
"""

from __future__ import annotations

import ast
import typing as t

from repro.lint.astutil import ImportTable, terminal_name
from repro.lint.finding import Finding
from repro.lint.registry import ProjectRule, register
from repro.lint.source import Project, SourceFile

#: Where the message vocabulary lives.
PROTOCOL_SUFFIX = "core/protocol.py"
#: The modules whose loops dispatch on message types.
HANDLER_SUFFIXES: tuple[str, ...] = (
    "core/master.py",
    "core/slave.py",
    "core/standby.py",
    "core/collector.py",
    "baselines/framework.py",
)
#: The fully qualified module dispatchers import message types from.
PROTOCOL_MODULE = "repro.core.protocol"

#: The abstract base — not itself a wire message.
_BASE_CLASS = "Message"


def _message_classes(proto: SourceFile) -> dict[str, int]:
    """``{class name: def line}`` of Message subclasses (transitively)."""
    bases: dict[str, list[str]] = {}
    lines: dict[str, int] = {}
    for node in ast.walk(proto.tree):
        if isinstance(node, ast.ClassDef):
            bases[node.name] = [
                base.id for base in node.bases if isinstance(base, ast.Name)
            ]
            lines[node.name] = node.lineno

    def derives_from_message(name: str, seen: frozenset[str]) -> bool:
        if name in seen:
            return False
        return any(
            parent == _BASE_CLASS
            or (parent in bases and derives_from_message(parent, seen | {name}))
            for parent in bases.get(name, [])
        )

    return {
        name: lines[name]
        for name in bases
        if name != _BASE_CLASS and derives_from_message(name, frozenset())
    }


def _type_arg_names(node: ast.expr) -> list[tuple[str, int]]:
    """Names in a dispatch-type argument (a name or a tuple of names)."""
    if isinstance(node, ast.Tuple):
        out: list[tuple[str, int]] = []
        for element in node.elts:
            out.extend(_type_arg_names(element))
        return out
    name = terminal_name(node)
    return [(name, node.lineno)] if name is not None else []


@register
class ProtocolExhaustiveness(ProjectRule):
    """PROTO001: every sent message dispatched, no dead protocol surface."""

    id = "PROTO001"
    summary = (
        "every protocol message must be constructed and (if sent) "
        "dispatched by a node loop; no dispatch of unknown messages"
    )

    def check_project(self, project: Project) -> t.Iterator[Finding]:
        proto = project.find(PROTOCOL_SUFFIX)
        if proto is None:
            return  # nothing to cross-check against
        messages = _message_classes(proto)
        if not messages:
            return

        dispatched: set[str] = set()
        sent: set[str] = set()
        constructed: set[str] = set()
        unknown: list[Finding] = []

        handlers = project.matching(HANDLER_SUFFIXES)
        for src in handlers:
            imports = ImportTable(src.tree)
            for node in ast.walk(src.tree):
                if not isinstance(node, ast.Call):
                    continue
                args: list[tuple[str, int]] = []
                if (
                    isinstance(node.func, ast.Attribute)
                    and node.func.attr == "recv_expect"
                ):
                    for arg in node.args[1:]:
                        args.extend(_type_arg_names(arg))
                elif (
                    isinstance(node.func, ast.Name)
                    and node.func.id == "isinstance"
                    and len(node.args) == 2
                ):
                    args.extend(_type_arg_names(node.args[1]))
                for name, line in args:
                    resolved = imports.resolve(ast.Name(id=name, ctx=ast.Load()))
                    from_protocol = resolved is not None and resolved.startswith(
                        PROTOCOL_MODULE + "."
                    )
                    # For protocol imports validate the *original* name
                    # (aliases included); otherwise fall back to the local
                    # spelling and leave foreign types alone.
                    original = (
                        resolved.rsplit(".", 1)[1]
                        if from_protocol and resolved is not None
                        else name
                    )
                    if original in messages:
                        dispatched.add(original)
                    elif from_protocol:
                        unknown.append(
                            Finding(
                                path=src.path,
                                line=line,
                                rule=self.id,
                                message=(
                                    f"dispatch names `{name}`, which is not "
                                    f"a message type in {PROTOCOL_SUFFIX} — "
                                    "dead or stale handler"
                                ),
                            )
                        )

        for path in sorted(project.files):
            src = project.files[path]
            if src is proto:
                continue
            for node in ast.walk(src.tree):
                if not isinstance(node, ast.Call):
                    continue
                func_name = terminal_name(node.func)
                if func_name in messages:
                    constructed.add(t.cast(str, func_name))
                if (
                    isinstance(node.func, ast.Attribute)
                    and node.func.attr == "send"
                    and len(node.args) >= 2
                    and isinstance(node.args[1], ast.Call)
                ):
                    payload = terminal_name(node.args[1].func)
                    if payload in messages:
                        sent.add(t.cast(str, payload))

        yield from sorted(unknown)
        for name in sorted(messages):
            if name in sent and name not in dispatched:
                yield Finding(
                    path=proto.path,
                    line=messages[name],
                    rule=self.id,
                    message=(
                        f"message `{name}` is sent but no node loop "
                        "dispatches it (recv_expect/isinstance in "
                        f"{', '.join(HANDLER_SUFFIXES)})"
                    ),
                )
            if name not in constructed:
                yield Finding(
                    path=proto.path,
                    line=messages[name],
                    rule=self.id,
                    message=(
                        f"message `{name}` is never constructed outside "
                        f"{PROTOCOL_SUFFIX} — dead protocol surface"
                    ),
                )
