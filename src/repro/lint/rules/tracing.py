"""OBS001/OBS002 — observability hot paths must guard on the null object.

The observability layer's zero-overhead contract (PR 1) is that an
instrumented hot path pays one attribute load and branch when tracing
is off::

    if tracer.enabled:
        tracer.emit(SplitEvent(t=now, node=self.node_id, ...))

An unguarded ``tracer.emit(Event(...))`` still *constructs* the event —
allocation, field packing, tuple copies — on every call, defeating the
contract precisely on the paths hot enough to have been instrumented.

The rule accepts two guard shapes:

* the emit is lexically inside ``if <recv>.enabled:`` (possibly as one
  conjunct of an ``and``), where ``<recv>`` is the same dotted
  receiver as the emit call's;
* the enclosing function starts with an early bail-out
  ``if not <recv>.enabled: return`` (or ``raise``/``continue``).

The :mod:`repro.obs` package itself is exempt — the tracer's own
``emit`` is where the enabled check lives.

OBS002 extends the same discipline to the typed metric registry
(:mod:`repro.obs.metrics`): instruments are bound to ``m_``-prefixed
attributes at wiring time, and every hot-path update
(``inc``/``set``/``add``/``observe``/``observe_many``) must sit behind
``if <...>registry.enabled:`` — the null instruments make unguarded
updates *correct*, but each one still pays a method call and argument
construction (often a list or comprehension) per invocation.
"""

from __future__ import annotations

import ast
import typing as t

from repro.lint.astutil import dotted, terminal_name
from repro.lint.finding import Finding
from repro.lint.registry import FileRule, register
from repro.lint.source import SourceFile

#: The tracer implementation is allowed to call emit unguarded.
TRACING_EXEMPT_FRAGMENTS: tuple[str, ...] = ("repro/obs/",)

_FuncNode = t.Union[ast.FunctionDef, ast.AsyncFunctionDef]


def _looks_like_tracer(receiver: ast.expr) -> bool:
    name = terminal_name(receiver)
    return name is not None and name.endswith("tracer")


def _guarded_receivers(test: ast.expr) -> set[str]:
    """Dotted receivers asserted enabled by an if-test.

    Handles ``X.enabled`` and any ``and``-conjunction containing it.
    """
    out: set[str] = set()
    stack: list[ast.expr] = [test]
    while stack:
        node = stack.pop()
        if isinstance(node, ast.BoolOp) and isinstance(node.op, ast.And):
            stack.extend(node.values)
        elif isinstance(node, ast.Attribute) and node.attr == "enabled":
            receiver = dotted(node.value)
            if receiver is not None:
                out.add(receiver)
    return out


def _early_bailout_receivers(func: _FuncNode) -> set[str]:
    """Receivers protected by ``if not X.enabled: return`` in *func*."""
    out: set[str] = set()
    for stmt in func.body:
        if not isinstance(stmt, ast.If):
            continue
        test = stmt.test
        if not (isinstance(test, ast.UnaryOp) and isinstance(test.op, ast.Not)):
            continue
        if not any(
            isinstance(s, (ast.Return, ast.Raise, ast.Continue)) for s in stmt.body
        ):
            continue
        out |= _guarded_receivers(test.operand)
    return out


@register
class GuardedTraceEmit(FileRule):
    """OBS001: ``tracer.emit(...)`` without the ``tracer.enabled`` guard."""

    id = "OBS001"
    summary = (
        "tracer.emit(Event(...)) must be guarded by `if tracer.enabled:` "
        "(event construction is the cost, not the emit)"
    )

    def check_file(self, src: SourceFile) -> t.Iterator[Finding]:
        if any(fragment in src.path for fragment in TRACING_EXEMPT_FRAGMENTS):
            return
        yield from self._walk(src, src.tree, frozenset())

    def _walk(
        self, src: SourceFile, node: ast.AST, guards: frozenset[str]
    ) -> t.Iterator[Finding]:
        for child in ast.iter_child_nodes(node):
            yield from self._visit(src, child, guards)

    def _visit(
        self, src: SourceFile, node: ast.AST, guards: frozenset[str]
    ) -> t.Iterator[Finding]:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield from self._walk(
                src, node, guards | _early_bailout_receivers(node)
            )
            return
        if isinstance(node, ast.If):
            inside = guards | _guarded_receivers(node.test)
            for stmt in node.body:
                yield from self._visit(src, stmt, inside)
            for stmt in node.orelse:
                yield from self._visit(src, stmt, guards)
            return
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr == "emit"
            and _looks_like_tracer(node.func.value)
        ):
            receiver = dotted(node.func.value)
            if receiver is not None and receiver not in guards:
                yield Finding(
                    path=src.path,
                    line=node.lineno,
                    rule=self.id,
                    message=(
                        f"`{receiver}.emit(...)` constructs its event "
                        f"unconditionally — guard with `if {receiver}."
                        "enabled:` so disabled runs pay only the branch"
                    ),
                )
            # Still visit arguments: nested emits are implausible but cheap.
        yield from self._walk(src, node, guards)


#: Hot-path mutators of registry instruments (OBS002).
METRIC_UPDATE_METHODS: frozenset[str] = frozenset(
    {"inc", "set", "add", "observe", "observe_many"}
)
#: Attribute prefix marking a bound instrument (`self.m_outputs = ...`).
METRIC_ATTR_PREFIX = "m_"


def _looks_like_instrument(receiver: ast.expr) -> bool:
    name = terminal_name(receiver)
    return name is not None and name.startswith(METRIC_ATTR_PREFIX)


def _registry_guarded(guards: frozenset[str], receiver: str) -> bool:
    """True when some active guard covers this instrument update.

    Accepts a guard on the instrument itself or on any receiver whose
    terminal name ends with ``registry`` (the idiomatic ``if
    self.registry.enabled:`` covering a block of instrument updates).
    """
    if receiver in guards:
        return True
    return any(guard.split(".")[-1].endswith("registry") for guard in guards)


@register
class GuardedMetricUpdate(FileRule):
    """OBS002: ``m_*.inc(...)`` etc. without a ``registry.enabled`` guard."""

    id = "OBS002"
    summary = (
        "metric instrument updates (m_*.inc/set/add/observe...) must be "
        "guarded by `if <...>registry.enabled:` — null instruments keep "
        "unguarded updates correct but not free"
    )

    def check_file(self, src: SourceFile) -> t.Iterator[Finding]:
        if any(fragment in src.path for fragment in TRACING_EXEMPT_FRAGMENTS):
            return
        yield from self._walk(src, src.tree, frozenset())

    def _walk(
        self, src: SourceFile, node: ast.AST, guards: frozenset[str]
    ) -> t.Iterator[Finding]:
        for child in ast.iter_child_nodes(node):
            yield from self._visit(src, child, guards)

    def _visit(
        self, src: SourceFile, node: ast.AST, guards: frozenset[str]
    ) -> t.Iterator[Finding]:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield from self._walk(
                src, node, guards | _early_bailout_receivers(node)
            )
            return
        if isinstance(node, ast.If):
            inside = guards | _guarded_receivers(node.test)
            for stmt in node.body:
                yield from self._visit(src, stmt, inside)
            for stmt in node.orelse:
                yield from self._visit(src, stmt, guards)
            return
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr in METRIC_UPDATE_METHODS
            and _looks_like_instrument(node.func.value)
        ):
            receiver = dotted(node.func.value)
            if receiver is not None and not _registry_guarded(guards, receiver):
                yield Finding(
                    path=src.path,
                    line=node.lineno,
                    rule=self.id,
                    message=(
                        f"`{receiver}.{node.func.attr}(...)` updates a "
                        "metric instrument unconditionally — guard with "
                        "`if <...>registry.enabled:` so disabled runs pay "
                        "only the branch"
                    ),
                )
        yield from self._walk(src, node, guards)
