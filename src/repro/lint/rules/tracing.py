"""OBS001 — trace-event construction must be behind the null-tracer check.

The observability layer's zero-overhead contract (PR 1) is that an
instrumented hot path pays one attribute load and branch when tracing
is off::

    if tracer.enabled:
        tracer.emit(SplitEvent(t=now, node=self.node_id, ...))

An unguarded ``tracer.emit(Event(...))`` still *constructs* the event —
allocation, field packing, tuple copies — on every call, defeating the
contract precisely on the paths hot enough to have been instrumented.

The rule accepts two guard shapes:

* the emit is lexically inside ``if <recv>.enabled:`` (possibly as one
  conjunct of an ``and``), where ``<recv>`` is the same dotted
  receiver as the emit call's;
* the enclosing function starts with an early bail-out
  ``if not <recv>.enabled: return`` (or ``raise``/``continue``).

The :mod:`repro.obs` package itself is exempt — the tracer's own
``emit`` is where the enabled check lives.
"""

from __future__ import annotations

import ast
import typing as t

from repro.lint.astutil import dotted, terminal_name
from repro.lint.finding import Finding
from repro.lint.registry import FileRule, register
from repro.lint.source import SourceFile

#: The tracer implementation is allowed to call emit unguarded.
TRACING_EXEMPT_FRAGMENTS: tuple[str, ...] = ("repro/obs/",)

_FuncNode = t.Union[ast.FunctionDef, ast.AsyncFunctionDef]


def _looks_like_tracer(receiver: ast.expr) -> bool:
    name = terminal_name(receiver)
    return name is not None and name.endswith("tracer")


def _guarded_receivers(test: ast.expr) -> set[str]:
    """Dotted receivers asserted enabled by an if-test.

    Handles ``X.enabled`` and any ``and``-conjunction containing it.
    """
    out: set[str] = set()
    stack: list[ast.expr] = [test]
    while stack:
        node = stack.pop()
        if isinstance(node, ast.BoolOp) and isinstance(node.op, ast.And):
            stack.extend(node.values)
        elif isinstance(node, ast.Attribute) and node.attr == "enabled":
            receiver = dotted(node.value)
            if receiver is not None:
                out.add(receiver)
    return out


def _early_bailout_receivers(func: _FuncNode) -> set[str]:
    """Receivers protected by ``if not X.enabled: return`` in *func*."""
    out: set[str] = set()
    for stmt in func.body:
        if not isinstance(stmt, ast.If):
            continue
        test = stmt.test
        if not (isinstance(test, ast.UnaryOp) and isinstance(test.op, ast.Not)):
            continue
        if not any(
            isinstance(s, (ast.Return, ast.Raise, ast.Continue)) for s in stmt.body
        ):
            continue
        out |= _guarded_receivers(test.operand)
    return out


@register
class GuardedTraceEmit(FileRule):
    """OBS001: ``tracer.emit(...)`` without the ``tracer.enabled`` guard."""

    id = "OBS001"
    summary = (
        "tracer.emit(Event(...)) must be guarded by `if tracer.enabled:` "
        "(event construction is the cost, not the emit)"
    )

    def check_file(self, src: SourceFile) -> t.Iterator[Finding]:
        if any(fragment in src.path for fragment in TRACING_EXEMPT_FRAGMENTS):
            return
        yield from self._walk(src, src.tree, frozenset())

    def _walk(
        self, src: SourceFile, node: ast.AST, guards: frozenset[str]
    ) -> t.Iterator[Finding]:
        for child in ast.iter_child_nodes(node):
            yield from self._visit(src, child, guards)

    def _visit(
        self, src: SourceFile, node: ast.AST, guards: frozenset[str]
    ) -> t.Iterator[Finding]:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield from self._walk(
                src, node, guards | _early_bailout_receivers(node)
            )
            return
        if isinstance(node, ast.If):
            inside = guards | _guarded_receivers(node.test)
            for stmt in node.body:
                yield from self._visit(src, stmt, inside)
            for stmt in node.orelse:
                yield from self._visit(src, stmt, guards)
            return
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr == "emit"
            and _looks_like_tracer(node.func.value)
        ):
            receiver = dotted(node.func.value)
            if receiver is not None and receiver not in guards:
                yield Finding(
                    path=src.path,
                    line=node.lineno,
                    rule=self.id,
                    message=(
                        f"`{receiver}.emit(...)` constructs its event "
                        f"unconditionally — guard with `if {receiver}."
                        "enabled:` so disabled runs pay only the branch"
                    ),
                )
            # Still visit arguments: nested emits are implausible but cheap.
        yield from self._walk(src, node, guards)
