"""Taint dataflow over the call graph.

The lattice is deliberately tiny — per function, per taint kind, one of
``{clean, tainted}`` plus the *witness*: the next hop toward an
external sink and the sink's name.  Taint is defined by a
:class:`TaintSpec`:

* ``is_source(name)`` — which external calls start the taint
  (``time.time``, ``random.*``, ``socket.*``, ...);
* ``is_barrier(path)`` — modules *entitled* to the sink.  A barrier
  function neither becomes tainted nor propagates taint: the thread
  runtime may read the clock, ``simul/rng.py`` may construct
  generators, the transports may block.  What the rules flag is the
  sink smuggled through **non**-barrier helpers.

Propagation is a breadth-first fixpoint on the reversed call graph:
functions directly calling a source are depth 0; every non-barrier
caller of a tainted function is tainted one step further out.  The
visited-set makes the iteration cycle-safe (mutual recursion
terminates), and BFS order makes every recorded witness a *shortest*
chain — `--explain` paths stay readable.  Ties are broken by sorted
qualname order, so runs are deterministic.
"""

from __future__ import annotations

import typing as t
from dataclasses import dataclass

from repro.lint.callgraph import CallGraph

__all__ = ["TaintSpec", "ChainStep", "TaintResult", "propagate"]


@dataclass(frozen=True)
class TaintSpec:
    """What taints (external sinks) and what absorbs (barrier modules)."""

    name: str
    is_source: t.Callable[[str], bool]
    is_barrier: t.Callable[[str], bool]


@dataclass(frozen=True)
class ChainStep:
    """One hop of a witness chain: *qualname* calls onward at *path:line*."""

    qualname: str
    path: str
    lineno: int

    def render(self) -> str:
        return f"{self.qualname} ({self.path}:{self.lineno})"


@dataclass(frozen=True)
class _Taint:
    depth: int
    next_hop: str | None  #: tainted callee, or ``None`` at the sink call
    path: str
    lineno: int
    sink: str  #: external sink name this chain reaches


class TaintResult:
    """Tainted functions plus witness-chain reconstruction."""

    def __init__(self, spec: TaintSpec) -> None:
        self.spec = spec
        self.tainted: dict[str, _Taint] = {}

    def __contains__(self, qualname: str) -> bool:
        return qualname in self.tainted

    def sink(self, qualname: str) -> str:
        return self.tainted[qualname].sink

    def chain(self, qualname: str) -> list[ChainStep]:
        """Witness hops from *qualname* down to (excluding) the sink."""
        steps: list[ChainStep] = []
        seen: set[str] = set()
        cur: str | None = qualname
        while cur is not None and cur not in seen:
            seen.add(cur)
            taint = self.tainted.get(cur)
            if taint is None:
                break
            steps.append(ChainStep(cur, taint.path, taint.lineno))
            cur = taint.next_hop
        return steps


def propagate(graph: CallGraph, spec: TaintSpec) -> TaintResult:
    """Fixpoint the taint lattice for *spec* over *graph*."""
    result = TaintResult(spec)
    tainted = result.tainted
    frontier: list[str] = []

    for caller in sorted(graph.externals):
        if spec.is_barrier(graph.path_of(caller)):
            continue
        for ext in graph.externals[caller]:
            if spec.is_source(ext.name):
                tainted[caller] = _Taint(
                    depth=0,
                    next_hop=None,
                    path=ext.path,
                    lineno=ext.lineno,
                    sink=ext.name,
                )
                frontier.append(caller)
                break

    depth = 0
    while frontier:
        depth += 1
        next_frontier: list[str] = []
        for callee in sorted(frontier):
            for site in graph.callers_of.get(callee, []):
                caller = site.caller
                if caller in tainted:
                    continue
                if spec.is_barrier(graph.path_of(caller)):
                    continue
                tainted[caller] = _Taint(
                    depth=depth,
                    next_hop=callee,
                    path=site.path,
                    lineno=site.lineno,
                    sink=tainted[callee].sink,
                )
                next_frontier.append(caller)
        frontier = next_frontier
    return result
