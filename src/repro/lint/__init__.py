"""Codebase-specific static analysis (``swjoin lint``).

The reproduction's correctness rests on invariants Python cannot
express in types: deterministic simulated time, registry-routed
randomness, null-tracer-guarded instrumentation, an exhaustively
dispatched wire protocol, and config knobs that actually steer the
system.  This package checks them statically:

* a visitor **engine** over per-file ASTs plus a cross-file project
  view (:mod:`repro.lint.engine`, :mod:`repro.lint.source`);
* a whole-project **symbol table and call graph**
  (:mod:`repro.lint.symbols`, :mod:`repro.lint.callgraph`) feeding a
  cycle-safe **taint dataflow** fixpoint (:mod:`repro.lint.dataflow`)
  — the interprocedural rules SIM004/SIM005/PERF001 flag call *chains*
  that reach the wall clock, unseeded randomness, or blocking I/O;
* a **rule registry** with eleven built-in rules
  (:mod:`repro.lint.rules`);
* line-scoped ``# lint: disable=<rule>`` **pragmas** (honored by file
  and project rules alike) and a shrink-only **baseline** file for
  triaged debt (:mod:`repro.lint.baseline`);
* a content-hash **result cache** (:mod:`repro.lint.cache`) keeping
  the interprocedural pass instant in pre-commit;
* the ``swjoin lint`` CLI (:mod:`repro.lint.cli`) — including
  ``--explain RULE file:line``, which prints a finding's witness call
  chain — and this importable API for tests::

      from repro.lint import lint_paths
      assert lint_paths(["src/repro"]).ok
"""

from repro.lint.baseline import Baseline, BaselineEntry
from repro.lint.cache import ResultCache
from repro.lint.engine import LintResult, collect_files, lint_paths, lint_sources
from repro.lint.finding import Finding
from repro.lint.registry import RULES, FileRule, ProjectRule, Rule, register

__all__ = [
    "Baseline",
    "BaselineEntry",
    "Finding",
    "LintResult",
    "ResultCache",
    "Rule",
    "FileRule",
    "ProjectRule",
    "RULES",
    "register",
    "collect_files",
    "lint_paths",
    "lint_sources",
]
