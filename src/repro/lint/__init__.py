"""Codebase-specific static analysis (``swjoin lint``).

The reproduction's correctness rests on invariants Python cannot
express in types: deterministic simulated time, registry-routed
randomness, null-tracer-guarded instrumentation, an exhaustively
dispatched wire protocol, and config knobs that actually steer the
system.  This package checks them statically:

* a visitor **engine** over per-file ASTs plus a cross-file project
  view (:mod:`repro.lint.engine`, :mod:`repro.lint.source`);
* a **rule registry** with six built-in rules
  (:mod:`repro.lint.rules`);
* line-scoped ``# lint: disable=<rule>`` **pragmas** and a shrink-only
  **baseline** file for triaged debt (:mod:`repro.lint.baseline`);
* the ``swjoin lint`` CLI (:mod:`repro.lint.cli`) and this importable
  API for tests::

      from repro.lint import lint_paths
      assert lint_paths(["src/repro"]).ok
"""

from repro.lint.baseline import Baseline, BaselineEntry
from repro.lint.engine import LintResult, collect_files, lint_paths, lint_sources
from repro.lint.finding import Finding
from repro.lint.registry import RULES, FileRule, ProjectRule, Rule, register

__all__ = [
    "Baseline",
    "BaselineEntry",
    "Finding",
    "LintResult",
    "Rule",
    "FileRule",
    "ProjectRule",
    "RULES",
    "register",
    "collect_files",
    "lint_paths",
    "lint_sources",
]
