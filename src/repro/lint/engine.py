"""The lint engine: collect files, run rules, filter findings.

Entry points:

* :func:`lint_paths` — lint files/directories on disk (what the CLI
  and the self-check test call);
* :func:`lint_sources` — lint an in-memory ``{path: source}`` mapping
  (what the rule fixture tests call).

Findings flow through two filters: line-scoped ``# lint: disable=``
pragmas (dropped, counted), then the baseline (split into *fresh* and
*baselined*).  A run is :attr:`LintResult.ok` when nothing fresh was
found **and** no baseline entry went stale — the baseline may only
shrink.
"""

from __future__ import annotations

import os
import typing as t
from dataclasses import dataclass, field

import repro.lint.rules  # noqa: F401  — registers the built-in rules
from repro.lint.baseline import Baseline, BaselineEntry
from repro.lint.cache import ResultCache
from repro.lint.finding import Finding
from repro.lint.registry import RULES, FileRule, ProjectRule
from repro.lint.source import Project, SourceFile

__all__ = ["LintResult", "collect_files", "lint_sources", "lint_paths"]

#: Pseudo-rule id for files the engine cannot parse.
PARSE_RULE = "PARSE"


@dataclass
class LintResult:
    """Outcome of one lint run."""

    #: All findings that survived pragma suppression, sorted.
    findings: list[Finding] = field(default_factory=list)
    #: Findings not covered by the baseline (these fail the run).
    fresh: list[Finding] = field(default_factory=list)
    #: Findings accepted by the baseline.
    baselined: list[Finding] = field(default_factory=list)
    #: Baseline entries that matched nothing (these also fail the run).
    stale_baseline: list[BaselineEntry] = field(default_factory=list)
    #: Count of findings dropped by ``# lint: disable=`` pragmas.
    suppressed: int = 0
    #: Number of files linted.
    n_files: int = 0

    @property
    def ok(self) -> bool:
        return not self.fresh and not self.stale_baseline

    def summary(self) -> str:
        parts = [
            f"{self.n_files} files",
            f"{len(self.fresh)} new finding(s)",
        ]
        if self.baselined:
            parts.append(f"{len(self.baselined)} baselined")
        if self.stale_baseline:
            parts.append(f"{len(self.stale_baseline)} stale baseline entr(y/ies)")
        if self.suppressed:
            parts.append(f"{self.suppressed} pragma-suppressed")
        return ", ".join(parts)


def collect_files(paths: t.Sequence[str]) -> list[str]:
    """Expand files/directories into a sorted, de-duplicated .py list."""
    out: dict[str, None] = {}
    for path in paths:
        if os.path.isdir(path):
            for root, dirs, names in os.walk(path):
                dirs[:] = sorted(d for d in dirs if d != "__pycache__")
                for name in sorted(names):
                    if name.endswith(".py"):
                        out[os.path.join(root, name)] = None
        else:
            out[path] = None
    return sorted(out)


def _normalize(path: str) -> str:
    return path.replace(os.sep, "/")


def _compute_findings(
    sources: t.Mapping[str, str],
    only: t.Collection[str] | None,
) -> tuple[list[Finding], int]:
    """Run every selected rule; returns post-pragma findings + suppressed.

    Pragma suppression is applied here, uniformly: a finding from a
    *project* rule (PROTO001/PROTO002, the taint rules, CFG001) honors a
    line-scoped ``# lint: disable=`` exactly like a file-rule finding —
    the filter keys on the finding's anchor, not on the rule flavor.
    """
    files: dict[str, SourceFile] = {}
    raw: list[Finding] = []
    for path in sorted(sources):
        norm = _normalize(path)
        try:
            files[norm] = SourceFile.parse(norm, sources[path])
        except SyntaxError as exc:
            raw.append(
                Finding(
                    path=norm,
                    line=exc.lineno or 1,
                    rule=PARSE_RULE,
                    message=f"cannot parse: {exc.msg}",
                )
            )
    project = Project(files)

    for rule_id in sorted(RULES):
        if only is not None and rule_id not in only:
            continue
        rule = RULES[rule_id]
        if isinstance(rule, FileRule):
            for src in project.files.values():
                raw.extend(rule.check_file(src))
        elif isinstance(rule, ProjectRule):
            raw.extend(rule.check_project(project))

    findings: list[Finding] = []
    suppressed = 0
    for finding in sorted(set(raw)):
        src = project.files.get(finding.path)
        if src is not None and src.is_suppressed(finding.rule, finding.line):
            suppressed += 1
            continue
        findings.append(finding)
    return findings, suppressed


def lint_sources(
    sources: t.Mapping[str, str],
    baseline: Baseline | None = None,
    only: t.Collection[str] | None = None,
    cache: ResultCache | None = None,
) -> LintResult:
    """Lint an in-memory ``{path: source text}`` mapping.

    With a *cache*, a run over byte-identical sources (same rule
    selection, same linter revision) loads its post-pragma findings
    instead of recomputing; the baseline split always runs fresh.
    """
    result = LintResult(n_files=len(sources))
    key = ""
    cached: tuple[list[Finding], int, int] | None = None
    if cache is not None:
        key = ResultCache.key_for(sources, RULES, only)
        cached = cache.lookup(key)

    if cached is not None:
        findings, result.suppressed, result.n_files = cached
    else:
        findings, result.suppressed = _compute_findings(sources, only)
        if cache is not None:
            cache.store(key, findings, result.suppressed, result.n_files)

    for finding in findings:
        result.findings.append(finding)
        if baseline is not None and baseline.covers(finding):
            result.baselined.append(finding)
        else:
            result.fresh.append(finding)

    if baseline is not None:
        result.stale_baseline = baseline.stale(result.findings)
    return result


def lint_paths(
    paths: t.Sequence[str],
    baseline: Baseline | None = None,
    only: t.Collection[str] | None = None,
    cache: ResultCache | None = None,
) -> LintResult:
    """Lint files/directories on disk."""
    sources: dict[str, str] = {}
    for file_path in collect_files(paths):
        with open(file_path, "r", encoding="utf-8") as fh:
            sources[file_path] = fh.read()
    return lint_sources(sources, baseline=baseline, only=only, cache=cache)
