"""Rule interfaces and the global rule registry.

Two rule flavours exist:

* :class:`FileRule` — inspects one parsed module at a time (purity
  rules: wall-clock, randomness, float equality, trace guards);
* :class:`ProjectRule` — sees the whole file set (cross-module
  invariants: protocol exhaustiveness, config-field liveness).

Rules self-register via the :func:`register` decorator; importing
:mod:`repro.lint.rules` populates :data:`RULES` with the built-in set.
"""

from __future__ import annotations

import typing as t

from repro.lint.finding import Finding
from repro.lint.source import Project, SourceFile

__all__ = ["Rule", "FileRule", "ProjectRule", "RULES", "register"]


class Rule:
    """Base class: a rule has a stable id and a one-line summary."""

    id: t.ClassVar[str] = ""
    summary: t.ClassVar[str] = ""


class FileRule(Rule):
    """A rule that inspects one parsed file at a time."""

    def check_file(self, src: SourceFile) -> t.Iterator[Finding]:
        raise NotImplementedError  # pragma: no cover


class ProjectRule(Rule):
    """A rule that needs the whole file set (cross-module invariants)."""

    def check_project(self, project: Project) -> t.Iterator[Finding]:
        raise NotImplementedError  # pragma: no cover


#: Registered rules, keyed by rule id.
RULES: dict[str, Rule] = {}

_R = t.TypeVar("_R", bound=type[Rule])


def register(cls: _R) -> _R:
    """Class decorator: instantiate and register a rule by its id."""
    if not cls.id:
        raise ValueError(f"rule {cls.__name__} has no id")
    if cls.id in RULES:
        raise ValueError(f"duplicate rule id {cls.id}")
    RULES[cls.id] = cls()
    return cls
