"""Parsed source files, suppression pragmas, and the project view.

A :class:`SourceFile` is one parsed module: its text, its AST, and the
``# lint: disable=<rule>`` pragmas found in its comments.  A
:class:`Project` is the whole file set handed to a lint run — the unit
cross-module rules (protocol exhaustiveness, config-field liveness)
operate on.

Pragma syntax
-------------

A comment of the form ::

    x = time.time()  # lint: disable=SIM001
    y = a == b       # lint: disable=SIM003,SIM001

suppresses the named rules for findings anchored **on that line** (for
a multi-line statement, the line where the statement starts).  Pragmas
are deliberately line-scoped: a file-wide opt-out would defeat the
invariants the rules encode — use the baseline for triaged debt.
"""

from __future__ import annotations

import ast
import io
import tokenize
import typing as t
from dataclasses import dataclass

__all__ = ["SourceFile", "Project", "parse_pragmas"]

_PRAGMA_PREFIX = "lint:"
_DISABLE = "disable="


def parse_pragmas(text: str) -> dict[int, frozenset[str]]:
    """Map line number to the rule ids disabled on that line."""
    disabled: dict[int, frozenset[str]] = {}
    reader = io.StringIO(text).readline
    for tok in tokenize.generate_tokens(reader):
        if tok.type != tokenize.COMMENT:
            continue
        comment = tok.string.lstrip("#").strip()
        if not comment.startswith(_PRAGMA_PREFIX):
            continue
        directive = comment[len(_PRAGMA_PREFIX) :].strip()
        if not directive.startswith(_DISABLE):
            continue
        rules = frozenset(
            part.strip()
            for part in directive[len(_DISABLE) :].split(",")
            if part.strip()
        )
        if rules:
            line = tok.start[0]
            disabled[line] = disabled.get(line, frozenset()) | rules
    return disabled


@dataclass
class SourceFile:
    """One parsed module: path, text, AST, and suppression pragmas."""

    path: str
    text: str
    tree: ast.Module
    disabled: dict[int, frozenset[str]]

    @classmethod
    def parse(cls, path: str, text: str) -> "SourceFile":
        """Parse *text*; raises :class:`SyntaxError` on malformed code."""
        tree = ast.parse(text, filename=path)
        return cls(path=path, text=text, tree=tree, disabled=parse_pragmas(text))

    def is_suppressed(self, rule: str, line: int) -> bool:
        return rule in self.disabled.get(line, frozenset())


@dataclass
class Project:
    """The file set of one lint run, keyed by normalized posix path."""

    files: dict[str, SourceFile]

    def callgraph(self) -> "t.Any":
        """The project call graph, built once and memoized.

        Several interprocedural rules (SIM004/SIM005/PERF001) share the
        same symbol table and call graph; building it lazily keeps
        ``--select SIM001``-style runs as cheap as before.
        """
        graph = self.__dict__.get("_callgraph")
        if graph is None:
            from repro.lint.callgraph import CallGraph

            graph = CallGraph.build(self)
            self.__dict__["_callgraph"] = graph
        return graph

    def find(self, suffix: str) -> SourceFile | None:
        """The first file (by sorted path) whose path ends with *suffix*."""
        for path in sorted(self.files):
            if path.endswith(suffix):
                return self.files[path]
        return None

    def matching(self, suffixes: tuple[str, ...]) -> list[SourceFile]:
        """All files whose path ends with any of *suffixes* (sorted)."""
        return [
            self.files[path]
            for path in sorted(self.files)
            if path.endswith(suffixes)
        ]
