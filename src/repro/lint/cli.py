"""The ``swjoin lint`` subcommand.

Examples::

    swjoin lint                        # lint src/repro with the default baseline
    swjoin lint src/repro tests        # explicit paths
    swjoin lint --select SIM001        # one rule only
    swjoin lint --list-rules
    swjoin lint --write-baseline       # accept current findings (triage them!)
    swjoin lint --cache .swjoin-lint-cache.json   # content-hash result cache
    swjoin lint --explain SIM004 src/repro/foo.py:42  # print the taint chain

Exit status: 0 when nothing fresh was found and no baseline entry is
stale, 1 otherwise, 2 for usage errors (e.g. a malformed baseline).
"""

from __future__ import annotations

import argparse
import json
import sys
import typing as t

from repro.errors import LintError
from repro.lint.baseline import Baseline
from repro.lint.cache import ResultCache
from repro.lint.engine import LintResult, lint_paths
from repro.lint.registry import RULES

__all__ = ["add_lint_parser", "cmd_lint", "main"]

#: Baseline used when ``--baseline`` is not given and the file exists.
DEFAULT_BASELINE = "lint-baseline.txt"
#: Default lint target.
DEFAULT_PATHS = ("src/repro",)


def add_lint_parser(sub: t.Any) -> None:
    p = sub.add_parser(
        "lint",
        help="run the codebase-specific static-analysis pass",
        description=(
            "Static analysis for simulation purity and protocol "
            "exhaustiveness (rules SIM*/OBS*/PERF*/PROTO*/CFG*).  The "
            "SIM004/SIM005/PERF001 rules are interprocedural: they build "
            "a project call graph and report the witness call chain that "
            "reaches the wall clock, unseeded randomness, or blocking "
            "I/O; use --explain to print a finding's full chain."
        ),
    )
    p.add_argument(
        "paths",
        nargs="*",
        default=list(DEFAULT_PATHS),
        help=f"files/directories to lint (default: {' '.join(DEFAULT_PATHS)})",
    )
    p.add_argument(
        "--baseline",
        metavar="PATH",
        help=(
            "baseline file of triaged findings "
            f"(default: {DEFAULT_BASELINE} when present)"
        ),
    )
    p.add_argument(
        "--no-baseline",
        action="store_true",
        help="ignore any baseline file (report everything as fresh)",
    )
    p.add_argument(
        "--select",
        action="append",
        metavar="RULE",
        help="run only the given rule id (repeatable)",
    )
    p.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="output format",
    )
    p.add_argument(
        "--write-baseline",
        action="store_true",
        help=(
            "write the current findings to the baseline file and exit; "
            "generated entries carry a TODO comment to replace with a "
            "tracking reference"
        ),
    )
    p.add_argument(
        "--list-rules", action="store_true", help="list rule ids and exit"
    )
    p.add_argument(
        "--cache",
        metavar="PATH",
        help=(
            "content-hash result cache file: identical sources + rule "
            "selection load the previous run's findings instead of "
            "re-running the analysis (safe: pragmas are content-keyed, "
            "the baseline is applied after load)"
        ),
    )
    p.add_argument(
        "--explain",
        nargs=2,
        metavar=("RULE", "FILE:LINE"),
        help=(
            "explain one finding: re-run the given rule without a "
            "baseline and print the finding at FILE:LINE together with "
            "its recorded call chain (exit 0 if found, 1 otherwise)"
        ),
    )


def _load_baseline(args: argparse.Namespace) -> tuple[Baseline | None, str]:
    import os

    path = args.baseline or DEFAULT_BASELINE
    if args.no_baseline:
        return None, path
    if args.baseline is None and not os.path.exists(path):
        return None, path
    return Baseline.load(path), path


def _print_text(result: LintResult, stream: t.TextIO) -> None:
    for finding in result.fresh:
        print(finding.render(), file=stream)
    for entry in result.stale_baseline:
        print(
            f"stale baseline entry (fixed? delete it): {entry.render()}",
            file=stream,
        )
    print(f"swjoin lint: {result.summary()}", file=stream)


def _print_json(result: LintResult, stream: t.TextIO) -> None:
    payload = {
        "ok": result.ok,
        "fresh": [f.to_record() for f in result.fresh],
        "baselined": [f.to_record() for f in result.baselined],
        "stale_baseline": [e.key for e in result.stale_baseline],
        "suppressed": result.suppressed,
        "n_files": result.n_files,
    }
    json.dump(payload, stream, indent=2)
    stream.write("\n")


def _cmd_explain(args: argparse.Namespace) -> int:
    """Locate one finding and print it with its witness call chain."""
    rule_id, anchor = args.explain
    if rule_id not in RULES:
        print(f"error: unknown rule {rule_id!r}", file=sys.stderr)
        return 2
    path, sep, line_text = anchor.rpartition(":")
    if not sep or not line_text.isdigit():
        print(
            f"error: --explain anchor must be FILE:LINE, got {anchor!r}",
            file=sys.stderr,
        )
        return 2
    line = int(line_text)
    norm = path.replace("\\", "/")
    result = lint_paths(args.paths, baseline=None, only={rule_id})
    for finding in result.findings:
        if finding.rule != rule_id or finding.line != line:
            continue
        if finding.path != norm and not finding.path.endswith("/" + norm):
            continue
        print(finding.render())
        print(finding.render_chain())
        return 0
    print(
        f"no {rule_id} finding at {anchor} "
        f"(searched {result.n_files} file(s))",
        file=sys.stderr,
    )
    return 1


def cmd_lint(args: argparse.Namespace) -> int:
    if args.list_rules:
        width = max(len(rule_id) for rule_id in RULES)
        for rule_id in sorted(RULES):
            print(f"{rule_id.ljust(width)}  {RULES[rule_id].summary}")
        return 0
    if args.explain:
        return _cmd_explain(args)
    cache = ResultCache(args.cache) if args.cache else None
    if args.write_baseline:
        # Writing replaces whatever baseline exists, so don't require one.
        baseline_path = args.baseline or DEFAULT_BASELINE
        result = lint_paths(args.paths, baseline=None, only=args.select)
        with open(baseline_path, "w", encoding="utf-8") as fh:
            fh.write(Baseline.render(result.findings))
        print(
            f"wrote {len(result.findings)} entr(y/ies) to {baseline_path} — "
            "replace every TODO with a tracking reference"
        )
        return 0
    try:
        baseline, _ = _load_baseline(args)
    except (LintError, OSError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    result = lint_paths(args.paths, baseline=baseline, only=args.select, cache=cache)
    if args.format == "json":
        _print_json(result, sys.stdout)
    else:
        _print_text(result, sys.stdout)
    return 0 if result.ok else 1


def main(argv: t.Sequence[str] | None = None) -> int:
    """Standalone entry point (``python -m repro.lint.cli``)."""
    parser = argparse.ArgumentParser(prog="swjoin-lint")
    sub = parser.add_subparsers(dest="command", required=False)
    add_lint_parser(sub)
    raw = list(argv) if argv is not None else sys.argv[1:]
    if not raw or raw[0] != "lint":
        raw = ["lint", *raw]
    return cmd_lint(parser.parse_args(raw))


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
