"""Shared AST helpers: dotted names and import-alias resolution.

The rules reason about *fully qualified* names (``time.perf_counter``,
``numpy.random.default_rng``) rather than surface spellings, so
``import time as _t; _t.perf_counter()`` and
``from time import perf_counter`` are caught the same way.
"""

from __future__ import annotations

import ast

__all__ = ["dotted", "terminal_name", "ImportTable"]


def dotted(node: ast.expr) -> str | None:
    """``"a.b.c"`` for a Name/Attribute chain, ``None`` otherwise."""
    parts: list[str] = []
    cur: ast.expr = node
    while isinstance(cur, ast.Attribute):
        parts.append(cur.attr)
        cur = cur.value
    if not isinstance(cur, ast.Name):
        return None
    parts.append(cur.id)
    return ".".join(reversed(parts))


def terminal_name(node: ast.expr) -> str | None:
    """The last component of a Name/Attribute chain (``c`` in ``a.b.c``)."""
    if isinstance(node, ast.Attribute):
        return node.attr
    if isinstance(node, ast.Name):
        return node.id
    return None


class ImportTable:
    """Maps a module's local aliases to fully qualified imported names.

    * ``import time`` binds ``time`` -> ``time``;
    * ``import numpy as np`` binds ``np`` -> ``numpy``;
    * ``from time import perf_counter as pc`` binds
      ``pc`` -> ``time.perf_counter``.

    Relative imports are skipped: they cannot name the modules the
    rules ban, and resolving them would need package context.
    """

    def __init__(self, tree: ast.Module) -> None:
        self.aliases: dict[str, str] = {}
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.asname is not None:
                        self.aliases[alias.asname] = alias.name
                    else:
                        root = alias.name.split(".", 1)[0]
                        self.aliases[root] = root
            elif isinstance(node, ast.ImportFrom):
                if node.level or node.module is None:
                    continue
                for alias in node.names:
                    if alias.name == "*":
                        continue
                    local = alias.asname or alias.name
                    self.aliases[local] = f"{node.module}.{alias.name}"

    def resolve(self, node: ast.expr) -> str | None:
        """Fully qualified dotted name of *node*, if import-bound."""
        name = dotted(node)
        if name is None:
            return None
        head, _, rest = name.partition(".")
        full = self.aliases.get(head)
        if full is None:
            return None
        return f"{full}.{rest}" if rest else full
