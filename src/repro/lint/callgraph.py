"""Project call graph over the symbol table.

Every module is walked once; each resolvable call becomes an edge:

* ``helper()`` / ``module.helper()`` — through the module's bindings
  (import aliases, ``from``-imports, first-order callable aliases);
* ``self.method()`` / ``cls.method()`` / ``super().method()`` — through
  the enclosing class and its project-internal MRO;
* ``ClassName(...)`` — an edge to the class's (possibly inherited)
  ``__init__``;
* a bare reference to a project function in call arguments
  (``schedule(self._tick)``) — a ``kind="ref"`` edge, because the
  callee may invoke it (first-order callables taint their consumers).

Calls whose target cannot be named statically (attribute calls on
unknown receivers, higher-order results) produce **no** edge: the
analysis is deliberately first-order and under-approximating, which is
the right polarity for purity linting — resolvable chains must be
clean; unresolvable ones are the transports' dynamic dispatch seams.

Calls that resolve *outside* the project (``time.time()``,
``socket.socket()``) are recorded as :class:`ExternalCall` — these are
the sinks the taint pass (:mod:`repro.lint.dataflow`) starts from.
Module-level statements are attributed to a ``<module>`` pseudo
function so import-time calls participate too.
"""

from __future__ import annotations

import ast
import typing as t
from dataclasses import dataclass, field

from repro.lint.astutil import dotted
from repro.lint.source import Project
from repro.lint.symbols import ModuleInfo, SymbolTable

__all__ = ["CallSite", "ExternalCall", "CallGraph"]

#: Builtins worth tracking as external sinks even though they are never
#: import-bound (PERF001 cares about the file-I/O ones).
_TRACKED_BUILTINS = frozenset({"open", "input", "breakpoint"})


@dataclass(frozen=True, order=True)
class CallSite:
    """One resolved project-internal call edge."""

    caller: str
    callee: str
    path: str
    lineno: int
    kind: str = "call"  #: ``"call"`` or ``"ref"`` (callable passed along)


@dataclass(frozen=True, order=True)
class ExternalCall:
    """One call that resolves outside the project (a potential sink)."""

    caller: str
    name: str
    path: str
    lineno: int


@dataclass
class CallGraph:
    """Edges + external calls, indexed both ways."""

    table: SymbolTable
    calls: dict[str, list[CallSite]] = field(default_factory=dict)
    callers_of: dict[str, list[CallSite]] = field(default_factory=dict)
    externals: dict[str, list[ExternalCall]] = field(default_factory=dict)
    #: Every known caller/callee qualname -> defining file path.
    paths: dict[str, str] = field(default_factory=dict)

    # -- construction ------------------------------------------------------
    @classmethod
    def build(cls, project: Project) -> "CallGraph":
        graph = cls(table=SymbolTable.build(project))
        for qual, fn in graph.table.functions.items():
            graph.paths[qual] = fn.path
        for path in sorted(project.files):
            src = project.files[path]
            mod = graph.table.modules[graph.table.module_of_path[path]]
            pseudo = f"{mod.name}.<module>"
            graph.paths[pseudo] = path
            for node in src.tree.body:
                graph._visit(node, mod, cls_qual=None, func=None)
        for sites in graph.calls.values():
            sites.sort()
        for sites in graph.callers_of.values():
            sites.sort()
        for exts in graph.externals.values():
            exts.sort()
        return graph

    def path_of(self, qualname: str) -> str:
        return self.paths.get(qualname, "")

    def all_callers(self) -> list[str]:
        """Every function that makes at least one recorded call, sorted."""
        return sorted(set(self.calls) | set(self.externals))

    # -- walking -----------------------------------------------------------
    def _visit(
        self,
        node: ast.AST,
        mod: ModuleInfo,
        cls_qual: str | None,
        func: str | None,
    ) -> None:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            # Decorators and default values evaluate in the enclosing
            # scope; the body belongs to the function itself.  Nested
            # defs stay attributed to the outermost function: a closure
            # runs (at the latest) when its owner does.
            for dec in node.decorator_list:
                self._visit(dec, mod, cls_qual, func)
            for default in [*node.args.defaults, *node.args.kw_defaults]:
                if default is not None:
                    self._visit(default, mod, cls_qual, func)
            inner = func
            if inner is None:
                owner = cls_qual or mod.name
                inner = f"{owner}.{node.name}"
            for stmt in node.body:
                self._visit(stmt, mod, cls_qual, inner)
            return
        if isinstance(node, ast.ClassDef):
            for dec in node.decorator_list:
                self._visit(dec, mod, cls_qual, func)
            for base in node.bases:
                self._visit(base, mod, cls_qual, func)
            inner_cls = f"{mod.name}.{node.name}" if func is None else cls_qual
            for stmt in node.body:
                self._visit(stmt, mod, inner_cls, func)
            return
        if isinstance(node, ast.Call):
            caller = func if func is not None else f"{mod.name}.<module>"
            self._record_call(node, mod, cls_qual, caller)
        for child in ast.iter_child_nodes(node):
            self._visit(child, mod, cls_qual, func)

    # -- edge recording ----------------------------------------------------
    def _record_call(
        self, node: ast.Call, mod: ModuleInfo, cls_qual: str | None, caller: str
    ) -> None:
        target = node.func
        if isinstance(target, ast.Name):
            if target.id in mod.bindings:
                resolved = self.table.resolve(mod, target.id)
                if resolved is not None:
                    self._emit(caller, resolved, node.lineno, mod.path)
            elif target.id in _TRACKED_BUILTINS:
                self._add_external(caller, target.id, mod.path, node.lineno)
        elif isinstance(target, ast.Attribute):
            receiver = target.value
            if (
                isinstance(receiver, ast.Name)
                and receiver.id in ("self", "cls")
                and cls_qual is not None
            ):
                method = self.table.find_method(cls_qual, target.attr)
                if method is not None:
                    self._add_call(caller, method, mod.path, node.lineno)
            elif (
                isinstance(receiver, ast.Call)
                and isinstance(receiver.func, ast.Name)
                and receiver.func.id == "super"
                and cls_qual is not None
            ):
                method = self.table.find_method(
                    cls_qual, target.attr, skip_own=True
                )
                if method is not None:
                    self._add_call(caller, method, mod.path, node.lineno)
            else:
                spelling = dotted(target)
                if spelling is not None:
                    resolved = self.table.resolve(mod, spelling)
                    if resolved is not None:
                        self._emit(caller, resolved, node.lineno, mod.path)
        # First-order callables handed onward: a project function
        # referenced (not called) in the arguments may run inside the
        # callee — record a weak ("ref") edge.
        for arg in [*node.args, *[kw.value for kw in node.keywords]]:
            if isinstance(arg, (ast.Name, ast.Attribute)):
                spelling = dotted(arg)
                if spelling is None:
                    continue
                resolved = self.table.resolve(mod, spelling)
                if resolved is None:
                    continue
                fn = self.table.functions.get(self.table.canonical(resolved))
                if fn is not None:
                    self._add_call(
                        caller, fn.qualname, mod.path, node.lineno, kind="ref"
                    )

    def _emit(
        self, caller: str, resolved: str, lineno: int, path: str
    ) -> None:
        fn = self.table.lookup(resolved)
        if fn is not None:
            self._add_call(caller, fn.qualname, path, lineno)
        elif not self.table.is_internal(resolved):
            self._add_external(caller, resolved, path, lineno)
        # Internal-but-unresolved (constants, data attributes): no edge.

    def _add_call(
        self, caller: str, callee: str, path: str, lineno: int, kind: str = "call"
    ) -> None:
        site = CallSite(
            caller=caller, callee=callee, path=path, lineno=lineno, kind=kind
        )
        self.calls.setdefault(caller, []).append(site)
        self.callers_of.setdefault(callee, []).append(site)

    def _add_external(
        self, caller: str, name: str, path: str, lineno: int
    ) -> None:
        self.externals.setdefault(caller, []).append(
            ExternalCall(caller=caller, name=name, path=path, lineno=lineno)
        )
