"""Content-hash result cache for the lint pass.

The interprocedural pass (symbol table + call graph + three taint
fixpoints) is run on every pre-commit hook invocation; the cache makes
the common case — lint the same tree twice — a hash-and-load.

The key is a SHA-256 over

* a schema/revision salt (bumped whenever rule behavior changes, so an
  upgraded linter never serves stale verdicts);
* the registered rule-id set and the ``--select`` restriction;
* every ``(path, content-hash)`` pair of the linted file set, sorted.

Because suppression pragmas live *in* the sources, the cached payload
is the post-pragma finding list (plus the suppressed count); the
baseline is applied after load — it is cheap and lives outside the
keyed content.  The cache holds one entry (the last run), is written
atomically, and any unreadable/corrupt file is treated as a miss: the
cache can never make a lint run wrong, only fast.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
import typing as t

from repro.lint.finding import Finding

__all__ = ["ANALYSIS_REVISION", "ResultCache"]

#: Bump when any rule's behavior or the finding schema changes: a stale
#: cache must never survive a linter upgrade.
ANALYSIS_REVISION = 7


class ResultCache:
    """Single-entry, content-keyed store of one lint run's findings."""

    def __init__(self, path: str) -> None:
        self.path = path

    # -- keying ------------------------------------------------------------
    @staticmethod
    def key_for(
        sources: t.Mapping[str, str],
        rule_ids: t.Iterable[str],
        only: t.Collection[str] | None,
    ) -> str:
        digest = hashlib.sha256()
        digest.update(f"schema=1;revision={ANALYSIS_REVISION};".encode())
        digest.update(",".join(sorted(rule_ids)).encode())
        digest.update(b";")
        digest.update(
            ",".join(sorted(only)).encode() if only is not None else b"<all>"
        )
        for path in sorted(sources):
            digest.update(b"\0")
            digest.update(path.encode())
            digest.update(b"\0")
            digest.update(
                hashlib.sha256(sources[path].encode()).digest()
            )
        return digest.hexdigest()

    # -- lookup / store ----------------------------------------------------
    def lookup(self, key: str) -> tuple[list[Finding], int, int] | None:
        """``(findings, suppressed, n_files)`` on a hit, else ``None``."""
        try:
            with open(self.path, "r", encoding="utf-8") as fh:
                payload = json.load(fh)
            if payload.get("key") != key:
                return None
            findings = [
                Finding.from_record(record) for record in payload["findings"]
            ]
            return findings, int(payload["suppressed"]), int(payload["n_files"])
        except (OSError, ValueError, KeyError, TypeError):
            return None

    def store(
        self,
        key: str,
        findings: t.Sequence[Finding],
        suppressed: int,
        n_files: int,
    ) -> None:
        """Atomically persist one run's results; failures are silent."""
        payload = {
            "key": key,
            "findings": [f.to_record() for f in findings],
            "suppressed": suppressed,
            "n_files": n_files,
        }
        directory = os.path.dirname(os.path.abspath(self.path))
        try:
            fd, tmp = tempfile.mkstemp(
                prefix=".swjoin-lint-cache-", dir=directory
            )
            try:
                with os.fdopen(fd, "w", encoding="utf-8") as fh:
                    json.dump(payload, fh)
                os.replace(tmp, self.path)
            except BaseException:
                os.unlink(tmp)
                raise
        except OSError:
            pass
