"""The lint baseline: triaged findings awaiting a fix.

One entry per line, finding key first, **mandatory** tracking comment
after ``#``::

    OBS001 src/repro/example/module.py:42  # TODO(repro#99): guard emit

The comment requirement is enforced at parse time: a baseline can only
hold debt someone has triaged and annotated, never silently accepted
findings.  Entries that no longer match a finding are *stale* and make
the run fail, so the file can only shrink as violations are fixed.

The project's own baseline (``lint-baseline.txt``) is empty since its
last entry — SIM003 float-equality epoch arithmetic in
``core/window.py`` — was retired; CI keeps it that way.
"""

from __future__ import annotations

import re
import typing as t
from dataclasses import dataclass

from repro.errors import LintError
from repro.lint.finding import Finding

__all__ = ["BaselineEntry", "Baseline"]

_ENTRY_RE = re.compile(
    r"^(?P<rule>[A-Z]+[0-9]+)\s+(?P<path>[^\s:]+):(?P<line>[0-9]+)"
    r"\s*(?:#(?P<comment>.*))?$"
)


@dataclass(frozen=True)
class BaselineEntry:
    """One accepted finding plus its tracking comment."""

    rule: str
    path: str
    line: int
    comment: str

    @property
    def key(self) -> str:
        return f"{self.rule} {self.path}:{self.line}"

    def render(self) -> str:
        return f"{self.key}  # {self.comment}"


class Baseline:
    """An accepted-findings set with key-based membership."""

    def __init__(self, entries: t.Sequence[BaselineEntry] = ()) -> None:
        self.entries: list[BaselineEntry] = list(entries)
        self._by_key: dict[str, BaselineEntry] = {e.key: e for e in self.entries}

    def __len__(self) -> int:
        return len(self.entries)

    def covers(self, finding: Finding) -> bool:
        return finding.key in self._by_key

    def stale(self, findings: t.Iterable[Finding]) -> list[BaselineEntry]:
        """Entries matching none of *findings* — fixed debt to delete."""
        live = {f.key for f in findings}
        return [e for e in self.entries if e.key not in live]

    # ------------------------------------------------------------------
    @classmethod
    def parse(cls, text: str, origin: str = "<baseline>") -> "Baseline":
        """Parse baseline *text*; malformed or comment-less entries raise
        :class:`~repro.errors.LintError`."""
        entries: list[BaselineEntry] = []
        for lineno, raw in enumerate(text.splitlines(), start=1):
            line = raw.strip()
            if not line or line.startswith("#"):
                continue
            match = _ENTRY_RE.match(line)
            if match is None:
                raise LintError(
                    f"{origin}:{lineno}: malformed baseline entry: {raw!r} "
                    "(expected `RULE path:line  # tracking comment`)"
                )
            comment = (match.group("comment") or "").strip()
            if not comment:
                raise LintError(
                    f"{origin}:{lineno}: baseline entry lacks a tracking "
                    f"comment (append `# <ticket or reason>`): {raw!r}"
                )
            entries.append(
                BaselineEntry(
                    rule=match.group("rule"),
                    path=match.group("path"),
                    line=int(match.group("line")),
                    comment=comment,
                )
            )
        return cls(entries)

    @classmethod
    def load(cls, path: str) -> "Baseline":
        with open(path, "r", encoding="utf-8") as fh:
            return cls.parse(fh.read(), origin=path)

    @staticmethod
    def render(
        findings: t.Sequence[Finding],
        comment: str = "TODO: add a tracking reference",
    ) -> str:
        """Baseline text accepting *findings* (used by ``--write-baseline``).

        Every generated entry carries a placeholder comment the author
        is expected to replace with a real tracking reference.
        """
        lines = [
            "# swjoin lint baseline — triaged findings awaiting a fix.",
            "# Format: RULE path:line  # tracking comment (mandatory).",
            "# This file may only shrink; stale entries fail the run.",
        ]
        lines.extend(
            f"{f.key}  # {comment}" for f in sorted(findings)
        )
        return "\n".join(lines) + "\n"
