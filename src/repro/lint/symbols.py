"""Project-wide symbol table: modules, classes, functions, bindings.

The interprocedural rules (SIM004/SIM005/PERF001) reason about *whole
call chains*, so they need to know, for every module of the project,
which local spelling names which fully qualified thing.  This module
builds that table:

* :func:`module_name` maps a file path to its dotted module name
  (``src/repro/core/master.py`` -> ``repro.core.master``);
* :class:`ModuleInfo` holds one module's *bindings* — local name to
  qualified target — populated from imports (absolute and relative,
  aliased or not), top-level ``def``/``class`` statements, and
  first-order callable aliases (``_clock = time.monotonic``);
* :class:`SymbolTable` indexes every top-level function, method and
  class of the project and resolves dotted spellings through re-export
  hops to a canonical qualified name.

Names that resolve into the project but match no symbol (constants,
instance attributes) resolve to ``None``; names whose root is not a
project module are *external* (``time.time``, ``numpy.random.seed``)
and become taint sources for the dataflow pass.
"""

from __future__ import annotations

import ast
import typing as t
from dataclasses import dataclass, field

from repro.lint.astutil import dotted
from repro.lint.source import Project

__all__ = [
    "module_name",
    "FunctionInfo",
    "ClassInfo",
    "ModuleInfo",
    "SymbolTable",
]

_FuncDef = t.Union[ast.FunctionDef, ast.AsyncFunctionDef]

#: Follow at most this many re-export / alias hops (cycle guard).
_MAX_HOPS = 8


def module_name(path: str) -> str:
    """Dotted module name for a normalized posix *path*.

    Paths are anchored at the last ``repro`` segment when present
    (``src/repro/core/x.py`` -> ``repro.core.x``); other paths fall
    back to the file stem so fixture projects still get stable names.
    """
    stem = path[:-3] if path.endswith(".py") else path
    parts = [p for p in stem.split("/") if p]
    if "repro" in parts:
        anchor = len(parts) - 1 - parts[::-1].index("repro")
        parts = parts[anchor:]
    else:
        parts = parts[-1:]
    if len(parts) > 1 and parts[-1] == "__init__":
        parts = parts[:-1]
    return ".".join(parts)


@dataclass
class FunctionInfo:
    """One top-level function or method of the project."""

    qualname: str
    module: str
    path: str
    lineno: int
    node: _FuncDef
    cls: str | None = None  #: enclosing class qualname, if a method


@dataclass
class ClassInfo:
    """One top-level class: its methods and (unresolved) base spellings."""

    qualname: str
    module: str
    path: str
    lineno: int
    bases: tuple[str, ...] = ()
    methods: dict[str, str] = field(default_factory=dict)


@dataclass
class ModuleInfo:
    """One module's path and name-binding table."""

    name: str
    path: str
    is_package: bool = False
    bindings: dict[str, str] = field(default_factory=dict)


def _import_base(mod: ModuleInfo, node: ast.ImportFrom) -> str | None:
    """Absolute module an ``ImportFrom`` pulls from (relative resolved)."""
    if node.level == 0:
        return node.module
    parts = mod.name.split(".")
    if not mod.is_package:
        parts = parts[:-1]
    drop = node.level - 1
    if drop > len(parts):
        return None
    if drop:
        parts = parts[:-drop]
    if node.module:
        parts = parts + node.module.split(".")
    return ".".join(parts) if parts else None


class SymbolTable:
    """Every resolvable symbol of one lint project."""

    def __init__(self) -> None:
        self.modules: dict[str, ModuleInfo] = {}
        self.functions: dict[str, FunctionInfo] = {}
        self.classes: dict[str, ClassInfo] = {}
        self.module_of_path: dict[str, str] = {}

    # -- construction ------------------------------------------------------
    @classmethod
    def build(cls, project: Project) -> "SymbolTable":
        table = cls()
        pending_aliases: list[tuple[ModuleInfo, str, str]] = []
        for path in sorted(project.files):
            src = project.files[path]
            mod = ModuleInfo(
                name=module_name(path),
                path=path,
                is_package=path.endswith("__init__.py"),
            )
            table.modules[mod.name] = mod
            table.module_of_path[path] = mod.name
            table._collect_imports(mod, src.tree)
            table._collect_defs(mod, src.tree, pending_aliases)
        table._resolve_aliases(pending_aliases)
        return table

    def _collect_imports(self, mod: ModuleInfo, tree: ast.Module) -> None:
        # Function-local imports bind module-wide here: scope-imprecise,
        # but exactly what the taint rules need (an `import socket`
        # inside a helper must still resolve at its call sites).
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.asname is not None:
                        mod.bindings[alias.asname] = alias.name
                    else:
                        root = alias.name.split(".", 1)[0]
                        mod.bindings.setdefault(root, root)
            elif isinstance(node, ast.ImportFrom):
                base = _import_base(mod, node)
                if base is None:
                    continue
                for alias in node.names:
                    if alias.name == "*":
                        continue
                    local = alias.asname or alias.name
                    mod.bindings[local] = f"{base}.{alias.name}"

    def _collect_defs(
        self,
        mod: ModuleInfo,
        tree: ast.Module,
        pending_aliases: list[tuple[ModuleInfo, str, str]],
    ) -> None:
        for node in tree.body:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                qual = f"{mod.name}.{node.name}"
                self.functions[qual] = FunctionInfo(
                    qualname=qual,
                    module=mod.name,
                    path=mod.path,
                    lineno=node.lineno,
                    node=node,
                )
                mod.bindings[node.name] = qual
            elif isinstance(node, ast.ClassDef):
                qual = f"{mod.name}.{node.name}"
                info = ClassInfo(
                    qualname=qual,
                    module=mod.name,
                    path=mod.path,
                    lineno=node.lineno,
                    bases=tuple(
                        spelling
                        for base in node.bases
                        if (spelling := dotted(base)) is not None
                    ),
                )
                for stmt in node.body:
                    if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                        mqual = f"{qual}.{stmt.name}"
                        info.methods[stmt.name] = mqual
                        self.functions[mqual] = FunctionInfo(
                            qualname=mqual,
                            module=mod.name,
                            path=mod.path,
                            lineno=stmt.lineno,
                            node=stmt,
                            cls=qual,
                        )
                self.classes[qual] = info
                mod.bindings[node.name] = qual
            elif isinstance(node, ast.Assign) and len(node.targets) == 1:
                # First-order callable alias: `_clock = time.monotonic`,
                # `probe = fast_probe`.  Resolved after all defs exist.
                target = node.targets[0]
                spelling = dotted(node.value)
                if isinstance(target, ast.Name) and spelling is not None:
                    pending_aliases.append((mod, target.id, spelling))

    def _resolve_aliases(
        self, pending: list[tuple[ModuleInfo, str, str]]
    ) -> None:
        # Aliases may chain (`a = f; b = a`): iterate to a fixpoint,
        # bounded by the alias count so cycles cannot spin.
        for _ in range(max(1, len(pending))):
            progressed = False
            for mod, local, spelling in pending:
                if local in mod.bindings:
                    continue
                resolved = self.resolve(mod, spelling)
                if resolved is not None:
                    mod.bindings[local] = resolved
                    progressed = True
            if not progressed:
                break

    # -- resolution --------------------------------------------------------
    def resolve(self, mod: ModuleInfo, spelling: str) -> str | None:
        """Qualified target of a dotted *spelling* inside *mod*.

        Returns a project qualname, an external dotted name, or ``None``
        when the head is not bound (a local variable or builtin).
        """
        head, _, rest = spelling.partition(".")
        target = mod.bindings.get(head)
        if target is None:
            return None
        return self.canonical(f"{target}.{rest}" if rest else target)

    def canonical(self, full: str, _hops: int = 0) -> str:
        """Follow re-export bindings to a terminal qualified name.

        ``repro.core.proto_api.Shipment`` where ``proto_api`` does
        ``from repro.core.protocol import Shipment`` canonicalizes to
        ``repro.core.protocol.Shipment``.  Cycle-guarded.
        """
        if _hops >= _MAX_HOPS:
            return full
        if full in self.functions or full in self.classes:
            return full
        segs = full.split(".")
        for cut in range(len(segs) - 1, 0, -1):
            prefix = ".".join(segs[:cut])
            mod = self.modules.get(prefix)
            if mod is None:
                continue
            target = mod.bindings.get(segs[cut])
            if target is None:
                return full
            rewritten = ".".join([target, *segs[cut + 1 :]])
            if rewritten == full:
                return full
            return self.canonical(rewritten, _hops + 1)
        return full

    def is_internal(self, full: str) -> bool:
        """True when *full* lives under some project module."""
        segs = full.split(".")
        return any(
            ".".join(segs[:cut]) in self.modules
            for cut in range(len(segs), 0, -1)
        )

    def mro(self, class_qual: str) -> list[ClassInfo]:
        """Project-internal base classes of *class_qual*, BFS order."""
        out: list[ClassInfo] = []
        seen: set[str] = set()
        queue = [class_qual]
        while queue:
            qual = queue.pop(0)
            if qual in seen:
                continue
            seen.add(qual)
            info = self.classes.get(qual)
            if info is None:
                continue
            out.append(info)
            mod = self.modules[info.module]
            for base in info.bases:
                resolved = self.resolve(mod, base)
                if resolved is not None and resolved in self.classes:
                    queue.append(resolved)
        return out

    def find_method(
        self, class_qual: str, name: str, skip_own: bool = False
    ) -> str | None:
        """Qualname of method *name* on *class_qual* or a project base."""
        for info in self.mro(class_qual):
            if skip_own and info.qualname == class_qual:
                continue
            found = info.methods.get(name)
            if found is not None:
                return found
        return None

    def lookup(self, full: str) -> FunctionInfo | None:
        """The function *full* names, through classes and re-exports.

        A class name resolves to its ``__init__`` (possibly inherited);
        ``Class.method`` spellings resolve through the project MRO.
        """
        full = self.canonical(full)
        fn = self.functions.get(full)
        if fn is not None:
            return fn
        if full in self.classes:
            init = self.find_method(full, "__init__")
            return self.functions.get(init) if init is not None else None
        prefix, _, attr = full.rpartition(".")
        if prefix and prefix in self.classes:
            found = self.find_method(prefix, attr)
            if found is not None:
                return self.functions.get(found)
        return None
