"""Configuration variants of the main system used as baselines.

These are the comparison points of the paper's own evaluation; each is
a one-liner so experiment code reads declaratively.
"""

from __future__ import annotations

from repro.config import SystemConfig


def no_fine_tuning(cfg: SystemConfig) -> SystemConfig:
    """Disable fine-grained partition tuning (Figures 7-10's baseline).

    Every partition-group stays a single mini-partition-group of
    unbounded size, so per-probe scan cost grows linearly with the
    arrival rate.
    """
    return cfg.with_(fine_tuning=False)


def static_partitioning(cfg: SystemConfig) -> SystemConfig:
    """Disable supplier->consumer load balancing.

    The initial round-robin placement is kept for the whole run; skew
    or background-load imbalance is never corrected.
    """
    return cfg.with_(load_balancing=False)


def non_adaptive(cfg: SystemConfig) -> SystemConfig:
    """Fix the degree of declustering at the full slave count
    (Figure 11's non-adaptive comparison)."""
    return cfg.with_(adaptive_declustering=False)
