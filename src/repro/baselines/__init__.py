"""Baseline and comparison systems.

* :mod:`~repro.baselines.variants` — configuration variants of the main
  system used by the paper's own ablations: no fine-tuning
  (Figures 7–10), static partitioning without load balancing, and
  non-adaptive declustering (Figure 11).
* :mod:`~repro.baselines.centralized` — a single centralized join node
  (no cluster, no distribution overhead): the "capacity of one machine"
  reference point.
* :mod:`~repro.baselines.atr` — Aligned Tuple Routing (Gu et al., ICDE
  2007): segment-based routing of the master stream, duplicated slave
  stream at segment boundaries; the paper's Section VII argues it
  circulates rather than balances load and concentrates whole windows
  on one node.
* :mod:`~repro.baselines.ctr` — simplified Coordinated Tuple Routing:
  window segments spread over all nodes, every incoming tuple forwarded
  to every node holding opposite-window state; high network overhead.
"""

from repro.baselines.atr import AtrSystem
from repro.baselines.centralized import CentralizedJoin
from repro.baselines.ctr import CtrSystem
from repro.baselines.variants import (
    no_fine_tuning,
    non_adaptive,
    static_partitioning,
)

__all__ = [
    "AtrSystem",
    "CtrSystem",
    "CentralizedJoin",
    "no_fine_tuning",
    "static_partitioning",
    "non_adaptive",
]
