"""Simplified Coordinated Tuple Routing — baseline.

CTR (Gu, Yu & Wang, ICDE 2007) spreads each stream's window over the
cluster in segments and routes every incoming tuple through the set of
nodes hosting the opposite window ("routing hops").  For a two-stream
join the hop structure degenerates to: *every node holds a time-slice
of both windows, and every incoming tuple visits every node*.

Implementation:

* a tuple's **home** node is chosen by its arrival time slice
  (round-robin over nodes per ``dist_epoch``); only the home stores it;
* the master broadcasts every epoch's batch to *all* nodes (this is the
  cascading forwarding of the routing path — the high network overhead
  the paper criticizes in Section VII);
* each node probes the incoming tuples against its local windows
  (stream 0 of the batch first, then stream 1, so fresh/fresh pairs are
  found exactly once), then stores the home subset.

Join results are exact (checked against the oracle).  The costs are
the point: per-node CPU carries the fixed per-tuple work for the whole
input (no division by N) and network bytes scale with N.
"""

from __future__ import annotations

import typing as t

import numpy as np

from repro.baselines.framework import (
    BaselineResult,
    EpochMasterBase,
    LightSlaveMixin,
    run_baseline,
)
from repro.config import SystemConfig
from repro.core.costmodel import CostModel
from repro.core.join_module import WorkUnit
from repro.core.metrics import SlaveMetrics
from repro.core.partition_group import JoinGeometry, PartitionGroup
from repro.core.protocol import Shipment
from repro.data.tuples import TupleBatch
from repro.mp.comm import Communicator


class CtrMaster(EpochMasterBase):
    """Broadcasts every batch to every node."""

    def route(self, batch: TupleBatch) -> dict[int, TupleBatch]:
        if not len(batch):
            return {}
        return {s: batch for s in self.slave_ids}


class CtrSlave(LightSlaveMixin):
    """Stores its time-slice of both windows; probes everything."""

    def __init__(
        self,
        cfg: SystemConfig,
        runtime: t.Any,
        comm: Communicator,
        metrics: SlaveMetrics,
        node_id: int,
        collect_pairs: bool,
    ) -> None:
        self.cfg = cfg
        self.comm = comm
        self.metrics = metrics
        self.master_id = 0
        self.node_id = node_id
        self.collect_pairs = collect_pairs
        self._init_light(runtime, node_id)
        self.cost_model = CostModel(cfg.cost)
        geometry = JoinGeometry(
            tuples_per_block=cfg.tuples_per_block,
            block_bytes=cfg.block_bytes,
            theta_bytes=cfg.theta_bytes,
            window_seconds=cfg.window_seconds,
            fine_tuning=cfg.fine_tuning,
            tuple_bytes=cfg.tuple_bytes,
        )
        self.group = PartitionGroup(0, geometry)
        # Home time-slice of this node: node ids are 1..N in creation
        # order, so the slot round-robin is (node_id - 1) of N.
        self.slot_index = node_id - 1
        self.n_slots = cfg.num_slaves

    def _home_mask(self, ts: np.ndarray) -> np.ndarray:
        slots = (ts // self.cfg.dist_epoch).astype(np.int64) % self.n_slots
        return slots == self.slot_index

    def handle_shipment(self, shipment: Shipment) -> t.Iterator[WorkUnit]:
        cfg = self.cfg
        geometry = self.group.geometry
        cutoff = shipment.epoch_start - cfg.window_seconds

        def expire(_emit: float) -> None:
            for bucket in self.group.directory.buckets():
                bucket.payload.expire_before(cutoff)

        expired = 0
        for bucket in self.group.directory.buckets():
            for window in bucket.payload.windows:
                expired += int(
                    np.searchsorted(window.committed.ts, cutoff, "left")
                ) * cfg.tuple_bytes
        yield WorkUnit("expire", self.cost_model.expire_cost(expired), expire)

        batch = shipment.batch
        for sid in (0, 1):
            sub = batch.by_stream(sid)
            if not len(sub):
                continue
            patterns, buckets = self.group.route(sub.key)
            for pattern in sorted(buckets):
                mini = buckets[pattern].payload
                idx = np.flatnonzero(patterns == pattern)
                part = sub.take(idx)
                opposite = mini.windows[1 - sid]
                cost = self.cost_model.probe_cost(
                    len(part), opposite.committed_bytes
                )

                def run(
                    emit: float, part=part, mini=mini, sid=sid, opposite=opposite
                ) -> None:
                    result = opposite.probe_committed(
                        part.ts,
                        part.key,
                        part.seq,
                        cfg.window_seconds,
                        collect_pairs=self.collect_pairs,
                    )
                    self.metrics.record_outputs(emit, result.newer_ts)
                    self.metrics.tuples_processed += len(part)
                    if self.collect_pairs and result.pairs is not None and len(
                        result.pairs
                    ):
                        pairs = result.pairs
                        if sid == 1:
                            pairs = pairs[:, ::-1]
                        self.metrics.record_pairs(self.group.pid, pairs)
                    home = part.select(self._home_mask(part.ts))
                    if len(home):
                        mini.windows[sid].install_committed(home)

                yield WorkUnit("probe", cost, run)
        # Fine tuning still applies to the local slices.
        if geometry.fine_tuning:
            for bucket in self.group.oversized_buckets():
                cost = self.cost_model.tuning_cost(bucket.payload.bytes_used)

                def tune(_emit: float, b=bucket) -> None:
                    self.group.split_bucket(b)
                    self.metrics.splits += 1

                yield WorkUnit("tune", cost, tune)

    @property
    def window_bytes(self) -> int:
        return self.group.bytes_used


class CtrSystem:
    """Runner for the simplified CTR baseline."""

    def __init__(
        self,
        cfg: SystemConfig,
        workload: t.Any = None,
        collect_pairs: bool = False,
    ) -> None:
        self.cfg = cfg.validated()
        self.workload = workload
        self.collect_pairs = collect_pairs

    def run(self) -> BaselineResult:
        return run_baseline(
            "ctr",
            self.cfg,
            CtrMaster,
            CtrSlave,
            workload=self.workload,
            collect_pairs=self.collect_pairs,
        )
