"""A centralized (single machine, no cluster) windowed join.

The reference point the paper's scalability argument starts from: one
node running the same block-based join module with no master, no
network and no epoch distribution — tuples are handed to the join the
moment the epoch ends.  Its saturation rate is the per-machine capacity
every multi-node configuration is measured against.
"""

from __future__ import annotations

import dataclasses
import typing as t

from repro.config import SystemConfig
from repro.core.costmodel import CostModel
from repro.core.join_module import JoinModule
from repro.core.metrics import DelayStats, MeasurementWindow, SlaveMetrics
from repro.core.partition_group import JoinGeometry
from repro.core.protocol import Shipment
from repro.runtime.sim import SimRuntime
from repro.simul.kernel import Simulator
from repro.simul.rng import RngRegistry
from repro.workload.generator import TwoStreamWorkload


@dataclasses.dataclass
class CentralizedResult:
    cfg: SystemConfig
    duration: float
    delays: DelayStats
    cpu_total: float
    max_window_bytes: int
    tuples_processed: int

    @property
    def avg_delay(self) -> float:
        return self.delays.mean

    @property
    def outputs(self) -> int:
        return self.delays.count

    @property
    def utilization(self) -> float:
        return self.cpu_total / self.duration if self.duration else 0.0


class CentralizedJoin:
    """Single-node baseline runner."""

    def __init__(self, cfg: SystemConfig, workload: t.Any = None) -> None:
        self.cfg = cfg.validated()
        self._workload_override = workload

    def run(self) -> CentralizedResult:
        cfg = self.cfg
        sim = Simulator()
        runtime = SimRuntime(sim)
        gate = MeasurementWindow(cfg.warmup_seconds, cfg.run_seconds)
        rng = RngRegistry(cfg.seed)
        workload = self._workload_override or TwoStreamWorkload.poisson_bmodel(
            rng, cfg.rate, cfg.b_skew, cfg.key_domain
        )
        geometry = JoinGeometry(
            tuples_per_block=cfg.tuples_per_block,
            block_bytes=cfg.block_bytes,
            theta_bytes=cfg.theta_bytes,
            window_seconds=cfg.window_seconds,
            fine_tuning=cfg.fine_tuning,
            tuple_bytes=cfg.tuple_bytes,
        )
        metrics = SlaveMetrics(0, gate)
        module = JoinModule(
            0, geometry, CostModel(cfg.cost), cfg.npart, metrics
        )
        for pid in range(cfg.npart):
            module.add_partition(pid)

        def node() -> t.Generator:
            epoch = 0
            prev = 0.0
            while (epoch + 1) * cfg.dist_epoch <= cfg.run_seconds + 1e-9:
                boundary = (epoch + 1) * cfg.dist_epoch
                yield runtime.sleep_until(boundary)
                batch = workload.generate(prev, boundary)
                module.enqueue(Shipment(epoch, prev, boundary, batch))
                prev = boundary
                while module.has_work:  # passes are bounded; drain all
                    for unit in module.work_units():
                        t0 = runtime.now()
                        yield runtime.cpu(unit.cost)
                        t1 = runtime.now()
                        kind = "probe" if unit.kind == "probe" else (
                            "expire" if unit.kind == "expire" else "tune"
                        )
                        metrics.charge_cpu(kind, t0, t1)
                        unit.execute(t1)
                metrics.sample_window(runtime.now(), module.window_bytes)
                epoch += 1

        process = sim.process(node(), name="centralized")
        sim.run(None)
        assert not process.is_alive

        return CentralizedResult(
            cfg=cfg,
            duration=cfg.run_seconds - cfg.warmup_seconds,
            delays=metrics.delays,
            cpu_total=metrics.cpu_total,
            max_window_bytes=metrics.max_window_bytes,
            tuples_processed=metrics.tuples_processed,
        )
