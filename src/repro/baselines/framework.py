"""Shared scaffolding for the routing baselines (ATR / CTR).

Both baselines use a simple epoch-driven master (no load reports, no
reorganization — neither scheme migrates state) and light slaves that
only receive shipments and process them.  The slaves reuse the real
metrics, transport and cost model so the comparison against the main
system is apples-to-apples.
"""

from __future__ import annotations

import dataclasses
import typing as t

import numpy as np

from repro.config import SystemConfig
from repro.core.metrics import DelayStats, MeasurementWindow, SlaveMetrics
from repro.core.protocol import Halt, Shipment
from repro.errors import DeadlockError
from repro.mp.comm import Communicator
from repro.net.sim_transport import SimTransport
from repro.runtime.sim import SimRuntime
from repro.simul.kernel import Simulator
from repro.simul.rng import RngRegistry
from repro.workload.generator import TwoStreamWorkload

MASTER_ID = 0

_HALT = object()
_WAKE = object()


@dataclasses.dataclass
class BaselineResult:
    """Metrics of one baseline run (same gate as the main system)."""

    cfg: SystemConfig
    name: str
    duration: float
    delays: DelayStats
    slaves: list[dict[str, t.Any]]
    master_comm_time: float
    tuples_generated: int
    pairs: np.ndarray | None = None

    @property
    def avg_delay(self) -> float:
        return self.delays.mean

    @property
    def outputs(self) -> int:
        return self.delays.count

    @property
    def cpu_times(self) -> list[float]:
        return [s["cpu_total"] for s in self.slaves]

    @property
    def comm_times(self) -> list[float]:
        return [s["comm_time"] for s in self.slaves]

    @property
    def aggregate_comm_time(self) -> float:
        return float(np.sum(self.comm_times)) if self.comm_times else 0.0

    @property
    def max_window_bytes(self) -> int:
        return max((s["max_window_bytes"] for s in self.slaves), default=0)

    @property
    def idle_times(self) -> list[float]:
        return [
            max(0.0, self.duration - s["cpu_total"] - s["comm_time"])
            for s in self.slaves
        ]


class LightSlaveMixin:
    """Comm + join loops for a baseline slave.

    Subclasses provide ``self.handle_shipment(shipment)`` returning an
    iterator of :class:`~repro.core.join_module.WorkUnit`-compatible
    objects, plus ``self.window_bytes``.
    """

    rt: t.Any
    comm: Communicator
    metrics: SlaveMetrics
    master_id: int

    def _init_light(self, runtime: t.Any, node_id: int) -> None:
        self.rt = runtime
        self._queue = runtime.make_queue(f"bslave{node_id}.work")

    def processes(self) -> list[t.Generator]:
        return [self.comm_loop(), self.join_loop()]

    def comm_loop(self) -> t.Generator:
        while True:
            msg = yield self.comm.recv(self.master_id)
            if isinstance(msg, Halt):
                yield self._queue.put(_HALT)
                return
            yield self._queue.put(msg)

    def join_loop(self) -> t.Generator:
        rt = self.rt
        while True:
            item = yield self._queue.get()
            if item is _HALT:
                return
            for unit in self.handle_shipment(item):
                t0 = rt.now()
                yield rt.cpu(unit.cost)
                t1 = rt.now()
                kind = (
                    unit.kind
                    if unit.kind in ("probe", "expire", "tune")
                    else "probe"
                )
                self.metrics.charge_cpu(kind, t0, t1)
                unit.execute(t1)
            self.metrics.sample_window(rt.now(), self.window_bytes)

    # Subclass responsibilities ------------------------------------------
    def handle_shipment(self, shipment: Shipment) -> t.Iterator[t.Any]:
        raise NotImplementedError  # pragma: no cover

    @property
    def window_bytes(self) -> int:
        raise NotImplementedError  # pragma: no cover


class EpochMasterBase:
    """Epoch loop shared by the baseline masters.

    Subclasses implement ``route(batch)`` returning ``{slave_id:
    TupleBatch}`` — which tuples (possibly duplicated) each slave
    receives for this epoch.
    """

    def __init__(
        self,
        cfg: SystemConfig,
        runtime: t.Any,
        comm: Communicator,
        workload: t.Any,
        slave_ids: t.Sequence[int],
    ) -> None:
        self.cfg = cfg
        self.rt = runtime
        self.comm = comm
        self.workload = workload
        self.slave_ids = sorted(slave_ids)
        self._last_drain = {s: 0.0 for s in self.slave_ids}

    def route(self, batch: t.Any) -> dict[int, t.Any]:
        raise NotImplementedError  # pragma: no cover

    def run(self) -> t.Generator:
        cfg, rt, comm = self.cfg, self.rt, self.comm
        td = cfg.dist_epoch
        epoch = 0
        prev = 0.0
        while (epoch + 1) * td <= cfg.run_seconds + 1e-9:
            boundary = (epoch + 1) * td
            yield rt.sleep_until(boundary)
            batch = self.workload.generate(prev, boundary)
            prev = boundary
            routed = self.route(batch)
            for s in self.slave_ids:
                sub = routed.get(s)
                if sub is None:
                    continue
                yield comm.send(
                    s, Shipment(epoch, self._last_drain[s], boundary, sub)
                )
                self._last_drain[s] = boundary
            epoch += 1
        for s in self.slave_ids:
            yield comm.send(s, Halt(epoch))


def run_baseline(
    name: str,
    cfg: SystemConfig,
    make_master: t.Callable[..., EpochMasterBase],
    make_slave: t.Callable[..., LightSlaveMixin],
    workload: t.Any = None,
    collect_pairs: bool = False,
) -> BaselineResult:
    """Wire and execute one baseline system."""
    cfg = cfg.validated()
    sim = Simulator()
    runtime = SimRuntime(sim)
    gate = MeasurementWindow(cfg.warmup_seconds, cfg.run_seconds)
    transport = SimTransport(sim, cfg.network, cfg.tuple_bytes)
    rng = RngRegistry(cfg.seed)
    workload = workload or TwoStreamWorkload.poisson_bmodel(
        rng, cfg.rate, cfg.b_skew, cfg.key_domain
    )

    slave_ids = [1 + i for i in range(cfg.num_slaves)]
    master_metrics = SlaveMetrics(MASTER_ID, gate)  # comm stats only
    master = make_master(
        cfg,
        runtime,
        Communicator(transport.endpoint(MASTER_ID, master_metrics)),
        workload,
        slave_ids,
    )

    slaves = []
    slave_metrics = []
    for node_id in slave_ids:
        metrics = SlaveMetrics(node_id, gate)
        comm = Communicator(transport.endpoint(node_id, metrics))
        slaves.append(
            make_slave(cfg, runtime, comm, metrics, node_id, collect_pairs)
        )
        slave_metrics.append(metrics)

    processes = [sim.process(master.run(), name=f"{name}.master")]
    for slave in slaves:
        for gen in slave.processes():
            processes.append(sim.process(gen, name=f"{name}.slave"))
    sim.run(None)
    stuck = [p.name for p in processes if p.is_alive]
    if stuck:
        raise DeadlockError(f"{name}: processes never finished: {stuck}")

    merged = DelayStats()
    for m in slave_metrics:
        merged.merge(m.delays)
    pairs = None
    if collect_pairs:
        chunks = [c for m in slave_metrics for c in m.pair_chunks()]
        pairs = (
            np.concatenate(chunks) if chunks else np.empty((0, 2), dtype=np.int64)
        )
    return BaselineResult(
        cfg=cfg,
        name=name,
        duration=cfg.run_seconds - cfg.warmup_seconds,
        delays=merged,
        slaves=[m.snapshot() for m in slave_metrics],
        master_comm_time=master_metrics.comm_time,
        tuples_generated=getattr(workload, "tuples_generated", 0),
        pairs=pairs,
    )
