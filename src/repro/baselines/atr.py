"""Aligned Tuple Routing (Gu, Yu & Wang, ICDE 2007) — baseline.

ATR designates one stream the *master stream* (stream 0 here) and
slices time into segments of length ``L >= W``.  All join processing
for segment ``j`` happens on one node ``n_j`` (round-robin):

* stream-0 tuples of segment ``j`` are routed to ``n_j``;
* stream-1 tuples are routed to the current segment's node, and
  *duplicated* to the next segment's node during the final ``W``
  seconds of the segment, pre-positioning the window history the next
  node will need.

This keeps the join exact without state movement — the property tests
check ATR against the naive oracle — but, as the paper's Section VII
argues, it *circulates* load instead of balancing it: during a segment
one node carries the entire join (its window holds both streams'
complete windows) while the others only absorb duplicated slave-stream
tuples.  The baseline benches quantify exactly that: per-node CPU is
bursty, the max window on a node approaches the full two-stream window,
and capacity barely improves with cluster size.
"""

from __future__ import annotations

import typing as t

import numpy as np

from repro.config import SystemConfig
from repro.core.costmodel import CostModel
from repro.core.join_module import JoinModule
from repro.core.metrics import SlaveMetrics
from repro.core.partition_group import JoinGeometry
from repro.core.protocol import Shipment
from repro.baselines.framework import (
    BaselineResult,
    EpochMasterBase,
    LightSlaveMixin,
    run_baseline,
)
from repro.data.tuples import TupleBatch
from repro.errors import ConfigError
from repro.mp.comm import Communicator


def _geometry(cfg: SystemConfig) -> JoinGeometry:
    return JoinGeometry(
        tuples_per_block=cfg.tuples_per_block,
        block_bytes=cfg.block_bytes,
        theta_bytes=cfg.theta_bytes,
        window_seconds=cfg.window_seconds,
        fine_tuning=cfg.fine_tuning,
        tuple_bytes=cfg.tuple_bytes,
    )


class AtrMaster(EpochMasterBase):
    """Routes by time segment instead of by key hash."""

    def __init__(self, *args: t.Any, segment_seconds: float, **kw: t.Any) -> None:
        super().__init__(*args, **kw)
        if segment_seconds < self.cfg.window_seconds:
            raise ConfigError(
                "ATR needs segment_seconds >= window_seconds "
                f"({segment_seconds} < {self.cfg.window_seconds})"
            )
        self.segment_seconds = float(segment_seconds)

    def _node_of_segment(self, seg: np.ndarray) -> np.ndarray:
        ids = np.asarray(self.slave_ids)
        return ids[seg % len(ids)]

    def route(self, batch: TupleBatch) -> dict[int, TupleBatch]:
        if not len(batch):
            return {}
        L, W = self.segment_seconds, self.cfg.window_seconds
        seg = (batch.ts // L).astype(np.int64)
        dest = self._node_of_segment(seg)
        routed: dict[int, list[TupleBatch]] = {}
        for node in np.unique(dest):
            routed.setdefault(int(node), []).append(
                batch.take(np.flatnonzero(dest == node))
            )
        # Duplicate stream-1 tuples of a segment's last W seconds to the
        # next segment's node (window pre-positioning).
        tail = (batch.stream == 1) & (batch.ts >= (seg + 1) * L - W)
        if np.any(tail):
            idx = np.flatnonzero(tail)
            next_dest = self._node_of_segment(seg[idx] + 1)
            fresh_copy = next_dest != dest[idx]  # single-node ring: no-op
            idx, next_dest = idx[fresh_copy], next_dest[fresh_copy]
            for node in np.unique(next_dest):
                routed.setdefault(int(node), []).append(
                    batch.take(idx[next_dest == node])
                )
        out: dict[int, TupleBatch] = {}
        for node, parts in routed.items():
            merged = TupleBatch.concat(parts)
            order = np.argsort(merged.ts, kind="stable")
            out[node] = merged.take(order)
        return out


class AtrSlave(LightSlaveMixin):
    """A light slave running the ordinary join module on one partition."""

    def __init__(
        self,
        cfg: SystemConfig,
        runtime: t.Any,
        comm: Communicator,
        metrics: SlaveMetrics,
        node_id: int,
        collect_pairs: bool,
    ) -> None:
        self.comm = comm
        self.metrics = metrics
        self.master_id = 0
        self._init_light(runtime, node_id)
        # npart=1: ATR does not hash-partition; each node joins all the
        # tuples it is routed.
        self.module = JoinModule(
            node_id,
            _geometry(cfg),
            CostModel(cfg.cost),
            npart=1,
            metrics=metrics,
            collect_pairs=collect_pairs,
        )
        self.module.add_partition(0)

    def handle_shipment(self, shipment: Shipment) -> t.Iterator[t.Any]:
        self.module.enqueue(shipment)
        # Passes are bounded; baseline slaves have no state moves to
        # let in, so drain everything for this shipment.
        while self.module.has_work:
            yield from self.module.work_units()

    @property
    def window_bytes(self) -> int:
        return self.module.window_bytes


class AtrSystem:
    """Runner for the ATR baseline."""

    def __init__(
        self,
        cfg: SystemConfig,
        segment_seconds: float | None = None,
        workload: t.Any = None,
        collect_pairs: bool = False,
    ) -> None:
        self.cfg = cfg.validated()
        self.segment_seconds = (
            segment_seconds
            if segment_seconds is not None
            else 2.0 * cfg.window_seconds
        )
        self.workload = workload
        self.collect_pairs = collect_pairs

    def run(self) -> BaselineResult:
        seg = self.segment_seconds

        def make_master(cfg, runtime, comm, workload, slave_ids):
            return AtrMaster(
                cfg, runtime, comm, workload, slave_ids, segment_seconds=seg
            )

        return run_baseline(
            "atr",
            self.cfg,
            make_master,
            AtrSlave,
            workload=self.workload,
            collect_pairs=self.collect_pairs,
        )
