"""State replication for lossless crash recovery.

Every partition-group gets a deterministic **backup slave** (the next
live slave after its owner in the sorted ring — see
:func:`repro.core.declustering.plan_backups`).  The master tees each
owner's epoch shipment to the backup as a cheap log-replica (buffered
:class:`~repro.data.tuples.TupleBatch` records, no join work), and the
owner periodically piggybacks a compact
:class:`~repro.core.partition_group.PartitionGroupState` checkpoint so
the backup can truncate its log.  On crash detection the master routes
each lost partition to its backup, which rebuilds it as *checkpoint +
log replay* through the ordinary install/work-unit machinery — the run
finishes with the exact output of a crash-free run.
"""

from repro.replication.store import BackupStore

__all__ = ["BackupStore"]
