"""The slave-side backup store: per-partition checkpoint + log."""

from __future__ import annotations

from repro.core.partition_group import PartitionGroupState
from repro.core.protocol import Checkpoint, Replicate
from repro.data.tuples import TupleBatch


class BackupEntry:
    """One backed-up partition: optional base image + shipment log.

    A missing base (``state is None``) is the implicit *genesis*
    checkpoint — the partition started empty and the log reaches back
    to epoch 0, so replaying it alone reconstructs the full state.
    """

    __slots__ = ("state", "buffered", "base_epoch", "log")

    def __init__(self) -> None:
        self.state: PartitionGroupState | None = None
        self.buffered: TupleBatch | None = None
        self.base_epoch = -1
        #: ``(shipment_epoch, batch)`` records newer than the base.
        self.log: list[tuple[int, TupleBatch]] = []

    def rebase(self, cp: Checkpoint) -> None:
        """Install a fresh base image and truncate the covered log.

        A checkpoint taken at reorg epoch *k* reflects every shipment
        up to and including epoch ``k - 1`` (the owner snapshots after
        buffering, before the epoch-*k* shipment), so log records with
        ``epoch < k`` are subsumed.
        """
        self.state = cp.state
        self.buffered = cp.buffered
        self.base_epoch = cp.epoch
        self.log = [(e, b) for e, b in self.log if e >= cp.epoch]

    def append(self, epoch: int, batch: TupleBatch) -> None:
        # Idempotent per epoch: a partition drains at most once per
        # round, so a re-delivered log record (the acting master
        # re-flushing pending replication it inherited after a master
        # failover) is a duplicate, not new data.
        if epoch >= self.base_epoch and all(e != epoch for e, _b in self.log):
            self.log.append((epoch, batch))

    @property
    def n_log_tuples(self) -> int:
        return sum(len(b) for _e, b in self.log)


class BackupStore:
    """All partitions a slave currently backs up.

    Maintained exclusively through :class:`~repro.core.protocol.Replicate`
    messages from the master; drained through :meth:`take` when the
    master orders a restore.
    """

    __slots__ = ("entries",)

    def __init__(self) -> None:
        self.entries: dict[int, BackupEntry] = {}

    def apply(self, msg: Replicate) -> None:
        """Apply one epoch's maintenance: drop, re-base, then append."""
        for pid in msg.drops:
            self.entries.pop(pid, None)
        for cp in msg.checkpoints:
            self.entries.setdefault(cp.pid, BackupEntry()).rebase(cp)
        for pid, epoch, batch in msg.entries:
            self.entries.setdefault(pid, BackupEntry()).append(epoch, batch)

    def take(
        self, pid: int
    ) -> tuple[PartitionGroupState | None, TupleBatch | None, list[TupleBatch]]:
        """Remove and return ``(state, buffered, log)`` for a restore.

        An unknown *pid* yields the empty genesis — a valid restore
        point for a partition that never accumulated backed-up state.
        """
        entry = self.entries.pop(pid, None)
        if entry is None:
            return None, None, []
        return entry.state, entry.buffered, [b for _e, b in entry.log]

    def clear(self) -> None:
        self.entries.clear()

    def pids(self) -> list[int]:
        return sorted(self.entries)

    def __contains__(self, pid: int) -> bool:
        return pid in self.entries

    def __len__(self) -> int:
        return len(self.entries)
