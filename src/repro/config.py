"""Configuration dataclasses.

:class:`SystemConfig.paper_defaults` encodes Table I of the paper:

======================  =======  =========================================
Parameter               Default  Comment
======================  =======  =========================================
``W_i``                 10 min   window length (both streams)
``lambda``              1500     average arrival rate (tuples/sec/stream)
``b``                   0.7      b-model skew of join-attribute values
``Th_con``              0.01     consumer threshold (buffer occupancy)
``Th_sup``              0.5      supplier threshold (buffer occupancy)
``theta``               1.5 MB   partition tuning parameter
``block``               4 KB     block size
``t_d``                 2 s      distribution epoch
``t_r``                 20 s     reorganization epoch
``npart``               60       hash partitions (level of indirection)
``buffer``              1 MB     per-slave stream-tuple buffer
tuple size              64 B     (Section VI-A)
join-attribute domain   [0,1e7]  (Section VI-A)
run / warm-up           20/10 m  (Section VI-A)
======================  =======  =========================================

Because full 20-minute runs are slow in pure Python, ``scaled(sigma)``
shrinks window length, run length, warm-up and ``theta`` by ``sigma``
while multiplying the per-byte CPU scan cost by ``1/sigma``.  Per-probe
scanned bytes are proportional to ``rate * W / npart``, so this keeps
every saturation point and split/merge decision at the same *rates* as
the full-scale system — only absolute "seconds of overhead per run"
shrink by ``sigma``.
"""

from __future__ import annotations

import dataclasses
import typing as t
from dataclasses import dataclass, field, replace

from repro.errors import ConfigError
from repro.faults.plan import FaultPlan

KIB = 1024
MIB = 1024 * 1024


@dataclass(frozen=True)
class CostModelConfig:
    """Calibrated CPU cost model for the simulated slaves.

    The join module charges ``tuple_cost`` per probing tuple plus
    ``scan_byte_cost`` per byte of the opposite (mini-)partition scanned
    by the block nested-loop join.  The two anchor points used for
    calibration (Section VI of the paper, 4 slaves):

    * *without* fine tuning the system saturates near 4000 tuples/s/stream;
    * *with* fine tuning it saturates near 6000 tuples/s/stream.

    Solving the utilization equations at those points gives the defaults
    below (see ``docs in repro/core/costmodel.py``).
    """

    #: Fixed CPU seconds charged per probing tuple (hashing, block
    #: bookkeeping, result construction).
    tuple_cost: float = 1.21e-4
    #: CPU seconds per probing tuple per byte of window data scanned by
    #: its block nested-loop probe (comparison work is the cross
    #: product of fresh tuples and scanned tuples).
    scan_byte_cost: float = 1.885e-10
    #: CPU seconds per byte moved during a partition-group state
    #: transfer (extraction + installation on the two slaves).
    state_move_byte_cost: float = 4.0e-9
    #: CPU seconds per byte for expiring tuples from a window.
    expire_byte_cost: float = 1.0e-11
    #: Seconds per byte read back from disk when window state exceeds a
    #: slave's memory (the paper's future-work extension; ~50 MB/s
    #: sequential read on the era's disks).  Charged once per probe
    #: over the spilled fraction of the scanned bytes.
    disk_read_byte_cost: float = 2.0e-8
    #: CPU seconds per probing tuple for one hash-index lookup when the
    #: ``indexed`` join kernel runs (bucket fetch + dead-prefix check);
    #: the per-candidate gather work is charged via ``scan_byte_cost``
    #: over the candidate bytes, not the whole window.
    index_lookup_cost: float = 5.0e-6

    def validated(self) -> "CostModelConfig":
        for name in (
            "tuple_cost",
            "scan_byte_cost",
            "state_move_byte_cost",
            "expire_byte_cost",
            "disk_read_byte_cost",
            "index_lookup_cost",
        ):
            if getattr(self, name) < 0:
                raise ConfigError(f"{name} must be non-negative")
        return self


@dataclass(frozen=True)
class NetworkConfig:
    """Modeled cluster interconnect (Gigabit Ethernet + mpiJava stack).

    ``per_message_overhead`` and ``per_byte_overhead`` model the
    fixed-schedule TCP/MPI connection handling and (de)serialization
    costs that dominate the paper's reported communication overhead;
    raw gigabit wire time is comparatively negligible.
    """

    #: One-way propagation latency (s).
    latency: float = 1.0e-4
    #: Link bandwidth (bytes/s); Gigabit Ethernet ~ 125 MB/s.
    bandwidth: float = 125.0e6
    #: Fixed per-message cost charged to both endpoints (s).
    per_message_overhead: float = 15.0e-3
    #: Per-byte serialization/deserialization cost charged to both
    #: endpoints (s/byte).
    per_byte_overhead: float = 2.5e-7

    def validated(self) -> "NetworkConfig":
        if self.bandwidth <= 0:
            raise ConfigError("bandwidth must be positive")
        for name in ("latency", "per_message_overhead", "per_byte_overhead"):
            if getattr(self, name) < 0:
                raise ConfigError(f"{name} must be non-negative")
        return self

    def transfer_time(self, nbytes: int) -> float:
        """Wire time for a message of *nbytes* payload."""
        return self.latency + nbytes / self.bandwidth

    def endpoint_overhead(self, nbytes: int) -> float:
        """CPU-side comm overhead charged to each endpoint."""
        return self.per_message_overhead + nbytes * self.per_byte_overhead


@dataclass(frozen=True)
class ObservabilityConfig:
    """Tracing and time-series sampling (``repro.obs``).

    Everything defaults to *off*: the instrumented hot paths then pay a
    single ``tracer.enabled`` branch and nothing else.
    """

    #: Write a JSONL trace to this path (``swjoin run --trace``).
    trace_path: str | None = None
    #: Keep trace records in memory and thread them into
    #: :attr:`~repro.core.system.RunResult.trace` (tests, notebooks).
    trace_memory: bool = False
    #: Print a per-kind event count summary when the run finishes.
    console_summary: bool = False
    #: Include per-message transport spans in the trace.  Opt-in: one
    #: event per rendezvous transfer is by far the highest-volume kind.
    trace_transport: bool = False
    #: Period of the per-node gauge sampler, seconds (None = no
    #: sampler).  Samples land in bounded decimating reservoirs and in
    #: the trace (kind ``sample``) when tracing is on.
    sample_period: float | None = None
    #: Capacity of each ``(node, gauge)`` reservoir.
    reservoir_capacity: int = 512
    #: Register typed per-node metric instruments
    #: (:mod:`repro.obs.metrics`) and thread their snapshots into
    #: :attr:`~repro.core.system.RunResult.node_metrics`.
    metrics: bool = False
    #: Serve the admin/health HTTP endpoint (:mod:`repro.obs.admin`) on
    #: this port for the duration of the run (0 = ephemeral; None = no
    #: server).  Implies :attr:`metrics` — ``/metrics`` needs a live
    #: registry.
    admin_port: int | None = None

    @property
    def tracing(self) -> bool:
        """True when any trace exporter is configured."""
        return bool(self.trace_path or self.trace_memory or self.console_summary)

    @property
    def metrics_enabled(self) -> bool:
        """True when per-node metric registries should be live."""
        return self.metrics or self.admin_port is not None

    @property
    def enabled(self) -> bool:
        return (
            self.tracing
            or self.sample_period is not None
            or self.metrics_enabled
        )

    def validated(self) -> "ObservabilityConfig":
        if self.sample_period is not None and self.sample_period <= 0:
            raise ConfigError("sample_period must be positive (or None)")
        if self.reservoir_capacity < 2:
            raise ConfigError("reservoir_capacity must be >= 2")
        if self.trace_transport and not self.tracing:
            raise ConfigError("trace_transport requires a trace exporter")
        if self.admin_port is not None and not 0 <= self.admin_port <= 65535:
            raise ConfigError("admin_port must lie in [0, 65535] (or None)")
        return self


@dataclass(frozen=True)
class SystemConfig:
    """Full configuration of a master/slaves/collector join run."""

    # -- workload ---------------------------------------------------------
    #: Number of joining streams.  The paper's model (Section II) is
    #: n-way; its prototype and all reproduced figures use 2.
    n_streams: int = 2
    #: Average Poisson arrival rate per stream (tuples/second).
    rate: float = 1500.0
    #: b-model bias of the join-attribute distribution (0.5 = uniform).
    b_skew: float = 0.7
    #: Join-attribute domain is the integer range [0, key_domain).
    key_domain: int = 10_000_001
    #: Logical tuple size on the wire and in windows (bytes).
    tuple_bytes: int = 64

    # -- join operator ----------------------------------------------------
    #: Sliding window length, seconds (same for both streams).
    window_seconds: float = 600.0
    #: Number of hash partitions (level of indirection, Section IV-C).
    npart: int = 60
    #: Block size in bytes (Section VI-A).
    block_bytes: int = 4096
    #: Partition tuning parameter theta, bytes: partition-groups are kept
    #: within [theta, 2*theta] (Section IV-D).
    theta_bytes: int = int(1.5 * MIB)
    #: Enable fine-grained partition tuning (extendible hashing).
    fine_tuning: bool = True

    # -- cluster ----------------------------------------------------------
    #: Number of slave nodes available.
    num_slaves: int = 4
    #: Relative CPU speed per slave (None = homogeneous).  The paper's
    #: cluster is non-dedicated: background load varies per node; a
    #: speed of 0.5 models a slave whose CPU is half-consumed by other
    #: applications.
    slave_speeds: tuple[float, ...] | None = None
    #: Memory allotted to the per-slave stream-tuple buffer (bytes).
    slave_buffer_bytes: int = 1 * MIB
    #: Memory available per slave for window state, bytes.  None (the
    #: paper's assumption, Section VI-A) means every node holds its
    #: windows in RAM; a finite value spills the excess to disk and
    #: probes pay :attr:`CostModelConfig.disk_read_byte_cost` on the
    #: spilled fraction (the paper's disk-I/O future work).
    slave_memory_bytes: int | None = None
    #: Number of sub-groups for slot-based communication (Section V-B).
    num_subgroups: int = 1
    #: Run a standby coordinator (one extra node) that mirrors the
    #: master's durable state every epoch and deterministically assumes
    #: the master role if the master dies mid-run (``--standby``).
    #: Required for ``crash:master`` fault specs.
    standby: bool = False

    # -- epochs and load balancing ---------------------------------------
    #: Distribution epoch t_d, seconds.
    dist_epoch: float = 2.0
    #: Reorganization epoch t_r, seconds.
    reorg_epoch: float = 20.0
    #: Consumer threshold on average buffer occupancy.
    th_con: float = 0.01
    #: Supplier threshold on average buffer occupancy.
    th_sup: float = 0.5
    #: Enable supplier->consumer partition-group migration.
    load_balancing: bool = True
    #: State replication for lossless crash recovery (``repro.replication``):
    #: ``"off"`` (crashes lose window state, runs finish degraded),
    #: ``"log"`` (backups hold a full shipment log from each partition's
    #: bootstrap), or ``"checkpoint+log"`` (owners also piggyback a
    #: compact state checkpoint every reorganization epoch so backups
    #: can truncate their logs).
    replication: str = "off"

    # -- degree of declustering (Section V-A) ------------------------------
    #: Adapt the number of active slaves at run time.
    adaptive_declustering: bool = False
    #: Granularity parameter beta: grow when N_sup > beta * N_con.
    beta: float = 0.5
    #: Initial number of active slaves (defaults to all).
    initial_active_slaves: int | None = None

    # -- execution backend -------------------------------------------------
    #: Runtime backend executing the cluster: ``"sim"`` (deterministic
    #: DES kernel), ``"thread"`` (one OS thread per node generator),
    #: ``"process"`` (one OS process per cluster node, real sockets) or
    #: ``"tcp"`` (one worker per node over TCP, optionally multi-host).
    #: Registered in :mod:`repro.core.system`; unknown names raise
    #: :class:`ConfigError` at run time with the available set.
    backend: str = "sim"
    #: Static peer map for the tcp backend: ``((node_id, "host:port"),
    #: ...)``.  Listed nodes are expected to be running ``swjoin worker
    #: --listen`` at that address; every other node is forked locally.
    tcp_peers: tuple[tuple[int, str], ...] = ()
    #: Host the tcp backend binds its *local* workers' listen sockets
    #: on.  Loopback by default; use a routable address when remote
    #: workers must connect back to locally forked nodes.
    tcp_host: str = "127.0.0.1"
    #: Wall seconds per modeled second on the wall-clock backends
    #: (thread/process): ``time_scale=0.01`` compresses a 60-second
    #: scenario into 0.6 wall seconds.  Ignored by the DES backend.
    time_scale: float = 1.0
    #: Join kernel probing each window: ``"blocknlj"`` (sorted-key
    #: snapshot, charged as the paper's block nested-loop scan) or
    #: ``"indexed"`` (per-window hash index, incremental insert, lazy
    #: bulk expiry).  Registered in :mod:`repro.core.kernels`; every
    #: kernel yields the identical joined-pair multiset — only the
    #: simulated probe cost differs.  Unknown names raise
    #: :class:`ConfigError` when the cluster is built.
    kernel: str = "blocknlj"

    # -- run --------------------------------------------------------------
    #: Simulated run length, seconds (paper: 20 minutes).
    run_seconds: float = 1200.0
    #: Warm-up before metrics are gathered, seconds (paper: 10 minutes).
    warmup_seconds: float = 600.0
    #: Root seed for all random substreams.
    seed: int = 20130724
    #: Geometry scale factor recorded by :meth:`scaled` (1.0 = paper).
    scale: float = 1.0

    # -- substrates --------------------------------------------------------
    network: NetworkConfig = field(default_factory=NetworkConfig)
    cost: CostModelConfig = field(default_factory=CostModelConfig)
    #: Tracing / time-series sampling; off by default.
    obs: ObservabilityConfig = field(default_factory=ObservabilityConfig)
    #: Deterministic fault plan (crashes, message faults, slowdowns);
    #: empty by default — an empty plan arms no timers, spawns no
    #: injector, and leaves the run byte-identical to one without the
    #: fault plane.
    faults: FaultPlan = field(default_factory=FaultPlan)

    # ----------------------------------------------------------------------
    @classmethod
    def paper_defaults(cls) -> "SystemConfig":
        """Table I of the paper, verbatim."""
        return cls()

    def with_(self, **changes: t.Any) -> "SystemConfig":
        """Functional update; unknown keys raise :class:`ConfigError`."""
        names = {f.name for f in dataclasses.fields(self)}
        unknown = set(changes) - names
        if unknown:
            raise ConfigError(f"unknown config field(s): {sorted(unknown)}")
        return replace(self, **changes).validated()

    def scaled(self, sigma: float) -> "SystemConfig":
        """Shrink run geometry by *sigma*, preserving saturation shape.

        Window, run length, warm-up, theta and the slave buffer scale by
        ``sigma``; the per-byte scan cost scales by ``1/sigma`` so a
        given arrival *rate* loads a slave exactly as much as at full
        scale.  Epochs are left untouched.
        """
        if not 0 < sigma <= 1:
            raise ConfigError(f"scale factor must be in (0, 1]: {sigma!r}")
        return self.with_(
            window_seconds=self.window_seconds * sigma,
            run_seconds=self.run_seconds * sigma,
            warmup_seconds=self.warmup_seconds * sigma,
            theta_bytes=max(self.block_bytes, int(self.theta_bytes * sigma)),
            slave_buffer_bytes=max(
                self.block_bytes, int(self.slave_buffer_bytes * sigma)
            ),
            slave_memory_bytes=(
                None
                if self.slave_memory_bytes is None
                else max(self.block_bytes, int(self.slave_memory_bytes * sigma))
            ),
            cost=replace(self.cost, scan_byte_cost=self.cost.scan_byte_cost / sigma),
            scale=self.scale * sigma,
        )

    # ----------------------------------------------------------------------
    @property
    def tuples_per_block(self) -> int:
        return self.block_bytes // self.tuple_bytes

    def speed_of(self, slave_index: int) -> float:
        """Relative CPU speed of the *slave_index*-th slave."""
        if self.slave_speeds is None:
            return 1.0
        return self.slave_speeds[slave_index]

    @property
    def n_active_initial(self) -> int:
        n = (
            self.num_slaves
            if self.initial_active_slaves is None
            else self.initial_active_slaves
        )
        return max(1, min(n, self.num_slaves))

    def validated(self) -> "SystemConfig":
        if not 2 <= self.n_streams <= 8:
            raise ConfigError("n_streams must lie in [2, 8]")
        if self.rate <= 0:
            raise ConfigError("rate must be positive")
        if not 0.0 <= self.b_skew <= 1.0:
            raise ConfigError("b_skew must lie in [0, 1]")
        if self.key_domain < 1:
            raise ConfigError("key_domain must be >= 1")
        if self.tuple_bytes < 1 or self.block_bytes < self.tuple_bytes:
            raise ConfigError("need tuple_bytes >= 1 and block_bytes >= tuple_bytes")
        if self.block_bytes % self.tuple_bytes:
            raise ConfigError("block_bytes must be a multiple of tuple_bytes")
        if self.window_seconds <= 0:
            raise ConfigError("window_seconds must be positive")
        if self.npart < 1:
            raise ConfigError("npart must be >= 1")
        if self.theta_bytes < self.block_bytes:
            raise ConfigError("theta_bytes must be at least one block")
        if self.num_slaves < 1:
            raise ConfigError("num_slaves must be >= 1")
        if self.slave_speeds is not None:
            if len(self.slave_speeds) != self.num_slaves:
                raise ConfigError(
                    "slave_speeds must have one entry per slave"
                )
            if any(s <= 0 for s in self.slave_speeds):
                raise ConfigError("slave speeds must be positive")
        if not 1 <= self.num_subgroups <= self.num_slaves:
            raise ConfigError("num_subgroups must be in [1, num_slaves]")
        if self.dist_epoch <= 0 or self.reorg_epoch <= 0:
            raise ConfigError("epochs must be positive")
        if self.reorg_epoch < self.dist_epoch:
            raise ConfigError("reorg_epoch must be >= dist_epoch")
        if not 0 <= self.th_con < self.th_sup <= 1:
            raise ConfigError("need 0 <= th_con < th_sup <= 1")
        if self.replication not in ("off", "log", "checkpoint+log"):
            raise ConfigError(
                "replication must be one of 'off', 'log', 'checkpoint+log'"
            )
        if not 0 < self.beta < 1:
            raise ConfigError("beta must lie in (0, 1)")
        if not self.backend or not isinstance(self.backend, str):
            raise ConfigError("backend must be a non-empty string")
        if self.tcp_peers:
            if self.backend != "tcp":
                raise ConfigError(
                    "tcp_peers is only meaningful with backend='tcp'"
                )
            seen: set[int] = set()
            for entry in self.tcp_peers:
                if len(entry) != 2:
                    raise ConfigError(
                        f"tcp_peers entries must be (node_id, 'host:port') "
                        f"pairs, got {entry!r}"
                    )
                nid, addr = entry
                if not isinstance(nid, int) or nid < 0:
                    raise ConfigError(
                        f"tcp peer node id must be a non-negative int, "
                        f"got {nid!r}"
                    )
                if nid in seen:
                    raise ConfigError(f"duplicate tcp peer for node {nid}")
                seen.add(nid)
                host, sep, port = str(addr).rpartition(":")
                if (
                    not sep
                    or not host
                    or not port.isdigit()
                    or not 0 < int(port) < 65536
                ):
                    raise ConfigError(
                        f"tcp peer address must be HOST:PORT, got {addr!r}"
                    )
        if not self.tcp_host:
            raise ConfigError("tcp_host must be a non-empty host name")
        if not self.kernel or not isinstance(self.kernel, str):
            raise ConfigError("kernel must be a non-empty string")
        if self.time_scale <= 0:
            raise ConfigError("time_scale must be positive")
        if self.run_seconds <= 0 or not 0 <= self.warmup_seconds < self.run_seconds:
            raise ConfigError("need 0 <= warmup_seconds < run_seconds")
        if self.slave_buffer_bytes < self.block_bytes:
            raise ConfigError("slave_buffer_bytes must hold at least one block")
        if (
            self.slave_memory_bytes is not None
            and self.slave_memory_bytes < self.block_bytes
        ):
            raise ConfigError("slave_memory_bytes must hold at least one block")
        self.network.validated()
        self.cost.validated()
        self.obs.validated()
        self.faults.validated(num_slaves=self.num_slaves)
        if not self.standby and any(
            c.targets_master for c in self.faults.crashes
        ):
            raise ConfigError(
                "crash:master fault specs require standby=True "
                "(swjoin run --standby): without a standby coordinator "
                "a master crash kills the whole run"
            )
        return self
