"""Canned experiments: one per table/figure of the paper.

Every function returns an :class:`~repro.analysis.series.Experiment`
whose rows are the same series the figure plots.  All experiments run
at a reduced geometric scale (default ``sigma = 0.05``: 30 s windows,
60 s runs) — :meth:`~repro.config.SystemConfig.scaled` keeps saturation
rates and split behaviour identical to the full-scale system, while
absolute "seconds of overhead per run" shrink by ``sigma`` (multiply by
``1/sigma`` to compare against the paper's 20-minute numbers).

``quick=True`` coarsens the sweep grids (used by the pytest-benchmark
harness); the full grids match the figures' x-axes.
"""

from __future__ import annotations

import typing as t

import numpy as np

from repro.analysis.series import Experiment
from repro.baselines import AtrSystem, CtrSystem, no_fine_tuning
from repro.config import MIB, SystemConfig
from repro.core.subgroups import max_master_buffer_bytes
from repro.core.system import JoinSystem

DEFAULT_SCALE = 0.05


def base_config(scale: float = DEFAULT_SCALE) -> SystemConfig:
    """Table I defaults at the requested geometric scale."""
    cfg = SystemConfig.paper_defaults()
    return cfg.scaled(scale) if scale != 1.0 else cfg


def _run(cfg: SystemConfig):
    return JoinSystem(cfg).run()


def _rates(lo: int, hi: int, step: int, quick: bool) -> list[int]:
    rates = list(range(lo, hi + 1, step))
    if quick:
        # Keep both endpoints (saturation lives at the top of the grid)
        # plus the midpoint.
        return sorted({rates[0], rates[len(rates) // 2], rates[-1]})
    return rates


# ---------------------------------------------------------------------------
# Figures 5 and 6: average production delay vs stream arrival rate.
# ---------------------------------------------------------------------------

def fig05(scale: float = DEFAULT_SCALE, quick: bool = False) -> Experiment:
    exp = Experiment(
        name="fig05",
        title="Average delay vs stream arrival rate (1-2 slaves)",
        expectation=(
            "Per slave count, delay stays low and flat until the load "
            "saturates the system, then rises sharply; the saturation "
            "rate roughly doubles from 1 slave (~1500-2000 t/s) to 2 "
            "(~3000-3500 t/s)."
        ),
        columns=["slaves", "rate", "avg_delay_s"],
    )
    cfg = base_config(scale)
    for n in (1, 2):
        for rate in _rates(1000, 3500, 500, quick):
            r = _run(cfg.with_(num_slaves=n, rate=float(rate)))
            exp.add(slaves=n, rate=rate, avg_delay_s=r.avg_delay)
    return exp


def fig06(scale: float = DEFAULT_SCALE, quick: bool = False) -> Experiment:
    exp = Experiment(
        name="fig06",
        title="Average delay vs stream arrival rate (3-5 slaves)",
        expectation=(
            "Same shape as Figure 5 at higher capacity: saturation near "
            "4500-5000 t/s with 3 slaves, ~6000 with 4, ~7500-8000 with 5."
        ),
        columns=["slaves", "rate", "avg_delay_s"],
    )
    cfg = base_config(scale)
    for n in (3, 4, 5):
        for rate in _rates(1000, 8000, 1000, quick):
            r = _run(cfg.with_(num_slaves=n, rate=float(rate)))
            exp.add(slaves=n, rate=rate, avg_delay_s=r.avg_delay)
    return exp


# ---------------------------------------------------------------------------
# Figures 7-10: the fine-tuning ablation (4 slaves).
# ---------------------------------------------------------------------------

def fig07(scale: float = DEFAULT_SCALE, quick: bool = False) -> Experiment:
    exp = Experiment(
        name="fig07",
        title="Average CPU time vs rate, with and without fine tuning (4 slaves)",
        expectation=(
            "Without fine tuning, per-probe scans grow with the window "
            "partitions and CPU time rises sharply with rate (hitting "
            "the capacity ceiling near 4000 t/s); with fine tuning the "
            "scan is bounded by [theta, 2*theta] and CPU grows roughly "
            "linearly, staying well below the no-tuning curve."
        ),
        columns=["rate", "fine_tuning", "avg_cpu_s"],
    )
    cfg = base_config(scale).with_(num_slaves=4)
    for rate in _rates(1500, 6000, 500, quick):
        for ft in (False, True):
            run_cfg = cfg.with_(rate=float(rate), fine_tuning=ft)
            r = _run(run_cfg)
            exp.add(rate=rate, fine_tuning=ft, avg_cpu_s=r.avg_cpu_time)
    return exp


def fig08(scale: float = DEFAULT_SCALE, quick: bool = False) -> Experiment:
    exp = Experiment(
        name="fig08",
        title="Average delay vs rate without fine tuning (4 slaves)",
        expectation=(
            "Delay blows up near 4000 t/s — versus ~2 s at the same "
            "rate with fine tuning (compare Figure 6's 4-slave curve)."
        ),
        columns=["rate", "avg_delay_s"],
    )
    cfg = no_fine_tuning(base_config(scale).with_(num_slaves=4))
    # Saturation delay accumulates over time; give the overload room to
    # build up (the paper measures over a 10-minute window).
    duration = cfg.run_seconds - cfg.warmup_seconds
    cfg = cfg.with_(run_seconds=cfg.warmup_seconds + 3 * duration)
    for rate in _rates(1500, 4000, 500, quick):
        r = _run(cfg.with_(rate=float(rate)))
        exp.add(rate=rate, avg_delay_s=r.avg_delay)
    return exp


def _idle_comm(
    name: str, title: str, expectation: str, fine_tuning: bool,
    hi_rate: int, scale: float, quick: bool,
) -> Experiment:
    exp = Experiment(
        name=name,
        title=title,
        expectation=expectation,
        columns=["rate", "idle_s", "comm_s"],
    )
    cfg = base_config(scale).with_(num_slaves=4, fine_tuning=fine_tuning)
    for rate in _rates(1500, hi_rate, 500, quick):
        r = _run(cfg.with_(rate=float(rate)))
        exp.add(rate=rate, idle_s=r.avg_idle_time, comm_s=r.avg_comm_time)
    return exp


def fig09(scale: float = DEFAULT_SCALE, quick: bool = False) -> Experiment:
    return _idle_comm(
        "fig09",
        "Idle time and communication overhead vs rate "
        "(no fine tuning, 4 slaves)",
        "Idle time falls to ~zero at ~4000 t/s (saturation); "
        "communication overhead grows mildly and is unaffected by "
        "(absent) tuning.",
        fine_tuning=False,
        hi_rate=4000,
        scale=scale,
        quick=quick,
    )


def fig10(scale: float = DEFAULT_SCALE, quick: bool = False) -> Experiment:
    return _idle_comm(
        "fig10",
        "Idle time and communication overhead vs rate "
        "(fine tuning, 4 slaves)",
        "With fine tuning the idle time reaches ~zero only near "
        "6000 t/s; the tuning itself incurs no communication overhead "
        "(the comm curve matches Figure 9 at equal rates).",
        fine_tuning=True,
        hi_rate=6000,
        scale=scale,
        quick=quick,
    )


# ---------------------------------------------------------------------------
# Figures 11 and 12: communication overhead.
# ---------------------------------------------------------------------------

def fig11(scale: float = DEFAULT_SCALE, quick: bool = False) -> Experiment:
    exp = Experiment(
        name="fig11",
        title="Communication overhead vs total nodes (rate 1500 t/s)",
        expectation=(
            "Per-node communication time decreases with more nodes "
            "(payload splits N ways) while the aggregate over all "
            "slaves increases roughly linearly (per-message overhead "
            "multiplies).  The adaptive variant keeps the degree of "
            "declustering low at this light load, so its aggregate "
            "stays near the small-N value."
        ),
        columns=["nodes", "per_node_s", "aggregate_s", "adaptive_aggregate_s"],
    )
    cfg = base_config(scale).with_(rate=1500.0)
    nodes = (1, 3, 5) if quick else (1, 2, 3, 4, 5)
    duration = cfg.run_seconds - cfg.warmup_seconds
    for n in nodes:
        r = _run(cfg.with_(num_slaves=n))
        # The adaptive system sheds one node per reorganization epoch;
        # let it settle before the measurement window opens so the
        # comparison reflects steady state (as the paper's runs do),
        # not the one-off state-movement cost of shrinking.
        settle = max(cfg.warmup_seconds, (n + 1) * cfg.reorg_epoch)
        adaptive = _run(
            cfg.with_(
                num_slaves=n,
                adaptive_declustering=True,
                warmup_seconds=settle,
                run_seconds=settle + duration,
            )
        )
        active = [s for s in adaptive.slaves if s["comm_time"] > 0]
        exp.add(
            nodes=n,
            per_node_s=r.avg_comm_time,
            aggregate_s=r.aggregate_comm_time,
            adaptive_aggregate_s=adaptive.aggregate_comm_time,
        )
        exp.notes.append(
            f"adaptive with {n} nodes available settled on "
            f"{adaptive.final_active_slaves} active "
            f"({len(active)} slaves saw traffic)"
        )
    return exp


def fig12(scale: float = DEFAULT_SCALE, quick: bool = False) -> Experiment:
    exp = Experiment(
        name="fig12",
        title="Communication overhead vs rate (min/max/avg over 4 slaves)",
        expectation=(
            "Communication time grows with rate (payload per epoch "
            "grows).  The serial distribution order makes it non-uniform "
            "across slaves, and the divergence (max-min) widens with "
            "rate."
        ),
        columns=["rate", "min_s", "avg_s", "max_s"],
    )
    cfg = base_config(scale).with_(num_slaves=4)
    for rate in _rates(1500, 6000, 500, quick):
        r = _run(cfg.with_(rate=float(rate)))
        # Per-slave communication time includes the rendezvous wait for
        # the master's serial distribution — that wait is exactly what
        # makes the paper's per-slave comm times diverge (a slave may
        # idle while the master serves the slaves before it).
        comms = [s["comm_time"] + s["idle_time"] for s in r.slaves]
        exp.add(
            rate=rate,
            min_s=min(comms),
            avg_s=float(np.mean(comms)),
            max_s=max(comms),
        )
    return exp


# ---------------------------------------------------------------------------
# Figures 13 and 14: the distribution-epoch tradeoff (3 slaves).
# ---------------------------------------------------------------------------

_EPOCHS = (0.25, 0.5, 1.0, 2.0, 3.0, 5.0, 7.0)


def fig13(scale: float = DEFAULT_SCALE, quick: bool = False) -> Experiment:
    exp = Experiment(
        name="fig13",
        title="Average production delay vs distribution epoch (3 slaves)",
        expectation=(
            "Delay decreases roughly linearly as the epoch shrinks "
            "(tuples wait ~half an epoch at the master before "
            "distribution)."
        ),
        columns=["dist_epoch_s", "avg_delay_s"],
    )
    cfg = base_config(scale).with_(num_slaves=3, rate=1500.0)
    epochs = _EPOCHS[::3] if quick else _EPOCHS
    for td in epochs:
        r = _run(_epoch_cfg(cfg, td))
        exp.add(dist_epoch_s=td, avg_delay_s=r.avg_delay)
    return exp


def _epoch_cfg(cfg: SystemConfig, td: float) -> SystemConfig:
    """Vary the distribution epoch, stretching short runs so every
    epoch length still fits several epochs past warm-up."""
    return cfg.with_(
        dist_epoch=td,
        reorg_epoch=max(20.0, 10 * td),
        run_seconds=max(cfg.run_seconds, cfg.warmup_seconds + 12 * td),
    )


def fig14(scale: float = DEFAULT_SCALE, quick: bool = False) -> Experiment:
    exp = Experiment(
        name="fig14",
        title="Communication overhead vs distribution epoch (3 slaves)",
        expectation=(
            "Shorter epochs mean more messages for the same payload, so "
            "per-slave communication overhead rises steeply as the "
            "epoch shrinks (the tradeoff against Figure 13's delay)."
        ),
        columns=["dist_epoch_s", "comm_s"],
    )
    cfg = base_config(scale).with_(num_slaves=3, rate=1500.0)
    base_duration = cfg.run_seconds - cfg.warmup_seconds
    epochs = _EPOCHS[::3] if quick else _EPOCHS
    for td in epochs:
        run_cfg = _epoch_cfg(cfg, td)
        r = _run(run_cfg)
        # Runs for long epochs are stretched; normalize the cumulative
        # communication time back to the common measurement duration.
        norm = base_duration / (run_cfg.run_seconds - run_cfg.warmup_seconds)
        exp.add(dist_epoch_s=td, comm_s=r.avg_comm_time * norm)
    return exp


# ---------------------------------------------------------------------------
# Section V-B equation: sub-group communication and the master buffer.
# ---------------------------------------------------------------------------

def subgroup_buffer(scale: float = DEFAULT_SCALE, quick: bool = False) -> Experiment:
    exp = Experiment(
        name="subgroup_buffer",
        title="Master buffer peak vs number of sub-groups (Section V-B)",
        expectation=(
            "The measured peak master buffer tracks the analytic bound "
            "M_buf = (r*t_d/2)(1 + 1/ng) per stream: about half the "
            "single-group peak as ng grows."
        ),
        columns=["subgroups", "measured_peak_bytes", "analytic_bound_bytes"],
    )
    cfg = base_config(scale).with_(num_slaves=4, rate=3000.0)
    # Reorganization epochs collapse the slot structure (all slaves
    # sync at the epoch boundary), which would mask the sub-group
    # buffer saving; push reorgs past the run to measure V-B cleanly.
    cfg = cfg.with_(reorg_epoch=10 * cfg.run_seconds)
    for ng in (1, 2, 4):
        r = _run(cfg.with_(num_subgroups=ng))
        bound = max_master_buffer_bytes(
            cfg.rate, cfg.dist_epoch, ng, cfg.tuple_bytes
        )
        exp.add(
            subgroups=ng,
            measured_peak_bytes=r.master["max_buffer_bytes"],
            analytic_bound_bytes=int(bound),
        )
    return exp


# ---------------------------------------------------------------------------
# Ablations beyond the paper's figures (DESIGN.md A1-A5).
# ---------------------------------------------------------------------------

def ablation_theta(scale: float = DEFAULT_SCALE, quick: bool = False) -> Experiment:
    exp = Experiment(
        name="ablation_theta",
        title="Sensitivity to the partition tuning parameter theta",
        expectation=(
            "Too large a theta behaves like no tuning (long scans); "
            "very small theta adds split churn with diminishing returns "
            "— CPU time is minimized at an intermediate value."
        ),
        columns=["theta_mb_fullscale", "avg_cpu_s", "avg_delay_s", "splits"],
    )
    cfg = base_config(scale).with_(num_slaves=4, rate=5000.0)
    thetas = (0.25, 1.5, 6.0) if quick else (0.25, 0.5, 1.0, 1.5, 3.0, 6.0)
    for theta_mb in thetas:
        run_cfg = cfg.with_(
            theta_bytes=max(cfg.block_bytes, int(theta_mb * MIB * scale))
        )
        r = _run(run_cfg)
        exp.add(
            theta_mb_fullscale=theta_mb,
            avg_cpu_s=r.avg_cpu_time,
            avg_delay_s=r.avg_delay,
            splits=sum(s["splits"] for s in r.slaves),
        )
    return exp


def ablation_npart(scale: float = DEFAULT_SCALE, quick: bool = False) -> Experiment:
    exp = Experiment(
        name="ablation_npart",
        title="Level of indirection: number of hash partitions",
        expectation=(
            "Very few partitions limit balance granularity (load "
            "balancing moves huge chunks); very many add bookkeeping. "
            "Delay is flat over a wide middle range — the paper's 60 is "
            "uncritical."
        ),
        columns=["npart", "avg_delay_s", "avg_cpu_s", "moves"],
    )
    cfg = base_config(scale).with_(num_slaves=4, rate=4000.0)
    nparts = (12, 60, 120) if quick else (12, 30, 60, 120, 240)
    for npart in nparts:
        r = _run(cfg.with_(npart=npart))
        exp.add(
            npart=npart,
            avg_delay_s=r.avg_delay,
            avg_cpu_s=r.avg_cpu_time,
            moves=r.master["moves_ordered"],
        )
    return exp


def ablation_thresholds(
    scale: float = DEFAULT_SCALE, quick: bool = False
) -> Experiment:
    exp = Experiment(
        name="ablation_thresholds",
        title="Supplier threshold sensitivity",
        expectation=(
            "On a non-dedicated cluster (one slave at 45% speed due to "
            "background load), a lower supplier threshold triggers "
            "rebalancing earlier and sheds more groups off the slow "
            "node; an overly high threshold leaves the imbalance "
            "uncorrected and raises delay."
        ),
        columns=["th_sup", "avg_delay_s", "moves"],
    )
    # The paper's motivating scenario: heterogeneous background load.
    # Rebalancing converges one group per reorganization, so run long
    # enough for several reorganizations inside the measurement.
    cfg = base_config(scale).with_(
        num_slaves=4,
        rate=3500.0,
        slave_speeds=(1.0, 1.0, 0.45, 1.0),
    )
    cfg = cfg.with_(
        warmup_seconds=2 * cfg.reorg_epoch,
        run_seconds=2 * cfg.reorg_epoch + 6 * cfg.reorg_epoch,
    )
    sups = (0.1, 0.5, 0.9) if quick else (0.05, 0.1, 0.3, 0.5, 0.7, 0.9)
    for th in sups:
        r = _run(cfg.with_(th_sup=th))
        exp.add(
            th_sup=th, avg_delay_s=r.avg_delay, moves=r.master["moves_ordered"]
        )
    return exp


def ablation_beta(scale: float = DEFAULT_SCALE, quick: bool = False) -> Experiment:
    exp = Experiment(
        name="ablation_beta",
        title="Degree-of-declustering granularity parameter beta",
        expectation=(
            "Small beta recruits new nodes eagerly (growth triggers "
            "even when plenty of consumers could absorb the load); "
            "large beta grows only reluctantly.  The observable effect "
            "is the *time* the cluster takes to reach its final size — "
            "eager betas get there sooner.  Beta only bites when "
            "suppliers and consumers coexist, so the cluster is "
            "heterogeneous (non-dedicated nodes at different speeds)."
        ),
        columns=[
            "beta",
            "final_active",
            "t_last_growth_s",
            "avg_delay_s",
        ],
    )
    # One slow (background-loaded) supplier among fast consumers, plus
    # a spare node: whether the spare is recruited is exactly the
    # N_sup > beta * N_con comparison.
    cfg = base_config(scale).with_(
        num_slaves=5,
        rate=2800.0,
        slave_speeds=(0.4, 1.0, 1.0, 1.0, 1.0),
        adaptive_declustering=True,
        initial_active_slaves=4,
    )
    # Growth decisions happen once per reorganization; give each
    # configuration enough reorganizations to express its beta.
    cfg = cfg.with_(
        warmup_seconds=2 * cfg.reorg_epoch,
        run_seconds=10 * cfg.reorg_epoch,
    )
    betas = (0.1, 0.5, 0.9) if quick else (0.1, 0.3, 0.5, 0.7, 0.9)
    for beta in betas:
        r = _run(cfg.with_(beta=beta))
        t_last = r.dod_trace[-1][0] if r.dod_trace else 0.0
        exp.add(
            beta=beta,
            final_active=r.final_active_slaves,
            t_last_growth_s=t_last,
            avg_delay_s=r.avg_delay,
        )
    return exp


def ablation_memory(scale: float = DEFAULT_SCALE, quick: bool = False) -> Experiment:
    exp = Experiment(
        name="ablation_memory",
        title="Memory-limited slaves: disk spill (the paper's disk-I/O "
        "future work)",
        expectation=(
            "With enough memory, nothing spills and performance matches "
            "the in-memory system.  As per-slave memory drops below the "
            "window share, probes pay disk reads on the spilled "
            "fraction: CPU+I/O time rises and so does delay once the "
            "node saturates."
        ),
        columns=[
            "memory_over_window",
            "avg_delay_s",
            "avg_busy_s",
            "disk_gb_read",
        ],
    )
    cfg = base_config(scale).with_(num_slaves=4, rate=3000.0)
    # Per-slave steady-state window share (both streams).
    share = int(
        2 * cfg.rate * cfg.window_seconds * cfg.tuple_bytes / cfg.num_slaves
    )
    fractions = (None, 0.5, 0.25) if quick else (None, 1.0, 0.5, 0.25, 0.125)
    for fraction in fractions:
        memory = None if fraction is None else max(
            cfg.block_bytes, int(share * fraction)
        )
        r = _run(cfg.with_(slave_memory_bytes=memory))
        exp.add(
            memory_over_window=float("inf") if fraction is None else fraction,
            avg_delay_s=r.avg_delay,
            avg_busy_s=r.avg_cpu_time,
            disk_gb_read=sum(s["disk_bytes_read"] for s in r.slaves) / 1e9,
        )
    return exp


def baselines_skew(scale: float = DEFAULT_SCALE, quick: bool = False) -> Experiment:
    exp = Experiment(
        name="baselines_skew",
        title="Ours vs ATR vs CTR (4 slaves): fair load and stress load",
        expectation=(
            "At a rate one node can absorb (1200 t/s), ATR works but "
            "concentrates ~the whole two-stream window on the segment "
            "node (max window per node is ~N times ours).  At a rate "
            "that needs the cluster (3000 t/s), ATR's one-node-at-a-"
            "time processing saturates and its delay explodes while "
            "ours stays flat.  CTR forwards every tuple to every node, "
            "paying ~Nx our network bytes at any rate."
        ),
        columns=[
            "b_skew",
            "rate",
            "system",
            "avg_delay_s",
            "max_window_mb",
            "slave_bytes_mb",
        ],
    )
    cfg = base_config(scale).with_(num_slaves=4)
    skews = (0.7,) if quick else (0.5, 0.7, 0.9)
    for b in skews:
        for rate in (1200.0, 3000.0):
            run_cfg = cfg.with_(b_skew=b, rate=rate)
            ours = _run(run_cfg)
            atr = AtrSystem(run_cfg).run()
            ctr = CtrSystem(run_cfg).run()
            for label, res in (("ours", ours), ("atr", atr), ("ctr", ctr)):
                received = sum(s["bytes_received"] for s in res.slaves)
                exp.add(
                    b_skew=b,
                    rate=rate,
                    system=label,
                    avg_delay_s=res.avg_delay,
                    max_window_mb=res.max_window_bytes / 1e6,
                    slave_bytes_mb=received / 1e6,
                )
    return exp


# ---------------------------------------------------------------------------

EXPERIMENTS: dict[str, t.Callable[..., Experiment]] = {
    fn.__name__: fn
    for fn in (
        fig05,
        fig06,
        fig07,
        fig08,
        fig09,
        fig10,
        fig11,
        fig12,
        fig13,
        fig14,
        subgroup_buffer,
        ablation_theta,
        ablation_npart,
        ablation_thresholds,
        ablation_beta,
        ablation_memory,
        baselines_skew,
    )
}


def run_experiment(
    name: str, scale: float = DEFAULT_SCALE, quick: bool = False
) -> Experiment:
    """Run one named experiment (see :data:`EXPERIMENTS`)."""
    try:
        fn = EXPERIMENTS[name]
    except KeyError:
        raise KeyError(
            f"unknown experiment {name!r}; available: {sorted(EXPERIMENTS)}"
        ) from None
    return fn(scale=scale, quick=quick)
