"""Experiment result containers."""

from __future__ import annotations

import dataclasses
import typing as t

from repro.analysis.tables import format_table


@dataclasses.dataclass
class Experiment:
    """One reproduced table/figure: metadata plus result rows."""

    #: Short id, e.g. ``"fig05"``.
    name: str
    #: Human title, e.g. ``"Average delay vs stream rate (1-2 slaves)"``.
    title: str
    #: What the paper's figure shows and what shape to expect.
    expectation: str
    #: Column names in print order.
    columns: list[str]
    #: One dict per data point.
    rows: list[dict[str, t.Any]] = dataclasses.field(default_factory=list)
    #: Free-form notes accumulated while running.
    notes: list[str] = dataclasses.field(default_factory=list)

    def add(self, **row: t.Any) -> None:
        self.rows.append(row)

    def series(self, key: str, where: dict[str, t.Any] | None = None) -> list:
        """Column *key* of all rows matching *where* (for assertions)."""
        out = []
        for row in self.rows:
            if where and any(row.get(k) != v for k, v in where.items()):
                continue
            out.append(row[key])
        return out

    def render(self) -> str:
        head = f"== {self.name}: {self.title} ==\n{self.expectation}\n"
        body = format_table(self.rows, self.columns)
        tail = "".join(f"\nnote: {n}" for n in self.notes)
        return head + body + tail

    def to_markdown(self) -> str:
        """Markdown section (used to build EXPERIMENTS.md)."""
        lines = [f"### {self.name} — {self.title}", "", self.expectation, ""]
        lines.append("| " + " | ".join(self.columns) + " |")
        lines.append("|" + "---|" * len(self.columns))
        for row in self.rows:
            lines.append(
                "| "
                + " | ".join(_fmt(row.get(c)) for c in self.columns)
                + " |"
            )
        for n in self.notes:
            lines.append(f"\n*{n}*")
        return "\n".join(lines) + "\n"


def _fmt(value: t.Any) -> str:
    if isinstance(value, float):
        return f"{value:.4g}"
    return str(value)
