"""Terminal line plots for experiment series.

No plotting dependency is available offline, so the CLI renders
figures as Unicode scatter/line charts — enough to eyeball the same
shapes the paper's gnuplot figures show.
"""

from __future__ import annotations

import typing as t

_DOT = "o"
_MARKS = "ox+*#@%&"


def ascii_plot(
    series: t.Mapping[str, t.Sequence[tuple[float, float]]],
    width: int = 64,
    height: int = 18,
    x_label: str = "",
    y_label: str = "",
    title: str = "",
) -> str:
    """Render named ``(x, y)`` series as a text chart.

    Each series gets its own marker; the legend maps markers to names.
    """
    points = [(x, y) for pts in series.values() for x, y in pts]
    if not points:
        return "(no data)"
    xs = [p[0] for p in points]
    ys = [p[1] for p in points]
    x_lo, x_hi = min(xs), max(xs)
    y_lo, y_hi = min(ys), max(ys)
    if x_hi == x_lo:
        x_hi = x_lo + 1.0
    if y_hi == y_lo:
        y_hi = y_lo + 1.0

    grid = [[" "] * width for _ in range(height)]

    def put(x: float, y: float, mark: str) -> None:
        col = round((x - x_lo) / (x_hi - x_lo) * (width - 1))
        row = round((y - y_lo) / (y_hi - y_lo) * (height - 1))
        grid[height - 1 - row][col] = mark

    legend = []
    for i, (name, pts) in enumerate(series.items()):
        mark = _MARKS[i % len(_MARKS)]
        legend.append(f"{mark} = {name}")
        for x, y in pts:
            put(x, y, mark)

    lines = []
    if title:
        lines.append(title)
    lines.append(f"{y_hi:>10.3g} ┤" + "".join(grid[0]))
    for row in grid[1:-1]:
        lines.append(" " * 10 + " │" + "".join(row))
    lines.append(f"{y_lo:>10.3g} ┤" + "".join(grid[-1]))
    lines.append(" " * 10 + " └" + "─" * width)
    footer = f"{x_lo:<12.4g}{x_label:^{max(0, width - 24)}}{x_hi:>12.4g}"
    lines.append(" " * 12 + footer)
    if y_label:
        lines.append(f"    y: {y_label}    " + "   ".join(legend))
    else:
        lines.append("    " + "   ".join(legend))
    return "\n".join(lines)


def plot_run_series(result: t.Any, gauge: str) -> str:
    """Chart one sampled gauge of a RunResult across all nodes.

    ``result.series`` keys are ``"n<node>.<gauge>"``; every node that
    recorded *gauge* becomes one series.
    """
    if not result.series:
        return "(no sampled series — run with a sample period)"
    suffix = f".{gauge}"
    series = {
        key: pts
        for key, pts in result.series.items()
        if key.endswith(suffix) and pts
    }
    if not series:
        have = sorted({k.split(".", 1)[1] for k in result.series})
        return f"(no samples for gauge {gauge!r}; available: {have})"
    return ascii_plot(
        series, x_label="sim time (s)", y_label=gauge, title=f"gauge: {gauge}"
    )


def plot_experiment(exp: t.Any) -> str:
    """Best-effort chart of an Experiment: the first column is x, the
    numeric columns are y series, and an optional low-cardinality
    label column (e.g. ``slaves``, ``system``) splits series."""
    if not exp.rows:
        return "(no data)"
    columns = exp.columns
    x_col = columns[0]
    numeric = [
        c
        for c in columns[1:]
        if all(isinstance(r.get(c), (int, float)) for r in exp.rows)
    ]
    # A grouping column: a low-cardinality int/str column (not a float
    # metric) listed before the metrics, e.g. ``slaves`` or ``system``.
    group_col = None
    for c in columns[:2]:
        if c == x_col:
            continue
        values = {r.get(c) for r in exp.rows}
        discrete = all(
            isinstance(v, (int, str)) and not isinstance(v, bool)
            and not isinstance(v, float)
            for v in values
        )
        if discrete and 1 < len(values) <= 6:
            group_col = c
            break
    if group_col is None and not all(
        isinstance(r.get(x_col), (int, float)) for r in exp.rows
    ):
        return "(not plottable)"

    series: dict[str, list[tuple[float, float]]] = {}
    y_cols = [c for c in numeric if c != group_col][:3]
    for row in exp.rows:
        x = row[x_col]
        if not isinstance(x, (int, float)) or x == float("inf"):
            continue
        for y_col in y_cols:
            y = row[y_col]
            if not isinstance(y, (int, float)):
                continue
            name = (
                f"{group_col}={row[group_col]} {y_col}"
                if group_col
                else y_col
            )
            series.setdefault(name, []).append((float(x), float(y)))
    return ascii_plot(
        series, x_label=x_col, title=f"{exp.name}: {exp.title}"
    )
