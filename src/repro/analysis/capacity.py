"""Closed-form capacity model (theory cross-check for the simulator).

The utilization of one slave under the paper's workload follows from
the block-NLJ cost model:

    u(r, N) = (n_streams * r / N) * (tuple_cost + scan_byte_cost * s̄) / speed

with ``s̄`` the mean bytes a probe scans: the opposite streams' share
of the (mini-)partition.  Without fine tuning that share grows linearly
with the rate; with fine tuning it is clamped into ``[theta, 2*theta]``
by splitting.  The predicted saturation rate is ``u = 1``.

``tests/integration/test_capacity_model.py`` checks that the simulated
system saturates where this model says it should — theory and
simulation agreeing is what lets a 60-second scaled run stand in for
the paper's 20-minute testbed runs.
"""

from __future__ import annotations

import typing as t

from repro.config import SystemConfig


def partition_bytes_per_stream(cfg: SystemConfig, rate: float) -> float:
    """Steady-state bytes of one stream's window in one partition."""
    return rate * cfg.window_seconds * cfg.tuple_bytes / cfg.npart


def mean_scan_bytes(cfg: SystemConfig, rate: float) -> float:
    """Expected bytes scanned by one probe (opposite streams' share)."""
    opposite_streams = cfg.n_streams - 1
    per_stream = partition_bytes_per_stream(cfg, rate)
    if not cfg.fine_tuning:
        return opposite_streams * per_stream
    # Fine tuning keeps each mini-group (all streams) within
    # [theta, 2*theta]; the long-run mean sits near 1.5*theta, of which
    # the opposite streams' share is scanned.  Below theta nothing
    # splits and the raw partition is scanned.
    group = cfg.n_streams * per_stream
    if group <= 2 * cfg.theta_bytes:
        return opposite_streams * per_stream
    mean_group = 1.5 * cfg.theta_bytes
    return mean_group * opposite_streams / cfg.n_streams


def utilization(
    cfg: SystemConfig, rate: float, n_active: int, speed: float = 1.0
) -> float:
    """Predicted CPU utilization of one slave."""
    per_tuple = (
        cfg.cost.tuple_cost
        + cfg.cost.scan_byte_cost * mean_scan_bytes(cfg, rate)
    )
    return (cfg.n_streams * rate / n_active) * per_tuple / speed


def saturation_rate(
    cfg: SystemConfig,
    n_active: int,
    speed: float = 1.0,
    lo: float = 100.0,
    hi: float = 100_000.0,
) -> float:
    """Rate at which the predicted utilization crosses 1 (bisection —
    the no-tuning scan size itself depends on the rate)."""
    if utilization(cfg, hi, n_active, speed) < 1.0:
        return hi
    for _ in range(64):
        mid = 0.5 * (lo + hi)
        if utilization(cfg, mid, n_active, speed) < 1.0:
            lo = mid
        else:
            hi = mid
    return 0.5 * (lo + hi)


def capacity_table(
    cfg: SystemConfig, max_slaves: int = 5
) -> list[dict[str, t.Any]]:
    """Predicted saturation rate per cluster size (tuned and untuned)."""
    rows = []
    for n in range(1, max_slaves + 1):
        rows.append(
            {
                "slaves": n,
                "tuned_capacity": saturation_rate(cfg, n),
                "untuned_capacity": saturation_rate(
                    cfg.with_(fine_tuning=False), n
                ),
            }
        )
    return rows
