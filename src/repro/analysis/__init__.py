"""Experiment harness: sweeps, tables, and the per-figure experiments.

``repro.analysis.experiments`` contains one entry per table/figure of
the paper's evaluation section (and the extra ablations listed in
DESIGN.md).  Each returns an :class:`~repro.analysis.series.Experiment`
whose rows print as the same series the paper plots.
"""

from repro.analysis.experiments import EXPERIMENTS, run_experiment
from repro.analysis.series import Experiment
from repro.analysis.tables import format_table

__all__ = ["Experiment", "format_table", "EXPERIMENTS", "run_experiment"]
