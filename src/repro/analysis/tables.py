"""Plain-text table rendering for experiment output."""

from __future__ import annotations

import typing as t


def _fmt(value: t.Any) -> str:
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        return f"{value:.4g}"
    return str(value)


def format_table(
    rows: t.Sequence[t.Mapping[str, t.Any]],
    columns: t.Sequence[str] | None = None,
    title: str | None = None,
) -> str:
    """Render rows of dicts as an aligned ASCII table."""
    if not rows:
        return "(no rows)"
    cols = list(columns) if columns else list(rows[0].keys())
    cells = [[_fmt(row.get(c, "")) for c in cols] for row in rows]
    widths = [
        max(len(c), *(len(line[i]) for line in cells)) for i, c in enumerate(cols)
    ]
    out = []
    if title:
        out.append(title)
    out.append("  ".join(c.ljust(w) for c, w in zip(cols, widths)))
    out.append("  ".join("-" * w for w in widths))
    for line in cells:
        out.append("  ".join(v.rjust(w) for v, w in zip(line, widths)))
    return "\n".join(out)
