"""TCP channels for the multi-host backend.

This is the :mod:`repro.net.proc_transport` channel model lifted onto
real sockets: each unordered node pair shares one full-duplex TCP
connection, messages travel as the same length-prefixed
:mod:`repro.net.wire` frames, and :class:`FrameReader` reassembles
partial reads.  What TCP adds over inherited socketpairs:

* **an explicit connect handshake** — every connection opens with a
  fixed :data:`HELLO` struct carrying the wire ``MAGIC``, the
  ``WIRE_VERSION``, a connection kind (control vs. peer mesh) and the
  caller's node id.  A version or magic mismatch is rejected with
  :class:`~repro.errors.WireError` *before* any frame is exchanged, so
  a skewed build can never half-join a cluster.
* **bounded connect retry with deterministic backoff** — peers come up
  in arbitrary order, so :func:`connect_with_retry` retries refused
  connections on a capped exponential schedule whose jitter comes from
  a :class:`~repro.simul.rng.RngRegistry` substream (the schedule for
  a given ``(seed, src, dst)`` is reproducible).  Exhaustion raises
  :class:`~repro.errors.ConnectError` naming the peer and address.
* **per-pair byte/frame counters** — every channel tallies frames and
  wire bytes in both directions; :meth:`TcpTransport.attach_registry`
  binds the tallies to the PR 6 metrics registry so ``swjoin`` runs
  expose ``tcp.tx_bytes.to_n*`` / ``tcp.rx_frames.from_n*`` series.

Failure semantics are deliberately identical to the process transport
with one observable refinement: a send to a dead peer still *completes*
(callers ignore send values — the TCP-buffered-write model of a
fail-stop peer), but the thunk resolves to
:class:`~repro.faults.markers.NodeDown` instead of ``None`` so tests
and diagnostics can see the broken pipe.  Peer EOF on receive resolves
to ``NodeDown`` exactly as before, which is what the PR 3 master
failure-detection path keys on.
"""

from __future__ import annotations

import select
import socket
import struct
import time
import typing as t

import numpy as np

from repro.errors import ConnectError, WireError
from repro.faults.markers import NodeDown, RecvTimeout
from repro.net.proc_transport import (
    _EOF,
    _TIMED_OUT,
    FRAME_HEADER,
    FrameReader,
    ProcTransport,
    _ForeignEndpoint,
    write_frame,
)
from repro.net.sim_transport import CommStats
from repro.net.wire import MAGIC, WIRE_VERSION, decode_message, encode_message
from repro.obs.events import TransportEvent
from repro.obs.tracer import NULL_TRACER, Tracer
from repro.runtime.thread import Thunk

#: Connect handshake: magic, wire version, connection kind, node id.
HELLO = struct.Struct("!2sBBq")
#: Handshake kind: a launcher's control-plane connection.
KIND_CONTROL = 0
#: Handshake kind: a peer-mesh data connection.
KIND_PEER = 1
#: Wall-second bound on completing one handshake exchange.
HANDSHAKE_TIMEOUT = 10.0
#: Default bounded-retry attempt count for :func:`connect_with_retry`.
CONNECT_ATTEMPTS = 8
#: First backoff step (doubles each attempt, capped).
BACKOFF_BASE_S = 0.05
#: Backoff cap — retries never sleep longer than ~1.5x this (jitter).
BACKOFF_CAP_S = 2.0


# -- handshake ---------------------------------------------------------------
def send_hello(sock: socket.socket, kind: int, node_id: int) -> None:
    """Write one handshake struct (blocking until buffered)."""
    sock.sendall(HELLO.pack(MAGIC, WIRE_VERSION, kind, node_id))


def _recv_exact(sock: socket.socket, nbytes: int, timeout: float) -> bytes:
    """Read exactly *nbytes* within *timeout* wall seconds."""
    deadline = time.monotonic() + timeout
    buf = bytearray()
    while len(buf) < nbytes:
        remaining = deadline - time.monotonic()
        if remaining <= 0:
            raise ConnectError(
                f"handshake timed out after {timeout:g}s "
                f"({len(buf)}/{nbytes} bytes received)"
            )
        ready, _, _ = select.select([sock], [], [], remaining)
        if not ready:
            continue
        try:
            chunk = sock.recv(nbytes - len(buf))
        except OSError as error:
            raise ConnectError(f"handshake read failed: {error}") from error
        if not chunk:
            raise ConnectError(
                "peer closed the connection during the handshake"
            )
        buf += chunk
    return bytes(buf)


def read_hello(sock: socket.socket, timeout: float) -> tuple[int, int]:
    """Read and validate one handshake; returns ``(kind, node_id)``.

    Malformed identity (bad magic, version skew, unknown kind) raises
    :class:`WireError` — never resolvable by retrying.  A timeout, EOF
    or socket error raises :class:`ConnectError` — the peer may simply
    not be ready yet, so callers on the connect side retry those.
    """
    raw = _recv_exact(sock, HELLO.size, timeout)
    magic, version, kind, node_id = HELLO.unpack(raw)
    if magic != MAGIC:
        raise WireError(
            f"bad handshake magic {magic!r} (expected {MAGIC!r})"
        )
    if version != WIRE_VERSION:
        raise WireError(
            f"peer speaks wire version {version}, this build speaks "
            f"{WIRE_VERSION}: refusing the connection"
        )
    if kind not in (KIND_CONTROL, KIND_PEER):
        raise WireError(f"unknown handshake kind {kind}")
    return kind, node_id


# -- bounded retry -----------------------------------------------------------
def backoff_schedule(
    attempts: int,
    rng: np.random.Generator,
    base: float = BACKOFF_BASE_S,
    cap: float = BACKOFF_CAP_S,
) -> tuple[float, ...]:
    """The full jittered backoff schedule for one connect target.

    Capped exponential: attempt *k* sleeps ``min(cap, base * 2**k)``
    scaled by a jitter factor in ``[0.5, 1.5)`` drawn from *rng*.  The
    same RNG substream yields the same schedule, so retry timing is as
    reproducible as everything else keyed off the run seed.
    """
    delays = []
    for attempt in range(attempts):
        step = min(cap, base * (2.0 ** attempt))
        delays.append(step * (0.5 + float(rng.random())))
    return tuple(delays)


def connect_with_retry(
    address: tuple[str, int],
    kind: int,
    node_id: int,
    rng: np.random.Generator,
    expect_node: int | None = None,
    attempts: int = CONNECT_ATTEMPTS,
    base: float = BACKOFF_BASE_S,
    cap: float = BACKOFF_CAP_S,
) -> socket.socket:
    """Connect + handshake to *address*, retrying refused attempts.

    Sends our hello first, then waits for the acceptor's reply (a
    worker defers its reply until it knows its own node id, so the
    wait is bounded by :data:`HANDSHAKE_TIMEOUT`, not the TCP connect
    timeout).  Raises :class:`WireError` immediately on version skew
    and :class:`ConnectError` naming the peer once retries run out or
    the peer identifies as the wrong node.
    """
    host, port = address
    peer = f"node {expect_node}" if expect_node is not None else "worker"
    delays = backoff_schedule(attempts, rng, base, cap)
    last_error: Exception | None = None
    for attempt in range(attempts):
        if attempt:
            time.sleep(delays[attempt - 1])
        try:
            sock = socket.create_connection(
                (host, port), timeout=HANDSHAKE_TIMEOUT
            )
        except OSError as error:
            last_error = error
            continue
        try:
            send_hello(sock, kind, node_id)
            _, peer_node = read_hello(sock, HANDSHAKE_TIMEOUT)
        except WireError:
            sock.close()
            raise
        except (ConnectError, OSError) as error:
            sock.close()
            last_error = error
            continue
        if expect_node is not None and peer_node != expect_node:
            sock.close()
            raise ConnectError(
                f"peer at {host}:{port} identified as node {peer_node}, "
                f"expected {peer}: check the --peers map"
            )
        try:
            sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        except OSError:
            pass  # not an AF_INET socket (tests run over socketpairs)
        sock.settimeout(None)
        return sock
    raise ConnectError(
        f"could not connect to {peer} at {host}:{port} after "
        f"{attempts} attempts: {last_error}"
    )


# -- transport ---------------------------------------------------------------
class _PairTally:
    """Both-direction frame/byte counters for one peer channel."""

    __slots__ = (
        "tx_frames", "tx_bytes", "rx_frames", "rx_bytes",
        "_c_tx_frames", "_c_tx_bytes", "_c_rx_frames", "_c_rx_bytes",
    )

    def __init__(self) -> None:
        self.tx_frames = 0
        self.tx_bytes = 0
        self.rx_frames = 0
        self.rx_bytes = 0
        self._c_tx_frames = None
        self._c_tx_bytes = None
        self._c_rx_frames = None
        self._c_rx_bytes = None

    def bind(self, registry: t.Any, peer: int) -> None:
        self._c_tx_frames = registry.counter(
            f"tcp.tx_frames.to_n{peer}",
            "wire frames written to this peer",
        )
        self._c_tx_bytes = registry.counter(
            f"tcp.tx_bytes.to_n{peer}",
            "wire bytes (header + payload) written to this peer",
        )
        self._c_rx_frames = registry.counter(
            f"tcp.rx_frames.from_n{peer}",
            "wire frames read from this peer",
        )
        self._c_rx_bytes = registry.counter(
            f"tcp.rx_bytes.from_n{peer}",
            "wire bytes (header + payload) read from this peer",
        )
        # Replay anything tallied before the registry was attached
        # (the mesh handshake happens before build_cluster creates it).
        if self.tx_frames:
            self._c_tx_frames.inc(self.tx_frames)
            self._c_tx_bytes.inc(self.tx_bytes)
        if self.rx_frames:
            self._c_rx_frames.inc(self.rx_frames)
            self._c_rx_bytes.inc(self.rx_bytes)

    def on_send(self, wire_bytes: int) -> None:
        self.tx_frames += 1
        self.tx_bytes += wire_bytes
        if self._c_tx_frames is not None:
            self._c_tx_frames.inc()
            self._c_tx_bytes.inc(wire_bytes)

    def on_recv(self, wire_bytes: int) -> None:
        self.rx_frames += 1
        self.rx_bytes += wire_bytes
        if self._c_rx_frames is not None:
            self._c_rx_frames.inc()
            self._c_rx_bytes.inc(wire_bytes)


class TcpTransport(ProcTransport):
    """One host's view of the TCP interconnect.

    ``peers`` maps peer node id -> the established (handshaken) TCP
    socket for that pair.  Channel mechanics — FIFO frames, drain
    fencing, EOF → ``NodeDown`` — are inherited from
    :class:`ProcTransport`; this class adds the per-pair tallies and
    hands out :class:`TcpEndpoint` for the local node.
    """

    def __init__(
        self,
        node_id: int,
        peers: t.Mapping[int, socket.socket],
        tuple_bytes: int,
        time_scale: float = 1.0,
        origin: float | None = None,
        tracer: Tracer = NULL_TRACER,
        now_fn: t.Callable[[], float] | None = None,
    ) -> None:
        super().__init__(
            node_id, peers, tuple_bytes, time_scale, origin, tracer, now_fn
        )
        self._tallies = {peer: _PairTally() for peer in peers}

    def endpoint(
        self, node_id: int, stats: CommStats | None = None
    ) -> "TcpEndpoint | _ForeignEndpoint":
        if node_id != self.node_id:
            return _ForeignEndpoint(node_id)
        return TcpEndpoint(self, stats)

    def tally(self, peer: int) -> _PairTally:
        return self._tallies[peer]

    def attach_registry(self, registry: t.Any) -> None:
        """Bind every pair tally to a metrics registry (PR 6)."""
        for peer in sorted(self._tallies):
            self._tallies[peer].bind(registry, peer)

    def pair_stats(self) -> dict[int, dict[str, int]]:
        """Raw per-peer counters (always maintained, registry or not)."""
        return {
            peer: {
                "tx_frames": tally.tx_frames,
                "tx_bytes": tally.tx_bytes,
                "rx_frames": tally.rx_frames,
                "rx_bytes": tally.rx_bytes,
            }
            for peer, tally in sorted(self._tallies.items())
        }


class TcpEndpoint:
    """The local node's handle on the TCP transport.

    Mirrors :class:`~repro.net.proc_transport.ProcEndpoint` except that
    a send hitting a dead peer resolves the thunk to
    :class:`NodeDown` (still completing — callers ignore send values)
    and every frame updates the pair tallies.
    """

    __slots__ = ("transport", "node_id", "stats")

    def __init__(
        self, transport: TcpTransport, stats: CommStats | None
    ) -> None:
        self.transport = transport
        self.node_id = transport.node_id
        self.stats = stats

    def send(self, dst: int, message: t.Any) -> Thunk:
        transport = self.transport
        chan = transport.channel(dst)
        tally = transport.tally(dst)

        def fn() -> t.Any:
            payload = encode_message(message)
            t0 = transport._now()
            dead = False
            try:
                with chan.send_lock:
                    seq = chan.send_seq
                    chan.send_seq += 1
                    write_frame(chan.sock, payload)
            except (BrokenPipeError, ConnectionResetError, OSError):
                # Fail-stop peer: the send still completes (the sender
                # of a buffered TCP write cannot tell), but the thunk
                # value records the broken pipe for diagnostics.
                dead = True
            else:
                tally.on_send(FRAME_HEADER.size + len(payload))
            t1 = transport._now()
            nbytes = transport._message_bytes(message)
            if self.stats is not None:
                self.stats.record_comm(t0, t1, nbytes, sent=True)
            tracer = transport.tracer
            if tracer.enabled:
                tracer.emit(
                    TransportEvent(
                        t=t0,
                        node=self.node_id,
                        dst=dst,
                        msg=type(message).__name__,
                        nbytes=nbytes,
                        duration=t1 - t0,
                        phase="send",
                        xfer_seq=seq,
                    )
                )
            return NodeDown(dst) if dead else None

        return Thunk(fn)

    def recv(self, src: int, timeout: float | None = None) -> Thunk:
        transport = self.transport
        chan = transport.channel(src)
        tally = transport.tally(src)

        def fn() -> t.Any:
            t0 = transport._now()
            if chan.draining:
                return NodeDown(src)
            wall = (
                None
                if timeout is None
                else max(0.0, timeout) * transport.time_scale
            )
            frame = chan.reader.read_frame(wall)
            t1 = transport._now()
            if frame is _TIMED_OUT:
                if self.stats is not None:
                    self.stats.record_idle(t0, t1)
                return RecvTimeout(timeout or 0.0)
            if frame is _EOF:
                if self.stats is not None:
                    self.stats.record_idle(t0, t1)
                return NodeDown(src)
            tally.on_recv(FRAME_HEADER.size + len(frame))
            message = decode_message(frame)
            seq = chan.recv_seq
            chan.recv_seq += 1
            nbytes = transport._message_bytes(message)
            if self.stats is not None:
                self.stats.record_idle(t0, t1)
                self.stats.record_comm(t1, t1, nbytes, sent=False)
            tracer = transport.tracer
            if tracer.enabled:
                tracer.emit(
                    TransportEvent(
                        t=t1,
                        node=self.node_id,
                        dst=src,
                        msg=type(message).__name__,
                        nbytes=nbytes,
                        duration=t1 - t0,
                        phase="recv",
                        xfer_seq=seq,
                    )
                )
            return message

        return Thunk(fn)

    def drain(self, src: int) -> None:
        """Fence the channel from *src* (see :meth:`ProcTransport.drain_peer`)."""
        self.transport.drain_peer(src)
