"""Modeled rendezvous network on the DES kernel.

Each directed node pair ``(src, dst)`` has an independent reliable
channel.  A ``send`` and its matching ``recv`` *meet*: whichever side
arrives first blocks (idle time); once both are present the transfer
occupies both endpoints for::

    endpoint_overhead(nbytes) + latency + nbytes / bandwidth

seconds, after which the receiver resumes with the message.  Matching
is FIFO per pair — with the paper's fixed communication schedule no
other discipline is ever exercised, and tags are enforced at the
protocol layer instead.

Fault plane (``repro.faults``).  When a :class:`FaultInjector` is
wired in, the transport additionally models failures:

* :meth:`SimTransport.kill_node` reaps a crashed node — its pending
  entries are purged, live peers waiting on it resume with
  :class:`~repro.faults.markers.NodeDown`, and later sends *to* it
  complete after the normal transfer time with the message discarded
  (the TCP-buffered-write model of a fail-stop peer).
* planned message faults drop the k-th message on a pair (the sender
  completes normally, the receiver never sees it) or stretch its
  transfer by a fixed delay.
* ``recv`` accepts an optional timeout: if no send matches in time the
  receiver resumes with :class:`~repro.faults.markers.RecvTimeout`.
* :meth:`SimTransport.drain_pair` fences a suspected-dead sender:
  its pending and future sends on the pair complete silently, so a
  *live* slave the master gave up on can never wedge the run with a
  stale rendezvous entry.

With no injector and no timeouts, none of these paths schedules an
event or consults a counter — a faultless run is byte-identical to one
on the pre-fault transport.
"""

from __future__ import annotations

import typing as t
from collections import deque

from repro.config import NetworkConfig
from repro.faults.markers import NodeDown, RecvTimeout
from repro.obs.events import TransportEvent
from repro.obs.tracer import NULL_TRACER, Tracer
from repro.simul.events import Event
from repro.simul.kernel import Simulator

if t.TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.faults.injector import FaultInjector


class CommStats(t.Protocol):
    """What the transport records against (duck-typed; implemented by
    SlaveMetrics / MasterMetrics / CollectorMetrics)."""

    def record_comm(
        self, t0: float, t1: float, nbytes: int, sent: bool
    ) -> None: ...  # pragma: no cover

    def record_idle(self, t0: float, t1: float) -> None: ...  # pragma: no cover


class _Pending:
    """One posted (and not yet matched) send or recv."""

    __slots__ = ("event", "posted_at", "stats", "message", "src", "dst", "extra")

    def __init__(
        self,
        event: Event,
        posted_at: float,
        stats: CommStats | None,
        message: t.Any,
        src: int = -1,
        dst: int = -1,
        extra: float = 0.0,
    ) -> None:
        self.event = event
        self.posted_at = posted_at
        self.stats = stats
        self.message = message  # None for receivers
        #: Channel endpoints (trace spans only; -1 on receiver entries).
        self.src = src
        self.dst = dst
        #: Injected extra transfer seconds (delay faults).
        self.extra = extra


class _Pair:
    __slots__ = ("senders", "receivers")

    def __init__(self) -> None:
        self.senders: deque[_Pending] = deque()
        self.receivers: deque[_Pending] = deque()


class SimTransport:
    """All channels of one simulated cluster."""

    def __init__(
        self,
        sim: Simulator,
        network: NetworkConfig,
        tuple_bytes: int,
        tracer: Tracer = NULL_TRACER,
        faults: "FaultInjector | None" = None,
    ) -> None:
        self.sim = sim
        self.network = network.validated()
        self.tuple_bytes = tuple_bytes
        #: Span tracer for per-transfer events (high volume; the system
        #: layer only wires a live tracer when ``obs.trace_transport``).
        self.tracer = tracer
        #: Fault injector consulted per posted send (None = no faults).
        self.faults = faults
        self._pairs: dict[tuple[int, int], _Pair] = {}
        #: Nodes reaped by :meth:`kill_node`.
        self.dead: set[int] = set()
        #: Directed pairs fenced by :meth:`drain_pair`.
        self._draining: set[tuple[int, int]] = set()
        #: Total transfers completed (diagnostics).
        self.n_transfers = 0
        self.bytes_moved = 0
        #: Messages discarded (drops, dead destinations, drained pairs).
        self.messages_lost = 0

    def endpoint(self, node_id: int, stats: CommStats | None = None) -> "SimEndpoint":
        return SimEndpoint(self, node_id, stats)

    # -- internals -----------------------------------------------------------
    def _pair(self, src: int, dst: int) -> _Pair:
        key = (src, dst)
        pair = self._pairs.get(key)
        if pair is None:
            pair = self._pairs[key] = _Pair()
        return pair

    def _post_send(
        self, src: int, dst: int, message: t.Any, stats: CommStats | None
    ) -> Event:
        extra = 0.0
        if self.faults is not None:
            action = self.faults.send_action(src, dst, self.sim.now)
            if action is not None:
                kind, seconds = action
                if kind == "drop":
                    return self._complete_lost(src, dst, message, stats)
                extra = seconds
        if dst in self.dead or (src, dst) in self._draining:
            return self._complete_lost(src, dst, message, stats)
        event = self.sim.event(name=f"send:{src}->{dst}")
        pair = self._pair(src, dst)
        pair.senders.append(
            _Pending(event, self.sim.now, stats, message, src, dst, extra)
        )
        self._try_match(pair)
        return event

    def _post_recv(
        self,
        src: int,
        dst: int,
        stats: CommStats | None,
        timeout: float | None = None,
    ) -> Event:
        event = self.sim.event(name=f"recv:{src}->{dst}")
        if src in self.dead:
            # The peer is gone and can never send again: resume
            # immediately (the caller pays no modeled transfer time for
            # learning about a reaped connection).
            event.succeed(NodeDown(src))
            return event
        pair = self._pair(src, dst)
        entry = _Pending(event, self.sim.now, stats, None)
        pair.receivers.append(entry)
        self._try_match(pair)
        if timeout is not None and not event.triggered:
            timer = self.sim.timeout(timeout)
            timer.add_callback(
                lambda _t: self._expire_recv(pair, entry, timeout)
            )
        return event

    def _expire_recv(self, pair: _Pair, entry: _Pending, timeout: float) -> None:
        if entry.event.triggered:
            return  # matched (or resolved by kill_node) before the timer
        try:
            pair.receivers.remove(entry)
        except ValueError:  # pragma: no cover - defensive
            pass
        if entry.stats is not None:
            entry.stats.record_idle(entry.posted_at, self.sim.now)
        entry.event.succeed(RecvTimeout(timeout))

    def _complete_lost(
        self, src: int, dst: int, message: t.Any, stats: CommStats | None
    ) -> Event:
        """Complete a send whose message will never be delivered.

        The sender still pays the normal transfer time — it cannot know
        the remote end is gone — but the message is discarded.
        """
        event = self.sim.event(name=f"send:{src}->{dst}:lost")
        nbytes = self._message_bytes(message)
        duration = self.network.endpoint_overhead(
            nbytes
        ) + self.network.transfer_time(nbytes)
        if stats is not None:
            stats.record_comm(self.sim.now, self.sim.now + duration, nbytes, sent=True)
        self.messages_lost += 1
        event.succeed(None, delay=duration)
        return event

    def _try_match(self, pair: _Pair) -> None:
        while pair.senders and pair.receivers:
            send = pair.senders.popleft()
            recv = pair.receivers.popleft()
            self._transfer(send, recv)

    def _transfer(self, send: _Pending, recv: _Pending) -> None:
        now = self.sim.now
        nbytes = self._message_bytes(send.message)
        duration = (
            self.network.endpoint_overhead(nbytes)
            + self.network.transfer_time(nbytes)
            + send.extra
        )
        done = now + duration
        if send.stats is not None:
            send.stats.record_idle(send.posted_at, now)
            send.stats.record_comm(now, done, nbytes, sent=True)
        if recv.stats is not None:
            recv.stats.record_idle(recv.posted_at, now)
            recv.stats.record_comm(now, done, nbytes, sent=False)
        self.n_transfers += 1
        self.bytes_moved += nbytes
        if self.tracer.enabled:
            self.tracer.emit(
                TransportEvent(
                    t=now,
                    node=send.src,
                    dst=send.dst,
                    msg=type(send.message).__name__,
                    nbytes=nbytes,
                    duration=duration,
                )
            )
        send.event.succeed(None, delay=duration)
        recv.event.succeed(send.message, delay=duration)

    def _message_bytes(self, message: t.Any) -> int:
        wire = getattr(message, "wire_bytes", None)
        if wire is None:
            return 64
        return int(wire(self.tuple_bytes))

    # -- fault plane ---------------------------------------------------------
    def kill_node(self, node_id: int) -> None:
        """Reap a fail-stop crashed node.

        Pending entries posted *by* the dead node are discarded (its
        processes are being killed; their events must never fire into a
        live peer).  Live peers blocked receiving *from* it resume with
        :class:`NodeDown`; live peers sending *to* it complete after
        the normal transfer time with the message discarded.
        """
        self.dead.add(node_id)
        for (src, dst), pair in self._pairs.items():
            if src == node_id:
                # Senders here were posted by the dead node: discard.
                pair.senders.clear()
                # Receivers here are live nodes waiting on the dead one.
                for entry in pair.receivers:
                    if not entry.event.triggered:
                        if entry.stats is not None:
                            entry.stats.record_idle(entry.posted_at, self.sim.now)
                        entry.event.succeed(NodeDown(node_id))
                pair.receivers.clear()
            elif dst == node_id:
                # Senders here are live nodes sending to the dead one.
                for entry in pair.senders:
                    if not entry.event.triggered:
                        nbytes = self._message_bytes(entry.message)
                        duration = self.network.endpoint_overhead(
                            nbytes
                        ) + self.network.transfer_time(nbytes)
                        if entry.stats is not None:
                            entry.stats.record_comm(
                                self.sim.now,
                                self.sim.now + duration,
                                nbytes,
                                sent=True,
                            )
                        self.messages_lost += 1
                        entry.event.succeed(None, delay=duration)
                pair.senders.clear()
                # Receivers here were posted by the dead node: discard.
                pair.receivers.clear()

    def drain_pair(self, src: int, dst: int) -> None:
        """Fence *src*'s channel towards *dst*.

        Used by the master after declaring a slave dead on timeout: if
        the slave is actually alive and late, its pending and future
        sends on this pair complete silently instead of wedging the
        run with an unmatched rendezvous entry.
        """
        self._draining.add((src, dst))
        pair = self._pairs.get((src, dst))
        if pair is None:
            return
        for entry in pair.senders:
            if not entry.event.triggered:
                nbytes = self._message_bytes(entry.message)
                duration = self.network.endpoint_overhead(
                    nbytes
                ) + self.network.transfer_time(nbytes)
                if entry.stats is not None:
                    entry.stats.record_idle(entry.posted_at, self.sim.now)
                    entry.stats.record_comm(
                        self.sim.now, self.sim.now + duration, nbytes, sent=True
                    )
                self.messages_lost += 1
                entry.event.succeed(None, delay=duration)
        pair.senders.clear()

    def pending_summary(self) -> list[str]:
        """Human-readable pending send/recv endpoints per pair.

        Threaded into :class:`~repro.errors.DeadlockError` so a stuck
        run names the exact rendezvous that never completed.
        """
        out: list[str] = []
        for src, dst in sorted(self._pairs):
            pair = self._pairs[(src, dst)]
            sends = [
                type(e.message).__name__
                for e in pair.senders
                if not e.event.triggered
            ]
            recvs = sum(1 for e in pair.receivers if not e.event.triggered)
            if sends:
                out.append(
                    f"{src}->{dst}: {len(sends)} pending send"
                    f" ({', '.join(sends)})"
                )
            if recvs:
                out.append(f"{src}->{dst}: {recvs} pending recv")
        return out


class SimEndpoint:
    """One node's handle on the transport."""

    __slots__ = ("transport", "node_id", "stats")

    def __init__(
        self, transport: SimTransport, node_id: int, stats: CommStats | None
    ) -> None:
        self.transport = transport
        self.node_id = node_id
        self.stats = stats

    def send(self, dst: int, message: t.Any) -> Event:
        """Awaitable completing when *dst* has received *message*."""
        return self.transport._post_send(self.node_id, dst, message, self.stats)

    def recv(self, src: int, timeout: float | None = None) -> Event:
        """Awaitable completing with the next message from *src*.

        With a *timeout*, resumes with :class:`RecvTimeout` if no send
        matched within that many simulated seconds.
        """
        return self.transport._post_recv(src, self.node_id, self.stats, timeout)

    def drain(self, src: int) -> None:
        """Fence the channel from *src* to this node (see transport)."""
        self.transport.drain_pair(src, self.node_id)
