"""Modeled rendezvous network on the DES kernel.

Each directed node pair ``(src, dst)`` has an independent reliable
channel.  A ``send`` and its matching ``recv`` *meet*: whichever side
arrives first blocks (idle time); once both are present the transfer
occupies both endpoints for::

    endpoint_overhead(nbytes) + latency + nbytes / bandwidth

seconds, after which the receiver resumes with the message.  Matching
is FIFO per pair — with the paper's fixed communication schedule no
other discipline is ever exercised, and tags are enforced at the
protocol layer instead.
"""

from __future__ import annotations

import typing as t
from collections import deque

from repro.config import NetworkConfig
from repro.obs.events import TransportEvent
from repro.obs.tracer import NULL_TRACER, Tracer
from repro.simul.events import Event
from repro.simul.kernel import Simulator


class CommStats(t.Protocol):
    """What the transport records against (duck-typed; implemented by
    SlaveMetrics / MasterMetrics / CollectorMetrics)."""

    def record_comm(
        self, t0: float, t1: float, nbytes: int, sent: bool
    ) -> None: ...  # pragma: no cover

    def record_idle(self, t0: float, t1: float) -> None: ...  # pragma: no cover


class _Pending(t.NamedTuple):
    event: Event
    posted_at: float
    stats: CommStats | None
    message: t.Any  # None for receivers
    #: Channel endpoints (trace spans only; -1 on receiver entries).
    src: int = -1
    dst: int = -1


class _Pair:
    __slots__ = ("senders", "receivers")

    def __init__(self) -> None:
        self.senders: deque[_Pending] = deque()
        self.receivers: deque[_Pending] = deque()


class SimTransport:
    """All channels of one simulated cluster."""

    def __init__(
        self,
        sim: Simulator,
        network: NetworkConfig,
        tuple_bytes: int,
        tracer: Tracer = NULL_TRACER,
    ) -> None:
        self.sim = sim
        self.network = network.validated()
        self.tuple_bytes = tuple_bytes
        #: Span tracer for per-transfer events (high volume; the system
        #: layer only wires a live tracer when ``obs.trace_transport``).
        self.tracer = tracer
        self._pairs: dict[tuple[int, int], _Pair] = {}
        #: Total transfers completed (diagnostics).
        self.n_transfers = 0
        self.bytes_moved = 0

    def endpoint(self, node_id: int, stats: CommStats | None = None) -> "SimEndpoint":
        return SimEndpoint(self, node_id, stats)

    # -- internals -----------------------------------------------------------
    def _pair(self, src: int, dst: int) -> _Pair:
        key = (src, dst)
        pair = self._pairs.get(key)
        if pair is None:
            pair = self._pairs[key] = _Pair()
        return pair

    def _post_send(
        self, src: int, dst: int, message: t.Any, stats: CommStats | None
    ) -> Event:
        event = self.sim.event(name=f"send:{src}->{dst}")
        pair = self._pair(src, dst)
        pair.senders.append(_Pending(event, self.sim.now, stats, message, src, dst))
        self._try_match(pair)
        return event

    def _post_recv(self, src: int, dst: int, stats: CommStats | None) -> Event:
        event = self.sim.event(name=f"recv:{src}->{dst}")
        pair = self._pair(src, dst)
        pair.receivers.append(_Pending(event, self.sim.now, stats, None))
        self._try_match(pair)
        return event

    def _try_match(self, pair: _Pair) -> None:
        while pair.senders and pair.receivers:
            send = pair.senders.popleft()
            recv = pair.receivers.popleft()
            self._transfer(send, recv)

    def _transfer(self, send: _Pending, recv: _Pending) -> None:
        now = self.sim.now
        nbytes = self._message_bytes(send.message)
        duration = self.network.endpoint_overhead(
            nbytes
        ) + self.network.transfer_time(nbytes)
        done = now + duration
        if send.stats is not None:
            send.stats.record_idle(send.posted_at, now)
            send.stats.record_comm(now, done, nbytes, sent=True)
        if recv.stats is not None:
            recv.stats.record_idle(recv.posted_at, now)
            recv.stats.record_comm(now, done, nbytes, sent=False)
        self.n_transfers += 1
        self.bytes_moved += nbytes
        if self.tracer.enabled:
            self.tracer.emit(
                TransportEvent(
                    t=now,
                    node=send.src,
                    dst=send.dst,
                    msg=type(send.message).__name__,
                    nbytes=nbytes,
                    duration=duration,
                )
            )
        send.event.succeed(None, delay=duration)
        recv.event.succeed(send.message, delay=duration)

    def _message_bytes(self, message: t.Any) -> int:
        wire = getattr(message, "wire_bytes", None)
        if wire is None:
            return 64
        return int(wire(self.tuple_bytes))


class SimEndpoint:
    """One node's handle on the transport."""

    __slots__ = ("transport", "node_id", "stats")

    def __init__(
        self, transport: SimTransport, node_id: int, stats: CommStats | None
    ) -> None:
        self.transport = transport
        self.node_id = node_id
        self.stats = stats

    def send(self, dst: int, message: t.Any) -> Event:
        """Awaitable completing when *dst* has received *message*."""
        return self.transport._post_send(self.node_id, dst, message, self.stats)

    def recv(self, src: int) -> Event:
        """Awaitable completing with the next message from *src*."""
        return self.transport._post_recv(src, self.node_id, self.stats)
