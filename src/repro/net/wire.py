"""Versioned wire codec for the process backend.

The process backend runs master, slaves and collector as separate OS
processes, so every message of :mod:`repro.core.protocol` must cross a
real socket.  This module is the (de)serializer: a small, explicit,
versioned binary format — **not** pickle — so that

* a truncated or corrupted frame raises :class:`~repro.errors.WireError`
  instead of silently producing garbage (or executing attacker-chosen
  code, as unpickling a socket would);
* the format is independent of Python object layout: renaming a field
  or reordering a dataclass is caught by the version byte and the
  round-trip property tests, not by a crash three epochs later.

Layout.  Every encoded message starts with a fixed header::

    magic   2 bytes   b"SJ"
    version 1 byte    WIRE_VERSION
    tag     1 byte    message type (see _TAGS)

followed by the type's body.  Scalars use network byte order
(``struct`` format ``!``); strings and numpy arrays are length-prefixed.
Array columns travel as raw little-endian bytes of their canonical
dtype (the :mod:`repro.data.tuples` column dtypes are fixed by
construction), so encoding is a ``tobytes``/``frombuffer`` pair — no
per-element work.

The codec is deliberately closed-world: only the message types of the
fixed communication schedule (plus their payload structures
:class:`~repro.data.tuples.TupleBatch`,
:class:`~repro.core.metrics.DelayStats`,
:class:`~repro.core.partition_group.PartitionGroupState`) can travel.
Encoding any other object raises :class:`~repro.errors.WireError`.
"""

from __future__ import annotations

import struct
import typing as t

import numpy as np

from repro.core.metrics import DelayStats
from repro.core.partition_group import GroupState, PartitionGroupState
from repro.core.protocol import (
    Activate,
    Checkpoint,
    Halt,
    LoadReport,
    MoveAck,
    MoveDirective,
    Rejoin,
    ReorgOrder,
    Replicate,
    ResultReport,
    Restore,
    Shipment,
    SlaveSync,
    StandbyPlan,
    StandbySync,
    StateTransfer,
    TakeOver,
)
from repro.core.subgroups import SlotSchedule
from repro.data.tuples import (
    KEY_DTYPE,
    SEQ_DTYPE,
    STREAM_DTYPE,
    TS_DTYPE,
    TupleBatch,
)
from repro.errors import WireError

__all__ = ["WIRE_VERSION", "MAGIC", "encode_message", "decode_message"]

#: Bump on any incompatible change to the byte layout below.
#: v2: ReorgOrder grew ``checkpoint_pids``, MoveAck grew optional
#: ``pairs``, and the replication messages (Replicate / Checkpoint /
#: Restore) joined the tag table.
#: v3: master-failover messages (StandbySync / StandbyPlan / TakeOver /
#: Rejoin) joined the tag table.
WIRE_VERSION = 3
MAGIC = b"SJ"

_U8 = struct.Struct("!B")
_I64 = struct.Struct("!q")
_F64 = struct.Struct("!d")
_U32 = struct.Struct("!I")

#: Dtypes an encoded array may carry, keyed by a one-byte code.  All
#: arrays travel little-endian regardless of host order.
_DTYPES: dict[int, np.dtype] = {
    0: np.dtype("<f8"),
    1: np.dtype("<i8"),
    2: np.dtype("<u1"),
}
_DTYPE_CODES = {dt: code for code, dt in _DTYPES.items()}


class _Writer:
    """Append-only byte buffer with scalar helpers."""

    __slots__ = ("buf",)

    def __init__(self) -> None:
        self.buf = bytearray()

    def u8(self, v: int) -> None:
        self.buf += _U8.pack(v)

    def i64(self, v: int) -> None:
        self.buf += _I64.pack(int(v))

    def f64(self, v: float) -> None:
        self.buf += _F64.pack(float(v))

    def u32(self, v: int) -> None:
        self.buf += _U32.pack(int(v))

    def str_(self, s: str) -> None:
        raw = s.encode("utf-8")
        self.u32(len(raw))
        self.buf += raw

    def array(self, arr: np.ndarray) -> None:
        canonical = arr.astype(arr.dtype.newbyteorder("<"), copy=False)
        code = _DTYPE_CODES.get(canonical.dtype)
        if code is None:
            raise WireError(f"array dtype not on the wire menu: {arr.dtype}")
        self.u8(code)
        self.u32(len(canonical))
        self.buf += canonical.tobytes()


class _Reader:
    """Bounds-checked cursor over one frame's bytes."""

    __slots__ = ("data", "pos")

    def __init__(self, data: bytes) -> None:
        self.data = data
        self.pos = 0

    def take(self, n: int) -> bytes:
        end = self.pos + n
        if end > len(self.data):
            raise WireError(
                f"truncated frame: wanted {n} bytes at offset {self.pos}, "
                f"frame has {len(self.data)}"
            )
        out = self.data[self.pos : end]
        self.pos = end
        return out

    def u8(self) -> int:
        return int(_U8.unpack(self.take(1))[0])

    def i64(self) -> int:
        return int(_I64.unpack(self.take(8))[0])

    def f64(self) -> float:
        return float(_F64.unpack(self.take(8))[0])

    def u32(self) -> int:
        return int(_U32.unpack(self.take(4))[0])

    def str_(self) -> str:
        n = self.u32()
        return self.take(n).decode("utf-8")

    def array(self) -> np.ndarray:
        code = self.u8()
        dtype = _DTYPES.get(code)
        if dtype is None:
            raise WireError(f"unknown array dtype code: {code}")
        n = self.u32()
        raw = self.take(n * dtype.itemsize)
        return np.frombuffer(raw, dtype=dtype).copy()

    def done(self) -> None:
        if self.pos != len(self.data):
            raise WireError(
                f"{len(self.data) - self.pos} trailing bytes after message body"
            )


# -- payload structures ------------------------------------------------------


def _put_batch(w: _Writer, batch: TupleBatch) -> None:
    w.array(batch.ts)
    w.array(batch.key)
    w.array(batch.seq)
    w.array(batch.stream)


def _get_batch(r: _Reader) -> TupleBatch:
    ts = r.array()
    key = r.array()
    seq = r.array()
    stream = r.array()
    if not len(ts) == len(key) == len(seq) == len(stream):
        raise WireError("tuple batch columns of unequal length")
    return TupleBatch(
        ts.astype(TS_DTYPE, copy=False),
        key.astype(KEY_DTYPE, copy=False),
        seq.astype(SEQ_DTYPE, copy=False),
        stream.astype(STREAM_DTYPE, copy=False),
    )


def _put_delay_stats(w: _Writer, stats: DelayStats) -> None:
    w.i64(stats.count)
    w.f64(stats.total)
    w.f64(stats.minimum)
    w.f64(stats.maximum)
    w.array(stats.histogram)


def _get_delay_stats(r: _Reader) -> DelayStats:
    stats = DelayStats()
    stats.count = r.i64()
    stats.total = r.f64()
    stats.minimum = r.f64()
    stats.maximum = r.f64()
    histogram = r.array().astype(np.int64, copy=False)
    if len(histogram) != len(stats.histogram):
        raise WireError(
            f"delay histogram has {len(histogram)} bins, "
            f"expected {len(stats.histogram)}"
        )
    stats.histogram = histogram
    return stats


def _put_schedule(w: _Writer, schedule: SlotSchedule | None) -> None:
    if schedule is None:
        w.u8(0)
        return
    w.u8(1)
    w.i64(schedule.group_index)
    w.i64(schedule.n_groups)
    w.f64(schedule.dist_epoch)


def _get_schedule(r: _Reader) -> SlotSchedule | None:
    if not r.u8():
        return None
    return SlotSchedule(r.i64(), r.i64(), r.f64())


def _put_moves(w: _Writer, moves: t.Sequence[MoveDirective]) -> None:
    w.u32(len(moves))
    for mv in moves:
        w.i64(mv.pid)
        w.i64(mv.src)
        w.i64(mv.dst)


def _get_moves(r: _Reader) -> tuple[MoveDirective, ...]:
    return tuple(
        MoveDirective(r.i64(), r.i64(), r.i64()) for _ in range(r.u32())
    )


def _put_state(w: _Writer, state: PartitionGroupState) -> None:
    w.i64(state.pid)
    w.i64(state.global_depth)
    w.u32(len(state.groups))
    for group in state.groups:
        w.i64(group.pattern)
        w.i64(group.local_depth)
        w.u32(len(group.streams))
        for committed, fresh in group.streams:
            _put_batch(w, committed)
            _put_batch(w, fresh)


def _get_state(r: _Reader) -> PartitionGroupState:
    pid = r.i64()
    global_depth = r.i64()
    groups = []
    for _ in range(r.u32()):
        pattern = r.i64()
        local_depth = r.i64()
        streams = tuple(
            (_get_batch(r), _get_batch(r)) for _ in range(r.u32())
        )
        groups.append(GroupState(pattern, local_depth, streams))
    return PartitionGroupState(pid, global_depth, tuple(groups))


def _put_pairs(w: _Writer, pairs: np.ndarray | None) -> None:
    """Optional ``(n, 2)`` int64 pair matrix (flattened on the wire)."""
    if pairs is None:
        w.u8(0)
        return
    w.u8(1)
    w.array(np.asarray(pairs, dtype=np.int64).reshape(-1))


def _get_pairs(r: _Reader) -> np.ndarray | None:
    if not r.u8():
        return None
    flat = r.array().astype(np.int64, copy=False)
    if len(flat) % 2:
        raise WireError("pair matrix with odd element count")
    return flat.reshape(-1, 2)


def _put_checkpoint(w: _Writer, cp: Checkpoint) -> None:
    w.i64(cp.pid)
    w.i64(cp.epoch)
    _put_state(w, cp.state)
    _put_batch(w, cp.buffered)
    _put_pairs(w, cp.pairs)


def _get_checkpoint(r: _Reader) -> Checkpoint:
    return Checkpoint(
        r.i64(), r.i64(), _get_state(r), _get_batch(r), _get_pairs(r)
    )


def _put_report(w: _Writer, report: LoadReport) -> None:
    w.i64(report.epoch)
    w.f64(report.avg_occupancy)
    w.f64(report.last_occupancy)
    w.i64(report.window_bytes)


def _get_report(r: _Reader) -> LoadReport:
    return LoadReport(r.i64(), r.f64(), r.f64(), r.i64())


# -- message bodies ----------------------------------------------------------


def _enc_shipment(w: _Writer, m: Shipment) -> None:
    w.i64(m.epoch)
    w.f64(m.epoch_start)
    w.f64(m.epoch_end)
    _put_batch(w, m.batch)


def _dec_shipment(r: _Reader) -> Shipment:
    return Shipment(r.i64(), r.f64(), r.f64(), _get_batch(r))


def _enc_load_report(w: _Writer, m: LoadReport) -> None:
    _put_report(w, m)


def _dec_load_report(r: _Reader) -> LoadReport:
    return _get_report(r)


def _enc_reorg_order(w: _Writer, m: ReorgOrder) -> None:
    w.i64(m.epoch)
    _put_moves(w, m.outgoing)
    _put_moves(w, m.incoming)
    w.u8(1 if m.deactivate else 0)
    w.f64(m.clock)
    _put_schedule(w, m.schedule)
    w.u32(len(m.adopt))
    for pid in m.adopt:
        w.i64(pid)
    w.u32(len(m.checkpoint_pids))
    for pid in m.checkpoint_pids:
        w.i64(pid)


def _dec_reorg_order(r: _Reader) -> ReorgOrder:
    epoch = r.i64()
    outgoing = _get_moves(r)
    incoming = _get_moves(r)
    deactivate = bool(r.u8())
    clock = r.f64()
    schedule = _get_schedule(r)
    adopt = tuple(r.i64() for _ in range(r.u32()))
    checkpoint_pids = tuple(r.i64() for _ in range(r.u32()))
    return ReorgOrder(
        epoch,
        outgoing=outgoing,
        incoming=incoming,
        deactivate=deactivate,
        clock=clock,
        schedule=schedule,
        adopt=adopt,
        checkpoint_pids=checkpoint_pids,
    )


def _enc_state_transfer(w: _Writer, m: StateTransfer) -> None:
    w.i64(m.pid)
    _put_state(w, m.state)
    _put_batch(w, m.buffered)


def _dec_state_transfer(r: _Reader) -> StateTransfer:
    return StateTransfer(r.i64(), _get_state(r), _get_batch(r))


def _enc_move_ack(w: _Writer, m: MoveAck) -> None:
    w.i64(m.pid)
    w.str_(m.role)
    _put_pairs(w, m.pairs)


def _dec_move_ack(r: _Reader) -> MoveAck:
    return MoveAck(r.i64(), r.str_(), _get_pairs(r))


def _enc_activate(w: _Writer, m: Activate) -> None:
    w.i64(m.epoch)
    w.f64(m.clock)
    _put_schedule(w, m.schedule)


def _dec_activate(r: _Reader) -> Activate:
    return Activate(r.i64(), r.f64(), _get_schedule(r))


def _enc_result_report(w: _Writer, m: ResultReport) -> None:
    w.i64(m.epoch)
    _put_delay_stats(w, m.stats)


def _dec_result_report(r: _Reader) -> ResultReport:
    return ResultReport(r.i64(), _get_delay_stats(r))


def _enc_halt(w: _Writer, m: Halt) -> None:
    w.i64(m.epoch)


def _dec_halt(r: _Reader) -> Halt:
    return Halt(r.i64())


def _enc_slave_sync(w: _Writer, m: SlaveSync) -> None:
    w.i64(m.epoch)
    _put_report(w, m.report)


def _dec_slave_sync(r: _Reader) -> SlaveSync:
    return SlaveSync(r.i64(), _get_report(r))


def _enc_replicate(w: _Writer, m: Replicate) -> None:
    w.i64(m.epoch)
    w.u32(len(m.entries))
    for pid, epoch, batch in m.entries:
        w.i64(pid)
        w.i64(epoch)
        _put_batch(w, batch)
    w.u32(len(m.drops))
    for pid in m.drops:
        w.i64(pid)
    w.u32(len(m.checkpoints))
    for cp in m.checkpoints:
        _put_checkpoint(w, cp)


def _dec_replicate(r: _Reader) -> Replicate:
    epoch = r.i64()
    entries = tuple(
        (r.i64(), r.i64(), _get_batch(r)) for _ in range(r.u32())
    )
    drops = tuple(r.i64() for _ in range(r.u32()))
    checkpoints = tuple(_get_checkpoint(r) for _ in range(r.u32()))
    return Replicate(
        epoch, entries=entries, drops=drops, checkpoints=checkpoints
    )


def _enc_checkpoint(w: _Writer, m: Checkpoint) -> None:
    _put_checkpoint(w, m)


def _dec_checkpoint(r: _Reader) -> Checkpoint:
    return _get_checkpoint(r)


def _enc_restore(w: _Writer, m: Restore) -> None:
    w.i64(m.epoch)
    w.u32(len(m.pids))
    for pid in m.pids:
        w.i64(pid)


def _dec_restore(r: _Reader) -> Restore:
    epoch = r.i64()
    pids = tuple(r.i64() for _ in range(r.u32()))
    return Restore(epoch, pids)


#: Standby op-log record kinds (see ``StandbySync.ops``).  The scalar
#: slots are typed per kind: ``gen`` carries two floats, ``drain`` an
#: int + float, ``remap`` two ints.
_OP_CODES = {"gen": 0, "drain": 1, "remap": 2}
_OP_KINDS = {code: kind for kind, code in _OP_CODES.items()}
_OP_INT_SLOTS = {"gen": (), "drain": (0,), "remap": (0, 1)}


def _put_ops(w: _Writer, ops: t.Sequence[tuple]) -> None:
    w.u32(len(ops))
    for kind, a, b in ops:
        code = _OP_CODES.get(kind)
        if code is None:
            raise WireError(f"unknown standby op kind: {kind!r}")
        w.u8(code)
        w.f64(a)
        w.f64(b)


def _get_ops(r: _Reader) -> tuple[tuple, ...]:
    ops = []
    for _ in range(r.u32()):
        code = r.u8()
        kind = _OP_KINDS.get(code)
        if kind is None:
            raise WireError(f"unknown standby op code: {code}")
        slots = [r.f64(), r.f64()]
        for i in _OP_INT_SLOTS[kind]:
            slots[i] = int(slots[i])
        ops.append((kind, slots[0], slots[1]))
    return tuple(ops)


def _put_int_seq(w: _Writer, values: t.Sequence[int]) -> None:
    w.u32(len(values))
    for v in values:
        w.i64(v)


def _get_int_seq(r: _Reader) -> tuple[int, ...]:
    return tuple(r.i64() for _ in range(r.u32()))


def _enc_standby_sync(w: _Writer, m: StandbySync) -> None:
    w.i64(m.epoch)
    _put_ops(w, m.ops)
    _put_int_seq(w, m.active)
    _put_int_seq(w, m.dead)
    w.f64(m.next_gen_time)
    w.u32(len(m.backup_of))
    for pid, backup in m.backup_of:
        w.i64(pid)
        w.i64(backup)
    _put_int_seq(w, m.covered)
    w.u32(len(m.pending))
    for backup, rep in m.pending:
        w.i64(backup)
        _enc_replicate(w, rep)
    w.str_(m.failures_json)
    w.u32(len(m.pairs))
    for slave, pid, epoch, rows in m.pairs:
        w.i64(slave)
        w.i64(pid)
        w.i64(epoch)
        _put_pairs(w, rows)


def _dec_standby_sync(r: _Reader) -> StandbySync:
    epoch = r.i64()
    ops = _get_ops(r)
    active = _get_int_seq(r)
    dead = _get_int_seq(r)
    next_gen_time = r.f64()
    backup_of = tuple((r.i64(), r.i64()) for _ in range(r.u32()))
    covered = _get_int_seq(r)
    pending = tuple((r.i64(), _dec_replicate(r)) for _ in range(r.u32()))
    failures_json = r.str_()
    pairs = []
    for _ in range(r.u32()):
        slave, pid, pepoch = r.i64(), r.i64(), r.i64()
        rows = _get_pairs(r)
        if rows is None:
            raise WireError("standby sync pair chunk without rows")
        pairs.append((slave, pid, pepoch, rows))
    return StandbySync(
        epoch,
        ops=ops,
        active=active,
        dead=dead,
        next_gen_time=next_gen_time,
        backup_of=backup_of,
        covered=covered,
        pending=pending,
        failures_json=failures_json,
        pairs=tuple(pairs),
    )


def _enc_standby_plan(w: _Writer, m: StandbyPlan) -> None:
    w.i64(m.epoch)
    _put_moves(w, m.moves)
    _put_int_seq(w, m.new_active)
    _put_int_seq(w, m.deactivate)
    w.u32(len(m.remaps))
    for pid, dst in m.remaps:
        w.i64(pid)
        w.i64(dst)
    _put_int_seq(w, m.restores)


def _dec_standby_plan(r: _Reader) -> StandbyPlan:
    return StandbyPlan(
        r.i64(),
        moves=_get_moves(r),
        new_active=_get_int_seq(r),
        deactivate=_get_int_seq(r),
        remaps=tuple((r.i64(), r.i64()) for _ in range(r.u32())),
        restores=_get_int_seq(r),
    )


def _enc_take_over(w: _Writer, m: TakeOver) -> None:
    w.i64(m.epoch)
    w.f64(m.clock)
    _put_schedule(w, m.schedule)
    w.u8(1 if m.active else 0)
    w.i64(m.plan_epoch)
    _put_moves(w, m.pending_in)


def _dec_take_over(r: _Reader) -> TakeOver:
    return TakeOver(
        r.i64(),
        clock=r.f64(),
        schedule=_get_schedule(r),
        active=bool(r.u8()),
        plan_epoch=r.i64(),
        pending_in=_get_moves(r),
    )


def _enc_rejoin(w: _Writer, m: Rejoin) -> None:
    w.i64(m.epoch)
    _put_int_seq(w, m.owned_pids)
    w.i64(m.last_shipment_epoch)
    w.i64(m.last_order_epoch)
    w.u8(1 if m.active else 0)
    w.u32(len(m.pairs))
    for pid, epoch, rows in m.pairs:
        w.i64(pid)
        w.i64(epoch)
        _put_pairs(w, rows)


def _dec_rejoin(r: _Reader) -> Rejoin:
    epoch = r.i64()
    owned_pids = _get_int_seq(r)
    last_shipment_epoch = r.i64()
    last_order_epoch = r.i64()
    active = bool(r.u8())
    pairs = []
    for _ in range(r.u32()):
        pid, pepoch = r.i64(), r.i64()
        rows = _get_pairs(r)
        if rows is None:
            raise WireError("rejoin pair chunk without rows")
        pairs.append((pid, pepoch, rows))
    return Rejoin(
        epoch,
        owned_pids=owned_pids,
        last_shipment_epoch=last_shipment_epoch,
        last_order_epoch=last_order_epoch,
        active=active,
        pairs=tuple(pairs),
    )


#: tag -> (type, encoder, decoder).  Tags are part of the wire format:
#: never renumber, only append (and bump WIRE_VERSION on change).
_TAGS: dict[int, tuple[type, t.Any, t.Any]] = {
    1: (Shipment, _enc_shipment, _dec_shipment),
    2: (LoadReport, _enc_load_report, _dec_load_report),
    3: (ReorgOrder, _enc_reorg_order, _dec_reorg_order),
    4: (StateTransfer, _enc_state_transfer, _dec_state_transfer),
    5: (MoveAck, _enc_move_ack, _dec_move_ack),
    6: (Activate, _enc_activate, _dec_activate),
    7: (ResultReport, _enc_result_report, _dec_result_report),
    8: (Halt, _enc_halt, _dec_halt),
    9: (SlaveSync, _enc_slave_sync, _dec_slave_sync),
    10: (Replicate, _enc_replicate, _dec_replicate),
    11: (Checkpoint, _enc_checkpoint, _dec_checkpoint),
    12: (Restore, _enc_restore, _dec_restore),
    13: (StandbySync, _enc_standby_sync, _dec_standby_sync),
    14: (StandbyPlan, _enc_standby_plan, _dec_standby_plan),
    15: (TakeOver, _enc_take_over, _dec_take_over),
    16: (Rejoin, _enc_rejoin, _dec_rejoin),
}
_TAG_OF = {tp: tag for tag, (tp, _e, _d) in _TAGS.items()}

#: Append-only history of the tag space: version -> the tags that
#: version introduced, with the message type each encodes.  PROTO002
#: cross-checks this ledger against ``_TAGS`` and ``WIRE_VERSION``:
#: every tag must be recorded under exactly one version, no recorded
#: tag may ever be deleted or retyped, new tags go under a *new*
#: version entry, and ``WIRE_VERSION`` must equal the newest version.
#: To evolve the protocol: add the message type + codec, append its
#: tag to ``_TAGS``, record it here under ``WIRE_VERSION + 1``, and
#: bump ``WIRE_VERSION``.
_TAG_LEDGER: dict[int, tuple[tuple[int, str], ...]] = {
    1: (
        (1, "Shipment"),
        (2, "LoadReport"),
        (3, "ReorgOrder"),
        (4, "StateTransfer"),
        (5, "MoveAck"),
        (6, "Activate"),
        (7, "ResultReport"),
        (8, "Halt"),
        (9, "SlaveSync"),
    ),
    2: (
        (10, "Replicate"),
        (11, "Checkpoint"),
        (12, "Restore"),
    ),
    3: (
        (13, "StandbySync"),
        (14, "StandbyPlan"),
        (15, "TakeOver"),
        (16, "Rejoin"),
    ),
}


def encode_message(message: t.Any) -> bytes:
    """Serialize one protocol message to wire bytes (header + body)."""
    tag = _TAG_OF.get(type(message))
    if tag is None:
        raise WireError(
            f"{type(message).__name__} is not a wire message type"
        )
    w = _Writer()
    w.buf += MAGIC
    w.u8(WIRE_VERSION)
    w.u8(tag)
    _TAGS[tag][1](w, message)
    return bytes(w.buf)


def decode_message(data: bytes) -> t.Any:
    """Deserialize wire bytes back into a protocol message.

    Raises :class:`~repro.errors.WireError` on a bad magic, an
    unsupported version, an unknown tag, truncation, or trailing bytes.
    """
    r = _Reader(data)
    magic = r.take(2)
    if magic != MAGIC:
        raise WireError(f"bad frame magic: {magic!r}")
    version = r.u8()
    if version != WIRE_VERSION:
        raise WireError(
            f"unsupported wire version {version} (this build speaks "
            f"{WIRE_VERSION})"
        )
    tag = r.u8()
    entry = _TAGS.get(tag)
    if entry is None:
        raise WireError(f"unknown message tag: {tag}")
    message = entry[2](r)
    r.done()
    return message
