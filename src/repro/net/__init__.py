"""The cluster interconnect.

* :mod:`~repro.net.sim_transport` — the modeled network used by all
  experiments: reliable, *rendezvous* (blocking) point-to-point links
  over a star topology, with wire time (latency + bandwidth) and
  per-endpoint message-handling overhead (serialization, TCP/MPI
  connection work).  Every transfer is accounted against both
  endpoints' communication-time and idle-time statistics — these are
  exactly the "communication overhead" and wait times the paper's
  Figures 9–14 report.
* :mod:`~repro.net.thread_transport` — real queue-based rendezvous
  channels for the wall-clock backend.

Rendezvous semantics are the heart of the paper's Section III argument:
a receive blocks until the sender is scheduled to send (and vice
versa), which is why the algorithm must follow a fixed communication
schedule.
"""

from repro.net.sim_transport import SimEndpoint, SimTransport
from repro.net.thread_transport import ThreadEndpoint, ThreadTransport

__all__ = ["SimTransport", "SimEndpoint", "ThreadTransport", "ThreadEndpoint"]
