"""Socket-pair channels for the process backend.

Each unordered node pair of the cluster shares one full-duplex
``socket.socketpair()``; the two endpoint processes inherit one end
each (the parent closes both after forking, so peer death is
observable as EOF).  Messages travel as length-prefixed frames::

    length  4 bytes  big-endian payload size
    payload         one :mod:`repro.net.wire` encoded message

Semantics, mirrored from :class:`~repro.net.sim_transport.SimTransport`
so :mod:`repro.mp.comm` collectives behave identically:

* **FIFO per pair** — kernel stream sockets preserve order; the fixed
  communication schedule needs nothing stronger.
* **peer EOF → NodeDown** — when the remote process exits (cleanly or
  killed), buffered frames are still delivered, then ``recv`` resolves
  to :class:`~repro.faults.markers.NodeDown`, the same marker the DES
  transport synthesizes for a reaped node.  The PR 3 failure-detection
  path in the master therefore works unchanged.
* **sends to a dead peer complete silently** — a write hitting a
  closed socket (``BrokenPipeError``/``ECONNRESET``) is the
  TCP-buffered-write model of a fail-stop peer: the sender cannot
  know, the message is discarded, the send "succeeds".
* **recv timeout → RecvTimeout** — an armed detection timeout that
  elapses with no frame resolves to
  :class:`~repro.faults.markers.RecvTimeout` (timeout is in *modeled*
  seconds; the wall wait is scaled by ``time_scale``).
* **drain fences a pair** — after ``drain(src)``, frames from *src*
  are consumed and discarded by a background reader so a live-but-late
  peer can never wedge on a full socket buffer, and local receives
  from the fenced peer resolve to ``NodeDown`` (the master never
  legitimately receives from a slave it fenced).

Unlike the rendezvous transports, sends are *buffered*: ``send``
completes once the frame is written to the socket, which blocks only
when the kernel buffer fills (natural backpressure).  Statistics
therefore measure real wall time spent writing/reading, not modeled
rendezvous spans — see the backend matrix in the README.
"""

from __future__ import annotations

import select
import socket
import struct
import threading
import time
import typing as t

from repro.errors import WireError
from repro.faults.markers import NodeDown, RecvTimeout
from repro.net.sim_transport import CommStats
from repro.net.wire import decode_message, encode_message
from repro.obs.events import TransportEvent
from repro.obs.tracer import NULL_TRACER, Tracer
from repro.runtime.thread import Thunk

#: Frame header: big-endian payload length.
FRAME_HEADER = struct.Struct("!I")
#: Refuse absurd frames (a corrupted header would otherwise make the
#: reader try to allocate gigabytes before failing).
MAX_FRAME_BYTES = 1 << 30

#: Sentinel distinguishing "timed out" from "EOF" inside the reader.
_TIMED_OUT = object()
_EOF = object()


def write_frame(sock: socket.socket, payload: bytes) -> None:
    """Write one length-prefixed frame (blocking until buffered)."""
    sock.sendall(FRAME_HEADER.pack(len(payload)) + payload)


class FrameReader:
    """Incremental frame reassembly over one stream socket.

    Keeps a byte buffer so a frame split across arbitrarily many
    ``recv`` calls (partial reads) — or several frames arriving in one
    ``recv`` — reassembles correctly.  Exactly one thread reads any
    given channel, so the buffer needs no lock.
    """

    def __init__(self, sock: socket.socket, chunk_bytes: int = 65536) -> None:
        self.sock = sock
        self.chunk_bytes = chunk_bytes
        self._buf = bytearray()
        self._eof = False

    def _fill(self, deadline: float | None) -> bool:
        """Read one chunk into the buffer.

        Returns False on timeout; sets ``_eof`` on connection end.
        """
        if deadline is not None:
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                return False
            ready, _, _ = select.select([self.sock], [], [], remaining)
            if not ready:
                return False
        try:
            chunk = self.sock.recv(self.chunk_bytes)
        except (ConnectionResetError, OSError):
            chunk = b""
        if not chunk:
            self._eof = True
        else:
            self._buf += chunk
        return True

    def read_frame(self, timeout: float | None = None) -> t.Any:
        """One frame's payload bytes, ``_EOF``, or ``_TIMED_OUT``.

        *timeout* is in wall seconds and bounds the wait for the
        *first* byte of the frame; once a frame has started arriving it
        is read to completion (the peer is evidently alive).
        """
        deadline = (
            time.monotonic() + timeout if timeout is not None else None
        )
        while len(self._buf) < FRAME_HEADER.size:
            if self._eof:
                return _EOF
            started = len(self._buf) > 0
            if not self._fill(None if started else deadline):
                return _TIMED_OUT
        (length,) = FRAME_HEADER.unpack(bytes(self._buf[: FRAME_HEADER.size]))
        if length > MAX_FRAME_BYTES:
            raise WireError(f"frame of {length} bytes exceeds sanity bound")
        total = FRAME_HEADER.size + length
        while len(self._buf) < total:
            if self._eof:
                # A torn frame: the peer died mid-write.  Surface it as
                # EOF — the partial payload must never reach the codec.
                return _EOF
            self._fill(None)
        payload = bytes(self._buf[FRAME_HEADER.size : total])
        del self._buf[:total]
        return payload


class _Channel:
    """This node's half of one peer socket."""

    __slots__ = (
        "peer", "sock", "reader", "send_lock", "draining",
        "send_seq", "recv_seq",
    )

    def __init__(self, peer: int, sock: socket.socket) -> None:
        self.peer = peer
        self.sock = sock
        self.reader = FrameReader(sock)
        self.send_lock = threading.Lock()
        self.draining = False
        # Per-directed-stream message counters for transport tracing:
        # the socket is FIFO, so the n-th send pairs the n-th receive
        # on the peer.  ``send_seq`` is guarded by ``send_lock``;
        # exactly one thread reads a channel, so ``recv_seq`` is not.
        self.send_seq = 0
        self.recv_seq = 0


class _ForeignEndpoint:
    """Endpoint stub for a node that lives in another OS process.

    ``build_cluster`` wires every node of the cluster, but a process
    backend child only *runs* its own node's generators — the other
    nodes' endpoints must never be exercised here.
    """

    __slots__ = ("node_id",)

    def __init__(self, node_id: int) -> None:
        self.node_id = node_id

    def _refuse(self, *_a: t.Any, **_k: t.Any) -> t.NoReturn:
        raise RuntimeError(
            f"node {self.node_id} lives in another process; its endpoint "
            "cannot be used here"
        )

    send = _refuse
    recv = _refuse
    drain = _refuse


class ProcTransport:
    """One process's view of the cluster interconnect.

    ``peers`` maps peer node id -> this process's end of the shared
    socket pair.  ``endpoint`` hands out the real endpoint for the
    local node and refusing stubs for every other node.
    """

    def __init__(
        self,
        node_id: int,
        peers: t.Mapping[int, socket.socket],
        tuple_bytes: int,
        time_scale: float = 1.0,
        origin: float | None = None,
        tracer: Tracer = NULL_TRACER,
        now_fn: t.Callable[[], float] | None = None,
    ) -> None:
        if time_scale <= 0:
            raise ValueError("time_scale must be positive")
        self.node_id = node_id
        self.tuple_bytes = tuple_bytes
        self.time_scale = time_scale
        self._origin = time.monotonic() if origin is None else origin
        self.tracer = tracer
        self._now_fn = now_fn
        self._channels = {
            peer: _Channel(peer, sock) for peer, sock in peers.items()
        }
        self._drain_threads: list[threading.Thread] = []

    # -- clock ---------------------------------------------------------------
    def _now(self) -> float:
        if self._now_fn is not None:
            return self._now_fn()
        return (time.monotonic() - self._origin) / self.time_scale

    def rebase(self, origin: float) -> None:
        """Move modeled t=0 to the given ``time.monotonic()`` value (set
        by the process backend's start barrier, shared by all nodes)."""
        self._origin = origin

    # -- wiring --------------------------------------------------------------
    def endpoint(
        self, node_id: int, stats: CommStats | None = None
    ) -> "ProcEndpoint | _ForeignEndpoint":
        if node_id != self.node_id:
            return _ForeignEndpoint(node_id)
        return ProcEndpoint(self, stats)

    def channel(self, peer: int) -> _Channel:
        chan = self._channels.get(peer)
        if chan is None:
            raise RuntimeError(
                f"node {self.node_id} has no channel to peer {peer}"
            )
        return chan

    def close(self) -> None:
        """Close every socket (end of run; peers observe EOF)."""
        for chan in self._channels.values():
            try:
                chan.sock.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass
            chan.sock.close()

    def _message_bytes(self, message: t.Any) -> int:
        # Stats record the *modeled* 64 B/tuple wire size, like the sim
        # and thread transports, so per-byte metrics stay comparable.
        wire = getattr(message, "wire_bytes", None)
        return 64 if wire is None else int(wire(self.tuple_bytes))

    # -- fencing -------------------------------------------------------------
    def drain_peer(self, peer: int) -> None:
        """Fence *peer*: discard its frames in the background forever.

        Idempotent.  Keeps a live-but-fenced peer from blocking on a
        full socket buffer (the process analogue of
        :meth:`SimTransport.drain_pair`'s silently-completing sends).
        """
        chan = self.channel(peer)
        if chan.draining:
            return
        chan.draining = True

        def discard() -> None:
            while True:
                frame = chan.reader.read_frame(None)
                if frame is _EOF:
                    return

        thread = threading.Thread(
            target=discard,
            name=f"drain:{peer}->{self.node_id}",
            daemon=True,
        )
        self._drain_threads.append(thread)
        thread.start()


class ProcEndpoint:
    """The local node's handle on the process transport."""

    __slots__ = ("transport", "node_id", "stats")

    def __init__(
        self, transport: ProcTransport, stats: CommStats | None
    ) -> None:
        self.transport = transport
        self.node_id = transport.node_id
        self.stats = stats

    def send(self, dst: int, message: t.Any) -> Thunk:
        transport = self.transport
        chan = transport.channel(dst)

        def fn() -> None:
            payload = encode_message(message)
            t0 = transport._now()
            try:
                with chan.send_lock:
                    seq = chan.send_seq
                    chan.send_seq += 1
                    write_frame(chan.sock, payload)
            except (BrokenPipeError, ConnectionResetError, OSError):
                # Fail-stop peer: the write lands in a void, exactly
                # like a TCP write buffered towards a dead host.  The
                # sender cannot observe the difference.
                pass
            t1 = transport._now()
            nbytes = transport._message_bytes(message)
            if self.stats is not None:
                self.stats.record_comm(t0, t1, nbytes, sent=True)
            tracer = transport.tracer
            if tracer.enabled:
                tracer.emit(
                    TransportEvent(
                        t=t0,
                        node=self.node_id,
                        dst=dst,
                        msg=type(message).__name__,
                        nbytes=nbytes,
                        duration=t1 - t0,
                        phase="send",
                        xfer_seq=seq,
                    )
                )

        return Thunk(fn)

    def recv(self, src: int, timeout: float | None = None) -> Thunk:
        transport = self.transport
        chan = transport.channel(src)

        def fn() -> t.Any:
            t0 = transport._now()
            if chan.draining:
                # The pair is fenced: this node gave up on the peer.
                return NodeDown(src)
            wall = (
                None
                if timeout is None
                else max(0.0, timeout) * transport.time_scale
            )
            frame = chan.reader.read_frame(wall)
            t1 = transport._now()
            if frame is _TIMED_OUT:
                if self.stats is not None:
                    self.stats.record_idle(t0, t1)
                return RecvTimeout(timeout or 0.0)
            if frame is _EOF:
                if self.stats is not None:
                    self.stats.record_idle(t0, t1)
                return NodeDown(src)
            message = decode_message(frame)
            seq = chan.recv_seq
            chan.recv_seq += 1
            nbytes = transport._message_bytes(message)
            if self.stats is not None:
                self.stats.record_idle(t0, t1)
                self.stats.record_comm(t1, t1, nbytes, sent=False)
            tracer = transport.tracer
            if tracer.enabled:
                tracer.emit(
                    TransportEvent(
                        t=t1,
                        node=self.node_id,
                        dst=src,
                        msg=type(message).__name__,
                        nbytes=nbytes,
                        duration=t1 - t0,
                        phase="recv",
                        xfer_seq=seq,
                    )
                )
            return message

        return Thunk(fn)

    def drain(self, src: int) -> None:
        """Fence the channel from *src* (see :meth:`ProcTransport.drain_peer`)."""
        self.transport.drain_peer(src)
