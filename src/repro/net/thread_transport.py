"""Real rendezvous channels for the thread backend.

Each directed pair gets an unbuffered handoff built from a depth-1
queue plus an acknowledgement queue, giving the same blocking
semantics as the simulated transport: ``send`` returns only once the
receiver has taken the message.  Statistics record real elapsed times.
"""

from __future__ import annotations

import queue
import time
import typing as t

from repro.faults.markers import RecvTimeout
from repro.net.sim_transport import CommStats
from repro.runtime.thread import Thunk


class _Channel:
    __slots__ = ("data", "ack")

    def __init__(self) -> None:
        self.data: queue.Queue = queue.Queue(maxsize=1)
        self.ack: queue.Queue = queue.Queue(maxsize=1)


class ThreadTransport:
    """All channels of one in-process "live" cluster."""

    def __init__(self, tuple_bytes: int, time_scale: float = 1.0) -> None:
        self.tuple_bytes = tuple_bytes
        self.time_scale = time_scale
        self._origin = time.monotonic()
        self._channels: dict[tuple[int, int], _Channel] = {}
        self._lock = __import__("threading").Lock()

    def _now(self) -> float:
        return (time.monotonic() - self._origin) / self.time_scale

    def _channel(self, src: int, dst: int) -> _Channel:
        with self._lock:
            key = (src, dst)
            chan = self._channels.get(key)
            if chan is None:
                chan = self._channels[key] = _Channel()
            return chan

    def endpoint(self, node_id: int, stats: CommStats | None = None) -> "ThreadEndpoint":
        return ThreadEndpoint(self, node_id, stats)

    def _message_bytes(self, message: t.Any) -> int:
        wire = getattr(message, "wire_bytes", None)
        return 64 if wire is None else int(wire(self.tuple_bytes))


class ThreadEndpoint:
    """One node's handle on the thread transport."""

    __slots__ = ("transport", "node_id", "stats")

    def __init__(
        self, transport: ThreadTransport, node_id: int, stats: CommStats | None
    ) -> None:
        self.transport = transport
        self.node_id = node_id
        self.stats = stats

    def send(self, dst: int, message: t.Any) -> Thunk:
        chan = self.transport._channel(self.node_id, dst)

        def fn() -> None:
            t0 = self.transport._now()
            chan.data.put(message)
            chan.ack.get()  # rendezvous: wait until taken
            t1 = self.transport._now()
            if self.stats is not None:
                nbytes = self.transport._message_bytes(message)
                self.stats.record_comm(t0, t1, nbytes, sent=True)

        return Thunk(fn)

    def recv(self, src: int, timeout: float | None = None) -> Thunk:
        chan = self.transport._channel(src, self.node_id)

        def fn() -> t.Any:
            t0 = self.transport._now()
            if timeout is None:
                message = chan.data.get()
            else:
                # Model seconds -> wall seconds via the time scale.
                try:
                    message = chan.data.get(
                        timeout=max(0.0, timeout) * self.transport.time_scale
                    )
                except queue.Empty:
                    t1 = self.transport._now()
                    if self.stats is not None:
                        self.stats.record_idle(t0, t1)
                    return RecvTimeout(timeout)
            chan.ack.put(True)
            t1 = self.transport._now()
            if self.stats is not None:
                nbytes = self.transport._message_bytes(message)
                self.stats.record_idle(t0, t1)
                self.stats.record_comm(t1, t1, nbytes, sent=False)
            return message

        return Thunk(fn)

    def drain(self, src: int) -> None:
        """Fencing is a no-op on the thread backend: a live thread's
        blocked ``send`` is released at interpreter shutdown, and the
        chaos suite only runs against the simulated transport."""
