"""Real rendezvous channels for the thread backend.

Each directed pair gets an unbuffered handoff built from a depth-1
queue plus an acknowledgement queue, giving the same blocking
semantics as the simulated transport: ``send`` returns only once the
receiver has taken the message.  Statistics record real elapsed times.
"""

from __future__ import annotations

import queue
import threading
import time
import typing as t

from repro.faults.markers import NodeDown, RecvTimeout
from repro.net.sim_transport import CommStats
from repro.obs.events import TransportEvent
from repro.obs.tracer import NULL_TRACER, Tracer
from repro.runtime.thread import KilledNode, Thunk


class _Channel:
    __slots__ = ("data", "ack", "send_lock", "send_seq", "recv_lock", "recv_seq")

    def __init__(self) -> None:
        self.data: queue.Queue = queue.Queue(maxsize=1)
        self.ack: queue.Queue = queue.Queue(maxsize=1)
        # Per-directed-channel message counters for transport tracing:
        # the channel is FIFO, so the n-th send pairs the n-th receive.
        self.send_lock = threading.Lock()
        self.send_seq = 0
        self.recv_lock = threading.Lock()
        self.recv_seq = 0


class ThreadTransport:
    """All channels of one in-process "live" cluster."""

    def __init__(
        self,
        tuple_bytes: int,
        time_scale: float = 1.0,
        tracer: Tracer = NULL_TRACER,
        now_fn: t.Callable[[], float] | None = None,
    ) -> None:
        self.tuple_bytes = tuple_bytes
        self.time_scale = time_scale
        self._origin = time.monotonic()
        self.tracer = tracer
        self._now_fn = now_fn
        self._channels: dict[tuple[int, int], _Channel] = {}
        self._lock = threading.Lock()
        #: Nodes reaped by :meth:`kill_node` (reads are racy by design:
        #: a crash lands "at some point" on a wall-clock backend).
        self.dead: set[int] = set()
        self.messages_lost = 0

    def _now(self) -> float:
        if self._now_fn is not None:
            return self._now_fn()
        return (time.monotonic() - self._origin) / self.time_scale

    def _channel(self, src: int, dst: int) -> _Channel:
        with self._lock:
            key = (src, dst)
            chan = self._channels.get(key)
            if chan is None:
                chan = self._channels[key] = _Channel()
            return chan

    def endpoint(self, node_id: int, stats: CommStats | None = None) -> "ThreadEndpoint":
        return ThreadEndpoint(self, node_id, stats)

    def _message_bytes(self, message: t.Any) -> int:
        wire = getattr(message, "wire_bytes", None)
        return 64 if wire is None else int(wire(self.tuple_bytes))

    # -- fault plane ---------------------------------------------------------
    def kill_node(self, node_id: int) -> None:
        """Reap a fail-stop crashed node.

        Mirrors the simulated transport: live peers blocked receiving
        *from* the victim resume with :class:`NodeDown`; live peers
        blocked sending *to* it get their rendezvous ack so they move
        on (message discarded).  The victim's own blocked threads are
        woken with the same tokens and raise
        :class:`~repro.runtime.thread.KilledNode` when they observe
        their node in the dead set.
        """
        with self._lock:
            self.dead.add(node_id)
            channels = dict(self._channels)
        for (src, dst), chan in channels.items():
            if src == node_id:
                # Discard a stale message the victim posted but nobody
                # took, then wake the live receiver with NodeDown and
                # release the victim's sender thread (if blocked on the
                # ack) so it can unwind.
                try:
                    chan.data.get_nowait()
                except queue.Empty:
                    pass
                try:
                    chan.data.put_nowait(NodeDown(node_id))
                except queue.Full:
                    pass
                try:
                    chan.ack.put_nowait(True)
                except queue.Full:
                    pass
            elif dst == node_id:
                # Release a live sender waiting on the victim's ack and
                # wake the victim's receiver thread so it unwinds.
                try:
                    chan.ack.put_nowait(True)
                except queue.Full:
                    pass
                try:
                    chan.data.put_nowait(NodeDown(node_id))
                except queue.Full:
                    pass


class ThreadEndpoint:
    """One node's handle on the thread transport."""

    __slots__ = ("transport", "node_id", "stats")

    def __init__(
        self, transport: ThreadTransport, node_id: int, stats: CommStats | None
    ) -> None:
        self.transport = transport
        self.node_id = node_id
        self.stats = stats

    def send(self, dst: int, message: t.Any) -> Thunk:
        chan = self.transport._channel(self.node_id, dst)

        def fn() -> None:
            dead = self.transport.dead
            if self.node_id in dead:
                raise KilledNode(self.node_id)
            if dst in dead:
                self.transport.messages_lost += 1
                return  # fail-stop peer: the message is simply lost
            t0 = self.transport._now()
            # The lock serializes same-channel senders so xfer_seq
            # numbers land in queue order (the channel is rendezvous:
            # holding it across the ack admits no extra blocking).
            with chan.send_lock:
                seq = chan.send_seq
                chan.send_seq += 1
                chan.data.put(message)
                chan.ack.get()  # rendezvous: wait until taken
            if self.node_id in dead:
                raise KilledNode(self.node_id)
            t1 = self.transport._now()
            nbytes = self.transport._message_bytes(message)
            if self.stats is not None:
                self.stats.record_comm(t0, t1, nbytes, sent=True)
            tracer = self.transport.tracer
            if tracer.enabled:
                tracer.emit(
                    TransportEvent(
                        t=t0,
                        node=self.node_id,
                        dst=dst,
                        msg=type(message).__name__,
                        nbytes=nbytes,
                        duration=t1 - t0,
                        phase="send",
                        xfer_seq=seq,
                    )
                )

        return Thunk(fn)

    def recv(self, src: int, timeout: float | None = None) -> Thunk:
        chan = self.transport._channel(src, self.node_id)

        def fn() -> t.Any:
            dead = self.transport.dead
            if self.node_id in dead:
                raise KilledNode(self.node_id)
            if src in dead:
                return NodeDown(src)
            t0 = self.transport._now()
            if timeout is None:
                message = chan.data.get()
            else:
                # Model seconds -> wall seconds via the time scale.
                try:
                    message = chan.data.get(
                        timeout=max(0.0, timeout) * self.transport.time_scale
                    )
                except queue.Empty:
                    t1 = self.transport._now()
                    if self.stats is not None:
                        self.stats.record_idle(t0, t1)
                    return RecvTimeout(timeout)
            if self.node_id in dead:
                raise KilledNode(self.node_id)
            if isinstance(message, NodeDown):
                return message  # pushed by kill_node: no sender to ack
            with chan.recv_lock:
                seq = chan.recv_seq
                chan.recv_seq += 1
                chan.ack.put(True)
            t1 = self.transport._now()
            nbytes = self.transport._message_bytes(message)
            if self.stats is not None:
                self.stats.record_idle(t0, t1)
                self.stats.record_comm(t1, t1, nbytes, sent=False)
            tracer = self.transport.tracer
            if tracer.enabled:
                tracer.emit(
                    TransportEvent(
                        t=t1,
                        node=self.node_id,
                        dst=src,
                        msg=type(message).__name__,
                        nbytes=nbytes,
                        duration=t1 - t0,
                        phase="recv",
                        xfer_seq=seq,
                    )
                )
            return message

        return Thunk(fn)

    def drain(self, src: int) -> None:
        """Fencing is a no-op here: :meth:`ThreadTransport.kill_node`
        already released every peer blocked against the dead node, and
        the dead-set short-circuits in send/recv fence the rest."""
