"""The paper's contribution: the parallel windowed stream join.

Layering (bottom up):

* :mod:`~repro.core.hashing` — the partition hash ``H`` and the
  independent directory hash ``g`` used by extendible hashing.
* :mod:`~repro.core.probe` — the vectorized equi-join probe kernel
  (exact match counting with the sliding-window timestamp predicate).
* :mod:`~repro.core.window` — one stream's window data inside a
  mini-partition-group: committed tuples in temporal order plus the
  fresh head block (Section IV-D).
* :mod:`~repro.core.exthash` — the extendible-hash directory used to
  fine-tune partition sizes (split/merge within ``[theta, 2*theta]``).
* :mod:`~repro.core.partition_group` — a partition-group: directory of
  mini-partition-groups plus maintenance policy.
* :mod:`~repro.core.join_module` — the slave-side join module: stream
  buffers, block-at-a-time processing, work-unit generation.
* :mod:`~repro.core.costmodel` — calibrated CPU cost model.
* :mod:`~repro.core.buffer` — the master's partitioned buffer
  (mini-buffers, partition->slave mapping).
* :mod:`~repro.core.master`, :mod:`~repro.core.slave`,
  :mod:`~repro.core.collector` — node processes (Algorithm 1 and the
  repartitioning protocol).
* :mod:`~repro.core.declustering` — degree-of-declustering controller
  (Section V-A); :mod:`~repro.core.subgroups` — sub-group communication
  (Section V-B).
* :mod:`~repro.core.system` — wiring + run loop + results.
"""

from repro.core.system import JoinSystem, RunResult

__all__ = ["JoinSystem", "RunResult"]
