"""System wiring and the run loop.

:class:`JoinSystem` assembles a cluster — master, slaves, collector,
transport — from a :class:`~repro.config.SystemConfig`, runs it to
completion on the configured backend, and returns a :class:`RunResult`
with every metric the paper's evaluation section reports.

Backends live in a registry keyed by ``SystemConfig.backend``:

``sim``
    The deterministic DES kernel (:class:`SimBackend`, the default).
``thread``
    One OS thread per node generator, wall-clock time
    (:class:`~repro.runtime.thread.ThreadBackend`).
``process``
    One OS process per cluster node, socket-pair channels and the
    :mod:`repro.net.wire` codec
    (:class:`~repro.runtime.process.ProcessBackend`).
``tcp``
    One worker process per cluster node over real TCP connections,
    optionally spanning multiple hosts via ``swjoin worker``
    (:class:`~repro.runtime.tcp.TcpBackend`).

The non-default backends are registered through lazy factories so that
importing this module never pulls in the wall-clock runtime stack.
"""

from __future__ import annotations

import dataclasses
import typing as t

import numpy as np

from repro.config import SystemConfig
from repro.core.cluster import (
    COLLECTOR_ID,
    MASTER_ID,
    Cluster,
    build_cluster,
    slave_node_id,
    trace_meta,
)
from repro.core.metrics import DelayStats
from repro.errors import ConfigError, DeadlockError
from repro.net.sim_transport import SimTransport
from repro.obs.tracer import NULL_TRACER, build_tracer
from repro.runtime.sim import SimRuntime
from repro.simul.kernel import Simulator

__all__ = [
    "JoinSystem",
    "RunResult",
    "Backend",
    "SimBackend",
    "register_backend",
    "available_backends",
    "get_backend",
    "collect_result",
    "master_snapshot",
    "start_admin_server",
    "MASTER_ID",
    "COLLECTOR_ID",
    "slave_node_id",
]


@dataclasses.dataclass
class RunResult:
    """Everything measured during one run (inside the gate window)."""

    cfg: SystemConfig
    #: Wall duration of the measurement window (seconds).
    duration: float
    #: Merged production-delay statistics over all slaves.
    delays: DelayStats
    #: The collector's independently merged view (must match `delays`).
    collector_delays: DelayStats
    #: Per-slave metric snapshots (ordered by slave index).
    slaves: list[dict[str, t.Any]]
    master: dict[str, t.Any]
    #: Degree-of-declustering trace [(time, n_active)].
    dod_trace: list[tuple[float, int]]
    #: Per-epoch collector timeline [(epoch, outputs, mean_delay_s)].
    delay_timeline: list[tuple[int, int, float]]
    tuples_generated: int
    #: Join output pairs (only in collect_pairs mode).
    pairs: np.ndarray | None = None
    #: Trace records (only with ``obs.trace_memory``).
    trace: list[dict[str, t.Any]] | None = None
    #: Sampled gauge series ``{"n<node>.<gauge>": [(t, v), ...]}``
    #: (only with ``obs.sample_period``).
    series: dict[str, list[tuple[float, float]]] | None = None
    #: Typed metric-registry snapshots per node id (only with
    #: ``obs.metrics`` or an admin endpoint; see ``repro.obs.metrics``).
    node_metrics: dict[int, dict[str, t.Any]] | None = None
    #: Slave failures the master detected (fault plane): one record per
    #: dead slave with detection epoch/time, lost pids and — once a
    #: recovery round ran — recovery time and latency.
    faults: list[dict[str, t.Any]] = dataclasses.field(default_factory=list)
    #: Fault-plan injections that actually fired during the run.
    injected_faults: list[dict[str, t.Any]] = dataclasses.field(
        default_factory=list
    )

    # -- headline metrics -------------------------------------------------
    @property
    def degraded(self) -> bool:
        """True when a failure actually lost data: a fault was never
        recovered, or partitions were re-owned with *empty* state (no
        usable replica).  With ``--replication`` every lost partition is
        rebuilt from its backup's checkpoint + log, so a crash alone no
        longer degrades the output."""
        return any(
            f.get("recovered_at") is None or f.get("lost_pids")
            for f in self.faults
        )

    @property
    def recovery_latencies(self) -> list[float]:
        """Detection-to-reassignment latency per recovered failure."""
        return [
            f["recovery_latency"]
            for f in self.faults
            if f.get("recovery_latency") is not None
        ]
    @property
    def avg_delay(self) -> float:
        """Average production delay, seconds (Figures 5, 6, 8, 13)."""
        return self.delays.mean

    @property
    def outputs(self) -> int:
        return self.delays.count

    @property
    def cpu_times(self) -> list[float]:
        return [s["cpu_total"] for s in self.slaves]

    @property
    def avg_cpu_time(self) -> float:
        """Average per-slave CPU time, seconds (Figure 7)."""
        served = self.cpu_times
        return float(np.mean(served)) if served else 0.0

    @property
    def comm_times(self) -> list[float]:
        """Per-slave communication time, seconds (Figures 9-12, 14)."""
        return [s["comm_time"] for s in self.slaves]

    @property
    def avg_comm_time(self) -> float:
        return float(np.mean(self.comm_times)) if self.comm_times else 0.0

    @property
    def aggregate_comm_time(self) -> float:
        return float(np.sum(self.comm_times))

    @property
    def idle_times(self) -> list[float]:
        """Per-slave CPU idle time: measurement window minus join work
        minus communication (Figures 9, 10)."""
        return [
            max(0.0, self.duration - s["cpu_total"] - s["comm_time"])
            for s in self.slaves
        ]

    @property
    def avg_idle_time(self) -> float:
        return float(np.mean(self.idle_times)) if self.idle_times else 0.0

    @property
    def max_window_bytes(self) -> int:
        return max((s["max_window_bytes"] for s in self.slaves), default=0)

    @property
    def final_active_slaves(self) -> int:
        return self.dod_trace[-1][1] if self.dod_trace else self.cfg.n_active_initial

    def to_dict(self) -> dict[str, t.Any]:
        return {
            "avg_delay": self.avg_delay,
            "outputs": self.outputs,
            "avg_cpu_time": self.avg_cpu_time,
            "avg_comm_time": self.avg_comm_time,
            "aggregate_comm_time": self.aggregate_comm_time,
            "avg_idle_time": self.avg_idle_time,
            "max_window_bytes": self.max_window_bytes,
            "duration": self.duration,
            "tuples_generated": self.tuples_generated,
            "slaves": self.slaves,
            "master": self.master,
            "degraded": self.degraded,
            "faults": self.faults,
            "injected_faults": self.injected_faults,
        }

    def summary(self) -> str:
        lines = [
            f"run: rate={self.cfg.rate:g} t/s/stream, "
            f"slaves={self.cfg.num_slaves}, "
            f"fine_tuning={self.cfg.fine_tuning}, "
            f"window={self.cfg.window_seconds:g}s, "
            f"measured={self.duration:g}s",
            f"  outputs: {self.outputs}  "
            f"avg delay: {self.avg_delay:.3f}s  "
            f"(p50={self.delays.percentile(50):.3f}s, "
            f"p99={self.delays.percentile(99):.3f}s)",
            f"  per-slave cpu: {[round(c, 1) for c in self.cpu_times]}s",
            f"  per-slave comm: {[round(c, 2) for c in self.comm_times]}s",
            f"  per-slave idle: {[round(c, 1) for c in self.idle_times]}s",
            f"  max window: {self.max_window_bytes / 1e6:.2f} MB  "
            f"moves: {self.master.get('moves_ordered', 0)}  "
            f"splits: {sum(s['splits'] for s in self.slaves)}  "
            f"merges: {sum(s['merges'] for s in self.slaves)}",
        ]
        if self.dod_trace:
            lines.append(f"  degree-of-declustering trace: {self.dod_trace}")
        if self.degraded:
            latencies = ", ".join(f"{x:.2f}s" for x in self.recovery_latencies)
            unrecovered = sum(
                1 for f in self.faults if f.get("unrecovered_at_halt")
            )
            line = (
                f"  DEGRADED: {len(self.faults)} failure(s), "
                f"recovery latency: [{latencies}]"
            )
            if unrecovered:
                line += f"  unrecovered at halt: {unrecovered}"
            lines.append(line)
        return "\n".join(lines)


class Backend(t.Protocol):
    """A runtime backend: executes one configured cluster to completion."""

    name: str

    def run(
        self,
        cfg: SystemConfig,
        collect_pairs: bool = False,
        workload: t.Any = None,
    ) -> "RunResult": ...  # pragma: no cover - protocol


#: name -> zero-arg factory.  Factories, not instances, so the thread
#: and process backends import lazily (registration is cheap, the
#: runtime stack loads only when actually selected).
_BACKEND_FACTORIES: dict[str, t.Callable[[], Backend]] = {}


def register_backend(name: str, factory: t.Callable[[], Backend]) -> None:
    """Register (or replace) a runtime backend under *name*."""
    _BACKEND_FACTORIES[name] = factory


def available_backends() -> list[str]:
    """Registered backend names, sorted."""
    return sorted(_BACKEND_FACTORIES)


def get_backend(name: str) -> Backend:
    """Instantiate the backend registered under *name*.

    Raises :class:`~repro.errors.ConfigError` for unknown names, listing
    what is available.
    """
    factory = _BACKEND_FACTORIES.get(name)
    if factory is None:
        raise ConfigError(
            f"unknown backend {name!r}; available: "
            f"{', '.join(available_backends())}"
        )
    return factory()


class JoinSystem:
    """One fully wired cluster run on the configured backend."""

    def __init__(
        self,
        cfg: SystemConfig,
        collect_pairs: bool = False,
        workload: t.Any = None,
    ) -> None:
        self.cfg = cfg.validated()
        self.collect_pairs = collect_pairs
        self._workload_override = workload

    def run(self) -> RunResult:
        backend = get_backend(self.cfg.backend)
        if self.cfg.obs.enabled and not getattr(
            backend, "supports_observability", False
        ):
            raise ConfigError(
                f"backend {self.cfg.backend!r} does not support the "
                "observability plane (tracing/sampling/metrics); it must "
                "declare supports_observability=True and ship traces to "
                "the caller"
            )
        return backend.run(
            self.cfg, self.collect_pairs, self._workload_override
        )


class SimBackend:
    """The deterministic DES backend (``backend="sim"``)."""

    name = "sim"
    supports_observability = True

    def run(
        self,
        cfg: SystemConfig,
        collect_pairs: bool = False,
        workload: t.Any = None,
    ) -> RunResult:
        sim = Simulator()
        runtime = SimRuntime(sim)
        tracer = build_tracer(cfg.obs, meta=trace_meta(cfg))
        injector = None
        if cfg.faults.enabled:
            # Local import: repro.config -> repro.faults.plan must stay
            # a one-way street (the injector pulls in the obs layer).
            from repro.faults.injector import FaultInjector

            injector = FaultInjector(
                cfg.faults,
                [slave_node_id(i) for i in range(cfg.num_slaves)],
                cfg.dist_epoch,
                tracer=tracer,
            )
        transport = SimTransport(
            sim,
            cfg.network,
            cfg.tuple_bytes,
            # Transport spans are high-volume; opt in separately.
            tracer=tracer if cfg.obs.trace_transport else NULL_TRACER,
            faults=injector,
        )
        cluster = build_cluster(
            cfg,
            runtime,
            transport,
            workload=workload,
            collect_pairs=collect_pairs,
            tracer=tracer,
            faults=injector,
        )

        processes = [
            sim.process(gen, name=name) for name, gen in cluster.processes()
        ]
        if injector is not None:
            # Crash processes need the victims' Process handles: kill
            # every process whose name is "slave<node_id>.<kind>".
            by_node: dict[int, list[t.Any]] = {}
            for proc in processes:
                name = proc.name
                if name.startswith("slave"):
                    nid = int(name[len("slave"): name.index(".")])
                    by_node.setdefault(nid, []).append(proc)
                elif name == "master":
                    by_node.setdefault(MASTER_ID, []).append(proc)
            for nid, crash in injector.crash_targets():
                sim.process(
                    injector.crash_process(
                        nid, crash, runtime, transport, by_node.get(nid, ())
                    ),
                    name=f"fault.crash{nid}",
                )
        admin = start_admin_server(cfg, cluster, runtime.now, self.name)
        try:
            sim.run(None)
        finally:
            if admin is not None:
                admin.close()
        stuck = [p.name for p in processes if p.is_alive]
        if stuck:
            pending = transport.pending_summary()
            detail = (
                f"; pending channel ops: {'; '.join(pending)}" if pending else ""
            )
            raise DeadlockError(f"processes never finished: {stuck}{detail}")

        return collect_result(cfg, cluster, collect_pairs)


def start_admin_server(
    cfg: SystemConfig,
    cluster: "Cluster",
    now_fn: t.Callable[[], float],
    backend: str,
) -> t.Any:
    """Start the opt-in admin/health endpoint for a running cluster.

    Returns the :class:`~repro.obs.admin.AdminServer` (caller must
    ``close()`` it) or ``None`` when ``cfg.obs.admin_port`` is unset.
    Shared by every backend: the server is hosted by whichever OS
    process runs the master node.
    """
    if cfg.obs.admin_port is None:
        return None
    from repro.obs.admin import AdminServer, cluster_status
    from repro.obs.metrics import render_prometheus

    def status() -> dict[str, t.Any]:
        return cluster_status(cfg, cluster, now_fn, backend)

    def metrics() -> str:
        return render_prometheus(
            {
                node: registry.snapshot()
                for node, registry in cluster.registries.items()
            }
        )

    return AdminServer(status, metrics, port=cfg.obs.admin_port, announce=True)


def _thread_backend() -> Backend:
    from repro.runtime.thread import ThreadBackend

    return ThreadBackend()


def _process_backend() -> Backend:
    from repro.runtime.process import ProcessBackend

    return ProcessBackend()


def _tcp_backend() -> Backend:
    from repro.runtime.tcp import TcpBackend

    return TcpBackend()


register_backend("sim", SimBackend)
register_backend("thread", _thread_backend)
register_backend("process", _process_backend)
register_backend("tcp", _tcp_backend)


def master_snapshot(cluster: "Cluster") -> dict[str, t.Any]:
    """Master-side metric snapshot (shared by every backend; the
    process backend pickles this dict across the result pipe).

    Reads through :attr:`Cluster.acting_master`: after a standby
    takeover the authoritative coordinator state — partition mapping,
    dead set, failure records — lives in the standby's shadow master.
    """
    acting = cluster.acting_master
    master_metrics = acting.metrics
    return {
        "comm_time": master_metrics.comm_time,
        "idle_time": master_metrics.idle_time,
        "bytes_sent": master_metrics.bytes_sent,
        "bytes_received": master_metrics.bytes_received,
        "messages": master_metrics.messages,
        "max_buffer_bytes": master_metrics.max_buffer_bytes,
        "tuples_ingested": master_metrics.tuples_ingested,
        "epochs": master_metrics.epochs,
        "reorgs": master_metrics.reorgs,
        "moves_ordered": master_metrics.moves_ordered,
        "supplier_counts": master_metrics.supplier_counts,
        "failures": master_metrics.failures,
        "dead_slaves": sorted(acting.dead),
        "partition_owners": dict(sorted(acting.buffer.mapping.items())),
        "replication_bytes": master_metrics.replication_bytes,
    }


def collect_result(
    cfg: SystemConfig, cluster: "Cluster", collect_pairs: bool
) -> RunResult:
    """Assemble a :class:`RunResult` from a finished cluster's metrics
    (shared by the sim and thread backends)."""
    merged = DelayStats()
    for metrics in cluster.slave_metrics:
        merged.merge(metrics.delays)

    acting = cluster.acting_master

    pairs: np.ndarray | None = None
    if collect_pairs:
        replicated = cfg.replication != "off"
        # With replication on, a dead slave's residual chunks are
        # *dropped*: its pre-checkpoint pairs are already banked at the
        # master and the rest re-emerge from the backup's log replay —
        # keeping them would double-count.  (The process backend cannot
        # read a killed slave's memory at all, so this also makes the
        # sim/thread result match it exactly.)
        chunks = list(acting.pair_rows) if replicated else []
        dead = acting.dead if replicated else set()
        for i, m in enumerate(cluster.slave_metrics):
            if slave_node_id(i) in dead:
                continue
            chunks.extend(m.pair_chunks())
        pairs = (
            np.concatenate(chunks)
            if chunks
            else np.empty((0, 2), dtype=np.int64)
        )

    master_metrics = acting.metrics

    trace = cluster.tracer.memory_records()
    series = (
        cluster.sampler.series_dict() if cluster.sampler is not None else None
    )
    node_metrics = (
        {
            node: registry.snapshot()
            for node, registry in sorted(cluster.registries.items())
        }
        if cluster.registries
        else None
    )
    cluster.tracer.close()

    workload = acting.workload
    return RunResult(
        cfg=cfg,
        duration=cfg.run_seconds - cfg.warmup_seconds,
        delays=merged,
        collector_delays=cluster.collector.delays,
        slaves=[m.snapshot() for m in cluster.slave_metrics],
        master=master_snapshot(cluster),
        dod_trace=list(master_metrics.dod_changes),
        delay_timeline=cluster.collector.timeline_rows(),
        tuples_generated=workload.tuples_generated
        if hasattr(workload, "tuples_generated")
        else master_metrics.tuples_ingested,
        pairs=pairs,
        trace=trace,
        series=series,
        node_metrics=node_metrics,
        faults=list(master_metrics.failures),
        injected_faults=(
            cluster.faults.injected_records() if cluster.faults else []
        ),
    )
