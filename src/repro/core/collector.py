"""The collector node.

Join results from the slaves are routed to a collector that merges the
query results for delivery to users (Figure 1).  Here each slave sends
a per-epoch :class:`~repro.core.protocol.ResultReport` carrying a delay
statistics snapshot; the collector runs one receiver process per slave
(they terminate on the slave's Halt) and merges everything into a
global :class:`~repro.core.metrics.DelayStats` — which must equal the
sum of the slaves' local statistics, a property the integration tests
assert.
"""

from __future__ import annotations

import typing as t

from repro.core.metrics import DelayStats, MeasurementWindow
from repro.core.protocol import Halt, ResultReport
from repro.errors import ProtocolError
from repro.faults.markers import NodeDown
from repro.mp.comm import Communicator


class CollectorMetrics:
    """Comm accounting for the collector (duck-typed CommStats)."""

    def __init__(self, gate: MeasurementWindow) -> None:
        self.gate = gate
        self.comm_time = 0.0
        self.idle_time = 0.0
        self.bytes_received = 0
        self.messages = 0

    def record_comm(self, t0: float, t1: float, nbytes: int, sent: bool) -> None:
        span = self.gate.overlap(t0, t1)
        if span > 0.0:
            self.comm_time += span
        if self.gate.active(t1):
            self.messages += 1
            if not sent:
                self.bytes_received += nbytes

    def record_idle(self, t0: float, t1: float) -> None:
        span = self.gate.overlap(t0, t1)
        if span > 0.0:
            self.idle_time += span


class CollectorNode:
    """Merges result statistics streamed by the slaves."""

    def __init__(
        self,
        node_id: int,
        comm: Communicator,
        metrics: CollectorMetrics,
        slave_ids: t.Sequence[int],
    ) -> None:
        self.node_id = node_id
        self.comm = comm
        self.metrics = metrics
        self.slave_ids = sorted(slave_ids)
        self.delays = DelayStats()
        self.reports_received = 0
        self.per_slave_outputs: dict[int, int] = {s: 0 for s in self.slave_ids}
        #: Per-epoch merged statistics: epoch -> DelayStats (the
        #: delay/throughput timeline of the run).
        self.timeline: dict[int, DelayStats] = {}

    def timeline_rows(self) -> list[tuple[int, int, float]]:
        """Sorted ``(epoch, outputs, mean_delay)`` rows."""
        return [
            (epoch, stats.count, stats.mean)
            for epoch, stats in sorted(self.timeline.items())
        ]

    def processes(self) -> list[t.Generator]:
        return [self._receiver(s) for s in self.slave_ids]

    def _receiver(self, slave: int) -> t.Generator:
        while True:
            msg = yield self.comm.recv(slave)
            if isinstance(msg, Halt):
                return
            if isinstance(msg, NodeDown):
                # The slave crashed: its result stream simply ends
                # (reports already merged stay counted).
                return
            if not isinstance(msg, ResultReport):
                raise ProtocolError(
                    f"collector expected ResultReport/Halt from {slave}, "
                    f"got {type(msg).__name__}"
                )
            self.reports_received += 1
            stats: DelayStats = msg.stats
            self.per_slave_outputs[slave] += stats.count
            self.delays.merge(stats)
            if stats.count:
                bucket = self.timeline.setdefault(msg.epoch, DelayStats())
                bucket.merge(stats)
