"""Metrics collection (Section VI-A's evaluation metrics).

The paper reports, per run:

* **average production delay** — for an output tuple joining ``s1`` and
  ``s2`` with ``s1.t > s2.t``, the delay is ``Tclock - s1.t`` at the
  moment the output is produced;
* **communication time** — time a node spends sending/receiving;
* **idle time** — time a node waits for its communication slot;
* **total CPU time** — join processing work;
* **window size within a node** — storage held by a slave.

All recordings are gated on a shared *measurement window*: the paper
starts gathering after a warm-up equal to the window length so windows
are full and the system is in steady state.
"""

from __future__ import annotations

import typing as t

import numpy as np

from repro.obs.metrics import NULL_REGISTRY, MetricsRegistry
from repro.obs.sampler import Reservoir

#: Log-spaced delay histogram edges, seconds (1 ms .. ~17 min).
DELAY_BIN_EDGES: np.ndarray = np.logspace(-3, 3, 61)

#: Bound on the per-slave occupancy sample reservoir.  Occupancy is
#: sampled once per distribution epoch for the whole run (not gated),
#: so without a bound a long run grows this without limit.
OCCUPANCY_RESERVOIR_CAPACITY = 512


class MeasurementWindow:
    """Shared gate: records count only inside ``[start, stop]``."""

    __slots__ = ("start", "stop")

    def __init__(self, start: float, stop: float = float("inf")) -> None:
        self.start = float(start)
        self.stop = float(stop)

    def active(self, now: float) -> bool:
        return self.start <= now <= self.stop

    def overlap(self, t0: float, t1: float) -> float:
        """Length of ``[t0, t1]`` inside the measurement window."""
        return max(0.0, min(t1, self.stop) - max(t0, self.start))


class DelayStats:
    """Streaming statistics over production delays."""

    __slots__ = ("count", "total", "minimum", "maximum", "histogram")

    def __init__(self) -> None:
        self.count = 0
        self.total = 0.0
        self.minimum = float("inf")
        self.maximum = 0.0
        self.histogram = np.zeros(len(DELAY_BIN_EDGES) + 1, dtype=np.int64)

    def record(self, delays: np.ndarray) -> None:
        n = len(delays)
        if n == 0:
            return
        self.count += n
        self.total += float(delays.sum())
        self.minimum = min(self.minimum, float(delays.min()))
        self.maximum = max(self.maximum, float(delays.max()))
        self.histogram += np.bincount(
            np.searchsorted(DELAY_BIN_EDGES, delays), minlength=len(self.histogram)
        )[: len(self.histogram)]

    def merge(self, other: "DelayStats") -> None:
        self.count += other.count
        self.total += other.total
        self.minimum = min(self.minimum, other.minimum)
        self.maximum = max(self.maximum, other.maximum)
        self.histogram += other.histogram

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def percentile(self, q: float) -> float:
        """Approximate percentile from the log-spaced histogram.

        Interpolates linearly within the bin the *q*-th sample falls
        into; ``q >= 100`` returns the exact observed maximum.  The
        result is clamped to the observed ``[minimum, maximum]`` so the
        histogram's fixed edges never widen the reported range.
        """
        if self.count == 0:
            return 0.0
        if q >= 100.0:
            return self.maximum
        target = max(q, 0.0) / 100.0 * self.count
        cum = np.cumsum(self.histogram)
        idx = int(np.searchsorted(cum, target, side="left"))
        idx = min(idx, len(self.histogram) - 1)
        below = float(cum[idx - 1]) if idx > 0 else 0.0
        in_bin = float(cum[idx]) - below
        frac = (target - below) / in_bin if in_bin > 0 else 0.0
        lo = float(DELAY_BIN_EDGES[idx - 1]) if idx > 0 else 0.0
        hi = (
            float(DELAY_BIN_EDGES[idx])
            if idx < len(DELAY_BIN_EDGES)
            else self.maximum
        )
        value = lo + frac * (hi - lo)
        return float(min(max(value, self.minimum), self.maximum))

    def snapshot(self) -> dict[str, float]:
        return {
            "count": float(self.count),
            "mean": self.mean,
            "min": self.minimum if self.count else 0.0,
            "max": self.maximum,
            "p50": self.percentile(50),
            "p99": self.percentile(99),
        }


class SlaveMetrics:
    """Per-slave counters, gated on the measurement window.

    *registry* is the node's typed instrument registry
    (:data:`~repro.obs.metrics.NULL_REGISTRY` when observability is
    off): the ``m_*`` instruments mirror the headline counters for the
    admin endpoint's ``/metrics`` and
    :attr:`~repro.core.system.RunResult.node_metrics`, updated behind
    ``registry.enabled`` (rule OBS002) so disabled runs pay only the
    branch.
    """

    def __init__(
        self,
        node_id: int,
        gate: MeasurementWindow,
        registry: MetricsRegistry = NULL_REGISTRY,
    ) -> None:
        self.node_id = node_id
        self.gate = gate
        self.registry = registry
        self.m_outputs = registry.counter(
            "outputs", "joined output tuples emitted (gated)"
        )
        self.m_delay = registry.histogram(
            "production_delay_seconds", "production delay of emitted outputs"
        )
        self.m_messages = registry.counter(
            "messages", "transport messages sent or received (gated)"
        )
        self.m_bytes_sent = registry.counter(
            "bytes_sent", "modeled payload bytes sent (gated)"
        )
        self.m_bytes_received = registry.counter(
            "bytes_received", "modeled payload bytes received (gated)"
        )
        self.m_window_bytes = registry.gauge(
            "window_bytes", "window state held by this slave"
        )
        self.m_occupancy = registry.gauge(
            "occupancy", "stream-tuple buffer occupancy [0, 1]"
        )
        self.delays = DelayStats()
        #: Outputs not yet reported to the collector (same gating as
        #: ``delays`` so collector totals match local totals exactly).
        self.unreported = DelayStats()
        # CPU accounting (seconds of modeled work inside the gate).
        self.cpu_probe = 0.0
        self.cpu_expire = 0.0
        self.cpu_tuning = 0.0
        self.cpu_state_move = 0.0
        # Communication accounting (filled by the transport layer).
        self.comm_time = 0.0
        self.idle_time = 0.0
        self.bytes_received = 0
        self.bytes_sent = 0
        self.messages = 0
        # Window / buffer accounting.
        self.max_window_bytes = 0
        self.occupancy_samples = Reservoir(OCCUPANCY_RESERVOIR_CAPACITY)
        self.tuples_processed = 0
        self.outputs_emitted = 0
        self.splits = 0
        self.merges = 0
        self.disk_bytes_read = 0
        self.groups_moved_in = 0
        self.groups_moved_out = 0
        self.state_bytes_moved = 0
        #: (probe_seq_or_s1, window_seq_or_s2) pairs, test mode only,
        #: keyed by owning partition so replication can flush a pid's
        #: output upstream when its state leaves this slave.
        self.pairs: dict[int, list[np.ndarray]] = {}
        self.active_time = 0.0

    # -- recording -----------------------------------------------------------
    @property
    def cpu_total(self) -> float:
        return (
            self.cpu_probe + self.cpu_expire + self.cpu_tuning + self.cpu_state_move
        )

    def charge_cpu(self, kind: str, t0: float, t1: float) -> None:
        span = self.gate.overlap(t0, t1)
        if span <= 0.0:
            return
        if kind == "probe":
            self.cpu_probe += span
        elif kind == "expire":
            self.cpu_expire += span
        elif kind == "tune":
            self.cpu_tuning += span
        elif kind == "state_move":
            self.cpu_state_move += span
        else:  # pragma: no cover - defensive
            raise ValueError(f"unknown cpu kind {kind!r}")

    def record_outputs(self, emit_time: float, newer_ts: np.ndarray) -> None:
        if len(newer_ts) == 0 or not self.gate.active(emit_time):
            return
        self.outputs_emitted += len(newer_ts)
        delays = emit_time - newer_ts
        self.delays.record(delays)
        self.unreported.record(delays)
        if self.registry.enabled:
            self.m_outputs.inc(len(newer_ts))
            self.m_delay.observe_many(delays.tolist())

    def pop_unreported(self) -> DelayStats:
        """Drain the outputs accumulated since the last collector report."""
        stats, self.unreported = self.unreported, DelayStats()
        return stats

    def record_pairs(self, pid: int, rows: np.ndarray) -> None:
        """File collected join pairs under their partition."""
        self.pairs.setdefault(pid, []).append(rows)

    def pair_chunks(self) -> list[np.ndarray]:
        """All collected pair chunks, in deterministic (pid) order."""
        return [c for pid in sorted(self.pairs) for c in self.pairs[pid]]

    def pop_pairs(self, pid: int) -> np.ndarray | None:
        """Drain partition *pid*'s collected pairs (``None`` if none).

        Called when the pid's state leaves this slave — checkpoint or
        move — so the output travels with the state and survives a
        later crash of this node.
        """
        chunks = self.pairs.pop(pid, None)
        if not chunks:
            return None
        return np.concatenate(chunks)

    def record_comm(self, t0: float, t1: float, nbytes: int, sent: bool) -> None:
        span = self.gate.overlap(t0, t1)
        if span > 0.0:
            self.comm_time += span
        if self.gate.active(t1):
            self.messages += 1
            if sent:
                self.bytes_sent += nbytes
            else:
                self.bytes_received += nbytes
            if self.registry.enabled:
                self.m_messages.inc()
                if sent:
                    self.m_bytes_sent.inc(nbytes)
                else:
                    self.m_bytes_received.inc(nbytes)

    def record_idle(self, t0: float, t1: float) -> None:
        span = self.gate.overlap(t0, t1)
        if span > 0.0:
            self.idle_time += span

    def sample_window(self, now: float, window_bytes: int) -> None:
        if self.gate.active(now):
            self.max_window_bytes = max(self.max_window_bytes, window_bytes)
        if self.registry.enabled:
            self.m_window_bytes.set(float(window_bytes))

    def sample_occupancy(self, now: float, occupancy: float) -> None:
        # Occupancy drives the load balancer at all times; samples are
        # kept unconditionally (no gate), but in a bounded decimating
        # reservoir so arbitrarily long runs stay O(1) in memory.
        self.occupancy_samples.add(now, occupancy)
        if self.registry.enabled:
            self.m_occupancy.set(occupancy)

    def snapshot(self) -> dict[str, t.Any]:
        return {
            "node": self.node_id,
            "cpu_total": self.cpu_total,
            "cpu_probe": self.cpu_probe,
            "cpu_expire": self.cpu_expire,
            "cpu_tuning": self.cpu_tuning,
            "cpu_state_move": self.cpu_state_move,
            "comm_time": self.comm_time,
            "idle_time": self.idle_time,
            "bytes_received": self.bytes_received,
            "bytes_sent": self.bytes_sent,
            "messages": self.messages,
            "max_window_bytes": self.max_window_bytes,
            "outputs": self.outputs_emitted,
            "tuples_processed": self.tuples_processed,
            "splits": self.splits,
            "merges": self.merges,
            "disk_bytes_read": self.disk_bytes_read,
            "delay": self.delays.snapshot(),
        }


class MasterMetrics:
    """Master-side counters."""

    def __init__(
        self,
        gate: MeasurementWindow,
        registry: MetricsRegistry = NULL_REGISTRY,
    ) -> None:
        self.gate = gate
        self.registry = registry
        self.m_epochs = registry.counter(
            "epochs", "distribution/reorganization epochs completed"
        )
        self.m_reorgs = registry.counter("reorgs", "reorganization rounds run")
        self.m_tuples_ingested = registry.counter(
            "tuples_ingested", "stream tuples ingested by the master"
        )
        self.m_replication_bytes = registry.counter(
            "replication_bytes", "payload bytes shipped for state replication"
        )
        self.m_buffer_bytes = registry.gauge(
            "buffer_bytes", "master partition-buffer backlog"
        )
        self.m_dead_slaves = registry.gauge(
            "dead_slaves", "slaves currently fenced as failed"
        )
        self.comm_time = 0.0
        self.idle_time = 0.0
        self.bytes_sent = 0
        self.bytes_received = 0
        self.messages = 0
        self.max_buffer_bytes = 0
        self.tuples_ingested = 0
        self.epochs = 0
        self.reorgs = 0
        self.moves_ordered = 0
        self.dod_changes: list[tuple[float, int]] = []
        self.supplier_counts: list[tuple[float, int, int, int]] = []
        #: One record per detected slave failure (fault plane): slave,
        #: epoch, detected_at, where, pids, window_bytes_lost, plus
        #: recovered_at / recovery_latency once recovery completes.
        self.failures: list[dict[str, t.Any]] = []
        #: Payload bytes shipped for state replication (tee + forwarded
        #: checkpoints).  Ungated: the fault benchmarks report total
        #: overhead, not just the steady-state share.
        self.replication_bytes = 0

    def record_comm(self, t0: float, t1: float, nbytes: int, sent: bool) -> None:
        span = self.gate.overlap(t0, t1)
        if span > 0.0:
            self.comm_time += span
        if self.gate.active(t1):
            self.messages += 1
            if sent:
                self.bytes_sent += nbytes
            else:
                self.bytes_received += nbytes

    def record_idle(self, t0: float, t1: float) -> None:
        span = self.gate.overlap(t0, t1)
        if span > 0.0:
            self.idle_time += span

    def sample_buffer(self, now: float, nbytes: int) -> None:
        if self.gate.active(now):
            self.max_buffer_bytes = max(self.max_buffer_bytes, nbytes)
        if self.registry.enabled:
            self.m_buffer_bytes.set(float(nbytes))
