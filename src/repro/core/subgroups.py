"""Sub-group communication (Section V-B).

The active slaves are divided into ``ng`` groups; the distribution
epoch is divided into ``ng`` slots, and a group's slaves exchange with
the master only inside their slot.  This both shortens the worst-case
wait of a slave for its tuples and bounds the master's buffer at::

    M_buf = (r * t_d / 2) * (1 + 1 / ng)

per stream (the paper's equation), versus ``r * t_d`` with a single
group.
"""

from __future__ import annotations

import typing as t


class SlotSchedule(t.NamedTuple):
    """One slave's communication slot within the distribution epoch."""

    group_index: int
    n_groups: int
    dist_epoch: float

    @property
    def slot_offset(self) -> float:
        """Offset of this slave's slot from the epoch boundary."""
        return self.group_index * (self.dist_epoch / self.n_groups)


def effective_groups(n_active: int, n_subgroups: int) -> int:
    return max(1, min(n_subgroups, n_active))


def group_of(position: int, n_active: int, n_groups: int) -> int:
    """Contiguous chunking: slave at *position* (in sorted active order)
    belongs to this group."""
    if not 0 <= position < n_active:
        raise ValueError(f"position {position} out of range for {n_active} actives")
    return position * n_groups // n_active


def build_schedules(
    active_sorted: t.Sequence[int], n_subgroups: int, dist_epoch: float
) -> dict[int, SlotSchedule]:
    """Slot schedule for every active slave (keyed by node id)."""
    ng = effective_groups(len(active_sorted), n_subgroups)
    return {
        node: SlotSchedule(group_of(i, len(active_sorted), ng), ng, dist_epoch)
        for i, node in enumerate(active_sorted)
    }


def groups_in_order(
    active_sorted: t.Sequence[int], n_subgroups: int
) -> list[list[int]]:
    """Active slaves partitioned into their groups, in slot order."""
    ng = effective_groups(len(active_sorted), n_subgroups)
    groups: list[list[int]] = [[] for _ in range(ng)]
    for i, node in enumerate(active_sorted):
        groups[group_of(i, len(active_sorted), ng)].append(node)
    return groups


def max_master_buffer_bytes(
    rate: float, dist_epoch: float, n_groups: int, tuple_bytes: int,
    n_streams: int = 2,
) -> float:
    """The paper's analytic bound on the master's buffer (all streams)."""
    per_stream = rate * dist_epoch / 2.0 * (1.0 + 1.0 / n_groups)
    return per_stream * tuple_bytes * n_streams
