"""N-way composite probing (the paper's general join model).

Section II defines the operator over *n* streams: the output of
``S1[W1] ⋈ ... ⋈ Sn[Wn]`` on attribute ``A`` consists of all composite
tuples ``(s1, ..., sn)`` with equal keys such that, at the arrival time
of the composite's newest member, every other member is inside its own
stream's window.  Formally, with ``t* = max_k sk.t``::

    valid  ⇔  all k: t* - sk.t <= Wk

(the two-stream case degenerates to ``|t1 - t2| <= W`` for equal
windows — the predicate used by the pairwise kernel).

The evaluation prototype (and this package's cluster) runs the binary
join; this module supplies the general composite prober used when
``SystemConfig.n_streams > 2``, plus the brute-force oracle the tests
compare against.  Deduplication follows the same head-block rule as the
binary join: a composite is emitted by the *last* of its members to
flush, probing only committed tuples of the other streams.
"""

from __future__ import annotations

import itertools
import typing as t

import numpy as np

from repro.data.tuples import TupleBatch

#: Safety cap on enumerated combinations per probe tuple.  Composite
#: cardinality is a product over streams; a hot key in many streams
#: explodes it, and silently enumerating billions would hang the run.
MAX_COMBOS_PER_TUPLE = 200_000


class CompositeResult(t.NamedTuple):
    """Outcome of probing fresh tuples for n-way composites."""

    n_composites: int
    #: Per composite: the newest member's timestamp.
    newest_ts: np.ndarray
    #: Per composite: member seqs ordered by stream id; None unless
    #: collected (testing).
    members: np.ndarray | None


_EMPTY = np.empty(0, dtype=np.float64)


def _candidate_ranges(
    sorted_key: np.ndarray, probe_key: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    lo = np.searchsorted(sorted_key, probe_key, side="left")
    hi = np.searchsorted(sorted_key, probe_key, side="right")
    return lo, hi


def probe_composites(
    probe_stream: int,
    probe_ts: np.ndarray,
    probe_key: np.ndarray,
    probe_seq: np.ndarray,
    others: t.Sequence[tuple[int, np.ndarray, np.ndarray, np.ndarray | None]],
    windows_by_stream: t.Mapping[int, float],
    collect_members: bool = False,
) -> CompositeResult:
    """Find all composites completed by the *probe* tuples.

    ``others`` lists, per other stream: ``(stream_id, sorted_key,
    ts_sorted, seq_sorted)`` — the committed window contents of that
    stream sorted by key.  ``windows_by_stream[k]`` is ``Wk``.
    """
    if len(probe_ts) == 0 or any(len(o[1]) == 0 for o in others):
        return CompositeResult(
            0, _EMPTY, np.empty((0, 1 + len(others)), np.int64)
            if collect_members else None,
        )

    ranges = [
        _candidate_ranges(sorted_key, probe_key)
        for (_sid, sorted_key, _ts, _seq) in others
    ]

    total = 0
    newest_parts: list[np.ndarray] = []
    member_rows: list[np.ndarray] = []
    n_members = 1 + len(others)

    for i in range(len(probe_ts)):
        counts = [int(hi[i] - lo[i]) for lo, hi in ranges]
        combos = 1
        for c in counts:
            combos *= c
        if combos == 0:
            continue
        if combos > MAX_COMBOS_PER_TUPLE:
            raise OverflowError(
                f"composite explosion: {combos} candidate combinations "
                f"for one probe tuple (cap {MAX_COMBOS_PER_TUPLE}); "
                "reduce key skew or window sizes"
            )
        # Per-stream candidate slices for this probe tuple.
        cand_ts = [
            o[2][lo[i] : hi[i]] for o, (lo, hi) in zip(others, ranges)
        ]
        # Cartesian product of timestamps via broadcasting.
        grids = np.meshgrid(*cand_ts, indexing="ij") if cand_ts else []
        stack = np.stack([g.ravel() for g in grids], axis=0)
        t_star = np.maximum(stack.max(axis=0), probe_ts[i])
        valid = t_star - probe_ts[i] <= windows_by_stream[probe_stream]
        for row, (sid, _k, _t, _s) in zip(stack, others):
            valid &= t_star - row <= windows_by_stream[sid]
        n_valid = int(np.count_nonzero(valid))
        if n_valid == 0:
            continue
        total += n_valid
        newest_parts.append(t_star[valid])
        if collect_members:
            seq_grids = np.meshgrid(
                *[o[3][lo[i] : hi[i]] for o, (lo, hi) in zip(others, ranges)],
                indexing="ij",
            )
            seq_stack = np.stack([g.ravel() for g in seq_grids], axis=0)
            rows = np.empty((n_valid, n_members), dtype=np.int64)
            # Order members by stream id: probe stream slot + others.
            order = sorted(
                [(probe_stream, None)] + [(o[0], j) for j, o in enumerate(others)]
            )
            for col, (sid, j) in enumerate(order):
                if j is None:
                    rows[:, col] = probe_seq[i]
                else:
                    rows[:, col] = seq_stack[j][valid]
            member_rows.append(rows)

    newest = (
        np.concatenate(newest_parts) if newest_parts else _EMPTY
    )
    members = None
    if collect_members:
        members = (
            np.concatenate(member_rows)
            if member_rows
            else np.empty((0, n_members), dtype=np.int64)
        )
    return CompositeResult(total, newest, members)


def naive_multiway_join(
    batch: TupleBatch, windows: t.Sequence[float]
) -> np.ndarray:
    """Brute-force n-way windowed equi-join oracle.

    Enumerates candidate combinations *within each join key* (a full
    cross-product over all tuples would be infeasible even at test
    sizes) and applies the newest-member window predicate to each.
    Returns an array of member-seq rows (one column per stream, ordered
    by stream id), sorted lexicographically.
    """
    n = len(windows)
    streams = [batch.by_stream(sid) for sid in range(n)]
    if any(len(s) == 0 for s in streams):
        return np.empty((0, n), dtype=np.int64)

    by_key: list[dict[int, list[int]]] = []
    for s in streams:
        groups: dict[int, list[int]] = {}
        for i, key in enumerate(s.key.tolist()):
            groups.setdefault(key, []).append(i)
        by_key.append(groups)

    shared = set(by_key[0])
    for groups in by_key[1:]:
        shared &= set(groups)

    rows = []
    for key in shared:
        candidate_lists = [groups[key] for groups in by_key]
        for combo in itertools.product(*candidate_lists):
            ts = [float(streams[k].ts[combo[k]]) for k in range(n)]
            t_star = max(ts)
            if all(t_star - ts[k] <= windows[k] for k in range(n)):
                rows.append(
                    [int(streams[k].seq[combo[k]]) for k in range(n)]
                )
    if not rows:
        return np.empty((0, n), dtype=np.int64)
    out = np.array(rows, dtype=np.int64)
    return out[np.lexsort(tuple(out[:, c] for c in reversed(range(n))))]
