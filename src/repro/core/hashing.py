"""Hash functions for partitioning and fine tuning.

Two independent hashes are derived from the join-attribute value:

* ``H(k) % npart`` — the partition hash that routes a tuple to one of
  the ``npart`` stream partitions (the master's level of indirection);
* ``g(k)`` — the directory hash whose least-significant bits index the
  extendible-hash directory inside a partition-group (Section IV-D).

Both are built from the splitmix64 finalizer (a well-mixed bijection on
64-bit words), vectorized over numpy int64 arrays.  Independence between
``H`` and ``g`` matters: fine tuning must be able to split the tuples of
a single partition, so ``g`` cannot be a function of ``H(k) % npart``
alone.
"""

from __future__ import annotations

import numpy as np

_U64 = np.uint64
_PARTITION_SALT = _U64(0x9E3779B97F4A7C15)
_DIRECTORY_SALT = _U64(0xD1B54A32D192ED03)


def _splitmix64(x: np.ndarray) -> np.ndarray:
    """The splitmix64 finalizer, elementwise on uint64."""
    x = (x + _U64(0x9E3779B97F4A7C15)).astype(_U64)
    x = (x ^ (x >> _U64(30))) * _U64(0xBF58476D1CE4E5B9)
    x = (x ^ (x >> _U64(27))) * _U64(0x94D049BB133111EB)
    return x ^ (x >> _U64(31))


def partition_of(keys: np.ndarray, npart: int) -> np.ndarray:
    """Partition id in ``[0, npart)`` for each key (vectorized)."""
    with np.errstate(over="ignore"):
        h = _splitmix64(keys.astype(np.int64).view(_U64) ^ _PARTITION_SALT)
    return (h % _U64(npart)).astype(np.int64)


def directory_hash(keys: np.ndarray) -> np.ndarray:
    """The extendible-hashing hash ``g(k)`` (uint64, full width)."""
    with np.errstate(over="ignore"):
        return _splitmix64(keys.astype(np.int64).view(_U64) ^ _DIRECTORY_SALT)


def directory_index(gvals: np.ndarray, global_depth: int) -> np.ndarray:
    """Directory slot for each ``g`` value: its ``global_depth`` LSBs."""
    if global_depth == 0:
        return np.zeros(len(gvals), dtype=np.int64)
    mask = _U64((1 << global_depth) - 1)
    return (gvals & mask).astype(np.int64)
