"""The vectorized equi-join probe kernel.

A *probe* joins a small batch of fresh tuples against the committed
contents of the opposite stream's window inside one mini-partition-group
(the paper's block nested-loop join).  We compute the *exact* match set
— equal key AND timestamps within the sliding window — via a sorted-key
index of the committed side, so production-delay metrics come from real
output tuples while the simulated CPU time charged for the probe follows
the block-NLJ cost model (:mod:`repro.core.costmodel`).

The window predicate is symmetric: tuples ``a`` and ``b`` join iff
``a.key == b.key`` and ``|a.ts - b.ts| <= W`` — i.e. each tuple was in
the other's window when the later of the two arrived (Section II).
"""

from __future__ import annotations

import typing as t

import numpy as np


class ProbeResult(t.NamedTuple):
    """Outcome of probing fresh tuples against a committed window."""

    #: Number of output (joined) tuples produced.
    n_pairs: int
    #: For each output pair, the timestamp of the *newer* joining tuple
    #: (production delay is ``emit_time - newer_ts``).
    newer_ts: np.ndarray
    #: Identity of the pairs as ``(probe_seq, window_seq)``; filled only
    #: when ``collect_pairs=True`` (testing against the oracle).
    pairs: np.ndarray | None


_EMPTY_TS = np.empty(0, dtype=np.float64)
_EMPTY_PAIRS = np.empty((0, 2), dtype=np.int64)


def probe_sorted(
    probe_ts: np.ndarray,
    probe_key: np.ndarray,
    probe_seq: np.ndarray,
    sorted_key: np.ndarray,
    sorted_ts: np.ndarray,
    sorted_seq: np.ndarray | None,
    window: float,
    collect_pairs: bool = False,
) -> ProbeResult:
    """Join *probe* tuples against a committed window sorted by key.

    ``sorted_key``/``sorted_ts`` (and ``sorted_seq`` when pairs are
    collected) are the committed window contents ordered by key.
    """
    if len(probe_key) == 0 or len(sorted_key) == 0:
        return ProbeResult(0, _EMPTY_TS, _EMPTY_PAIRS if collect_pairs else None)

    lo = np.searchsorted(sorted_key, probe_key, side="left")
    hi = np.searchsorted(sorted_key, probe_key, side="right")
    counts = hi - lo
    total = int(counts.sum())
    if total == 0:
        return ProbeResult(0, _EMPTY_TS, _EMPTY_PAIRS if collect_pairs else None)

    # Expand candidate ranges: candidate j of probe i sits at
    # sorted position lo[i] + j.
    owner = np.repeat(np.arange(len(probe_key)), counts)
    first_slot = np.cumsum(counts) - counts
    offsets = np.arange(total) - np.repeat(first_slot, counts)
    positions = np.repeat(lo, counts) + offsets

    cand_ts = sorted_ts[positions]
    own_ts = probe_ts[owner]
    valid = np.abs(cand_ts - own_ts) <= window
    n_pairs = int(np.count_nonzero(valid))
    if n_pairs == 0:
        return ProbeResult(0, _EMPTY_TS, _EMPTY_PAIRS if collect_pairs else None)

    newer = np.maximum(cand_ts[valid], own_ts[valid])
    pairs: np.ndarray | None = None
    if collect_pairs:
        if sorted_seq is None:
            raise ValueError("collect_pairs=True requires sorted_seq")
        pairs = np.column_stack(
            (probe_seq[owner[valid]], sorted_seq[positions[valid]])
        ).astype(np.int64)
    return ProbeResult(n_pairs, newer, pairs)
