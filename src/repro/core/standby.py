"""The standby coordinator (master failover).

A standby node mirrors the master's *durable* coordinator state and
assumes the master role when the master dies, so a run survives a
master crash without losing a single tuple or joined pair.

The mirroring protocol (see DESIGN.md §8):

* The master ends every round ``k`` it survives with a
  :class:`~repro.core.protocol.StandbySync` — the round's op log
  (ingestions, drains, remaps), plus authoritative snapshots of the
  small coordinator structures (active set, dead set, backup placement,
  pending replication, failure records, banked pair chunks).  The
  standby *replays* the op log against its own shadow
  :class:`~repro.core.buffer.MasterBuffer` and workload replica, so the
  heavy state (buffered tuples) is reconstructed rather than shipped.
* Before a reorganization or recovery round has any slave-visible side
  effect, the master sends the full plan as a
  :class:`~repro.core.protocol.StandbyPlan`.  The plan send
  happens-before every order, so "standby has no plan for round k"
  proves "no slave acted on a plan in round k".

Receipt of sync ``k`` therefore proves all of round ``k`` executed, and
a master death is always pinned to exactly one *fatal round*
``synced + 1``.  The takeover re-fences that round: every live slave
gets a :class:`~repro.core.protocol.TakeOver` and answers with a
:class:`~repro.core.protocol.Rejoin` stating exactly what it owns, the
last shipment/order it saw, and any pair chunks the dead master may not
have banked.  The standby replays the fatal round against its shadow
buffer (generation is quantized to slot times, so the replay is
bit-identical to what the dead master computed), reconciles the
partition mapping against the slaves' claims, and resumes the schedule
at round ``fatal + 1`` as the acting master.

Deviation from a real deployment: the shadow replay is not charged any
modeled CPU — the standby is assumed to keep up with the sync stream.
"""

from __future__ import annotations

import json
import typing as t

from repro.config import SystemConfig
from repro.core.master import MasterNode, _PendingReplication
from repro.core.protocol import (
    Halt,
    Rejoin,
    StandbyPlan,
    StandbySync,
    TakeOver,
)
from repro.core.subgroups import build_schedules, groups_in_order
from repro.errors import ProtocolError
from repro.faults.markers import peer_silent
from repro.mp.comm import Communicator
from repro.obs.events import ElectionEvent, TakeoverEvent
from repro.obs.tracer import NULL_TRACER, Tracer


class StandbyNode:
    """Hot-standby coordinator: mirror, detect, take over.

    *master* is a dormant :class:`MasterNode` built over this node's
    own communicator and a shadow buffer/workload/controller — it holds
    the mirrored state while the real master lives, and literally
    becomes the acting master (``run_from``) after a takeover.
    """

    def __init__(
        self,
        node_id: int,
        cfg: SystemConfig,
        runtime: t.Any,
        comm: Communicator,
        master: MasterNode,
        master_id: int,
        tracer: Tracer = NULL_TRACER,
    ) -> None:
        self.node_id = node_id
        self.cfg = cfg
        self.rt = runtime
        self.comm = comm
        self.master = master
        self.master_id = master_id
        self.tracer = tracer
        #: Last round whose StandbySync arrived (-1: none yet — the
        #: shadow master still holds the construction-time state, which
        #: is identical to the real master's).
        self.synced_epoch = -1
        #: Plans received for rounds not yet synced, keyed by epoch.
        self.plans: dict[int, StandbyPlan] = {}
        self.took_over = False
        # Detection: NodeDown is the primary signal (immediate on the
        # sim transport, EOF-driven on the distributed ones); the timer
        # is a generous fallback so a wedged master cannot strand the
        # run.  Spurious expiry would split-brain, hence the margin.
        self._margin: float | None = (
            2.0 * cfg.dist_epoch + cfg.faults.effective_timeout(cfg.dist_epoch)
            if cfg.faults.enabled
            else None
        )

    def _detect_deadline(self) -> float | None:
        """Timeout for the next mirror message, anchored to the sync
        cadence rather than to when this recv was posted: sync ``k+1``
        is due around ``(k + 2) * dist_epoch``.  Wall-clock children
        spawn *before* modeled t=0 (the start barrier's grace period),
        so a fixed relative timeout would expire before the master's
        first sync was ever due."""
        if self._margin is None:
            return None
        due = (self.synced_epoch + 2) * self.cfg.dist_epoch
        return max(self._margin, due + self._margin - self.rt.now())

    # ------------------------------------------------------------------
    def run(self) -> t.Generator:
        """Mirror the master until it halts — or dies, then take over."""
        while True:
            msg = yield from self.comm.recv_expect(
                self.master_id,
                StandbySync,
                StandbyPlan,
                Halt,
                timeout=self._detect_deadline(),
            )
            if peer_silent(msg):
                yield from self._take_over()
                return
            if isinstance(msg, Halt):
                return
            if isinstance(msg, StandbyPlan):
                self.plans[msg.epoch] = msg
                continue
            self._apply_sync(msg)

    # -- mirroring ------------------------------------------------------
    def _apply_sync(self, sync: StandbySync) -> None:
        """Fold one completed round into the shadow master."""
        m = self.master
        for kind, a, b in sync.ops:
            if kind == "gen":
                if abs(a - m._next_gen_time) > 1e-9:
                    raise ProtocolError(
                        f"standby replay diverged: sync {sync.epoch} "
                        f"generates from {a}, shadow is at "
                        f"{m._next_gen_time}"
                    )
                batch = m.workload.generate(a, b)
                m.buffer.ingest(batch)
                m.metrics.tuples_ingested += len(batch)
                m._next_gen_time = b
            elif kind == "drain":
                # Content discarded: the drained tuples were delivered
                # to the slave; only the buffer-emptying effect (and
                # the last-drain stamp) must be replayed.
                m.buffer.drain_for(int(a), b)
            else:  # remap
                m.buffer.remap(int(a), int(b))
        if abs(m._next_gen_time - sync.next_gen_time) > 1e-9:
            raise ProtocolError(
                f"standby replay diverged after sync {sync.epoch}: "
                f"generation clock {m._next_gen_time} != synced "
                f"{sync.next_gen_time}"
            )
        # The small coordinator structures travel whole — authoritative
        # snapshots, not deltas, so one lost field can never compound.
        m.active = list(sync.active)
        m.dead = set(sync.dead)
        m.inactive = sorted(set(m.all_slaves) - set(m.active) - m.dead)
        m.schedules = build_schedules(
            m.active, self.cfg.num_subgroups, self.cfg.dist_epoch
        )
        m._backup_of = dict(sync.backup_of)
        m._covered = set(sync.covered)
        m._pending = {}
        for backup, rep in sync.pending:
            pending = _PendingReplication()
            pending.entries = list(rep.entries)
            pending.drops = set(rep.drops)
            pending.checkpoints = {cp.pid: cp for cp in rep.checkpoints}
            m._pending[backup] = pending
        m.metrics.failures[:] = json.loads(sync.failures_json)
        for slave, pid, epoch, rows in sync.pairs:
            m._pair_store.setdefault((slave, pid, epoch), rows)
        self.synced_epoch = sync.epoch
        for epoch in [e for e in self.plans if e <= sync.epoch]:
            del self.plans[epoch]

    # -- takeover -------------------------------------------------------
    def _take_over(self) -> t.Generator:
        """Become the acting master: re-fence, replay, resume."""
        rt, cfg, m = self.rt, self.cfg, self.master
        k_fatal = self.synced_epoch + 1
        k_next = k_fatal + 1
        plan = self.plans.get(k_fatal)
        detect_t = rt.now()
        if self.tracer.enabled:
            self.tracer.emit(
                ElectionEvent(
                    t=detect_t,
                    node=self.node_id,
                    fatal_epoch=k_fatal,
                    synced_epoch=self.synced_epoch,
                    plan_epoch=k_fatal if plan is not None else -1,
                )
            )

        # Re-fence: every live slave switches to this node as master.
        # Planned deactivations of the fatal round are *cancelled* (a
        # slave whose outbound moves never executed still owns state;
        # keeping everyone active is always safe — the next reorg can
        # shrink the degree of declustering again).  Slaves that were
        # already inactive before the fatal round stay inactive.
        active_order = list(m.active)
        synced_active = set(active_order)
        if plan is not None:
            active_after = sorted(
                (synced_active | set(plan.new_active)) - m.dead
            )
        else:
            active_after = sorted(synced_active - m.dead)
        schedules = build_schedules(
            active_after, cfg.num_subgroups, cfg.dist_epoch
        )
        moves = plan.moves if plan is not None else ()
        # Move consumers first: a supplier blocked in a rendezvous
        # StateTransfer send can only proceed once its consumer has
        # absorbed (or abandoned) the transfer.
        consumers = sorted({mv.dst for mv in moves})
        live = [s for s in m.all_slaves if s not in m.dead]
        targets = consumers + [s for s in live if s not in consumers]
        for s in targets:
            yield self.comm.send(
                s,
                TakeOver(
                    k_next,
                    clock=rt.now(),
                    schedule=schedules.get(s),
                    active=s in active_after,
                    plan_epoch=k_fatal if plan is not None else -1,
                    pending_in=tuple(mv for mv in moves if mv.dst == s),
                ),
            )
        rejoined: dict[int, Rejoin] = {}
        for s in targets:
            msg = yield from self.comm.recv_expect(
                s, Rejoin, timeout=m._detect_timeout
            )
            if peer_silent(msg):
                yield from m._on_slave_silent(s, k_fatal, "rejoin")
                continue
            rejoined[s] = msg
            for pid, epoch, rows in msg.pairs:
                # Same tag space as the sync's chunks: a chunk the dead
                # master banked *and* replicated deduplicates here.
                m._pair_store.setdefault((s, pid, epoch), rows)

        # Replay the fatal round against the shadow buffer.  The dead
        # master's ingestion boundaries are a pure function of the
        # round structure (generation is quantized to slot times), so
        # the shadow reproduces its buffer bit for bit; drains are
        # replayed exactly for the slaves whose Rejoin proves they
        # received the fatal shipment.
        pre_plan_owner = dict(m.buffer.mapping)
        if plan is not None:
            for pid, dst in plan.remaps:
                m.buffer.remap(pid, dst)
                m._covered.discard(pid)
            for mv in moves:
                m.buffer.remap(mv.pid, mv.dst)
                m._covered.discard(mv.pid)
            if m.replication:
                m._refresh_backups(
                    dict(m.buffer.mapping),
                    set(plan.new_active),
                    restoring=plan.restores,
                )

        def replay_drain(s: int, when: float) -> None:
            rj = rejoined.get(s)
            if rj is None or rj.last_shipment_epoch != k_fatal:
                return  # never shipped: the tuples stay buffered
            _batch, _start, parts = m.buffer.drain_for(s, when)
            if m.replication:
                m._tee_parts(k_fatal, parts)

        t_dist = (k_fatal + 1) * cfg.dist_epoch
        if m._is_reorg_epoch(k_fatal):
            # The reorg round generates once, up front; every shipped
            # slave drains after the remaps.  Partitions are disjoint
            # across slaves, so the drain order is immaterial.
            m._generate_upto(t_dist)
            for s in sorted(rejoined):
                replay_drain(s, t_dist)
        else:
            # Distribution and recovery rounds interleave generation
            # with the slot schedule: each group's drains see exactly
            # the tuples generated up to its slot start.
            groups = groups_in_order(active_order, cfg.num_subgroups)
            slot_len = cfg.dist_epoch / len(groups) if groups else cfg.dist_epoch
            for g, members in enumerate(groups):
                m._generate_upto(t_dist + g * slot_len)
                for s in members:
                    replay_drain(s, t_dist + g * slot_len)

        # Reconcile the mapping against the slaves' sworn claims: a
        # claimed partition belongs to its claimant; an unclaimed one
        # whose planned move/adoption/restore evidently never executed
        # falls back to its pre-plan owner, so the ordinary recovery
        # machinery re-adopts it from the (dead) owner next round.
        claims: dict[int, int] = {}
        for s, rj in rejoined.items():
            for pid in rj.owned_pids:
                claims[pid] = s
        restore_dst = dict(plan.remaps) if plan is not None else {}
        for pid, owner in sorted(m.buffer.mapping.items()):
            claimant = claims.get(pid)
            if claimant is not None:
                if claimant != owner:
                    m.buffer.remap(pid, claimant)
                continue
            if plan is not None and pid in plan.restores:
                # Unexecuted restore: the replica still sits at the
                # planned restorer — point the backup map back at it or
                # the re-planned restore would rebuild from genesis.
                m._backup_of[pid] = restore_dst[pid]
            prev = pre_plan_owner.get(pid, owner)
            if prev != owner:
                m.buffer.remap(pid, prev)

        # Failure bookkeeping: the master's own crash is recovered the
        # moment the takeover completes (nothing was lost), and every
        # record the fatal round left unrecovered re-enters the queue.
        now = rt.now()
        latency = now - detect_t
        m.metrics.failures.append(
            {
                "slave": self.master_id,
                "epoch": k_fatal,
                "detected_at": detect_t,
                "where": "standby",
                "pids": (),
                "window_bytes_lost": 0,
                "recovered_at": now,
                "recovery_latency": latency,
                "restored_pids": (),
                "lost_pids": (),
            }
        )
        m._unrecovered = [
            r
            for r in m.metrics.failures
            if r.get("recovered_at") is None
            and not r.get("unrecovered_at_halt")
        ]
        m.active = active_after
        m.inactive = sorted(set(m.all_slaves) - set(active_after) - m.dead)
        m.schedules = schedules
        if self.tracer.enabled:
            self.tracer.emit(
                TakeoverEvent(
                    t=now,
                    node=self.node_id,
                    epoch=k_next,
                    rejoined=tuple(sorted(rejoined)),
                    latency=latency,
                )
            )
        self.took_over = True
        yield from m.run_from(k_next)
