"""The master node (Algorithm 1).

The master ingests the streams into its partitioned buffer, distributes
the buffered tuples to the active slaves at every distribution epoch
(sub-group by sub-group, serially within a group — the source of the
communication-time divergence of Figure 12), and runs the
reorganization protocol at every reorganization epoch:

1. collect :class:`~repro.core.protocol.SlaveSync` load reports;
2. let the :class:`~repro.core.declustering.DeclusteringController`
   classify slaves and plan moves / degree-of-declustering changes;
3. send each active slave its :class:`~repro.core.protocol.ReorgOrder`
   (with its new slot schedule and clock stamp — Algorithm 1 line 18);
4. ship pending tuples to non-participants immediately, collect
   :class:`~repro.core.protocol.MoveAck` from participants, then ship
   to them too (the ordering the paper specifies).

Failure handling (fault plane, see DESIGN.md "Fault model").  When the
run carries a fault plan, every scheduled receive from a slave is armed
with a detection timeout.  A slave that stays silent is declared dead
at that epoch boundary and *fenced*: its channel towards the master is
drained and a ``Halt`` is sent, so a merely-slow slave shuts down
cleanly instead of wedging the fixed schedule (suspected-dead becomes
actually-stopped — the classic fail-stop conversion).  At the next
epoch the master runs a *recovery round*: the dead slave's
partition-groups are reassigned to survivors via the declustering
machinery, survivors adopt them with empty window state (the lost
window is a documented deviation; master-buffered tuples are *not*
lost), and an updated slot schedule is broadcast.  ``self.active``
always mirrors the schedule last broadcast to the slaves — slaves that
die mid-round stay in it until the next recovery round re-plans, so
master-side slot offsets never diverge from slave-side ones.
"""

from __future__ import annotations

import json
import typing as t

import numpy as np

from repro.config import SystemConfig
from repro.core.buffer import MasterBuffer
from repro.core.declustering import (
    DeclusteringController,
    ReorgPlan,
    plan_backups,
    plan_restores,
)
from repro.core.metrics import MasterMetrics
from repro.core.protocol import (
    Activate,
    Checkpoint,
    Halt,
    MoveAck,
    ReorgOrder,
    Replicate,
    Restore,
    Shipment,
    SlaveSync,
    StandbyPlan,
    StandbySync,
)
from repro.core.subgroups import build_schedules, groups_in_order
from repro.data.tuples import TupleBatch
from repro.faults.markers import peer_silent
from repro.mp.comm import Communicator
from repro.obs.events import (
    CheckpointEvent,
    DodEvent,
    EpochEvent,
    FaultEvent,
    RecoveryEvent,
    ReorgEvent,
    RestoreEvent,
)
from repro.obs.tracer import NULL_TRACER, Tracer


class _PendingReplication:
    """Replication maintenance queued for one backup slave, delivered
    with the next :class:`Replicate` the master sends it."""

    __slots__ = ("entries", "drops", "checkpoints")

    def __init__(self) -> None:
        self.entries: list[tuple[int, int, TupleBatch]] = []
        self.drops: set[int] = set()
        self.checkpoints: dict[int, Checkpoint] = {}

    def purge(self, pid: int) -> None:
        self.entries = [e for e in self.entries if e[0] != pid]
        self.checkpoints.pop(pid, None)


class MasterNode:
    """Master process: tuple ingestion, distribution, reorganization."""

    def __init__(
        self,
        cfg: SystemConfig,
        runtime: t.Any,
        comm: Communicator,
        buffer: MasterBuffer,
        workload: t.Any,
        controller: DeclusteringController,
        metrics: MasterMetrics,
        slave_ids: t.Sequence[int],
        collector_id: int,
        tracer: Tracer = NULL_TRACER,
        standby_id: int | None = None,
    ) -> None:
        self.cfg = cfg
        self.rt = runtime
        self.comm = comm
        self.buffer = buffer
        self.workload = workload
        self.controller = controller
        self.metrics = metrics
        self.tracer = tracer
        self.all_slaves = sorted(slave_ids)
        self.collector_id = collector_id
        #: Standby coordinator mirroring this master's durable state
        #: (``None``: no standby, zero behavior change).
        self.standby_id = standby_id
        #: Operation log of the current round, shipped to the standby
        #: in the end-of-round :class:`StandbySync`.
        self._round_ops: list[tuple[str, float, float]] = []
        #: Pair chunks banked this round, for the same sync.
        self._round_pairs: list[tuple[int, int, int, np.ndarray]] = []
        self.active = self.all_slaves[: cfg.n_active_initial]
        self.inactive = self.all_slaves[cfg.n_active_initial :]
        self.schedules = build_schedules(
            self.active, cfg.num_subgroups, cfg.dist_epoch
        )
        self._next_gen_time = 0.0
        #: Latest load report per slave (refreshed every sync).
        self.latest_reports: dict[int, t.Any] = {}
        #: Slaves declared dead (fenced); never contacted again.
        self.dead: set[int] = set()
        #: Failure records awaiting a recovery round (shared objects
        #: with :attr:`MasterMetrics.failures`).
        self._unrecovered: list[dict[str, t.Any]] = []
        #: Detection timeout armed on scheduled receives; ``None`` with
        #: an empty fault plan (no timers, byte-identical runs).
        self._detect_timeout: float | None = (
            cfg.faults.effective_timeout(cfg.dist_epoch)
            if cfg.faults.enabled
            else None
        )
        # -- replication (see DESIGN.md "Lossless recovery") -----------
        self.replication = cfg.replication != "off"
        self._checkpoint_every = cfg.replication == "checkpoint+log"
        #: Current backup slave per partition (empty when replication is
        #: off or fewer than two slaves are live).
        self._backup_of: dict[int, int] = {}
        #: Partitions whose backup holds a checkpoint base (bootstrap
        #: state); the rest get one requested at the next boundary.
        self._covered: set[int] = set()
        #: Maintenance queued per backup slave, flushed with the next
        #: ``Replicate`` sent to it.
        self._pending: dict[int, _PendingReplication] = {}
        #: Pair chunks retired to the master by checkpoints and state
        #: moves — they survive any later crash of the producing slave.
        #: Keyed ``(slave, pid, epoch)`` so replication to the standby
        #: and post-takeover Rejoin resends deduplicate exactly.
        self._pair_store: dict[tuple[int, int, int], np.ndarray] = {}
        if self.replication:
            self._backup_of = plan_backups(
                self.buffer.mapping, set(self.active)
            )
            # The seed assignment doubles as the genesis checkpoint:
            # every partition starts empty, so the (implicit) empty
            # checkpoint at epoch 0 already covers it.
            self._covered = set(self._backup_of)

    # ------------------------------------------------------------------
    @property
    def _reorg_every(self) -> int:
        return max(1, round(self.cfg.reorg_epoch / self.cfg.dist_epoch))

    def _is_reorg_epoch(self, k: int) -> bool:
        return (k + 1) % self._reorg_every == 0

    def run(self) -> t.Generator:
        """The master's main loop (a node generator)."""
        yield from self.run_from(0)

    def run_from(self, k0: int) -> t.Generator:
        """The main loop from round *k0* on.

        ``k0 > 0`` is the takeover path: the standby injects the
        replicated coordinator state and resumes the schedule exactly
        where the dead master left off.
        """
        cfg, tracer = self.cfg, self.tracer
        if tracer.enabled and k0 == 0:
            # Record the initial degree of declustering so every trace
            # carries the DoD baseline even when it never changes.
            tracer.emit(
                DodEvent(
                    t=self.rt.now(),
                    node=self.comm.node_id,
                    epoch=-1,
                    n_active=len(self.active),
                    activated=(),
                    deactivated=(),
                )
            )
        k = k0
        while (k + 2) * cfg.dist_epoch <= cfg.run_seconds + 1e-9:
            reorg = self._is_reorg_epoch(k)
            if tracer.enabled:
                tracer.emit(
                    EpochEvent(
                        t=(k + 1) * cfg.dist_epoch,
                        node=self.comm.node_id,
                        epoch=k,
                        phase="reorg" if reorg else "dist",
                        active=len(self.active),
                        buffered_bytes=self.buffer.total_bytes,
                    )
                )
            if reorg:
                yield from self._reorg_round(k)
            elif self._unrecovered:
                yield from self._recovery_round(k)
            else:
                yield from self._distribution_round(k)
            if self.standby_id is not None:
                yield from self._send_standby_sync(k)
            self.metrics.epochs += 1
            if self.metrics.registry.enabled:
                self.metrics.m_epochs.inc()
            k += 1
        yield from self._halt_round(k)

    # -- failure detection (fault plane) -----------------------------------
    def _sync_or_detect(self, s: int, k: int) -> t.Generator:
        """Receive a slave's sync, or declare it dead on silence.

        Returns the :class:`SlaveSync` (refreshing the load report), or
        ``None`` after fencing a silent slave.
        """
        sync = yield from self.comm.recv_expect(
            s, SlaveSync, timeout=self._detect_timeout
        )
        if peer_silent(sync):
            yield from self._on_slave_silent(s, k, "sync")
            return None
        self.latest_reports[s] = sync.report
        return sync

    def _on_slave_silent(self, s: int, k: int, where: str) -> t.Generator:
        """Fence slave *s* and record the failure for recovery.

        Fencing makes "suspected dead" equivalent to "stopped": the
        slave's channel towards the master is drained (its pending and
        future sends complete silently) and a ``Halt`` is sent, so a
        live-but-late slave shuts down cleanly while a crashed one
        absorbs the Halt in the transport's buffered-write model.
        """
        rt = self.rt
        now = rt.now()
        self.dead.add(s)
        if self.metrics.registry.enabled:
            self.metrics.m_dead_slaves.set(len(self.dead))
        self.comm.drain(s)
        # Replication maintenance queued for a dead backup is moot; the
        # next placement refresh reassigns its partitions' backups.
        self._pending.pop(s, None)
        yield self.comm.send(s, Halt(k))
        report = self.latest_reports.get(s)
        record: dict[str, t.Any] = {
            "slave": s,
            "epoch": k,
            "detected_at": now,
            "where": where,
            "pids": tuple(self.buffer.pids_of(s)),
            "window_bytes_lost": 0 if report is None else report.window_bytes,
            "recovered_at": None,
            "recovery_latency": None,
        }
        self.metrics.failures.append(record)
        self._unrecovered.append(record)
        if self.tracer.enabled:
            # ``info`` carries the armed detection timeout.  An
            # unlimited timeout (None: silence detected via NodeDown,
            # not a timer) is encoded as -1.0 — 0.0 would be
            # indistinguishable from a zero-second timeout.
            timeout = (
                -1.0 if self._detect_timeout is None else self._detect_timeout
            )
            self.tracer.emit(
                FaultEvent(
                    t=now,
                    node=self.comm.node_id,
                    action="detect",
                    target=s,
                    epoch=k,
                    info=timeout,
                )
            )
            self.tracer.emit(
                FaultEvent(
                    t=now,
                    node=self.comm.node_id,
                    action="fence",
                    target=s,
                    epoch=k,
                )
            )

    def _plan_adoption(
        self,
        live: t.Sequence[int],
        records: t.Sequence[dict[str, t.Any]],
    ) -> tuple[dict[int, tuple[int, ...]], dict[int, tuple[int, ...]]]:
        """Reassign every partition-group currently owned by a dead
        slave, remapping the master buffer so pending tuples follow.

        With replication on, each lost partition is routed to its live
        backup (``restore_map``: a checkpoint + log-replay rebuild);
        only partitions without a usable replica fall back to empty
        adoption.  Each failure record in *records* is annotated with
        the split (``restored_pids`` / ``lost_pids``) so the run's
        degraded verdict reflects actual data loss, not mere crashes.
        """
        lost = [
            pid for pid, owner in self.buffer.mapping.items() if owner in self.dead
        ]
        restore_map: dict[int, tuple[int, ...]] = {}
        leftovers: t.Sequence[int] = lost
        if self.replication:
            restore_map, leftovers = plan_restores(
                lost, self._backup_of, set(live)
            )
        occupancy = {
            s: (
                self.latest_reports[s].avg_occupancy
                if s in self.latest_reports
                else 0.0
            )
            for s in live
        }
        adopt = self.controller.plan_recovery(list(leftovers), occupancy)
        restored = {pid for pids in restore_map.values() for pid in pids}
        dropped = {int(pid) for pid in leftovers}
        for record in records:
            owned = set(record["pids"])
            record["restored_pids"] = tuple(sorted(owned & restored))
            record["lost_pids"] = tuple(sorted(owned & dropped))
        for plan in (adopt, restore_map):
            for s, pids in plan.items():
                for pid in pids:
                    self.buffer.remap(pid, s)
                    self._log_op("remap", pid, s)
        if self.replication:
            # Adopted and restored partitions both need a fresh base
            # image at their new owner before the log can stay short.
            for pids in (*adopt.values(), *restore_map.values()):
                self._covered.difference_update(pids)
        return adopt, restore_map

    def _finish_recovery(
        self,
        k: int,
        adopt: t.Mapping[int, tuple[int, ...]],
        records: t.Sequence[dict[str, t.Any]],
        restore: t.Mapping[int, tuple[int, ...]] | None = None,
    ) -> None:
        """Stamp recovery latency on the *covered* failure records.

        *records* is the snapshot taken at adoption-planning time — a
        prefix of ``_unrecovered``; slaves detected dead later in the
        same round stay queued for the next recovery round.
        """
        now = self.rt.now()
        self._unrecovered = self._unrecovered[len(records):]
        for record in records:
            record["recovered_at"] = now
            record["recovery_latency"] = now - record["detected_at"]
        if self.tracer.enabled and records:
            oldest = min(r["detected_at"] for r in records)
            self.tracer.emit(
                RecoveryEvent(
                    t=now,
                    node=self.comm.node_id,
                    epoch=k,
                    dead=tuple(sorted(r["slave"] for r in records)),
                    pids=tuple(
                        sorted(pid for pids in adopt.values() for pid in pids)
                    ),
                    adopters=tuple(sorted(adopt)),
                    latency=now - oldest,
                )
            )
            for s, pids in sorted((restore or {}).items()):
                self.tracer.emit(
                    RestoreEvent(
                        t=now,
                        node=self.comm.node_id,
                        epoch=k,
                        restorer=s,
                        pids=pids,
                        latency=now - oldest,
                    )
                )

    # -- replication (state backup plane) ----------------------------------
    @property
    def pair_rows(self) -> list[np.ndarray]:
        """Pair chunks retired to the master by checkpoints and moves."""
        return [self._pair_store[key] for key in sorted(self._pair_store)]

    def _bank_pairs(
        self, slave: int, pid: int, epoch: int, rows: np.ndarray
    ) -> None:
        """Bank one pair chunk durably, deduplicating on its tag.

        A chunk can legitimately arrive twice — once at the dead master
        (replicated to the standby) and again in the producing slave's
        post-takeover :class:`~repro.core.protocol.Rejoin` — so the
        first banking of a tag wins.
        """
        key = (slave, pid, epoch)
        if key in self._pair_store:
            return
        self._pair_store[key] = rows
        if self.standby_id is not None:
            self._round_pairs.append((slave, pid, epoch, rows))

    # -- standby mirroring (master-failover plane) -------------------------
    def _log_op(self, kind: str, a: float, b: float) -> None:
        """Append one buffer-mutating op to the round's op log."""
        if self.standby_id is not None:
            self._round_ops.append((kind, a, b))

    @staticmethod
    def _plan_remaps(
        adopt: t.Mapping[int, tuple[int, ...]],
        restore_map: t.Mapping[int, tuple[int, ...]],
    ) -> tuple[tuple[int, int], ...]:
        """Adoption/restore remaps as ``(pid, dst)`` for a StandbyPlan."""
        return tuple(sorted(
            (pid, s)
            for plan in (adopt, restore_map)
            for s, pids in plan.items()
            for pid in pids
        ))

    def _send_standby_sync(self, k: int) -> t.Generator:
        """End-of-round sync: replicate this round's durable delta.

        Sent after every round the master survives; receipt of sync
        ``k`` tells the standby the whole of round ``k`` executed, so a
        later master death is always pinned to round ``k + 1``.
        """
        assert self.standby_id is not None
        pending = tuple(
            (
                s,
                Replicate(
                    k,
                    entries=tuple(p.entries),
                    drops=tuple(sorted(p.drops)),
                    checkpoints=tuple(
                        p.checkpoints[pid] for pid in sorted(p.checkpoints)
                    ),
                ),
            )
            for s, p in sorted(self._pending.items())
        )
        sync = StandbySync(
            k,
            ops=tuple(self._round_ops),
            active=tuple(self.active),
            dead=tuple(sorted(self.dead)),
            next_gen_time=self._next_gen_time,
            backup_of=tuple(sorted(self._backup_of.items())),
            covered=tuple(sorted(self._covered)),
            pending=pending,
            failures_json=json.dumps(self.metrics.failures),
            pairs=tuple(self._round_pairs),
        )
        self._round_ops = []
        self._round_pairs = []
        yield self.comm.send(self.standby_id, sync)

    def _pending_for(self, s: int) -> _PendingReplication:
        pending = self._pending.get(s)
        if pending is None:
            pending = self._pending[s] = _PendingReplication()
        return pending

    def _tee_parts(self, k: int, parts: t.Mapping[int, TupleBatch]) -> None:
        """Tee one shipment's per-partition parts to the backups' logs."""
        for pid in sorted(parts):
            backup = self._backup_of.get(pid)
            if backup is None or backup in self.dead:
                continue
            batch = parts[pid]
            self._pending_for(backup).entries.append((pid, k, batch))
            self.metrics.replication_bytes += len(batch) * self.cfg.tuple_bytes
            if self.metrics.registry.enabled:
                self.metrics.m_replication_bytes.inc(
                    len(batch) * self.cfg.tuple_bytes
                )

    def _send_replicate(self, k: int, s: int) -> t.Generator:
        """Flush replication maintenance queued for backup *s*.

        Sent before every Shipment and every ReorgOrder when
        replication is on, so the backup's store is current before any
        restore it might be ordered to perform this round.
        """
        pending = self._pending.pop(s, None)
        if pending is None:
            msg = Replicate(k)
        else:
            msg = Replicate(
                k,
                entries=tuple(pending.entries),
                drops=tuple(sorted(pending.drops)),
                checkpoints=tuple(
                    pending.checkpoints[pid]
                    for pid in sorted(pending.checkpoints)
                ),
            )
        yield self.comm.send(s, msg)

    def _refresh_backups(
        self,
        owners: t.Mapping[int, int],
        live: t.Collection[int],
        restoring: t.Collection[int] = (),
    ) -> None:
        """Recompute backup placement after an ownership change.

        A partition whose backup moved gets its replica dropped at the
        old backup (when still live) and its coverage reset, so
        :meth:`_checkpoint_requests` bootstraps the new backup with a
        fresh base image at this same boundary.  Partitions in
        *restoring* are exempt from the drop/purge: their old backup is
        the restorer itself, which consumes (and thereby removes) the
        replica when it executes this round's Restore — a drop would
        race ahead of it and destroy the very state being recovered.
        """
        new = plan_backups(owners, live)
        restoring = set(restoring)
        for pid, old in self._backup_of.items():
            if new.get(pid) == old:
                continue
            if pid in restoring:
                self._covered.discard(pid)
                continue
            if old in self._pending:
                self._pending[old].purge(pid)
            if old in live:
                self._pending_for(old).drops.add(pid)
            self._covered.discard(pid)
        for s in list(self._pending):
            if s not in live:
                del self._pending[s]
        self._backup_of = new

    def _checkpoint_requests(
        self, owners: t.Mapping[int, int], reorg: bool
    ) -> dict[int, tuple[int, ...]]:
        """Which owner must checkpoint which partitions this round.

        Stateless — derived from placement and coverage every round, so
        a request that dies with its owner is simply re-issued to the
        partition's next owner at the next boundary.
        """
        if not self.replication:
            return {}
        wanted: dict[int, list[int]] = {}
        for pid in sorted(self._backup_of):
            owner = owners.get(pid)
            if owner is None or owner in self.dead:
                continue
            if (self._checkpoint_every and reorg) or pid not in self._covered:
                wanted.setdefault(owner, []).append(pid)
        return {s: tuple(pids) for s, pids in wanted.items()}

    def _accept_checkpoint(self, s: int, k: int, cp: Checkpoint) -> None:
        """Bank a checkpoint: retire its pairs, queue it to the backup."""
        if cp.pairs is not None and len(cp.pairs):
            self._bank_pairs(s, cp.pid, cp.epoch, cp.pairs)
        backup = self._backup_of.get(cp.pid)
        if backup is None or backup in self.dead:
            return
        self._pending_for(backup).checkpoints[cp.pid] = cp
        self._covered.add(cp.pid)
        nbytes = cp.wire_bytes(self.cfg.tuple_bytes)
        self.metrics.replication_bytes += nbytes
        if self.metrics.registry.enabled:
            self.metrics.m_replication_bytes.inc(nbytes)
        if self.tracer.enabled:
            self.tracer.emit(
                CheckpointEvent(
                    t=self.rt.now(),
                    node=self.comm.node_id,
                    epoch=k,
                    pid=cp.pid,
                    owner=s,
                    backup=backup,
                    nbytes=nbytes,
                )
            )

    def _collect_checkpoints(self, s: int, k: int, n: int) -> t.Generator:
        """Receive *n* checkpoints from slave *s*; False if it died."""
        for _ in range(n):
            cp = yield from self.comm.recv_expect(
                s, Checkpoint, timeout=self._detect_timeout
            )
            if peer_silent(cp):
                yield from self._on_slave_silent(s, k, "checkpoint")
                return False
            self._accept_checkpoint(s, k, cp)
        return True

    # -- workload ingestion ------------------------------------------------
    def _generate_upto(self, now: float) -> None:
        """Ingest arrivals up to *now* — always a scheduled slot time.

        Callers pass the slot's *scheduled* boundary, not the wall
        clock: on the sim backend the two coincide exactly, and on the
        wall-clock backends quantizing to the schedule makes ingestion
        boundaries — and therefore every shipment's contents — a pure
        function of the round structure.  That is what lets a standby
        replay the rounds (and presume the fatal one) bit for bit.
        """
        if now > self._next_gen_time:
            batch = self.workload.generate(self._next_gen_time, now)
            self.buffer.ingest(batch)
            self.metrics.tuples_ingested += len(batch)
            if self.metrics.registry.enabled:
                self.metrics.m_tuples_ingested.inc(len(batch))
            self._log_op("gen", self._next_gen_time, now)
            self._next_gen_time = now
        self.metrics.sample_buffer(now, self.buffer.total_bytes)

    # -- normal epoch -----------------------------------------------------------
    def _distribution_round(self, k: int) -> t.Generator:
        rt, comm, cfg = self.rt, self.comm, self.cfg
        t_dist = (k + 1) * cfg.dist_epoch
        groups = groups_in_order(self.active, cfg.num_subgroups)
        slot_len = cfg.dist_epoch / len(groups)
        for g, members in enumerate(groups):
            yield rt.sleep_until(t_dist + g * slot_len)
            self._generate_upto(t_dist + g * slot_len)
            for s in members:
                if s in self.dead:
                    continue
                sync = yield from self._sync_or_detect(s, k)
                if sync is None:
                    continue
                if self.replication:
                    yield from self._send_replicate(k, s)
                yield from self._ship_to(k, s)

    def _ship_to(self, k: int, slave: int) -> t.Generator:
        now = self.rt.now()
        self._log_op("drain", slave, now)
        batch, epoch_start, parts = self.buffer.drain_for(slave, now)
        if self.replication:
            self._tee_parts(k, parts)
        yield self.comm.send(slave, Shipment(k, epoch_start, now, batch))

    # -- reorganization epoch --------------------------------------------------------
    def _reorg_round(self, k: int) -> t.Generator:
        rt, comm, cfg = self.rt, self.comm, self.cfg
        yield rt.sleep_until((k + 1) * cfg.dist_epoch)
        self._generate_upto((k + 1) * cfg.dist_epoch)

        actives = list(self.active)
        for s in actives:
            if s in self.dead:
                continue
            yield from self._sync_or_detect(s, k)

        live = [s for s in actives if s not in self.dead]
        recovering = list(self._unrecovered)
        adopt: dict[int, tuple[int, ...]] = {}
        restore_map: dict[int, tuple[int, ...]] = {}
        occupancy = {s: self.latest_reports[s].avg_occupancy for s in live}
        if recovering:
            # A recovery epoch performs exactly one control action:
            # adoption of the dead slaves' partition-groups.  Load
            # balancing and DoD adaptation resume at the next epoch.
            adopt, restore_map = self._plan_adoption(live, recovering)
            plan = ReorgPlan((), (), (), self.controller.classify(occupancy))
        else:
            ownership = {s: self.buffer.pids_of(s) for s in live}
            plan = self.controller.plan(
                occupancy, self.inactive, ownership, now=rt.now(), epoch=k
            )
        cls = plan.classification
        self.metrics.supplier_counts.append(
            (rt.now(), len(cls.suppliers), len(cls.consumers), len(cls.neutrals))
        )
        if self.tracer.enabled:
            self.tracer.emit(
                ReorgEvent(
                    t=rt.now(),
                    node=self.comm.node_id,
                    epoch=k,
                    suppliers=cls.suppliers,
                    consumers=cls.consumers,
                    neutrals=cls.neutrals,
                    moves=tuple((m.pid, m.src, m.dst) for m in plan.moves),
                    activate=plan.activate,
                    deactivate=plan.deactivate,
                )
            )

        new_active = sorted(
            (set(live) | set(plan.activate)) - set(plan.deactivate)
        )
        schedules = build_schedules(new_active, cfg.num_subgroups, cfg.dist_epoch)

        if self.standby_id is not None:
            # The plan reaches the standby before any slave sees an
            # order: if the standby never receives it, no slave acted
            # on it either, so a takeover can presume the fatal round
            # plan-free.
            yield comm.send(
                self.standby_id,
                StandbyPlan(
                    k,
                    moves=plan.moves,
                    new_active=tuple(new_active),
                    deactivate=plan.deactivate,
                    remaps=self._plan_remaps(adopt, restore_map),
                    restores=tuple(
                        sorted(p for pids in restore_map.values() for p in pids)
                    ),
                ),
            )

        for s in plan.activate:
            yield comm.send(s, Activate(k, clock=rt.now(), schedule=schedules[s]))

        cp_requests: dict[int, tuple[int, ...]] = {}
        if self.replication:
            # Placement follows the ownership the slaves will hold
            # *after* this round's moves, adoptions, and restores.
            owners_after = dict(self.buffer.mapping)
            for m in plan.moves:
                owners_after[m.pid] = m.dst
                # A moved partition needs a fresh base at its new
                # owner even if its backup slave happens to survive
                # the placement change (the pair accounting resets at
                # the extract).
                self._covered.discard(m.pid)
            self._refresh_backups(
                owners_after,
                set(new_active),
                restoring=[p for pids in restore_map.values() for p in pids],
            )
            cp_requests = self._checkpoint_requests(owners_after, reorg=True)

        order_targets = sorted(set(live) | set(plan.activate))
        acks_expected: dict[int, int] = {}
        for s in order_targets:
            outgoing = tuple(m for m in plan.moves if m.src == s)
            incoming = tuple(m for m in plan.moves if m.dst == s)
            adopted = adopt.get(s, ())
            restored = restore_map.get(s, ())
            if self.replication:
                yield from self._send_replicate(k, s)
            yield comm.send(
                s,
                ReorgOrder(
                    k,
                    outgoing=outgoing,
                    incoming=incoming,
                    deactivate=s in plan.deactivate,
                    clock=rt.now(),
                    schedule=schedules.get(s),
                    adopt=adopted,
                    checkpoint_pids=cp_requests.get(s, ()),
                ),
            )
            if self.replication:
                yield comm.send(s, Restore(k, restored))
            if outgoing or incoming or adopted or restored:
                acks_expected[s] = (
                    len(outgoing) + len(incoming) + len(adopted) + len(restored)
                )

        # The mapping changes take effect now: tuples buffered for a
        # moved partition will be shipped to the new owner below
        # (adoptions and restores were remapped by ``_plan_adoption``).
        for m in plan.moves:
            self.buffer.remap(m.pid, m.dst)
            self._log_op("remap", m.pid, m.dst)
        self.metrics.moves_ordered += len(plan.moves)

        participants = set(acks_expected)
        deactivated = set(plan.deactivate)
        for s in order_targets:
            if s not in participants and s not in deactivated:
                if cp_requests.get(s):
                    alive = yield from self._collect_checkpoints(
                        s, k, len(cp_requests[s])
                    )
                    if not alive:
                        continue
                yield from self._ship_to(k, s)
        for s in sorted(acks_expected):
            for _ in range(acks_expected[s]):
                ack = yield from comm.recv_expect(
                    s, MoveAck, timeout=self._detect_timeout
                )
                if peer_silent(ack):
                    yield from self._on_slave_silent(s, k, "ack")
                    break
                if ack.pairs is not None and len(ack.pairs):
                    self._bank_pairs(s, ack.pid, k, ack.pairs)
        for s in sorted(participants):
            if s not in deactivated and s not in self.dead:
                if cp_requests.get(s):
                    alive = yield from self._collect_checkpoints(
                        s, k, len(cp_requests[s])
                    )
                    if not alive:
                        continue
                yield from self._ship_to(k, s)

        if recovering:
            self._finish_recovery(k, adopt, recovering, restore_map)
        if len(new_active) != len(actives):
            self.metrics.dod_changes.append((rt.now(), len(new_active)))
            if self.tracer.enabled:
                self.tracer.emit(
                    DodEvent(
                        t=rt.now(),
                        node=self.comm.node_id,
                        epoch=k,
                        n_active=len(new_active),
                        activated=plan.activate,
                        deactivated=plan.deactivate,
                    )
                )
        self.active = new_active
        self.inactive = sorted(
            set(self.all_slaves) - set(new_active) - self.dead
        )
        self.schedules = schedules
        self.metrics.reorgs += 1
        if self.metrics.registry.enabled:
            self.metrics.m_reorgs.inc()

    # -- recovery epoch (fault plane) -------------------------------------
    def _recovery_round(self, k: int) -> t.Generator:
        """A distribution round that folds in failure recovery.

        Runs at the first plain epoch after a failure was detected (a
        reorganization epoch handles recovery itself).  Keeps the old
        slot structure — the surviving slaves still hold last epoch's
        schedule — but answers each sync with a moves-free
        :class:`ReorgOrder` carrying the partition-groups to adopt and
        the new slot schedule, then ships after the adoption acks.
        """
        rt, comm, cfg = self.rt, self.comm, self.cfg
        t_dist = (k + 1) * cfg.dist_epoch
        live = [s for s in self.active if s not in self.dead]
        if not live:
            # Nobody left to adopt anything: the failure records stay
            # unrecovered for good — mark them so reports distinguish
            # "never recovered" from "recovery still in flight".
            for record in self._unrecovered:
                record["unrecovered_at_halt"] = True
            self._unrecovered = []
            yield rt.sleep_until(t_dist)
            self._generate_upto(t_dist)
            return
        recovering = list(self._unrecovered)
        adopt, restore_map = self._plan_adoption(live, recovering)
        cp_requests: dict[int, tuple[int, ...]] = {}
        if self.replication:
            self._refresh_backups(
                dict(self.buffer.mapping),
                set(live),
                restoring=[p for pids in restore_map.values() for p in pids],
            )
            cp_requests = self._checkpoint_requests(
                self.buffer.mapping, reorg=False
            )
        new_schedules = build_schedules(live, cfg.num_subgroups, cfg.dist_epoch)
        if self.standby_id is not None:
            # Happens-before every ReorgOrder of the round, so the
            # standby always knows the adoption remaps a fatal recovery
            # round was executing.
            yield comm.send(
                self.standby_id,
                StandbyPlan(
                    k,
                    new_active=tuple(live),
                    remaps=self._plan_remaps(adopt, restore_map),
                    restores=tuple(
                        sorted(p for pids in restore_map.values() for p in pids)
                    ),
                ),
            )
        groups = groups_in_order(self.active, cfg.num_subgroups)
        slot_len = cfg.dist_epoch / len(groups)
        for g, members in enumerate(groups):
            yield rt.sleep_until(t_dist + g * slot_len)
            self._generate_upto(t_dist + g * slot_len)
            for s in members:
                if s in self.dead:
                    continue
                sync = yield from self._sync_or_detect(s, k)
                if sync is None:
                    continue
                adopted = adopt.get(s, ())
                restored = restore_map.get(s, ())
                if self.replication:
                    yield from self._send_replicate(k, s)
                yield comm.send(
                    s,
                    ReorgOrder(
                        k,
                        clock=rt.now(),
                        schedule=new_schedules.get(s),
                        adopt=adopted,
                        checkpoint_pids=cp_requests.get(s, ()),
                    ),
                )
                if self.replication:
                    yield comm.send(s, Restore(k, restored))
                alive = True
                for _ in range(len(adopted) + len(restored)):
                    ack = yield from comm.recv_expect(
                        s, MoveAck, timeout=self._detect_timeout
                    )
                    if peer_silent(ack):
                        yield from self._on_slave_silent(s, k, "ack")
                        alive = False
                        break
                    if ack.pairs is not None and len(ack.pairs):
                        self._bank_pairs(s, ack.pid, k, ack.pairs)
                if alive and cp_requests.get(s):
                    alive = yield from self._collect_checkpoints(
                        s, k, len(cp_requests[s])
                    )
                if alive:
                    yield from self._ship_to(k, s)
        if len(live) != len(self.active):
            self.metrics.dod_changes.append((rt.now(), len(live)))
            if self.tracer.enabled:
                self.tracer.emit(
                    DodEvent(
                        t=rt.now(),
                        node=self.comm.node_id,
                        epoch=k,
                        n_active=len(live),
                        activated=(),
                        deactivated=tuple(
                            s for s in self.active if s in self.dead
                        ),
                    )
                )
        self.active = live
        self.inactive = sorted(
            set(self.all_slaves) - set(live) - self.dead
        )
        self.schedules = new_schedules
        self._finish_recovery(k, adopt, recovering, restore_map)

    # -- shutdown ----------------------------------------------------------------
    def _halt_round(self, k: int) -> t.Generator:
        """One final exchange: answer each slave's sync with Halt."""
        rt, comm, cfg = self.rt, self.comm, self.cfg
        t_dist = (k + 1) * cfg.dist_epoch
        if self._is_reorg_epoch(k):
            yield rt.sleep_until(t_dist)
            order = list(self.active)
        else:
            order = [s for g in groups_in_order(self.active, cfg.num_subgroups) for s in g]
            yield rt.sleep_until(t_dist)
        for s in order:
            if s in self.dead:
                continue
            sync = yield from self._sync_or_detect(s, k)
            if sync is None:
                continue  # the fence already sent this slave a Halt
            yield comm.send(s, Halt(k))
        for s in self.inactive:
            yield comm.send(s, Halt(k))
        if self.standby_id is not None:
            yield comm.send(self.standby_id, Halt(k))
        # The run halts with these failures still awaiting a recovery
        # round: mark them so downstream reporting distinguishes
        # "unrecovered at halt" from a latency not yet measured.
        for record in self._unrecovered:
            record["unrecovered_at_halt"] = True
        self._unrecovered = []
