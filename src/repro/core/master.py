"""The master node (Algorithm 1).

The master ingests the streams into its partitioned buffer, distributes
the buffered tuples to the active slaves at every distribution epoch
(sub-group by sub-group, serially within a group — the source of the
communication-time divergence of Figure 12), and runs the
reorganization protocol at every reorganization epoch:

1. collect :class:`~repro.core.protocol.SlaveSync` load reports;
2. let the :class:`~repro.core.declustering.DeclusteringController`
   classify slaves and plan moves / degree-of-declustering changes;
3. send each active slave its :class:`~repro.core.protocol.ReorgOrder`
   (with its new slot schedule and clock stamp — Algorithm 1 line 18);
4. ship pending tuples to non-participants immediately, collect
   :class:`~repro.core.protocol.MoveAck` from participants, then ship
   to them too (the ordering the paper specifies).
"""

from __future__ import annotations

import typing as t


from repro.config import SystemConfig
from repro.core.buffer import MasterBuffer
from repro.core.declustering import DeclusteringController
from repro.core.metrics import MasterMetrics
from repro.core.protocol import (
    Activate,
    Halt,
    MoveAck,
    ReorgOrder,
    Shipment,
    SlaveSync,
)
from repro.core.subgroups import build_schedules, groups_in_order
from repro.mp.comm import Communicator
from repro.obs.events import DodEvent, EpochEvent, ReorgEvent
from repro.obs.tracer import NULL_TRACER, Tracer


class MasterNode:
    """Master process: tuple ingestion, distribution, reorganization."""

    def __init__(
        self,
        cfg: SystemConfig,
        runtime: t.Any,
        comm: Communicator,
        buffer: MasterBuffer,
        workload: t.Any,
        controller: DeclusteringController,
        metrics: MasterMetrics,
        slave_ids: t.Sequence[int],
        collector_id: int,
        tracer: Tracer = NULL_TRACER,
    ) -> None:
        self.cfg = cfg
        self.rt = runtime
        self.comm = comm
        self.buffer = buffer
        self.workload = workload
        self.controller = controller
        self.metrics = metrics
        self.tracer = tracer
        self.all_slaves = sorted(slave_ids)
        self.collector_id = collector_id
        self.active = self.all_slaves[: cfg.n_active_initial]
        self.inactive = self.all_slaves[cfg.n_active_initial :]
        self.schedules = build_schedules(
            self.active, cfg.num_subgroups, cfg.dist_epoch
        )
        self._next_gen_time = 0.0
        #: Latest load report per slave (refreshed every sync).
        self.latest_reports: dict[int, t.Any] = {}

    # ------------------------------------------------------------------
    @property
    def _reorg_every(self) -> int:
        return max(1, round(self.cfg.reorg_epoch / self.cfg.dist_epoch))

    def _is_reorg_epoch(self, k: int) -> bool:
        return (k + 1) % self._reorg_every == 0

    def run(self) -> t.Generator:
        """The master's main loop (a node generator)."""
        cfg, tracer = self.cfg, self.tracer
        if tracer.enabled:
            # Record the initial degree of declustering so every trace
            # carries the DoD baseline even when it never changes.
            tracer.emit(
                DodEvent(
                    t=self.rt.now(),
                    node=self.comm.node_id,
                    epoch=-1,
                    n_active=len(self.active),
                    activated=(),
                    deactivated=(),
                )
            )
        k = 0
        while (k + 2) * cfg.dist_epoch <= cfg.run_seconds + 1e-9:
            reorg = self._is_reorg_epoch(k)
            if tracer.enabled:
                tracer.emit(
                    EpochEvent(
                        t=(k + 1) * cfg.dist_epoch,
                        node=self.comm.node_id,
                        epoch=k,
                        phase="reorg" if reorg else "dist",
                        active=len(self.active),
                        buffered_bytes=self.buffer.total_bytes,
                    )
                )
            if reorg:
                yield from self._reorg_round(k)
            else:
                yield from self._distribution_round(k)
            self.metrics.epochs += 1
            k += 1
        yield from self._halt_round(k)

    # -- workload ingestion ------------------------------------------------
    def _generate_upto(self, now: float) -> None:
        if now > self._next_gen_time:
            batch = self.workload.generate(self._next_gen_time, now)
            self.buffer.ingest(batch)
            self.metrics.tuples_ingested += len(batch)
            self._next_gen_time = now
        self.metrics.sample_buffer(now, self.buffer.total_bytes)

    # -- normal epoch -----------------------------------------------------------
    def _distribution_round(self, k: int) -> t.Generator:
        rt, comm, cfg = self.rt, self.comm, self.cfg
        t_dist = (k + 1) * cfg.dist_epoch
        groups = groups_in_order(self.active, cfg.num_subgroups)
        slot_len = cfg.dist_epoch / len(groups)
        for g, members in enumerate(groups):
            yield rt.sleep_until(t_dist + g * slot_len)
            self._generate_upto(rt.now())
            for s in members:
                sync = yield from comm.recv_expect(s, SlaveSync)
                self.latest_reports[s] = sync.report
                yield from self._ship_to(k, s)

    def _ship_to(self, k: int, slave: int) -> t.Generator:
        now = self.rt.now()
        batch, epoch_start = self.buffer.drain_for(slave, now)
        yield self.comm.send(slave, Shipment(k, epoch_start, now, batch))

    # -- reorganization epoch --------------------------------------------------------
    def _reorg_round(self, k: int) -> t.Generator:
        rt, comm, cfg = self.rt, self.comm, self.cfg
        yield rt.sleep_until((k + 1) * cfg.dist_epoch)
        self._generate_upto(rt.now())

        actives = list(self.active)
        for s in actives:
            sync = yield from comm.recv_expect(s, SlaveSync)
            self.latest_reports[s] = sync.report

        occupancy = {
            s: self.latest_reports[s].avg_occupancy for s in actives
        }
        ownership = {s: self.buffer.pids_of(s) for s in actives}
        plan = self.controller.plan(
            occupancy, self.inactive, ownership, now=rt.now(), epoch=k
        )
        cls = plan.classification
        self.metrics.supplier_counts.append(
            (rt.now(), len(cls.suppliers), len(cls.consumers), len(cls.neutrals))
        )
        if self.tracer.enabled:
            self.tracer.emit(
                ReorgEvent(
                    t=rt.now(),
                    node=self.comm.node_id,
                    epoch=k,
                    suppliers=cls.suppliers,
                    consumers=cls.consumers,
                    neutrals=cls.neutrals,
                    moves=tuple((m.pid, m.src, m.dst) for m in plan.moves),
                    activate=plan.activate,
                    deactivate=plan.deactivate,
                )
            )

        new_active = sorted(
            (set(actives) | set(plan.activate)) - set(plan.deactivate)
        )
        schedules = build_schedules(new_active, cfg.num_subgroups, cfg.dist_epoch)

        for s in plan.activate:
            yield comm.send(s, Activate(k, clock=rt.now(), schedule=schedules[s]))

        order_targets = sorted(set(actives) | set(plan.activate))
        acks_expected: dict[int, int] = {}
        for s in order_targets:
            outgoing = tuple(m for m in plan.moves if m.src == s)
            incoming = tuple(m for m in plan.moves if m.dst == s)
            yield comm.send(
                s,
                ReorgOrder(
                    k,
                    outgoing=outgoing,
                    incoming=incoming,
                    deactivate=s in plan.deactivate,
                    clock=rt.now(),
                    schedule=schedules.get(s),
                ),
            )
            if outgoing or incoming:
                acks_expected[s] = len(outgoing) + len(incoming)

        # The mapping changes take effect now: tuples buffered for a
        # moved partition will be shipped to the new owner below.
        for m in plan.moves:
            self.buffer.remap(m.pid, m.dst)
        self.metrics.moves_ordered += len(plan.moves)

        participants = set(acks_expected)
        deactivated = set(plan.deactivate)
        for s in order_targets:
            if s not in participants and s not in deactivated:
                yield from self._ship_to(k, s)
        for s in sorted(acks_expected):
            for _ in range(acks_expected[s]):
                yield from comm.recv_expect(s, MoveAck)
        for s in sorted(participants):
            if s not in deactivated:
                yield from self._ship_to(k, s)

        if len(new_active) != len(actives):
            self.metrics.dod_changes.append((rt.now(), len(new_active)))
            if self.tracer.enabled:
                self.tracer.emit(
                    DodEvent(
                        t=rt.now(),
                        node=self.comm.node_id,
                        epoch=k,
                        n_active=len(new_active),
                        activated=plan.activate,
                        deactivated=plan.deactivate,
                    )
                )
        self.active = new_active
        self.inactive = sorted(set(self.all_slaves) - set(new_active))
        self.schedules = schedules
        self.metrics.reorgs += 1

    # -- shutdown ----------------------------------------------------------------
    def _halt_round(self, k: int) -> t.Generator:
        """One final exchange: answer each slave's sync with Halt."""
        rt, comm, cfg = self.rt, self.comm, self.cfg
        t_dist = (k + 1) * cfg.dist_epoch
        if self._is_reorg_epoch(k):
            yield rt.sleep_until(t_dist)
            order = list(self.active)
        else:
            order = [s for g in groups_in_order(self.active, cfg.num_subgroups) for s in g]
            yield rt.sleep_until(t_dist)
        for s in order:
            yield from comm.recv_expect(s, SlaveSync)
            yield comm.send(s, Halt(k))
        for s in self.inactive:
            yield comm.send(s, Halt(k))
