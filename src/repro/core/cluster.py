"""Backend-agnostic cluster wiring.

:func:`build_cluster` assembles master, slaves and collector around any
runtime/transport pair — the DES backend (used by
:class:`~repro.core.system.JoinSystem`), or the thread backend (used by
the live examples and the cross-backend tests).
"""

from __future__ import annotations

import typing as t

from repro.config import SystemConfig
from repro.core.buffer import MasterBuffer
from repro.core.collector import CollectorMetrics, CollectorNode
from repro.core.costmodel import CostModel
from repro.core.declustering import DeclusteringController
from repro.core.join_module import JoinModule
from repro.core.kernels import get_kernel
from repro.core.master import MasterNode
from repro.core.metrics import MasterMetrics, MeasurementWindow, SlaveMetrics
from repro.core.partition_group import JoinGeometry
from repro.core.slave import SlaveNode
from repro.core.standby import StandbyNode
from repro.core.subgroups import build_schedules
from repro.errors import ConfigError
from repro.mp.comm import Communicator
from repro.obs.events import SampleEvent
from repro.obs.metrics import NULL_REGISTRY, MetricsRegistry
from repro.obs.sampler import TimeSeriesSampler
from repro.obs.tracer import Tracer, build_tracer
from repro.simul.rng import RngRegistry
from repro.workload.generator import TwoStreamWorkload

if t.TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.faults.injector import FaultInjector

MASTER_ID = 0
COLLECTOR_ID = 1


def slave_node_id(index: int) -> int:
    """Node id of the *index*-th slave (master=0, collector=1)."""
    return 2 + index


def standby_node_id(cfg: SystemConfig) -> int:
    """Node id of the standby coordinator (one past the last slave)."""
    return slave_node_id(cfg.num_slaves)


class Cluster(t.NamedTuple):
    """Everything :func:`build_cluster` wires together."""

    master: MasterNode
    slaves: list[SlaveNode]
    collector: CollectorNode
    master_metrics: MasterMetrics
    slave_metrics: list[SlaveMetrics]
    collector_metrics: CollectorMetrics
    buffer: MasterBuffer
    workload: t.Any
    gate: MeasurementWindow
    tracer: Tracer
    sampler: TimeSeriesSampler | None
    #: Shared fault injector (None on fault-free runs).
    faults: "FaultInjector | None" = None
    #: Per-node typed metric registries, keyed by node id (empty when
    #: ``cfg.obs.metrics_enabled`` is off).
    registries: dict[int, MetricsRegistry] = {}
    #: When set, this cluster object lives in a process that *runs*
    #: only this node (the process backend): the sampler reads only the
    #: local node's state — foreign node objects exist but never run.
    local_node: int | None = None
    #: Hot-standby coordinator (None unless ``cfg.standby``).
    standby: StandbyNode | None = None

    @property
    def acting_master(self) -> MasterNode:
        """The coordinator currently driving the run.

        The real master until a takeover; the standby's shadow master
        after it — reporting and admin surfaces read through this so
        post-failover state is attributed to the node that owns it.
        """
        if self.standby is not None and self.standby.took_over:
            return self.standby.master
        return self.master

    def processes(self) -> list[tuple[str, t.Generator]]:
        """All node generators, named, ready to spawn on a runtime."""
        out = [("master", self.master.run())]
        if self.standby is not None:
            out.append(("standby", self.standby.run()))
        for slave in self.slaves:
            for i, gen in enumerate(slave.processes()):
                kind = ("comm", "join")[i]
                out.append((f"slave{slave.node_id}.{kind}", gen))
        for i, gen in enumerate(self.collector.processes()):
            out.append((f"collector.recv{i}", gen))
        if self.sampler is not None:
            out.append(("sampler", self._sampler_loop()))
        return out

    def _samples_node(self, node_id: int) -> bool:
        return self.local_node is None or self.local_node == node_id

    # -- periodic gauge sampling ----------------------------------------------
    def _sample_all(self, now: float) -> None:
        """Record one gauge sample per node (and trace it when on)."""
        sampler, tracer = self.sampler, self.tracer
        assert sampler is not None
        cfg = self.master.cfg
        for slave in self.slaves:
            if not self._samples_node(slave.node_id):
                continue
            module, metrics = slave.module, slave.metrics
            gauges = {
                "occupancy": module.occupancy(cfg.slave_buffer_bytes),
                "window_bytes": float(module.window_bytes),
                "pending_bytes": float(module.pending_bytes),
                "queue_depth": float(len(slave.work_queue)),
                "cpu_total": metrics.cpu_total,
                "cpu_probe": metrics.cpu_probe,
            }
            for gauge, value in gauges.items():
                sampler.observe(now, slave.node_id, gauge, value)
            if tracer.enabled:
                tracer.emit(
                    SampleEvent(t=now, node=slave.node_id, gauges=gauges)
                )
        if self._samples_node(MASTER_ID):
            master_gauges = {"buffer_bytes": float(self.buffer.total_bytes)}
            sampler.observe(
                now, MASTER_ID, "buffer_bytes", self.buffer.total_bytes
            )
            if tracer.enabled:
                tracer.emit(
                    SampleEvent(t=now, node=MASTER_ID, gauges=master_gauges)
                )
        if self._samples_node(COLLECTOR_ID):
            # One gauge from the collector too, so a merged distributed
            # trace provably contains every node pid.
            collector_gauges = {"outputs": float(self.collector.delays.count)}
            sampler.observe(
                now, COLLECTOR_ID, "outputs", self.collector.delays.count
            )
            if tracer.enabled:
                tracer.emit(
                    SampleEvent(t=now, node=COLLECTOR_ID, gauges=collector_gauges)
                )

    def _sampler_loop(self) -> t.Generator:
        """Sampling process: reads state, never mutates it, terminates.

        Ticks are offset by half a period so they never coincide with
        epoch boundaries — sampling must not perturb the ordering of
        the simulation's own events.
        """
        sampler = self.sampler
        assert sampler is not None
        rt, cfg = self.master.rt, self.master.cfg
        tick = sampler.period / 2.0
        while tick <= cfg.run_seconds + 1e-9:
            yield rt.sleep_until(tick)
            self._sample_all(rt.now())
            tick += sampler.period


def geometry_of(cfg: SystemConfig) -> JoinGeometry:
    # Fail fast on unknown kernels — every window of every slave would
    # otherwise raise deep inside a work unit.  The n-way composite
    # prober has a single probe strategy of its own, so non-default
    # kernels are a two-stream feature.
    get_kernel(cfg.kernel)
    if cfg.n_streams != 2 and cfg.kernel != "blocknlj":
        raise ConfigError(
            f"kernel {cfg.kernel!r} requires n_streams=2 "
            "(the n-way composite prober has its own probe strategy)"
        )
    return JoinGeometry(
        tuples_per_block=cfg.tuples_per_block,
        block_bytes=cfg.block_bytes,
        theta_bytes=cfg.theta_bytes,
        window_seconds=cfg.window_seconds,
        fine_tuning=cfg.fine_tuning,
        tuple_bytes=cfg.tuple_bytes,
        n_streams=cfg.n_streams,
        kernel=cfg.kernel,
    )


def trace_meta(cfg: SystemConfig) -> dict[str, t.Any]:
    """Config summary stamped into JSONL trace headers."""
    return {
        "rate": cfg.rate,
        "slaves": cfg.num_slaves,
        "npart": cfg.npart,
        "window_s": cfg.window_seconds,
        "run_s": cfg.run_seconds,
        "scale": cfg.scale,
        "seed": cfg.seed,
        "fine_tuning": cfg.fine_tuning,
        "adaptive": cfg.adaptive_declustering,
    }


def build_cluster(
    cfg: SystemConfig,
    runtime: t.Any,
    transport: t.Any,
    workload: t.Any = None,
    collect_pairs: bool = False,
    tracer: Tracer | None = None,
    faults: "FaultInjector | None" = None,
    local_node: int | None = None,
) -> Cluster:
    """Wire a full cluster on the given runtime/transport backends.

    ``transport`` must provide ``endpoint(node_id, stats)``;
    ``runtime`` must satisfy :class:`~repro.runtime.base.Runtime` plus
    ``make_lock``/``make_queue``.  ``tracer`` overrides the one built
    from ``cfg.obs`` (the system layer shares it with the transport).
    ``faults`` is the run's shared fault injector (slaves consult it
    for CPU slowdowns; the system layer wires the same object into the
    transport and spawns its crash processes).  ``local_node`` marks a
    process-backend child: only that node's gauges are sampled here.
    """
    cfg = cfg.validated()
    gate = MeasurementWindow(cfg.warmup_seconds, cfg.run_seconds)
    rng = RngRegistry(cfg.seed)
    if tracer is None:
        tracer = build_tracer(cfg.obs, meta=trace_meta(cfg))
    sampler = (
        TimeSeriesSampler(cfg.obs.sample_period, cfg.obs.reservoir_capacity)
        if cfg.obs.sample_period is not None
        else None
    )
    metrics_on = cfg.obs.metrics_enabled
    registries: dict[int, MetricsRegistry] = {}

    def registry_for(node_id: int) -> MetricsRegistry:
        # A process-backend child registers only its own node: foreign
        # node objects exist here but never run, and a registry full of
        # zeros would pollute the merged cluster snapshot.
        if not metrics_on or (local_node is not None and node_id != local_node):
            return NULL_REGISTRY
        registry = MetricsRegistry(node_id)
        registries[node_id] = registry
        return registry
    supplied_workload = workload
    workload = workload or TwoStreamWorkload.poisson_bmodel(
        rng, cfg.rate, cfg.b_skew, cfg.key_domain, n_streams=cfg.n_streams
    )
    geometry = geometry_of(cfg)

    slave_ids = [slave_node_id(i) for i in range(cfg.num_slaves)]
    active_ids = slave_ids[: cfg.n_active_initial]
    schedules = build_schedules(active_ids, cfg.num_subgroups, cfg.dist_epoch)
    standby_id = standby_node_id(cfg) if cfg.standby else None

    buffer = MasterBuffer(cfg.npart, cfg.tuple_bytes)
    buffer.assign_round_robin(active_ids)

    master_metrics = MasterMetrics(gate, registry=registry_for(MASTER_ID))
    master = MasterNode(
        cfg,
        runtime,
        Communicator(transport.endpoint(MASTER_ID, master_metrics)),
        buffer,
        workload,
        DeclusteringController(cfg, rng.get("controller"), tracer=tracer),
        master_metrics,
        slave_ids,
        COLLECTOR_ID,
        tracer=tracer,
        standby_id=standby_id,
    )

    standby: StandbyNode | None = None
    if standby_id is not None:
        # The standby hosts a *dormant* shadow master over its own
        # buffer, workload replica and controller substream — all built
        # exactly like the real master's, so the mirrored state starts
        # identical and the op-log replay keeps it so.  The shadow
        # shares the standby's communicator: after a takeover its
        # messages originate from the standby's node id.
        if supplied_workload is None:
            shadow_workload: t.Any = TwoStreamWorkload.poisson_bmodel(
                RngRegistry(cfg.seed),
                cfg.rate,
                cfg.b_skew,
                cfg.key_domain,
                n_streams=cfg.n_streams,
            )
        elif hasattr(supplied_workload, "replica"):
            shadow_workload = supplied_workload.replica()
        else:
            raise ConfigError(
                "standby=True needs a replicable workload: pass one with "
                "a .replica() method (e.g. TraceReplayer) or let "
                "build_cluster construct the default workload"
            )
        shadow_buffer = MasterBuffer(cfg.npart, cfg.tuple_bytes)
        shadow_buffer.assign_round_robin(active_ids)
        standby_metrics = MasterMetrics(gate, registry=registry_for(standby_id))
        standby_comm = Communicator(
            transport.endpoint(standby_id, standby_metrics)
        )
        shadow_master = MasterNode(
            cfg,
            runtime,
            standby_comm,
            shadow_buffer,
            shadow_workload,
            DeclusteringController(
                cfg, RngRegistry(cfg.seed).get("controller"), tracer=tracer
            ),
            standby_metrics,
            slave_ids,
            COLLECTOR_ID,
            tracer=tracer,
            standby_id=None,
        )
        standby = StandbyNode(
            standby_id,
            cfg,
            runtime,
            standby_comm,
            shadow_master,
            MASTER_ID,
            tracer=tracer,
        )

    slaves: list[SlaveNode] = []
    slave_metrics: list[SlaveMetrics] = []
    for index, node_id in enumerate(slave_ids):
        metrics = SlaveMetrics(node_id, gate, registry=registry_for(node_id))
        module = JoinModule(
            node_id,
            geometry,
            CostModel(cfg.cost, speed=cfg.speed_of(index)),
            cfg.npart,
            metrics,
            collect_pairs=collect_pairs,
            memory_bytes=cfg.slave_memory_bytes,
            tracer=tracer,
            now_fn=runtime.now,
        )
        for pid in buffer.pids_of(node_id):
            module.add_partition(pid)
        slaves.append(
            SlaveNode(
                node_id,
                cfg,
                runtime,
                Communicator(transport.endpoint(node_id, metrics)),
                module,
                metrics,
                MASTER_ID,
                COLLECTOR_ID,
                schedules.get(node_id),
                active=node_id in active_ids,
                tracer=tracer,
                faults=faults,
                standby_id=standby_id,
            )
        )
        slave_metrics.append(metrics)

    collector_metrics = CollectorMetrics(gate)
    collector = CollectorNode(
        COLLECTOR_ID,
        Communicator(transport.endpoint(COLLECTOR_ID, collector_metrics)),
        collector_metrics,
        slave_ids,
    )

    return Cluster(
        master,
        slaves,
        collector,
        master_metrics,
        slave_metrics,
        collector_metrics,
        buffer,
        workload,
        gate,
        tracer,
        sampler,
        faults,
        registries,
        local_node,
        standby,
    )
