"""The hash-index join kernel: incremental insert, lazy bulk expiry.

Structure (IBWJ / PanJoin lineage, PAPERS.md): one hash bucket per
join key, each bucket a growable int64 vector of the committed SoA's
*logical positions* (:attr:`~repro.data.soa.GrowableSoA.appended_total`
counts them; see the "logical positions" note there).  Logical ids
survive the SoA's internal rebases, so the index needs no mutation
hooks at all:

* **Incremental insert** — the kernel remembers the highest logical id
  it has indexed (``_synced``) and, on the next probe (or explicitly
  at commit time via :meth:`sync`), indexes exactly the tuples
  appended since.  A commit of one head block costs one small argsort
  plus a few bucket appends, never a re-sort of the window.
* **Lazy bulk expiry** — the join module's expiry watermark advances
  :attr:`~repro.data.soa.GrowableSoA.expired_total`; the index does
  *nothing* at that moment.  Bucket prefixes with ids below the live
  floor are skipped per probe (ids are append-ordered, so dead
  entries are always a prefix — a binary search), and a full sweep
  reclaims memory only once the dead total exceeds the live window
  (:data:`SWEEP_MIN_DEAD`).  The *visible* cutoff is therefore
  byte-identical to block-NLJ's: both kernels read candidates straight
  from the same SoA view, so a tuple expiring exactly at the watermark
  is excluded from (or retained by) both in the same probe.
* **Vectorized probes** — per probe batch, candidate id vectors are
  gathered per key (one dict lookup per probe tuple), concatenated,
  and the window predicate ``|cand.ts - probe.ts| <= W`` (inclusive)
  is evaluated in one vector pass, exactly like the sorted baseline.

The simulated CPU charge reflects what the structure touches: a hash
lookup per probe tuple plus the candidate bytes actually gathered
(:meth:`~repro.core.costmodel.CostModel.indexed_probe_cost`), not the
full-window scan of the block-NLJ model.
"""

from __future__ import annotations

import typing as t

import numpy as np

from repro.core.kernels import JoinKernel
from repro.core.probe import ProbeResult

if t.TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.costmodel import CostModel
    from repro.core.window import StreamWindow

#: A sweep only runs once at least this many dead ids have accumulated
#: since the last one (and the dead total exceeds the live window):
#: tiny windows should not pay per-expiry index maintenance.
SWEEP_MIN_DEAD: t.Final = 1024

_EMPTY_TS: t.Final[np.ndarray] = np.empty(0, dtype=np.float64)
_EMPTY_PAIRS: t.Final[np.ndarray] = np.empty((0, 2), dtype=np.int64)
_EMPTY_IDS: t.Final[np.ndarray] = np.empty(0, dtype=np.int64)


class _Bucket:
    """Growable vector of ascending logical ids for one join key."""

    __slots__ = ("ids", "n", "start")

    ids: np.ndarray
    n: int
    start: int

    def __init__(self, capacity: int = 4) -> None:
        self.ids = np.empty(capacity, dtype=np.int64)
        self.n = 0
        self.start = 0

    def append(self, new_ids: np.ndarray) -> None:
        k = len(new_ids)
        needed = self.n + k
        if needed > len(self.ids):
            grown = np.empty(max(needed, 2 * len(self.ids)), dtype=np.int64)
            grown[: self.n] = self.ids[: self.n]
            self.ids = grown
        self.ids[self.n : self.n + k] = new_ids
        self.n = needed

    def live(self, floor: int) -> np.ndarray:
        """View of the ids ``>= floor``, pruning the dead prefix.

        Ids are ascending (append order == temporal order within one
        SoA) and expiry removes a temporal prefix, so dead entries are
        exactly the ids below *floor*.
        """
        if self.start < self.n and int(self.ids[self.start]) < floor:
            self.start = int(
                np.searchsorted(self.ids[: self.n], floor, side="left")
            )
        return self.ids[self.start : self.n]

    def compact(self, floor: int) -> int:
        """Drop dead entries for good; returns the live count."""
        live = self.live(floor)
        if self.start:
            self.ids = live.copy() if len(live) else np.empty(4, dtype=np.int64)
            self.n = len(live)
            self.start = 0
        return self.n


class IndexedKernel(JoinKernel):
    """Hash index over committed window contents (``kernel="indexed"``)."""

    name: t.ClassVar[str] = "indexed"

    def __init__(self, window: "StreamWindow") -> None:
        super().__init__(window)
        self._buckets: dict[int, _Bucket] = {}
        #: Logical id up to which the index covers the SoA.
        self._synced = 0
        #: ``expired_total`` at the last full sweep.
        self._swept = 0

    # -- maintenance -------------------------------------------------------
    def sync(self) -> None:
        """Index every committed tuple appended since the last sync.

        Called from probes (so the index is always complete when read)
        and from :meth:`~repro.core.window.StreamWindow.commit_fresh`
        (so insert cost is paid incrementally at commit time, the IBWJ
        structure's contract).
        """
        soa = self.window.committed
        appended = int(soa.appended_total)
        expired = int(soa.expired_total)
        lo = max(self._synced, expired)
        if lo < appended:
            offset = lo - expired
            keys = soa.key[offset:]
            ids = np.arange(lo, appended, dtype=np.int64)
            order = np.argsort(keys, kind="stable")
            sorted_keys = keys[order]
            sorted_ids = ids[order]
            # Equal-key runs -> one bucket append per distinct key.
            starts = np.flatnonzero(
                np.r_[True, sorted_keys[1:] != sorted_keys[:-1]]
            )
            ends = np.r_[starts[1:], len(sorted_keys)]
            buckets = self._buckets
            for s, e in zip(starts.tolist(), ends.tolist()):
                key = int(sorted_keys[s])
                bucket = buckets.get(key)
                if bucket is None:
                    bucket = buckets[key] = _Bucket()
                bucket.append(sorted_ids[s:e])
        self._synced = appended
        self._maybe_sweep()

    def _maybe_sweep(self) -> None:
        """Bulk-reclaim dead index entries once they outweigh the live
        window (the lazy-expiry compaction pass)."""
        soa = self.window.committed
        expired = int(soa.expired_total)
        dead = expired - self._swept
        if dead < SWEEP_MIN_DEAD or dead <= len(soa):
            return
        buckets = self._buckets
        for key in [k for k, b in buckets.items() if b.compact(expired) == 0]:
            del buckets[key]
        self._swept = expired

    def on_commit(self) -> None:
        self.sync()

    def warm(self) -> None:
        self.sync()

    # -- probing -----------------------------------------------------------
    def _gather(
        self, probe_key: np.ndarray
    ) -> tuple[np.ndarray, list[np.ndarray]]:
        """Per-probe-tuple live candidate counts + id chunks."""
        self.sync()
        floor = int(self.window.committed.expired_total)
        counts = np.zeros(len(probe_key), dtype=np.int64)
        chunks: list[np.ndarray] = []
        buckets = self._buckets
        for i, key in enumerate(probe_key.tolist()):
            bucket = buckets.get(key)
            if bucket is None:
                continue
            ids = bucket.live(floor)
            if len(ids):
                counts[i] = len(ids)
                chunks.append(ids)
        return counts, chunks

    def probe(
        self,
        probe_ts: np.ndarray,
        probe_key: np.ndarray,
        probe_seq: np.ndarray,
        window_seconds: float,
        collect_pairs: bool = False,
    ) -> ProbeResult:
        soa = self.window.committed
        if len(probe_key) == 0 or len(soa) == 0:
            return ProbeResult(
                0, _EMPTY_TS, _EMPTY_PAIRS if collect_pairs else None
            )
        counts, chunks = self._gather(probe_key)
        total = int(counts.sum())
        if total == 0:
            return ProbeResult(
                0, _EMPTY_TS, _EMPTY_PAIRS if collect_pairs else None
            )

        floor = int(soa.expired_total)
        positions = (
            np.concatenate(chunks) if chunks else _EMPTY_IDS
        ) - floor
        owner = np.repeat(np.arange(len(probe_key)), counts)

        cand_ts = soa.ts[positions]
        own_ts = probe_ts[owner]
        valid = np.abs(cand_ts - own_ts) <= window_seconds
        n_pairs = int(np.count_nonzero(valid))
        if n_pairs == 0:
            return ProbeResult(
                0, _EMPTY_TS, _EMPTY_PAIRS if collect_pairs else None
            )

        newer = np.maximum(cand_ts[valid], own_ts[valid])
        pairs: np.ndarray | None = None
        if collect_pairs:
            pairs = np.column_stack(
                (probe_seq[owner[valid]], soa.seq[positions[valid]])
            ).astype(np.int64)
        return ProbeResult(n_pairs, newer, pairs)

    # -- costing -----------------------------------------------------------
    def probe_scan_bytes(self, probe_key: np.ndarray, tuple_bytes: int) -> int:
        # Tuple granularity, not block granularity: the index gathers
        # exactly the candidate tuples, wherever they sit.
        counts, _chunks = self._gather(probe_key)
        return int(counts.sum()) * int(tuple_bytes)

    @staticmethod
    def probe_cost(
        model: "CostModel",
        n_probe_tuples: int,
        scanned_bytes: int,
        spilled_bytes: int,
    ) -> float:
        return model.indexed_probe_cost(
            n_probe_tuples, scanned_bytes, spilled_bytes
        )

    # -- introspection (tests, benchmarks) ----------------------------------
    @property
    def n_buckets(self) -> int:
        return len(self._buckets)

    @property
    def n_indexed(self) -> int:
        """Index entries currently held, including unswept dead ones."""
        return sum(b.n - b.start for b in self._buckets.values())
