"""The baseline block-NLJ kernel: sorted-key snapshot + binary search.

This is the seed system's probe path extracted behind the kernel
interface: the committed window keeps a lazily rebuilt sorted-by-key
snapshot (:meth:`~repro.core.window.StreamWindow.sorted_view`), every
probe binary-searches it, and any mutation of the committed store
invalidates the whole snapshot.  The *computed result* is exact; the
*charged* simulated CPU follows the paper's block nested-loop scan
model — every probing tuple pays for every committed block scanned
(:meth:`~repro.core.costmodel.CostModel.probe_cost`).

The full re-sort on every commit is what makes this kernel quadratic
over a run at large windows and what the ``indexed`` kernel removes.
"""

from __future__ import annotations

import typing as t

import numpy as np

from repro.core.kernels import JoinKernel
from repro.core.probe import ProbeResult, probe_sorted

if t.TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.costmodel import CostModel


class BlockNLJKernel(JoinKernel):
    """Sorted-key probe over the committed window (the seed baseline)."""

    name: t.ClassVar[str] = "blocknlj"

    def probe(
        self,
        probe_ts: np.ndarray,
        probe_key: np.ndarray,
        probe_seq: np.ndarray,
        window_seconds: float,
        collect_pairs: bool = False,
    ) -> ProbeResult:
        sorted_key, sorted_ts, sorted_seq = self.window.sorted_view(
            need_seq=collect_pairs
        )
        return probe_sorted(
            probe_ts,
            probe_key,
            probe_seq,
            sorted_key,
            sorted_ts,
            sorted_seq,
            window_seconds,
            collect_pairs=collect_pairs,
        )

    def probe_scan_bytes(self, probe_key: np.ndarray, tuple_bytes: int) -> int:
        # Block-NLJ scans the committed blocks wholesale, whatever the
        # probe keys are; block granularity matches the paper's model.
        return int(self.window.committed_bytes)

    @staticmethod
    def probe_cost(
        model: "CostModel",
        n_probe_tuples: int,
        scanned_bytes: int,
        spilled_bytes: int,
    ) -> float:
        return model.probe_cost(n_probe_tuples, scanned_bytes, spilled_bytes)

    def warm(self) -> None:
        self.window.sorted_view(need_seq=False)
