"""Pluggable indexed join kernels (ROADMAP item 1).

A *join kernel* is the per-window strategy that matches a batch of
fresh probe tuples against the committed contents of one stream's
window inside a mini-partition-group.  Kernels live in a registry
keyed by :attr:`~repro.config.SystemConfig.kernel`, mirroring the
runtime-backend registry in :mod:`repro.core.system`:

``blocknlj``
    The baseline: a lazily rebuilt sorted-by-key snapshot of the
    committed window, binary-searched per probe batch (the probe cost
    charged follows the paper's block nested-loop scan model).
``indexed``
    A per-window hash index (join key -> growable vector of SoA
    positions) with incremental insert on commit, numpy-vectorized
    batch probes and lazy bulk expiry driven by the join module's
    expiry watermark ("Parallel Index-based Stream Join on a Multicore
    CPU" / PanJoin, see PAPERS.md).

Every registered kernel must produce the *identical* joined-pair
multiset as the naive oracle for any input — the property suite in
``tests/core/test_kernel_equivalence.py`` and the kernel-matrix
benchmark (``benchmarks/bench_kernels.py``) enforce this; a kernel
whose output ever diverges is a bug, not a trade-off.

Kernels are node-local derived state: they are never serialized.
Replication checkpoints and partition moves ship only the window
contents (:class:`~repro.core.partition_group.PartitionGroupState`);
the consumer/restore side rebuilds its index from the installed SoA
(`warm`), which is lossless by construction.
"""

from __future__ import annotations

import abc
import typing as t

import numpy as np

from repro.core.probe import ProbeResult
from repro.errors import ConfigError

if t.TYPE_CHECKING:  # pragma: no cover - import cycle guard (window -> kernels)
    from repro.core.costmodel import CostModel
    from repro.core.window import StreamWindow

__all__ = [
    "JoinKernel",
    "register_kernel",
    "available_kernels",
    "get_kernel",
    "make_kernel",
]


class JoinKernel(abc.ABC):
    """Per-:class:`~repro.core.window.StreamWindow` probe strategy.

    One kernel instance is attached to each window and probes *that
    window's* committed tuples on behalf of the opposite stream's
    fresh head block.  Kernels may keep arbitrary derived state (sort
    snapshots, hash indexes) but the committed
    :class:`~repro.data.soa.GrowableSoA` remains the single source of
    truth — a kernel must behave identically after being rebuilt from
    it (:meth:`warm`), which is what makes crash restores lossless
    without ever shipping index bytes.
    """

    #: Registry name (subclasses override).
    name: t.ClassVar[str] = ""

    def __init__(self, window: "StreamWindow") -> None:
        self.window = window

    # -- probing ----------------------------------------------------------
    @abc.abstractmethod
    def probe(
        self,
        probe_ts: np.ndarray,
        probe_key: np.ndarray,
        probe_seq: np.ndarray,
        window_seconds: float,
        collect_pairs: bool = False,
    ) -> ProbeResult:
        """Match *probe* tuples against this window's committed tuples.

        Exact semantics (identical for every kernel): a committed tuple
        ``c`` matches probe tuple ``p`` iff ``c.key == p.key`` and
        ``|c.ts - p.ts| <= window_seconds`` — the boundary is
        *inclusive* on both sides.
        """

    # -- costing ----------------------------------------------------------
    @abc.abstractmethod
    def probe_scan_bytes(self, probe_key: np.ndarray, tuple_bytes: int) -> int:
        """Window bytes this kernel would touch probing *probe_key*.

        Drives the simulated CPU charge and the disk-spill fraction:
        block-NLJ scans every committed block; the indexed kernel
        touches only the candidate tuples its hash buckets return.
        """

    @staticmethod
    @abc.abstractmethod
    def probe_cost(
        model: "CostModel",
        n_probe_tuples: int,
        scanned_bytes: int,
        spilled_bytes: int,
    ) -> float:
        """Simulated CPU seconds for one probe of this kernel."""

    # -- lifecycle ---------------------------------------------------------
    def on_commit(self) -> None:
        """Hook fired after a head block commits into the window.

        Incremental kernels index the freshly committed tuples here so
        insert cost is paid at commit time; the default is nothing
        (the blocknlj snapshot is rebuilt lazily on the next probe).
        """

    def warm(self) -> None:
        """Eagerly (re)build derived state from the committed window.

        Called after a replication restore or a partition-group
        install so post-recovery probes run against a fully built
        index, exactly as on a crash-free node.  Default: nothing
        (kernels are free to stay fully lazy).
        """


_KERNELS: dict[str, type[JoinKernel]] = {}


def register_kernel(cls: type[JoinKernel]) -> type[JoinKernel]:
    """Register (or replace) a kernel class under ``cls.name``.

    Usable as a class decorator; returns *cls* unchanged.
    """
    if not cls.name:
        raise ValueError(f"kernel class {cls!r} must set a non-empty name")
    _KERNELS[cls.name] = cls
    return cls


def available_kernels() -> list[str]:
    """Registered kernel names, sorted."""
    return sorted(_KERNELS)


def get_kernel(name: str) -> type[JoinKernel]:
    """The kernel class registered under *name*.

    Raises :class:`~repro.errors.ConfigError` for unknown names,
    listing what is available (mirrors ``get_backend``).
    """
    cls = _KERNELS.get(name)
    if cls is None:
        raise ConfigError(
            f"unknown join kernel {name!r}; available: "
            f"{', '.join(available_kernels())}"
        )
    return cls


def make_kernel(name: str, window: "StreamWindow") -> JoinKernel:
    """Instantiate the kernel registered under *name* for *window*."""
    return get_kernel(name)(window)


# Register the built-in kernels.  Imports are at the bottom: both
# modules import this one for the base class/registry.
from repro.core.kernels.blocknlj import BlockNLJKernel  # noqa: E402
from repro.core.kernels.indexed import IndexedKernel  # noqa: E402

register_kernel(BlockNLJKernel)
register_kernel(IndexedKernel)
