"""Load classification, supplier/consumer pairing, and the adaptive
degree of declustering (Sections IV-C and V-A).

At every reorganization epoch the master:

1. classifies each active slave by its average buffer occupancy ``f``:
   **supplier** if ``f > Th_sup``, **consumer** if ``f < Th_con``,
   **neutral** otherwise;
2. adapts the degree of declustering when enabled —

   * *shrink* by one node when no supplier exists (the whole system is
     under-loaded; the paper keeps the system "minimally overloaded by
     ensuring at least one supplier");
   * *grow* by one node when ``N_sup > beta * N_con`` (too few
     consumers to absorb the suppliers' load);

3. pairs each supplier with a unique consumer by a single scan and has
   the supplier yield **one randomly selected partition-group**;
4. drains a deactivated node by moving *all* of its partition-groups to
   the remaining least-loaded non-supplier slaves, round-robin.
"""

from __future__ import annotations

import typing as t

import numpy as np

from repro.config import SystemConfig
from repro.core.protocol import MoveDirective
from repro.obs.events import ClassifyEvent
from repro.obs.tracer import NULL_TRACER, Tracer


class Classification(t.NamedTuple):
    suppliers: tuple[int, ...]
    consumers: tuple[int, ...]
    neutrals: tuple[int, ...]


class ReorgPlan(t.NamedTuple):
    """Everything the master decides at one reorganization epoch."""

    moves: tuple[MoveDirective, ...]
    activate: tuple[int, ...]
    deactivate: tuple[int, ...]
    classification: Classification

    @property
    def participants(self) -> tuple[int, ...]:
        nodes = {m.src for m in self.moves} | {m.dst for m in self.moves}
        return tuple(sorted(nodes))


class DeclusteringController:
    """The master's reorganization policy."""

    def __init__(
        self,
        cfg: SystemConfig,
        rng: np.random.Generator,
        tracer: Tracer = NULL_TRACER,
    ) -> None:
        self.cfg = cfg
        self.rng = rng
        self.tracer = tracer

    # -- step 1: classification -------------------------------------------
    def classify(self, occupancy: t.Mapping[int, float]) -> Classification:
        suppliers, consumers, neutrals = [], [], []
        for node in sorted(occupancy):
            f = occupancy[node]
            if f > self.cfg.th_sup:
                suppliers.append(node)
            elif f < self.cfg.th_con:
                consumers.append(node)
            else:
                neutrals.append(node)
        return Classification(tuple(suppliers), tuple(consumers), tuple(neutrals))

    # -- steps 2-4: the full plan ----------------------------------------------
    def plan(
        self,
        occupancy: t.Mapping[int, float],
        inactive: t.Sequence[int],
        ownership: t.Mapping[int, t.Sequence[int]],
        now: float = 0.0,
        epoch: int = -1,
    ) -> ReorgPlan:
        """Decide moves and degree-of-declustering changes.

        ``occupancy`` maps each *active* slave to its reported average
        buffer occupancy; ``ownership`` maps each active slave to the
        partition ids it currently holds.  ``now``/``epoch`` only stamp
        the emitted ``classify`` trace event.
        """
        cls = self.classify(occupancy)
        if self.tracer.enabled:
            self.tracer.emit(
                ClassifyEvent(
                    t=now,
                    node=0,
                    epoch=epoch,
                    suppliers=cls.suppliers,
                    consumers=cls.consumers,
                    neutrals=cls.neutrals,
                    occupancy={n: float(f) for n, f in sorted(occupancy.items())},
                )
            )
        activate: list[int] = []
        deactivate: list[int] = []

        if self.cfg.adaptive_declustering:
            n_sup, n_con = len(cls.suppliers), len(cls.consumers)
            if n_sup == 0 and len(occupancy) > 1:
                candidates = list(cls.consumers) or list(cls.neutrals)
                if candidates:
                    victim = min(candidates, key=lambda s: (occupancy[s], s))
                    deactivate.append(victim)
            elif n_sup > self.cfg.beta * n_con and inactive:
                activate.append(min(inactive))

        moves: list[MoveDirective] = []

        # Supplier -> consumer moves (one group per supplier).  Newly
        # activated nodes join the consumer pool with occupancy 0.
        if self.cfg.load_balancing:
            consumer_pool = [
                c for c in cls.consumers if c not in deactivate
            ] + activate
            for supplier, consumer in zip(cls.suppliers, consumer_pool):
                pids = list(ownership.get(supplier, ()))
                if not pids:
                    continue
                pid = int(self.rng.choice(pids))
                moves.append(MoveDirective(pid, supplier, consumer))

        # Drain deactivated nodes entirely.
        for victim in deactivate:
            survivors = [
                s
                for s in sorted(occupancy)
                if s != victim and s not in cls.suppliers
            ] or [s for s in sorted(occupancy) if s != victim]
            survivors.sort(key=lambda s: (occupancy[s], s))
            for i, pid in enumerate(sorted(ownership.get(victim, ()))):
                moves.append(
                    MoveDirective(int(pid), victim, survivors[i % len(survivors)])
                )

        return ReorgPlan(tuple(moves), tuple(activate), tuple(deactivate), cls)

    # -- failure recovery (fault plane) -----------------------------------
    def plan_recovery(
        self,
        lost_pids: t.Sequence[int],
        occupancy: t.Mapping[int, float],
    ) -> dict[int, tuple[int, ...]]:
        """Reassign a dead slave's partition-groups to the survivors.

        Uses the same discipline as draining a deactivated node —
        round-robin over survivors ordered by reported occupancy — but
        is deterministic (no rng draw: recovery must replay identically
        regardless of how many load-balancing decisions preceded it).
        Returns ``{survivor: (pid, ...)}``; empty when no survivor
        exists.
        """
        survivors = sorted(occupancy, key=lambda s: (occupancy[s], s))
        if not survivors:
            return {}
        adopt: dict[int, list[int]] = {}
        for i, pid in enumerate(sorted(lost_pids)):
            adopt.setdefault(survivors[i % len(survivors)], []).append(int(pid))
        return {s: tuple(pids) for s, pids in adopt.items()}


# -- replication placement (module-level: rng-free and deterministic) -----
def plan_backups(
    owners: t.Mapping[int, int], live: t.Collection[int]
) -> dict[int, int]:
    """Backup slave for every partition: the next live slave after the
    owner in the sorted ring.

    Deterministic in ``(owners, live)`` so master and tests agree
    without any negotiated state.  Empty when fewer than two live
    slaves exist (nowhere independent to put a replica).
    """
    ring = sorted(live)
    if len(ring) < 2:
        return {}
    backups: dict[int, int] = {}
    for pid, owner in owners.items():
        if owner not in live:
            continue
        backups[int(pid)] = ring[(ring.index(owner) + 1) % len(ring)]
    return backups


def plan_restores(
    lost_pids: t.Sequence[int],
    backup_of: t.Mapping[int, int],
    live: t.Collection[int],
) -> tuple[dict[int, tuple[int, ...]], tuple[int, ...]]:
    """Route each lost partition to its live backup slave.

    Returns ``(restore_map, leftovers)``: ``restore_map`` maps each
    restoring slave to the pids it rebuilds from its backup store;
    ``leftovers`` are pids whose backup is dead or unassigned — they
    fall back to the empty-adoption path (:meth:`plan_recovery`).
    """
    restore: dict[int, list[int]] = {}
    leftovers: list[int] = []
    for pid in sorted(lost_pids):
        backup = backup_of.get(int(pid))
        if backup is not None and backup in live:
            restore.setdefault(backup, []).append(int(pid))
        else:
            leftovers.append(int(pid))
    return (
        {s: tuple(pids) for s, pids in restore.items()},
        tuple(leftovers),
    )
