"""Calibrated CPU cost model for the simulated slaves.

The join module computes *exact* join outputs, but the simulated time a
slave spends on a probe is charged by this model, which represents the
paper's testbed (two Pentium III 930 MHz CPUs per node, Java/mpiJava
stack).

Model
-----
A probe of ``n`` fresh tuples that block-nested-loop scans ``s`` bytes
of the opposite (mini-)partition costs::

    cost = tuple_cost * n + scan_byte_cost * s          [CPU seconds]

Calibration
-----------
Utilization of one slave at per-stream rate ``r`` with ``N`` active
slaves is ``(2 r / N) * (tuple_cost + scan_byte_cost * s̄)`` where
``s̄`` is the mean scanned size.  Anchors from the paper (N = 4,
Figures 7–10):

* **without** fine tuning the system crosses 100% utilization slightly
  below 4000 t/s (~3600), so that at 4000 the delay has visibly blown
  up as in Figure 8 (the paper reports ~48 s there) and the idle time
  of Figure 9 hits zero at 4000.  At 3600 t/s a partition holds
  ``3600 * 600 * 64 / 60 ≈ 2.30 MB`` per stream, giving
  ``1800 * (tuple_cost + scan_byte_cost * 2.30e6) = 1``;
* **with** fine tuning it saturates near r = 6000 t/s with the scanned
  mini-group bounded by ``[theta, 2 theta]`` (mean opposite-stream scan
  ≈ 1.125 MB), giving ``3000 * (tuple_cost + scan_byte_cost * 1.125e6) = 1``.

Solving the two equations yields ``tuple_cost ≈ 1.21e-4`` s and
``scan_byte_cost ≈ 1.885e-10`` s/B — the defaults in
:class:`~repro.config.CostModelConfig`.  These also land the tuned
single-slave saturation near 1500 t/s, the 2-slave point near 3000 and
the 5-slave point near 7500, matching Figures 5 and 6.
"""

from __future__ import annotations

from repro.config import CostModelConfig


class CostModel:
    """Maps join-module work to simulated CPU seconds.

    ``speed`` models a non-dedicated node: the fraction of the CPU
    available to the join (background applications consume the rest).
    All costs scale by ``1/speed``.
    """

    __slots__ = ("cfg", "speed")

    def __init__(self, cfg: CostModelConfig, speed: float = 1.0) -> None:
        if speed <= 0:
            raise ValueError(f"speed must be positive: {speed!r}")
        self.cfg = cfg.validated()
        self.speed = float(speed)

    def probe_cost(
        self,
        n_probe_tuples: int,
        scanned_bytes: int,
        spilled_bytes: int = 0,
    ) -> float:
        """Block-NLJ probe of *n* fresh tuples over *scanned_bytes*.

        The comparison work of a block nested-loop join is the cross
        product: every probing tuple is compared against every scanned
        byte's tuple, so the scan term scales with ``n * bytes``.
        ``spilled_bytes`` of the scan live on disk (memory-limited
        nodes) and are read back once per probe block.
        """
        if n_probe_tuples == 0:
            return 0.0
        cpu = (
            self.cfg.tuple_cost
            + self.cfg.scan_byte_cost * scanned_bytes
        ) * n_probe_tuples
        disk = self.cfg.disk_read_byte_cost * spilled_bytes
        return (cpu + disk) / self.speed

    def indexed_probe_cost(
        self,
        n_probe_tuples: int,
        candidate_bytes: int,
        spilled_bytes: int = 0,
    ) -> float:
        """Hash-index probe of *n* fresh tuples gathering *candidate_bytes*.

        Each probing tuple pays one hash lookup
        (:attr:`~repro.config.CostModelConfig.index_lookup_cost`) on top
        of the fixed per-tuple cost; the scan term covers only the
        candidate tuples the buckets return — crucially *not* multiplied
        by ``n``, since each candidate is touched once, not once per
        probing tuple.  This is the cost asymmetry that makes the
        ``indexed`` kernel's simulated time drop with window size
        relative to the block-NLJ model.
        """
        if n_probe_tuples == 0:
            return 0.0
        cpu = (
            self.cfg.tuple_cost + self.cfg.index_lookup_cost
        ) * n_probe_tuples + self.cfg.scan_byte_cost * candidate_bytes
        disk = self.cfg.disk_read_byte_cost * spilled_bytes
        return (cpu + disk) / self.speed

    def expire_cost(self, expired_bytes: int) -> float:
        """Dropping expired blocks from the front of windows."""
        return self.cfg.expire_byte_cost * expired_bytes / self.speed

    def tuning_cost(self, moved_bytes: int) -> float:
        """Splitting or merging a mini-partition-group in memory."""
        return self.cfg.state_move_byte_cost * moved_bytes / self.speed

    def state_move_cost(self, moved_bytes: int) -> float:
        """Extracting/installing a partition-group during migration
        (charged on each of the two participating slaves)."""
        return self.cfg.state_move_byte_cost * moved_bytes / self.speed

    def slave_capacity_estimate(
        self,
        rate_per_stream: float,
        n_active: int,
        mean_scan_bytes: float,
    ) -> float:
        """Analytic utilization estimate (used by tests and docs)."""
        per_tuple = self.cfg.tuple_cost + self.cfg.scan_byte_cost * mean_scan_bytes
        return (2.0 * rate_per_stream / n_active) * per_tuple
