"""The slave node (Figure 2's right-hand box).

A slave runs **two cooperating processes**, mirroring the paper's
software components (each node of the testbed has two CPUs):

* the **comm module** (:meth:`SlaveNode.comm_loop`) follows the fixed
  communication schedule: at its slot of every distribution epoch it
  sends a :class:`~repro.core.protocol.SlaveSync` (carrying the load
  report), receives the epoch's shipment, and forwards per-epoch result
  statistics to the collector.  At reorganization epochs it executes
  the state-movement protocol (supplier and/or consumer role) and acts
  on degree-of-declustering orders.  An inactive slave blocks waiting
  for :class:`~repro.core.protocol.Activate`.

* the **join module driver** (:meth:`SlaveNode.join_loop`) consumes
  shipments from an internal queue and executes the join module's work
  units, charging their modeled CPU cost to virtual time.

The two share the join state under a lock; the comm module only touches
it for state moves, so a long processing pass delays a state move — as
it would on the real system — but never deadlocks.

Fault plane: a slave wired to a :class:`~repro.faults.injector.
FaultInjector` routes every CPU charge through it (planned slowdowns);
a consumer whose supplier died mid-transfer adopts the partition-group
with empty window state (the :class:`~repro.faults.markers.NodeDown`
marker replaces the :class:`~repro.core.protocol.StateTransfer`) and
still acknowledges, keeping the master's ack count exact.  Recovery
orders (``ReorgOrder.adopt``) can arrive at *plain* epochs too.
"""

from __future__ import annotations

import typing as t

from repro.config import SystemConfig
from repro.faults.markers import NodeDown, RecvTimeout, peer_silent
from repro.core.join_module import JoinModule
from repro.core.metrics import SlaveMetrics
from repro.core.protocol import (
    Activate,
    Checkpoint,
    Halt,
    LoadReport,
    MoveAck,
    MoveDirective,
    Rejoin,
    ReorgOrder,
    Replicate,
    ResultReport,
    Restore,
    Shipment,
    SlaveSync,
    StateTransfer,
    TakeOver,
)
from repro.core.subgroups import SlotSchedule
from repro.mp.comm import Communicator
from repro.obs.events import DrainEvent, StateMoveEvent
from repro.obs.tracer import NULL_TRACER, Tracer
from repro.replication import BackupStore

if t.TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.faults.injector import FaultInjector

#: Sentinel waking the join loop for shutdown.
HALT_TOKEN = object()
#: Sentinel waking the join loop to look for newly buffered work.
WAKE_TOKEN = object()

_CPU_KIND = {"probe": "probe", "expire": "expire", "tune": "tune"}


class SlaveNode:
    """One slave: comm loop + join loop over a shared join module."""

    def __init__(
        self,
        node_id: int,
        cfg: SystemConfig,
        runtime: t.Any,
        comm: Communicator,
        module: JoinModule,
        metrics: SlaveMetrics,
        master_id: int,
        collector_id: int,
        schedule: SlotSchedule | None,
        active: bool,
        tracer: Tracer = NULL_TRACER,
        faults: "FaultInjector | None" = None,
        standby_id: int | None = None,
    ) -> None:
        self.node_id = node_id
        self.cfg = cfg
        self.rt = runtime
        self.comm = comm
        self.module = module
        self.metrics = metrics
        self.tracer = tracer
        self.master_id = master_id
        self.collector_id = collector_id
        self.schedule = schedule
        self.active = active
        self.faults = faults
        self.epoch = 0
        # Share the module's cost model so a non-dedicated slave's
        # reduced speed also applies to its state-move work.
        self.cost_model = module.cost_model
        self.lock = runtime.make_lock(f"slave{node_id}.state")
        self.work_queue = runtime.make_queue(f"slave{node_id}.work")
        #: Replicated checkpoint + log images this slave backs up for
        #: its ring neighbour (``None`` with replication off).
        self.replication = cfg.replication != "off"
        self.backup_store: BackupStore | None = (
            BackupStore() if self.replication else None
        )
        self._halted = False
        self._occ_sum = 0.0
        self._occ_n = 0
        self._last_occ = 0.0
        # -- master-failover state (all inert without a standby) --------
        self.standby_id = standby_id
        #: Receives from *peers* (not the master) are only allowed to
        #: block forever when no standby exists: with one, a dead master
        #: can strand a consumer waiting on a never-ordered supplier.
        self._peer_timeout: float | None = (
            cfg.faults.effective_timeout(cfg.dist_epoch)
            if standby_id is not None and cfg.faults.enabled
            else None
        )
        self._took_over = False
        self._last_shipment_epoch = -1
        self._last_order_epoch = -1
        #: Pair chunks surrendered to the master (supplier MoveAcks and
        #: checkpoints) that a master crash may not have banked yet,
        #: keyed ``(pid, epoch)``.  Pruned when a later master message
        #: proves the round was banked; resent in :class:`Rejoin`.
        self._limbo_pairs: dict[tuple[int, int], t.Any] = {}
        #: Incoming moves of an aborted order whose transfers were not
        #: yet installed when we detected master death mid-consume.
        self._pending_in_left: list[MoveDirective] | None = None

    # ------------------------------------------------------------------
    def processes(self) -> list[t.Generator]:
        return [self.comm_loop(), self.join_loop()]

    @property
    def _reorg_every(self) -> int:
        return max(1, round(self.cfg.reorg_epoch / self.cfg.dist_epoch))

    def _is_reorg_epoch(self, k: int) -> bool:
        return (k + 1) % self._reorg_every == 0

    def _cpu_cost(self, cost: float) -> float:
        """Modeled CPU seconds with planned slowdowns applied."""
        if self.faults is None:
            return cost
        return self.faults.scaled_cpu(self.node_id, self.rt.now(), cost)

    # -- join loop ------------------------------------------------------
    def join_loop(self) -> t.Generator:
        rt, metrics = self.rt, self.metrics
        while True:
            token = yield self.work_queue.get()
            if token is HALT_TOKEN:
                return
            if not self.module.has_work:
                continue
            yield self.lock.acquire()
            for unit in self.module.work_units():
                t0 = rt.now()
                yield rt.cpu(self._cpu_cost(unit.cost))
                t1 = rt.now()
                metrics.charge_cpu(_CPU_KIND[unit.kind], t0, t1)
                unit.execute(t1)
            metrics.sample_window(rt.now(), self.module.window_bytes)
            self.lock.release()
            if self.module.has_work:
                # Backlog remains (a pass is bounded): re-arm ourselves
                # so draining continues after state moves had a chance
                # to take the lock.
                yield self.work_queue.put(WAKE_TOKEN)
            elif self.tracer.enabled:
                self.tracer.emit(
                    DrainEvent(
                        t=rt.now(),
                        node=self.node_id,
                        epoch=self.epoch,
                        window_bytes=self.module.window_bytes,
                    )
                )

    # -- comm loop ---------------------------------------------------------
    def comm_loop(self) -> t.Generator:
        rt, comm, td = self.rt, self.comm, self.cfg.dist_epoch
        while not self._halted:
            if not self.active:
                msg = yield from comm.recv_expect(self.master_id, Activate, Halt)
                if peer_silent(msg):
                    halted = yield from self._master_silent()
                    if halted:
                        yield from self._shutdown()
                        return
                    self._took_over = False
                    continue
                if isinstance(msg, Halt):
                    yield from self._shutdown()
                    return
                # Join the cluster: adopt the master's epoch counter and
                # slot schedule, then take part in the current
                # reorganization as a consumer.
                self.epoch = msg.epoch
                self.schedule = msg.schedule
                self.active = True
                if self.backup_store is not None:
                    # Anything backed up before a deactivation is stale
                    # by now; the master re-bootstraps what it needs.
                    self.backup_store.clear()
                halted = yield from self._reorg_exchange(self.epoch, send_sync=False)
                if halted:
                    yield from self._shutdown()
                    return
                yield from self._report_results(self.epoch)
                self.epoch += 1
                continue

            k = self.epoch
            reorg = self._is_reorg_epoch(k)
            offset = 0.0 if reorg else self.schedule.slot_offset
            yield rt.sleep_until((k + 1) * td + offset)
            self._sample_occupancy()
            if reorg:
                halted = yield from self._reorg_exchange(k, send_sync=True)
            else:
                halted = yield from self._plain_exchange(k)
            if halted:
                yield from self._shutdown()
                return
            if self._took_over:
                # A standby became the acting master mid-exchange; it
                # set our epoch/schedule via TakeOver — restart the loop
                # at its round rather than finishing this one.
                self._took_over = False
                continue
            if self.active:
                yield from self._report_results(k)
            self.epoch = k + 1

    # -- epoch exchanges --------------------------------------------------------
    def _plain_exchange(self, k: int) -> t.Generator:
        comm = self.comm
        yield comm.send(self.master_id, SlaveSync(k, self._make_report(k)))
        halted = yield from self._apply_replication(k)
        if halted or self._took_over:
            return halted
        # A ReorgOrder at a plain epoch is a recovery round: the master
        # is reassigning a dead slave's partition-groups.
        msg = yield from comm.recv_expect(
            self.master_id, Shipment, ReorgOrder, Halt
        )
        if peer_silent(msg):
            return (yield from self._master_silent())
        if isinstance(msg, Halt):
            return True
        if isinstance(msg, ReorgOrder):
            return (yield from self._handle_order(msg))
        yield from self._accept_shipment(msg)
        return False

    def _apply_replication(self, k: int) -> t.Generator:
        """Receive and apply the round's replication maintenance.

        With replication on, the master precedes every Shipment and
        every ReorgOrder with one :class:`Replicate` (possibly empty).
        The halt round skips it, so Halt is accepted here too; returns
        True in that case.
        """
        if not self.replication:
            return False
        msg = yield from self.comm.recv_expect(self.master_id, Replicate, Halt)
        if peer_silent(msg):
            return (yield from self._master_silent())
        if isinstance(msg, Halt):
            return True
        assert self.backup_store is not None
        self.backup_store.apply(msg)
        return False

    def _accept_shipment(self, shipment: Shipment) -> t.Generator:
        self._last_shipment_epoch = max(self._last_shipment_epoch, shipment.epoch)
        self._prune_limbo(shipment.epoch)
        # Filing into the module's mini-buffers is safe alongside a
        # running join pass (the pass picks the tuples up at its next
        # drain); only state moves need the lock.
        self.module.enqueue(shipment)
        yield self.work_queue.put(WAKE_TOKEN)

    def _reorg_exchange(self, k: int, send_sync: bool) -> t.Generator:
        comm = self.comm
        if send_sync:
            yield comm.send(self.master_id, SlaveSync(k, self._make_report(k)))
        self._reset_occupancy_window()
        halted = yield from self._apply_replication(k)
        if halted or self._took_over:
            return halted
        msg = yield from comm.recv_expect(self.master_id, ReorgOrder, Halt)
        if peer_silent(msg):
            return (yield from self._master_silent())
        if isinstance(msg, Halt):
            return True
        return (yield from self._handle_order(msg))

    def _handle_order(self, order: ReorgOrder) -> t.Generator:
        """Execute one :class:`ReorgOrder` (reorganization or recovery).

        Returns True when the exchange ended in a Halt.
        """
        rt, comm, metrics = self.rt, self.comm, self.metrics
        tuple_bytes = self.cfg.tuple_bytes
        self._last_order_epoch = max(self._last_order_epoch, order.epoch)
        self._prune_limbo(order.epoch)
        restore_pids: tuple[int, ...] = ()
        if self.replication:
            # The Restore rides right behind every ReorgOrder (possibly
            # empty).  Take it before any peer-dependent step so the
            # master's rendezvous send never waits on a state move.
            restore = yield from comm.recv_expect(self.master_id, Restore)
            if peer_silent(restore):
                return (yield from self._master_silent())
            restore_pids = restore.pids
        if order.schedule is not None:
            self.schedule = order.schedule

        # Supplier role: extract and ship partition-group states.
        popped_pairs: dict[int, t.Any] = {}
        for mv in order.outgoing:
            yield self.lock.acquire()
            state, buffered = self.module.extract_partition(mv.pid)
            if self.replication:
                # Retire the pairs this partition produced here; the
                # master banks them so a later crash of the new owner
                # cannot lose them (replay regenerates only the rest).
                pairs = metrics.pop_pairs(mv.pid)
                popped_pairs[mv.pid] = pairs
                if self.standby_id is not None and pairs is not None and len(pairs):
                    # Limbo copy from the moment of retirement: if the
                    # master dies before banking the MoveAck, the chunk
                    # rides our Rejoin instead.  Pruned once a later
                    # master message proves the round was banked.
                    self._limbo_pairs[(mv.pid, order.epoch)] = pairs
            self.lock.release()
            nbytes = (state.n_tuples + len(buffered)) * tuple_bytes
            t0 = rt.now()
            self._trace_move("begin", "supplier", mv.pid, mv.dst, nbytes, t0)
            yield rt.cpu(self._cpu_cost(self.cost_model.state_move_cost(nbytes)))
            metrics.charge_cpu("state_move", t0, rt.now())
            metrics.state_bytes_moved += nbytes
            if self._peer_timeout is not None:
                # A consumer only posts a *timed* receive for this
                # transfer once the master is dead, and may have given
                # up already — probe the master before committing to
                # the rendezvous send so we never send into a channel
                # nobody will read.  Zero-timeout: alive == RecvTimeout.
                probe = yield from comm.recv_expect(
                    self.master_id, Halt, timeout=0.0
                )
                if isinstance(probe, Halt):
                    return True
                if isinstance(probe, NodeDown):
                    # Master died before we shipped: keep the group (our
                    # Rejoin claims it; the consumer's absorb times out
                    # and abandons the move — both sides agree).
                    yield self.lock.acquire()
                    self.module.install_partition(mv.pid, state, buffered)
                    self.lock.release()
                    self._trace_move(
                        "lost", "supplier", mv.pid, mv.dst, nbytes, rt.now()
                    )
                    # Our own incoming transfers may still be in flight.
                    self._pending_in_left = list(order.incoming)
                    return (yield from self._master_silent())
            yield comm.send(mv.dst, StateTransfer(mv.pid, state, buffered))
            self._trace_move("end", "supplier", mv.pid, mv.dst, nbytes, rt.now())

        # Consumer role: receive and install.  With a standby wired in
        # the receive is armed with a timeout: a supplier that never got
        # its order (master died first) will never send, and only a
        # probe of the master's channel can tell that apart from a
        # supplier that is merely slow.
        for i, mv in enumerate(order.incoming):
            while True:
                transfer = yield from comm.recv_expect(
                    mv.src, StateTransfer, timeout=self._peer_timeout
                )
                if not isinstance(transfer, RecvTimeout):
                    break
                probe = yield from comm.recv_expect(
                    self.master_id, Halt, timeout=0.0
                )
                if isinstance(probe, Halt):
                    return True
                if isinstance(probe, NodeDown):
                    # The master is dead; this and the remaining moves
                    # are absorbed (or abandoned) during failover.
                    self._pending_in_left = list(order.incoming[i:])
                    return (yield from self._master_silent())
                # RecvTimeout on the probe: the master is alive, the
                # supplier is just slow — keep waiting.
            if peer_silent(transfer):
                # The supplier died before (or while) shipping this
                # group's state: adopt the partition with empty windows
                # — the same lost-state deviation as crash recovery —
                # and still acknowledge, so the master's count is exact.
                yield self.lock.acquire()
                self.module.add_partition(mv.pid)
                self.lock.release()
                self._trace_move("lost", "consumer", mv.pid, mv.src, 0, rt.now())
                continue
            yield from self._install_transfer(mv.src, transfer)

        # Recovery role: re-own a dead slave's groups with empty state.
        # Ack *before* installing: there is no transferred state to
        # confirm (recovery epochs are moves-free), and the install may
        # wait on the join lock behind a long pass — a saturated but
        # live adopter must not trip the master's ack timeout.
        for pid in order.adopt:
            yield comm.send(self.master_id, MoveAck(pid, "adopt"))
        for pid in restore_pids:
            yield comm.send(self.master_id, MoveAck(pid, "restore"))
        for pid in order.adopt:
            yield self.lock.acquire()
            self.module.add_partition(pid)
            self.lock.release()

        # Restore role: rebuild a dead slave's groups from this node's
        # backup store (checkpoint base + shipment-log replay).
        for pid in restore_pids:
            assert self.backup_store is not None
            state, buffered, log = self.backup_store.take(pid)
            nbytes = (
                (0 if state is None else state.n_tuples)
                + (0 if buffered is None else len(buffered))
                + sum(len(b) for b in log)
            ) * tuple_bytes
            t0 = rt.now()
            yield rt.cpu(self._cpu_cost(self.cost_model.state_move_cost(nbytes)))
            metrics.charge_cpu("state_move", t0, rt.now())
            yield self.lock.acquire()
            self.module.restore_partition(pid, state, buffered, log)
            self.lock.release()
            # Replayed shipments are pending work; wake the join loop.
            yield self.work_queue.put(WAKE_TOKEN)

        for mv in order.outgoing:
            yield comm.send(
                self.master_id,
                MoveAck(mv.pid, "supplier", pairs=popped_pairs.get(mv.pid)),
            )
        for mv in order.incoming:
            yield comm.send(self.master_id, MoveAck(mv.pid, "consumer"))

        if order.deactivate:
            if self.backup_store is not None:
                self.backup_store.clear()
            self.active = False
            return False

        # Checkpoint role: snapshot the requested partitions for their
        # backups.  Atomic with the pair retirement under the lock, so
        # the base image and the banked pairs describe the same point.
        for pid in order.checkpoint_pids:
            yield self.lock.acquire()
            state, buffered = self.module.snapshot_partition(pid)
            pairs = metrics.pop_pairs(pid)
            self.lock.release()
            nbytes = (state.n_tuples + len(buffered)) * tuple_bytes
            t0 = rt.now()
            yield rt.cpu(self._cpu_cost(self.cost_model.state_move_cost(nbytes)))
            metrics.charge_cpu("state_move", t0, rt.now())
            if self.standby_id is not None and pairs is not None and len(pairs):
                self._limbo_pairs[(pid, order.epoch)] = pairs
            yield comm.send(
                self.master_id,
                Checkpoint(pid, order.epoch, state, buffered, pairs),
            )

        msg = yield from comm.recv_expect(self.master_id, Shipment, Halt)
        if peer_silent(msg):
            return (yield from self._master_silent())
        if isinstance(msg, Halt):
            return True
        yield from self._accept_shipment(msg)
        return False

    def _install_transfer(self, src: int, transfer: StateTransfer) -> t.Generator:
        """Charge, install and wake for one received state transfer."""
        rt, metrics = self.rt, self.metrics
        nbytes = (
            transfer.state.n_tuples + len(transfer.buffered)
        ) * self.cfg.tuple_bytes
        t0 = rt.now()
        self._trace_move("begin", "consumer", transfer.pid, src, nbytes, t0)
        yield rt.cpu(self._cpu_cost(self.cost_model.state_move_cost(nbytes)))
        metrics.charge_cpu("state_move", t0, rt.now())
        metrics.state_bytes_moved += nbytes
        yield self.lock.acquire()
        self.module.install_partition(transfer.pid, transfer.state, transfer.buffered)
        self.lock.release()
        self._trace_move("end", "consumer", transfer.pid, src, nbytes, rt.now())
        # The moved buffer may contain work; wake the join loop.
        yield self.work_queue.put(WAKE_TOKEN)

    def _prune_limbo(self, epoch: int) -> None:
        """Drop limbo pair chunks the (live) master has provably banked.

        Any master message carrying ``epoch`` proves every chunk this
        slave surrendered in *earlier* rounds reached a master that
        since synchronized with its standby (the sync ends the round).
        Never called on :class:`TakeOver` — the new master has *not*
        necessarily banked the fatal round's chunks.
        """
        if self._limbo_pairs:
            for key in [k for k in self._limbo_pairs if k[1] < epoch]:
                del self._limbo_pairs[key]

    def _master_silent(self) -> t.Generator:
        """The master's channel died mid-exchange: fail over.

        Waits for the standby's :class:`TakeOver`, absorbs any state
        transfers still in flight from the aborted order, and answers
        with a :class:`Rejoin` describing exactly what this slave owns
        and the last rounds it saw — the acting master rebuilds its
        shadow mapping from these.  Returns True when the slave should
        halt instead (no standby, standby dead too, or it sent Halt).
        """
        if self.standby_id is None:
            return True
        msg = yield from self.comm.recv_expect(self.standby_id, TakeOver, Halt)
        if peer_silent(msg) or isinstance(msg, Halt):
            return True
        yield from self._absorb_pending(msg)
        self.master_id = self.standby_id
        self.epoch = msg.epoch
        if msg.schedule is not None:
            self.schedule = msg.schedule
        self.active = msg.active
        yield self.comm.send(
            self.master_id,
            Rejoin(
                msg.epoch,
                owned_pids=tuple(sorted(self.module.owned_pids())),
                last_shipment_epoch=self._last_shipment_epoch,
                last_order_epoch=self._last_order_epoch,
                active=self.active,
                pairs=tuple(
                    (pid, e, rows)
                    for (pid, e), rows in sorted(self._limbo_pairs.items())
                ),
            ),
        )
        # The acting master banked (or deduplicated) every limbo chunk.
        self._limbo_pairs.clear()
        self._took_over = True
        return False

    def _absorb_pending(self, takeover: TakeOver) -> t.Generator:
        """Drain fatal-round state transfers that may be in flight.

        A supplier that executed its order before the master died is
        blocked in a rendezvous send towards this node; the matching
        receive must be posted or that supplier never reaches its own
        failover receive.  The receive is timed: a supplier that never
        got the order won't send (it keeps the partition and claims it
        in its Rejoin), and a dead one yields NodeDown — both leave the
        group with its pre-plan owner for ordinary recovery to handle.
        """
        if self._pending_in_left is not None:
            # We bailed out mid-consume: only the uninstalled tail of
            # our own aborted order can still be in flight.
            left = self._pending_in_left
        elif takeover.plan_epoch >= 0 and self._last_order_epoch < takeover.plan_epoch:
            # The fatal round's plan ordered moves to us but we never
            # received the order; suppliers that did may be mid-send.
            left = [mv for mv in takeover.pending_in if mv.dst == self.node_id]
        else:
            left = []
        self._pending_in_left = None
        for mv in left:
            transfer = yield from self.comm.recv_expect(
                mv.src, StateTransfer, timeout=self._peer_timeout
            )
            if peer_silent(transfer):
                continue
            yield from self._install_transfer(mv.src, transfer)

    def _trace_move(
        self, phase: str, role: str, pid: int, peer: int, nbytes: int, when: float
    ) -> None:
        if self.tracer.enabled:
            self.tracer.emit(
                StateMoveEvent(
                    t=when,
                    node=self.node_id,
                    phase=phase,
                    role=role,
                    pid=pid,
                    peer=peer,
                    nbytes=nbytes,
                )
            )

    # -- reporting ------------------------------------------------------------
    def _sample_occupancy(self) -> None:
        # The paper's metric is the fill fraction of a physical buffer,
        # bounded by 1.0; the module's raw value can exceed 1 when the
        # backlog would have overflowed the allotted memory.
        occ = min(1.0, self.module.occupancy(self.cfg.slave_buffer_bytes))
        self._occ_sum += occ
        self._occ_n += 1
        self._last_occ = occ
        self.metrics.sample_occupancy(self.rt.now(), occ)

    def _reset_occupancy_window(self) -> None:
        self._occ_sum = 0.0
        self._occ_n = 0

    def _make_report(self, k: int) -> LoadReport:
        avg = self._occ_sum / self._occ_n if self._occ_n else 0.0
        return LoadReport(k, avg, self._last_occ, self.module.window_bytes)

    def _report_results(self, k: int) -> t.Generator:
        stats = self.metrics.pop_unreported()
        yield self.comm.send(self.collector_id, ResultReport(k, stats))

    def _shutdown(self) -> t.Generator:
        self._halted = True
        yield self.work_queue.put(HALT_TOKEN)
        # Flush the outputs accumulated since the last report so the
        # collector's totals match the slaves' local statistics.
        yield from self._report_results(self.epoch)
        yield self.comm.send(self.collector_id, Halt(self.epoch))
