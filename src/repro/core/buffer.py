"""The master's partitioned buffer (Section IV-B, Figure 3).

Incoming tuples land in one *mini-buffer* per hash partition.  The
buffer also owns the **mapping** between partition ids and slave nodes;
draining for a slave concatenates exactly the mini-buffers of the
partitions currently assigned to it, merged across streams in timestamp
order (the machine-independent merged format of the paper, with the
stream-id column identifying sources).
"""

from __future__ import annotations

from collections import deque

import numpy as np

from repro.core.hashing import partition_of
from repro.data.tuples import TupleBatch
from repro.errors import ProtocolError


class MasterBuffer:
    """Partitioned tuple buffer + partition->slave mapping."""

    def __init__(self, npart: int, tuple_bytes: int) -> None:
        self.npart = int(npart)
        self.tuple_bytes = int(tuple_bytes)
        self._minibuffers: list[deque[TupleBatch]] = [
            deque() for _ in range(npart)
        ]
        self._bytes_per_pid = np.zeros(npart, dtype=np.int64)
        self.mapping: dict[int, int] = {}
        #: Per-slave timestamp of the last drain (epoch_start of the
        #: next shipment).
        self.last_drain: dict[int, float] = {}

    # -- mapping ---------------------------------------------------------
    def assign_round_robin(self, slaves: list[int], start_time: float = 0.0) -> None:
        """Initial placement: partitions dealt round-robin to *slaves*."""
        if not slaves:
            raise ProtocolError("cannot assign partitions to an empty slave set")
        for pid in range(self.npart):
            self.mapping[pid] = slaves[pid % len(slaves)]
        for s in slaves:
            self.last_drain.setdefault(s, start_time)

    def pids_of(self, slave: int) -> list[int]:
        return sorted(p for p, s in self.mapping.items() if s == slave)

    def remap(self, pid: int, dst: int) -> None:
        if pid not in self.mapping:
            raise ProtocolError(f"unknown partition {pid}")
        self.mapping[pid] = dst
        self.last_drain.setdefault(dst, 0.0)

    # -- data ----------------------------------------------------------------
    def ingest(self, batch: TupleBatch) -> None:
        """File a freshly generated batch into the mini-buffers."""
        if not len(batch):
            return
        pids = partition_of(batch.key, self.npart)
        for pid in np.unique(pids):
            sub = batch.take(np.flatnonzero(pids == pid))
            self._minibuffers[int(pid)].append(sub)
            self._bytes_per_pid[int(pid)] += sub.payload_bytes(self.tuple_bytes)

    def drain_for(
        self, slave: int, now: float
    ) -> tuple[TupleBatch, float, dict[int, TupleBatch]]:
        """Remove and return all buffered tuples of *slave*'s partitions.

        Returns ``(batch, epoch_start, parts)`` where ``epoch_start``
        is the time of the previous drain for this slave (the
        shipment's coverage interval starts there) and ``parts`` holds
        the same tuples keyed per partition — the replication tee logs
        each pid's slice at its backup without re-partitioning.
        """
        parts: dict[int, TupleBatch] = {}
        for pid in self.pids_of(slave):
            queue = self._minibuffers[pid]
            if queue:
                parts[pid] = TupleBatch.concat(list(queue))
                queue.clear()
                self._bytes_per_pid[pid] = 0
        epoch_start = self.last_drain.get(slave, 0.0)
        self.last_drain[slave] = now
        merged = TupleBatch.concat(list(parts.values()))
        if len(merged) > 1:
            order = np.argsort(merged.ts, kind="stable")
            merged = merged.take(order)
        return merged, epoch_start, parts

    # -- accounting ------------------------------------------------------------
    @property
    def total_bytes(self) -> int:
        return int(self._bytes_per_pid.sum())

    def bytes_of(self, slave: int) -> int:
        return int(sum(self._bytes_per_pid[pid] for pid in self.pids_of(slave)))
