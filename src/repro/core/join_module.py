"""The slave-side join module (Section IV-D).

The join module owns a set of partition-groups, a partitioned stream
buffer (one mini-buffer per partition, as at the master), and turns
buffered tuples into a sequence of **work units**.  Each unit carries
the simulated CPU cost of one step of the paper's algorithm:

* ``expire``  — dropping expired blocks from the front of every window;
* ``probe``   — flushing a fresh head block: joining the fresh tuples
  against the opposite stream's committed window in the same
  mini-partition-group via the configured join kernel
  (:mod:`repro.core.kernels`), charged that kernel's cost model;
* ``tune``    — splitting an oversized mini-group / merging undersized
  buddies (fine-grained partition tuning).

The slave's join process drives the generator::

    for unit in module.work_units():
        yield runtime.cpu(unit.cost)      # simulated work
        unit.execute(runtime.now())       # mutate state, emit outputs

Laziness is essential: a unit's cost is computed from the state *at
generation time*, and the generator only resumes after the previous
unit has executed, so cost and effect always agree.
"""

from __future__ import annotations

import typing as t
from collections import deque

import numpy as np

from repro.core.costmodel import CostModel
from repro.core.hashing import partition_of
from repro.core.metrics import SlaveMetrics
from repro.core.partition_group import (
    JoinGeometry,
    MiniGroup,
    PartitionGroup,
    PartitionGroupState,
)
from repro.core.protocol import Shipment
from repro.data.tuples import TupleBatch
from repro.errors import ProtocolError
from repro.obs.events import DirectoryEvent, MergeEvent, SplitEvent
from repro.obs.tracer import NULL_TRACER, Tracer


class WorkUnit:
    """One costed step of join processing."""

    __slots__ = ("kind", "cost", "_run")

    def __init__(
        self, kind: str, cost: float, run: t.Callable[[float], None]
    ) -> None:
        self.kind = kind
        self.cost = cost
        self._run = run

    def execute(self, emit_time: float) -> None:
        self._run(emit_time)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<WorkUnit {self.kind} cost={self.cost:.3g}s>"


class JoinModule:
    """Join processing state of one slave node."""

    def __init__(
        self,
        node_id: int,
        geometry: JoinGeometry,
        cost_model: CostModel,
        npart: int,
        metrics: SlaveMetrics,
        collect_pairs: bool = False,
        memory_bytes: int | None = None,
        tracer: Tracer = NULL_TRACER,
        now_fn: t.Callable[[], float] | None = None,
    ) -> None:
        self.node_id = node_id
        self.geometry = geometry
        self.cost_model = cost_model
        self.npart = npart
        self.metrics = metrics
        self.collect_pairs = collect_pairs
        #: Window-state memory; the excess over this spills to disk
        #: (None = unlimited, the paper's Section VI-A assumption).
        self.memory_bytes = memory_bytes
        self.tracer = tracer
        #: Clock for trace timestamps (the runtime's ``now``); tuning
        #: runs inside ``WorkUnit.execute`` so this equals ``emit_time``.
        self._now_fn = now_fn
        self.groups: dict[int, PartitionGroup] = {}
        self._minibuffers: dict[int, deque[TupleBatch]] = {}
        self._pending_bytes = 0
        self._oldest_pending_ts = float("inf")

    # -- partition ownership ------------------------------------------------
    def owned_pids(self) -> list[int]:
        return sorted(self.groups)

    def add_partition(self, pid: int) -> None:
        if pid in self.groups:
            raise ProtocolError(f"node {self.node_id} already owns partition {pid}")
        on_double = self._directory_doubled if self.tracer.enabled else None
        self.groups[pid] = PartitionGroup(pid, self.geometry, on_double=on_double)
        self._minibuffers.setdefault(pid, deque())

    def _directory_doubled(self, pid: int, depth: int) -> None:
        # Callback wired only when tracing is on (add_partition), but the
        # zero-overhead contract is enforced here too: never construct the
        # event against a disabled tracer.
        if not self.tracer.enabled:
            return
        now = self._now_fn() if self._now_fn is not None else 0.0
        self.tracer.emit(
            DirectoryEvent(t=now, node=self.node_id, pid=pid, depth=depth)
        )

    def extract_partition(self, pid: int) -> tuple[PartitionGroupState, TupleBatch]:
        """Drain window state + unprocessed buffered tuples of *pid*
        (the supplier side of a state move)."""
        group = self.groups.pop(pid, None)
        if group is None:
            raise ProtocolError(f"node {self.node_id} does not own partition {pid}")
        state = group.extract_state()
        buffered = TupleBatch.concat(list(self._minibuffers.pop(pid, deque())))
        self._pending_bytes -= buffered.payload_bytes(self.geometry.tuple_bytes)
        # The popped mini-buffer may have been the one pinning the expiry
        # watermark; re-derive it from the surviving queues.
        self._rearm_watermark()
        self.metrics.groups_moved_out += 1
        return state, buffered

    def _rearm_watermark(self) -> None:
        """Recompute ``_oldest_pending_ts`` from the surviving queues
        (``inf`` when all are empty).  Every queued batch is inspected,
        not just the head: a later batch can hold *older* tuples — a
        restore replays the checkpointed mini-buffer followed by logged
        shipments whose epochs overlap it, and a post-move shipment can
        trail tuples predating an earlier one — and a cutoff derived
        from the head alone would expire window tuples those batches
        still need to join against."""
        oldest = float("inf")
        for queue in self._minibuffers.values():
            for batch in queue:
                oldest = min(oldest, float(batch.ts.min()))
        self._oldest_pending_ts = oldest

    def snapshot_partition(self, pid: int) -> tuple[PartitionGroupState, TupleBatch]:
        """Non-destructive copy of *pid*'s window state + unprocessed
        buffered tuples (the owner side of a replication checkpoint)."""
        group = self.groups.get(pid)
        if group is None:
            raise ProtocolError(f"node {self.node_id} does not own partition {pid}")
        state = group.snapshot_state()
        buffered = TupleBatch.concat(list(self._minibuffers.get(pid, deque())))
        return state, buffered

    def restore_partition(
        self,
        pid: int,
        state: PartitionGroupState | None,
        buffered: TupleBatch | None,
        log: t.Sequence[TupleBatch] = (),
    ) -> None:
        """Rebuild *pid* from a replication checkpoint plus log replay.

        ``state``/``buffered`` are the checkpointed window state and
        unprocessed mini-buffer (``None`` = the implicit empty genesis
        checkpoint); ``log`` carries the teed per-epoch shipments since
        the checkpoint, replayed through the normal buffering path so
        the regular work units regenerate the lost join output.
        """
        self.add_partition(pid)
        if state is not None:
            self.groups[pid].install_state(state)
        replay = list(log)
        if buffered is not None and len(buffered):
            replay.insert(0, buffered)
        tb = self.geometry.tuple_bytes
        for batch in replay:
            if not len(batch):
                continue
            self._minibuffers[pid].append(batch)
            self._pending_bytes += batch.payload_bytes(tb)
            self._oldest_pending_ts = min(
                self._oldest_pending_ts, float(batch.ts.min())
            )

    def install_partition(
        self, pid: int, state: PartitionGroupState, buffered: TupleBatch
    ) -> None:
        """Install a moved partition-group (the consumer side)."""
        self.add_partition(pid)
        self.groups[pid].install_state(state)
        if len(buffered):
            self._minibuffers[pid].append(buffered)
            self._pending_bytes += buffered.payload_bytes(self.geometry.tuple_bytes)
            self._oldest_pending_ts = min(
                self._oldest_pending_ts, float(buffered.ts.min())
            )
        self.metrics.groups_moved_in += 1

    # -- buffering ---------------------------------------------------------
    def enqueue(self, shipment: Shipment) -> None:
        """File an epoch's shipment into the per-partition mini-buffers."""
        batch = shipment.batch
        if len(batch):
            pids = partition_of(batch.key, self.npart)
            for pid in np.unique(pids):
                sub = batch.take(np.flatnonzero(pids == pid))
                pid = int(pid)
                if pid not in self.groups:
                    raise ProtocolError(
                        f"node {self.node_id} received tuples for partition "
                        f"{pid} it does not own"
                    )
                self._minibuffers[pid].append(sub)
            self._pending_bytes += batch.payload_bytes(self.geometry.tuple_bytes)
            # A shipment right after a partition move can carry tuples
            # that predate this slave's epoch window — and need not be
            # timestamp-sorted — so the expiry cutoff must respect the
            # true oldest timestamp, not the first.
            self._oldest_pending_ts = min(
                self._oldest_pending_ts, float(batch.ts.min())
            )
        self._oldest_pending_ts = min(self._oldest_pending_ts, shipment.epoch_start)

    @property
    def pending_bytes(self) -> int:
        """Unprocessed buffered tuple bytes (drives buffer occupancy)."""
        return self._pending_bytes

    def occupancy(self, capacity_bytes: int) -> float:
        """Buffer occupancy; may exceed 1.0 when the node is overloaded
        (the paper assumes enough memory; values above the supplier
        threshold are what matters)."""
        return self._pending_bytes / capacity_bytes

    @property
    def window_bytes(self) -> int:
        """Block-granular bytes held by all owned windows."""
        return sum(g.bytes_used for g in self.groups.values())

    @property
    def has_work(self) -> bool:
        return any(self._minibuffers.values())

    def spill_fraction(self) -> float:
        """Fraction of window state currently residing on disk."""
        if self.memory_bytes is None:
            return 0.0
        window = self.window_bytes
        if window <= self.memory_bytes:
            return 0.0
        return 1.0 - self.memory_bytes / window

    # -- work generation ------------------------------------------------------
    def work_units(self) -> t.Iterator[WorkUnit]:
        """Generate costed work for ONE bounded pass over the buffers.

        A pass covers at most one buffered batch per partition (roughly
        one epoch's shipment); a backlogged slave needs several passes
        to drain (the driver re-arms itself while :attr:`has_work`).
        Bounding the pass keeps the slave's state lock from being
        starved under overload: state moves and reorganization orders
        grab the lock between passes, so the paper's rebalancing can
        still reach an overloaded node.
        """
        if not self.has_work:
            return
        cutoff = self._oldest_pending_ts - self.geometry.window_seconds
        drained = self._drain()
        yield self._expire_unit(cutoff)
        for pid in sorted(drained):
            group = self.groups.get(pid)
            if group is None:  # moved away mid-backlog; cannot happen
                raise ProtocolError(f"lost partition {pid} with pending data")
            yield from self._ingest_units(group, drained[pid])
            yield from self._final_flush_units(group)
            if self.geometry.fine_tuning:
                yield from self._tuning_units(group)

    def _drain(self, max_batches_per_pid: int = 1) -> dict[int, TupleBatch]:
        # Reset the oldest-pending watermark *before* popping so a
        # concurrent enqueue (thread backend) can only make the expiry
        # cutoff more conservative, never unsafe.
        self._oldest_pending_ts = float("inf")
        out: dict[int, TupleBatch] = {}
        for pid, queue in self._minibuffers.items():
            if queue:
                parts = [
                    queue.popleft()
                    for _ in range(min(len(queue), max_batches_per_pid))
                ]
                out[pid] = TupleBatch.concat(parts)
            # Batches left behind re-arm the expiry watermark.  Scan
            # them ALL: tuples need not be timestamp-sorted within a
            # batch (post-move shipments) nor monotone across batches
            # (restore-replay queues a checkpointed mini-buffer ahead
            # of logged shipments that overlap it), so the head batch
            # alone can overstate the oldest pending timestamp.
            for batch in queue:
                self._oldest_pending_ts = min(
                    self._oldest_pending_ts, float(batch.ts.min())
                )
        return out

    # -- unit builders ----------------------------------------------------------
    def _expire_unit(self, cutoff: float) -> WorkUnit:
        expired_bytes = 0
        tb = self.geometry.tuple_bytes
        for group in self.groups.values():
            for bucket in group.directory.buckets():
                for window in bucket.payload.windows:
                    idx = int(np.searchsorted(window.committed.ts, cutoff, "left"))
                    expired_bytes += idx * tb
        cost = self.cost_model.expire_cost(expired_bytes)

        def run(_emit_time: float) -> None:
            for group in self.groups.values():
                for bucket in group.directory.buckets():
                    bucket.payload.expire_before(cutoff)

        return WorkUnit("expire", cost, run)

    def _ingest_units(
        self, group: PartitionGroup, batch: TupleBatch
    ) -> t.Iterator[WorkUnit]:
        tb = self.geometry.tuple_bytes
        for sid in range(self.geometry.n_streams):
            sub = batch.by_stream(sid)
            if not len(sub):
                continue
            slots, buckets = group.route(sub.key)
            for slot in sorted(buckets):
                mini = buckets[slot].payload
                idx = np.flatnonzero(slots == slot)
                ts, key, seq = sub.ts[idx], sub.key[idx], sub.seq[idx]
                window = mini.windows[sid]
                pos, n = 0, len(idx)
                while pos < n:
                    take = min(window.head_space(), n - pos)
                    window.append_fresh(
                        ts[pos : pos + take],
                        key[pos : pos + take],
                        seq[pos : pos + take],
                    )
                    self._pending_bytes -= take * tb
                    self.metrics.tuples_processed += take
                    pos += take
                    if window.head_space() == 0:
                        # Head block full: it joins now (Section IV-D).
                        yield self._flush_unit(group.pid, mini, sid)

    def _final_flush_units(self, group: PartitionGroup) -> t.Iterator[WorkUnit]:
        """Flush partial head blocks once the partition's buffer drained.

        Stream order 0-then-1 implements the duplicate-elimination rule
        for fresh/fresh pairs within the same pass.
        """
        for bucket in group.directory.buckets():
            for sid in range(self.geometry.n_streams):
                if bucket.payload.windows[sid].n_fresh:
                    yield self._flush_unit(group.pid, bucket.payload, sid)

    def _flush_unit(self, pid: int, mini: MiniGroup, sid: int) -> WorkUnit:
        window = mini.windows[sid]
        # Each opposite window's kernel decides what the probe touches:
        # block-NLJ scans its committed blocks wholesale, the indexed
        # kernel only the candidate tuples its buckets return.  The
        # kernel likewise picks the matching cost formula, so an indexed
        # run is charged the indexed model, never the NLJ cross-product.
        _ts, fresh_key, _seq = window.fresh_view()
        tb = self.geometry.tuple_bytes
        scanned = sum(
            w.probe_scan_bytes(fresh_key, tb)
            for k, w in enumerate(mini.windows)
            if k != sid
        )
        spilled = int(scanned * self.spill_fraction())
        cost = window.kernel.probe_cost(
            self.cost_model, window.n_fresh, scanned, spilled
        )
        if spilled:
            self.metrics.disk_bytes_read += spilled

        def run(emit_time: float) -> None:
            result = mini.flush_stream(sid, collect_pairs=self.collect_pairs)
            self.metrics.record_outputs(emit_time, result.newer_ts)
            if self.collect_pairs and result.pairs is not None:
                rows = result.pairs
                if len(rows):
                    if self.geometry.n_streams == 2 and sid == 1:
                        # Normalize the pairwise orientation to
                        # (stream-0 seq, stream-1 seq).
                        rows = rows[:, ::-1]
                    self.metrics.record_pairs(pid, rows)

        return WorkUnit("probe", cost, run)

    def _tuning_units(self, group: PartitionGroup) -> t.Iterator[WorkUnit]:
        # Split every oversized mini-group; children may still overflow
        # under heavy key skew, so iterate to a fixed point.
        while True:
            oversized = group.oversized_buckets()
            if not oversized:
                break
            for bucket in oversized:
                cost = self.cost_model.tuning_cost(bucket.payload.bytes_used)

                def run(_emit: float, b=bucket, g=group) -> None:
                    moved = g.split_bucket(b)
                    self.metrics.splits += 1
                    if self.tracer.enabled:
                        self.tracer.emit(
                            SplitEvent(
                                t=_emit,
                                node=self.node_id,
                                pid=g.pid,
                                n_buckets=g.n_mini_groups,
                                depth=g.directory.global_depth,
                                bytes=moved,
                            )
                        )

                yield WorkUnit("tune", cost, run)
        # One merge round per pass (further merges happen next pass).
        for bucket in group.undersized_buckets():
            if group.directory.bucket_for(bucket.pattern) is not bucket:
                continue  # already merged away this round
            buddy = group.directory.buddy_of(bucket)
            if buddy is None:
                continue
            combined = bucket.payload.bytes_used + buddy.payload.bytes_used
            if combined >= 2 * self.geometry.theta_bytes:
                continue
            cost = self.cost_model.tuning_cost(combined)

            def run(_emit: float, b=bucket, g=group) -> None:
                touched = g.try_merge_bucket(b)
                if touched:
                    self.metrics.merges += 1
                    if self.tracer.enabled:
                        self.tracer.emit(
                            MergeEvent(
                                t=_emit,
                                node=self.node_id,
                                pid=g.pid,
                                n_buckets=g.n_mini_groups,
                                depth=g.directory.global_depth,
                                bytes=touched,
                            )
                        )

            yield WorkUnit("tune", cost, run)
