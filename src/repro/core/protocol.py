"""Wire protocol between master, slaves and collector.

The communication pattern is *fixed* (Section III): every exchange
happens at a scheduled point of the epoch structure, so each message
type corresponds to exactly one step of the schedule.  Receiving an
unexpected type raises :class:`~repro.errors.ProtocolError` in the node
loops.

Payload sizes: tuple-bearing messages cost ``n * tuple_bytes`` wire
bytes (the paper's 64 B machine-independent tuple format); control
messages cost a small fixed size.

Two lint rules keep this module honest: PROTO001 (every ``Message``
subclass is constructed and, when sent, dispatched by a node loop) and
PROTO002 (every subclass has a unique, append-only tag with an
encoder/decoder in :mod:`repro.net.wire` — adding a message here
without extending the codec *and* its ``_TAG_LEDGER``/``WIRE_VERSION``
is a finding).
"""

from __future__ import annotations

import typing as t
from dataclasses import dataclass

import numpy as np

from repro.core.partition_group import PartitionGroupState
from repro.core.subgroups import SlotSchedule
from repro.data.tuples import TupleBatch

#: Wire size of a bare control message (headers + a few ints).
CONTROL_BYTES = 64
#: Wire size of a per-epoch load report.
REPORT_BYTES = 96
#: Wire size of a per-epoch result report to the collector (stats +
#: log-spaced delay histogram).
RESULT_REPORT_BYTES = 640


@dataclass(frozen=True)
class Message:
    """Base class: every message knows its wire size."""

    def wire_bytes(self, tuple_bytes: int) -> int:
        return CONTROL_BYTES


@dataclass(frozen=True)
class Shipment(Message):
    """Master -> slave: the tuples of one distribution epoch.

    Tuples of both streams travel merged, distinguished by the
    stream-id column (the paper's augmented-attribute option).
    ``epoch_start`` lets the slave compute its exact expiry cutoff.
    """

    epoch: int
    epoch_start: float
    epoch_end: float
    batch: TupleBatch

    def wire_bytes(self, tuple_bytes: int) -> int:
        return CONTROL_BYTES + len(self.batch) * tuple_bytes


@dataclass(frozen=True)
class LoadReport(Message):
    """Slave -> master: average buffer occupancy over the last epochs."""

    epoch: int
    avg_occupancy: float
    last_occupancy: float
    window_bytes: int

    def wire_bytes(self, tuple_bytes: int) -> int:
        return REPORT_BYTES


class MoveDirective(t.NamedTuple):
    """One partition-group move: partition ``pid`` from ``src`` to ``dst``."""

    pid: int
    src: int
    dst: int


@dataclass(frozen=True)
class ReorgOrder(Message):
    """Master -> slave at a reorganization epoch.

    Carries the moves this slave participates in (as supplier and/or
    consumer), whether the slave is being deactivated afterwards, and a
    clock-synchronization stamp (Algorithm 1, line 18).

    Recovery orders additionally carry ``adopt``: partition-groups of a
    crashed slave this slave must re-own with *empty* window state (no
    supplier survives to send a :class:`StateTransfer`).  Each adoption
    is acknowledged with a ``role="adopt"`` :class:`MoveAck`.
    """

    epoch: int
    outgoing: tuple[MoveDirective, ...] = ()
    incoming: tuple[MoveDirective, ...] = ()
    deactivate: bool = False
    clock: float = 0.0
    #: This slave's communication slot from the next epoch on.
    schedule: SlotSchedule | None = None
    #: Partition-groups to adopt from a dead slave (rebuilt empty).
    adopt: tuple[int, ...] = ()
    #: Partitions this slave must checkpoint after applying the order
    #: (replication mode: owner-side snapshot shipped to the master).
    checkpoint_pids: tuple[int, ...] = ()

    def wire_bytes(self, tuple_bytes: int) -> int:
        return CONTROL_BYTES + 24 * (
            len(self.outgoing) + len(self.incoming)
        ) + 8 * (len(self.adopt) + len(self.checkpoint_pids))


@dataclass(frozen=True)
class StateTransfer(Message):
    """Supplier slave -> consumer slave: a partition-group's state."""

    pid: int
    state: PartitionGroupState
    buffered: TupleBatch

    def wire_bytes(self, tuple_bytes: int) -> int:
        n = self.state.n_tuples + len(self.buffered)
        return CONTROL_BYTES + n * tuple_bytes


@dataclass(frozen=True)
class MoveAck(Message):
    """Slave -> master: one side of a state move completed.

    In replication mode the supplier's ack carries the moved
    partition's collected join pairs (``pairs``), so already-produced
    output survives a later crash of either slave (the master keeps it
    durably).  ``None`` outside test/replication mode.
    """

    pid: int
    role: str  # "supplier" | "consumer" | "adopt" | "restore"
    pairs: np.ndarray | None = None

    def wire_bytes(self, tuple_bytes: int) -> int:
        n = 0 if self.pairs is None else len(self.pairs)
        return CONTROL_BYTES + 16 * n


@dataclass(frozen=True)
class Activate(Message):
    """Master -> slave: join the active set at the next epoch."""

    epoch: int
    clock: float = 0.0
    schedule: SlotSchedule | None = None


@dataclass(frozen=True)
class ResultReport(Message):
    """Slave -> collector: per-epoch output statistics.

    The collector merges statistics (a :class:`~repro.core.metrics.DelayStats`
    snapshot) rather than raw result tuples — see DESIGN.md, "known
    deviations".
    """

    epoch: int
    stats: t.Any  # DelayStats

    def wire_bytes(self, tuple_bytes: int) -> int:
        return RESULT_REPORT_BYTES


@dataclass(frozen=True)
class Halt(Message):
    """Master -> everyone: end of run, shut down cleanly."""

    epoch: int


@dataclass(frozen=True)
class SlaveSync(Message):
    """Slave -> master: per-epoch hello carrying the load sample.

    This is the slave-initiated connection of the fixed schedule: the
    slave contacts the master at its slot, hands over its status, and
    the master answers with the epoch's Shipment (or ReorgOrder).
    """

    epoch: int
    report: LoadReport

    def wire_bytes(self, tuple_bytes: int) -> int:
        return REPORT_BYTES


@dataclass(frozen=True)
class Checkpoint(Message):
    """A compact replica of one partition-group, as of ``epoch``.

    Travels twice: owner slave -> master (piggybacked on a reorg order
    via :attr:`ReorgOrder.checkpoint_pids`) and master -> backup slave
    (inside a :class:`Replicate`).  ``state``/``buffered`` mirror a
    :class:`StateTransfer` but are *copies* — the owner keeps working.
    ``pairs`` drains the owner's collected join output for the pid so
    it is held durably at the master (test/replication mode only).
    """

    pid: int
    epoch: int
    state: PartitionGroupState
    buffered: TupleBatch
    pairs: np.ndarray | None = None

    def wire_bytes(self, tuple_bytes: int) -> int:
        n = self.state.n_tuples + len(self.buffered)
        npairs = 0 if self.pairs is None else len(self.pairs)
        return CONTROL_BYTES + n * tuple_bytes + 16 * npairs


@dataclass(frozen=True)
class Replicate(Message):
    """Master -> backup slave: pending replication maintenance.

    Sent right before every Shipment/ReorgOrder in replication mode so
    the backup store stays current without extra schedule slots:

    * ``drops`` — partitions this slave no longer backs up;
    * ``checkpoints`` — fresh base images (truncate the pid's log);
    * ``entries`` — ``(pid, shipment_epoch, batch)`` log records teed
      from the owners' epoch shipments.

    Applied in that order (drop, re-base, append).
    """

    epoch: int
    entries: tuple[tuple[int, int, TupleBatch], ...] = ()
    drops: tuple[int, ...] = ()
    checkpoints: tuple[Checkpoint, ...] = ()

    def wire_bytes(self, tuple_bytes: int) -> int:
        total = CONTROL_BYTES + 8 * len(self.drops)
        for _pid, _epoch, batch in self.entries:
            total += 16 + len(batch) * tuple_bytes
        for cp in self.checkpoints:
            total += cp.wire_bytes(tuple_bytes)
        return total


@dataclass(frozen=True)
class Restore(Message):
    """Master -> backup slave: rebuild ``pids`` from the backup store.

    Always follows the epoch's :class:`ReorgOrder` in replication mode
    (often with no pids) so the schedule stays fixed.  The same round's
    :class:`Replicate` already flushed any pending maintenance, so the
    message only needs to name the partitions.  Each restore is
    acknowledged with a ``role="restore"`` :class:`MoveAck`.
    """

    epoch: int
    pids: tuple[int, ...] = ()

    def wire_bytes(self, tuple_bytes: int) -> int:
        return CONTROL_BYTES + 8 * len(self.pids)


@dataclass(frozen=True)
class StandbySync(Message):
    """Master -> standby: the coordinator's durable delta for one round.

    Sent once at the *end* of every epoch the master survives, so the
    standby's shadow state always reflects a round boundary.  Rather
    than shipping the mini-buffer contents, the sync carries the
    **operation log** of the round (``ops``): the standby holds its own
    deterministic workload replica, so replaying ``("gen", t0, t1)``,
    ``("drain", slave, now)`` and ``("remap", pid, dst)`` records in
    order reconstructs the buffers bit for bit (see DESIGN.md §8).

    The control-plane remainder travels explicitly: the active set, the
    fenced dead set, the backup-ring assignment, the covered-pid set,
    the un-flushed pending-replication ledger, the failure records
    (as JSON — they are plain dicts) and the pair chunks the master
    banked durably this round, tagged ``(slave, pid, epoch)``.
    """

    epoch: int
    ops: tuple[tuple[str, float, float], ...] = ()
    active: tuple[int, ...] = ()
    dead: tuple[int, ...] = ()
    next_gen_time: float = 0.0
    #: Backup-ring assignment after this round, as ``(pid, backup)``.
    backup_of: tuple[tuple[int, int], ...] = ()
    covered: tuple[int, ...] = ()
    #: Un-flushed replication maintenance, per backup slave.
    pending: tuple[tuple[int, "Replicate"], ...] = ()
    failures_json: str = "[]"
    #: Durable pair chunks banked this round: ``(slave, pid, epoch, rows)``.
    pairs: tuple[tuple[int, int, int, np.ndarray], ...] = ()

    def wire_bytes(self, tuple_bytes: int) -> int:
        total = CONTROL_BYTES + 24 * len(self.ops) + 8 * (
            len(self.active) + len(self.dead) + len(self.covered)
        ) + 16 * len(self.backup_of) + len(self.failures_json)
        for _backup, rep in self.pending:
            total += rep.wire_bytes(tuple_bytes)
        for _slave, _pid, _epoch, rows in self.pairs:
            total += 24 + 16 * len(rows)
        return total


@dataclass(frozen=True)
class StandbyPlan(Message):
    """Master -> standby: a reorg/recovery decision, before execution.

    Sent right after the master computes a reorganization or recovery
    plan and *before* any order reaches a slave, so the standby always
    knows the plan a fatal round was executing.  If the standby never
    received the plan, no slave received an order either — the plan
    send happens-before every side effect of the round.
    """

    epoch: int
    moves: tuple[MoveDirective, ...] = ()
    new_active: tuple[int, ...] = ()
    deactivate: tuple[int, ...] = ()
    #: Buffer remaps ``(pid, dst)`` the plan applies at the master
    #: *before* any drain (adoption of dead slaves' partitions and the
    #: plan's own moves).  The standby cannot derive recovery-round
    #: adoption targets itself, yet they decide which tuples the fatal
    #: round's drains removed.
    remaps: tuple[tuple[int, int], ...] = ()
    #: The subset of remapped pids rebuilt from a backup replica (the
    #: rest are empty adoptions).  Needed to replay the round's backup
    #: placement refresh, which exempts in-restore partitions from the
    #: replica drop it would otherwise issue.
    restores: tuple[int, ...] = ()

    def wire_bytes(self, tuple_bytes: int) -> int:
        return CONTROL_BYTES + 24 * len(self.moves) + 8 * (
            len(self.new_active) + len(self.deactivate) + len(self.restores)
        ) + 16 * len(self.remaps)


@dataclass(frozen=True)
class TakeOver(Message):
    """Standby -> slave: the standby is the acting master now.

    Re-fences the in-flight epoch: the slave switches its master id to
    the standby, adopts ``epoch`` as the next round index and answers
    with a :class:`Rejoin`.  ``pending_in`` lists the fatal round's
    planned moves *into* this slave whose :class:`StateTransfer` may
    still be in flight — the slave absorbs each with a timed receive
    before rejoining (supplier dead or never ordered -> timeout ->
    the move is abandoned and the supplier keeps the partition).
    """

    epoch: int
    clock: float = 0.0
    schedule: SlotSchedule | None = None
    active: bool = True
    #: Epoch of the plan the moves belong to (-1: no plan in flight).
    plan_epoch: int = -1
    pending_in: tuple[MoveDirective, ...] = ()

    def wire_bytes(self, tuple_bytes: int) -> int:
        return CONTROL_BYTES + 24 * len(self.pending_in)


@dataclass(frozen=True)
class Rejoin(Message):
    """Slave -> standby: acknowledgement of a :class:`TakeOver`.

    Reports what the slave actually holds so the new master can rebuild
    the authoritative partition map: the owned partition-groups, the
    last epochs it received a shipment / a reorg order for, and any
    join-pair chunks it surrendered (in a Checkpoint or MoveAck) that
    the dead master may never have banked — tagged ``(pid, epoch)`` so
    the new master deduplicates against the replicated pair store.
    """

    epoch: int
    owned_pids: tuple[int, ...] = ()
    last_shipment_epoch: int = -1
    last_order_epoch: int = -1
    active: bool = True
    #: Possibly-unbanked pair chunks: ``(pid, epoch, rows)``.
    pairs: tuple[tuple[int, int, np.ndarray], ...] = ()

    def wire_bytes(self, tuple_bytes: int) -> int:
        total = CONTROL_BYTES + 8 * len(self.owned_pids)
        for _pid, _epoch, rows in self.pairs:
            total += 16 + 16 * len(rows)
        return total


MasterToSlave = t.Union[
    Shipment, ReorgOrder, Activate, Halt, Replicate, Restore, TakeOver
]
SlaveToMaster = t.Union[SlaveSync, MoveAck, Checkpoint, Rejoin]
MasterToStandby = t.Union[StandbySync, StandbyPlan, Halt]
