"""Wire protocol between master, slaves and collector.

The communication pattern is *fixed* (Section III): every exchange
happens at a scheduled point of the epoch structure, so each message
type corresponds to exactly one step of the schedule.  Receiving an
unexpected type raises :class:`~repro.errors.ProtocolError` in the node
loops.

Payload sizes: tuple-bearing messages cost ``n * tuple_bytes`` wire
bytes (the paper's 64 B machine-independent tuple format); control
messages cost a small fixed size.
"""

from __future__ import annotations

import typing as t
from dataclasses import dataclass

from repro.core.partition_group import PartitionGroupState
from repro.core.subgroups import SlotSchedule
from repro.data.tuples import TupleBatch

#: Wire size of a bare control message (headers + a few ints).
CONTROL_BYTES = 64
#: Wire size of a per-epoch load report.
REPORT_BYTES = 96
#: Wire size of a per-epoch result report to the collector (stats +
#: log-spaced delay histogram).
RESULT_REPORT_BYTES = 640


@dataclass(frozen=True)
class Message:
    """Base class: every message knows its wire size."""

    def wire_bytes(self, tuple_bytes: int) -> int:
        return CONTROL_BYTES


@dataclass(frozen=True)
class Shipment(Message):
    """Master -> slave: the tuples of one distribution epoch.

    Tuples of both streams travel merged, distinguished by the
    stream-id column (the paper's augmented-attribute option).
    ``epoch_start`` lets the slave compute its exact expiry cutoff.
    """

    epoch: int
    epoch_start: float
    epoch_end: float
    batch: TupleBatch

    def wire_bytes(self, tuple_bytes: int) -> int:
        return CONTROL_BYTES + len(self.batch) * tuple_bytes


@dataclass(frozen=True)
class LoadReport(Message):
    """Slave -> master: average buffer occupancy over the last epochs."""

    epoch: int
    avg_occupancy: float
    last_occupancy: float
    window_bytes: int

    def wire_bytes(self, tuple_bytes: int) -> int:
        return REPORT_BYTES


class MoveDirective(t.NamedTuple):
    """One partition-group move: partition ``pid`` from ``src`` to ``dst``."""

    pid: int
    src: int
    dst: int


@dataclass(frozen=True)
class ReorgOrder(Message):
    """Master -> slave at a reorganization epoch.

    Carries the moves this slave participates in (as supplier and/or
    consumer), whether the slave is being deactivated afterwards, and a
    clock-synchronization stamp (Algorithm 1, line 18).

    Recovery orders additionally carry ``adopt``: partition-groups of a
    crashed slave this slave must re-own with *empty* window state (no
    supplier survives to send a :class:`StateTransfer`).  Each adoption
    is acknowledged with a ``role="adopt"`` :class:`MoveAck`.
    """

    epoch: int
    outgoing: tuple[MoveDirective, ...] = ()
    incoming: tuple[MoveDirective, ...] = ()
    deactivate: bool = False
    clock: float = 0.0
    #: This slave's communication slot from the next epoch on.
    schedule: SlotSchedule | None = None
    #: Partition-groups to adopt from a dead slave (rebuilt empty).
    adopt: tuple[int, ...] = ()

    def wire_bytes(self, tuple_bytes: int) -> int:
        return CONTROL_BYTES + 24 * (
            len(self.outgoing) + len(self.incoming)
        ) + 8 * len(self.adopt)


@dataclass(frozen=True)
class StateTransfer(Message):
    """Supplier slave -> consumer slave: a partition-group's state."""

    pid: int
    state: PartitionGroupState
    buffered: TupleBatch

    def wire_bytes(self, tuple_bytes: int) -> int:
        n = self.state.n_tuples + len(self.buffered)
        return CONTROL_BYTES + n * tuple_bytes


@dataclass(frozen=True)
class MoveAck(Message):
    """Slave -> master: one side of a state move completed."""

    pid: int
    role: str  # "supplier" | "consumer"


@dataclass(frozen=True)
class Activate(Message):
    """Master -> slave: join the active set at the next epoch."""

    epoch: int
    clock: float = 0.0
    schedule: SlotSchedule | None = None


@dataclass(frozen=True)
class ResultReport(Message):
    """Slave -> collector: per-epoch output statistics.

    The collector merges statistics (a :class:`~repro.core.metrics.DelayStats`
    snapshot) rather than raw result tuples — see DESIGN.md, "known
    deviations".
    """

    epoch: int
    stats: t.Any  # DelayStats

    def wire_bytes(self, tuple_bytes: int) -> int:
        return RESULT_REPORT_BYTES


@dataclass(frozen=True)
class Halt(Message):
    """Master -> everyone: end of run, shut down cleanly."""

    epoch: int


@dataclass(frozen=True)
class SlaveSync(Message):
    """Slave -> master: per-epoch hello carrying the load sample.

    This is the slave-initiated connection of the fixed schedule: the
    slave contacts the master at its slot, hands over its status, and
    the master answers with the epoch's Shipment (or ReorgOrder).
    """

    epoch: int
    report: LoadReport

    def wire_bytes(self, tuple_bytes: int) -> int:
        return REPORT_BYTES


MasterToSlave = t.Union[Shipment, ReorgOrder, Activate, Halt]
SlaveToMaster = t.Union[SlaveSync, MoveAck]
