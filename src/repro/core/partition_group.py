"""Partition-groups and mini-partition-groups (Section IV-C/IV-D).

A **partition-group** is the unit of load movement between slaves: one
of the ``npart`` hash partitions of the stream pair, holding both
streams' window data for that partition.  Inside a partition-group,
**fine tuning** keeps the data subdivided into *mini-partition-groups*
via an extendible-hash directory so that each probe scans a bounded
amount of window data: a mini-group larger than ``2*theta`` bytes is
split, and one smaller than ``theta`` is merged with its buddy when the
combined size stays below ``2*theta``.

With fine tuning disabled the partition-group degenerates to a single
mini-group of unbounded size — the configuration the paper uses as its
"no fine-tuning" comparison (Figures 7–10).
"""

from __future__ import annotations

import typing as t

import numpy as np

from repro.core.exthash import Bucket, ExtendibleDirectory
from repro.core.hashing import directory_hash
from repro.core.nway import CompositeResult, probe_composites
from repro.core.probe import ProbeResult
from repro.core.window import StreamWindow
from repro.data.tuples import TupleBatch


class JoinGeometry(t.NamedTuple):
    """The shape parameters shared by every window structure."""

    tuples_per_block: int
    block_bytes: int
    theta_bytes: int
    window_seconds: float
    fine_tuning: bool
    tuple_bytes: int
    #: Number of joining streams (the paper's general model; the
    #: evaluation prototype uses 2).
    n_streams: int = 2
    #: Join kernel probing each window (:mod:`repro.core.kernels`).
    kernel: str = "blocknlj"


class MiniGroup:
    """A mini-partition-group: one window per joining stream."""

    __slots__ = ("geometry", "windows")

    def __init__(self, geometry: JoinGeometry) -> None:
        self.geometry = geometry
        self.windows = tuple(
            StreamWindow(
                sid,
                geometry.tuples_per_block,
                geometry.block_bytes,
                kernel=geometry.kernel,
            )
            for sid in range(geometry.n_streams)
        )

    # -- sizes ----------------------------------------------------------
    @property
    def n_tuples(self) -> int:
        return sum(w.n_tuples for w in self.windows)

    @property
    def bytes_used(self) -> int:
        tb = self.geometry.tuple_bytes
        return sum(w.bytes_used(tb) for w in self.windows)

    @property
    def has_fresh(self) -> bool:
        return any(w.n_fresh for w in self.windows)

    # -- join-protocol operations -------------------------------------------
    def flush_stream(self, sid: int, collect_pairs: bool = False) -> ProbeResult:
        """Flush stream *sid*'s fresh head block: join it against the
        other streams' committed windows and commit it.

        Two streams use the fast pairwise kernel; more use the n-way
        composite prober (its :class:`CompositeResult` is normalized to
        a :class:`ProbeResult` so callers see a single return type).
        In both cases only committed tuples of the other streams
        participate (the duplicate-elimination rule: a result is
        emitted by the last of its members to flush).
        """
        window = self.windows[sid]
        if self.geometry.n_streams == 2:
            return window.flush(
                self.windows[1 - sid],
                self.geometry.window_seconds,
                collect_pairs=collect_pairs,
            )
        ts, key, seq = window.fresh_view()
        others = []
        for k, other in enumerate(self.windows):
            if k == sid:
                continue
            s_key, s_ts, s_seq = other.sorted_view(need_seq=collect_pairs)
            others.append((k, s_key, s_ts, s_seq))
        result: CompositeResult = probe_composites(
            sid,
            ts,
            key,
            seq,
            others,
            {k: self.geometry.window_seconds for k in range(len(self.windows))},
            collect_members=collect_pairs,
        )
        window.commit_fresh()
        return ProbeResult(result.n_composites, result.newest_ts, result.members)

    def flush_all(self, collect_pairs: bool = False) -> list:
        """Flush every stream's fresh head block, in stream order."""
        results = []
        for sid, window in enumerate(self.windows):
            if window.n_fresh:
                results.append(self.flush_stream(sid, collect_pairs))
        return results

    def expire_before(self, cutoff_ts: float) -> int:
        return sum(w.expire_before(cutoff_ts) for w in self.windows)

    # -- fine-tuning operations ---------------------------------------------------
    def split_by_bit(self, bit: int) -> tuple["MiniGroup", "MiniGroup"]:
        """Redistribute tuples by bit *bit* of the directory hash.

        Requires both fresh head blocks to be empty (the join module
        flushes them first); committed tuples keep temporal order
        because mask selection is stable.
        """
        if self.has_fresh:
            raise ValueError("cannot split a mini-group with fresh tuples")
        low, high = MiniGroup(self.geometry), MiniGroup(self.geometry)
        bitmask = np.uint64(1 << bit)
        for sid, window in enumerate(self.windows):
            soa = window.committed
            ts, key, seq = soa.ts, soa.key, soa.seq
            high_side = (directory_hash(key) & bitmask).astype(bool)
            for target, mask in ((low, ~high_side), (high, high_side)):
                target.windows[sid].committed.append(ts[mask], key[mask], seq[mask])
        return low, high

    def can_subdivide(self, bit: int) -> bool:
        """True when splitting by directory-hash bits >= *bit* can
        actually separate this group's tuples.

        A group dominated by one hot join key has identical directory
        hashes throughout; splitting it only doubles the directory
        without reducing scan sizes, so the tuning policy skips it.
        """
        keys = [w.committed.key for w in self.windows if len(w.committed)]
        if not keys:
            return False
        suffixes = [directory_hash(k) >> np.uint64(bit) for k in keys]
        lo = min(int(s.min()) for s in suffixes)
        hi = max(int(s.max()) for s in suffixes)
        return lo != hi

    @staticmethod
    def merged(a: "MiniGroup", b: "MiniGroup") -> "MiniGroup":
        """Merge two buddy mini-groups, restoring temporal order."""
        if a.has_fresh or b.has_fresh:
            raise ValueError("cannot merge mini-groups with fresh tuples")
        out = MiniGroup(a.geometry)
        for sid in range(a.geometry.n_streams):
            sa, sb = a.windows[sid].committed, b.windows[sid].committed
            ts = np.concatenate((sa.ts, sb.ts))
            key = np.concatenate((sa.key, sb.key))
            seq = np.concatenate((sa.seq, sb.seq))
            order = np.argsort(ts, kind="stable")
            out.windows[sid].committed.append(ts[order], key[order], seq[order])
        return out


class GroupState(t.NamedTuple):
    """Serialized form of one mini-group (for the state mover)."""

    pattern: int
    local_depth: int
    #: Per stream: (committed batch, fresh batch).
    streams: tuple[tuple[TupleBatch, TupleBatch], ...]

    @property
    def n_tuples(self) -> int:
        return sum(len(c) + len(f) for c, f in self.streams)


class PartitionGroupState(t.NamedTuple):
    """Serialized form of a whole partition-group.

    This is the paper's "window states plus splitting information" that
    the state mover ships from a supplier to a consumer.
    """

    pid: int
    global_depth: int
    groups: tuple[GroupState, ...]

    @property
    def n_tuples(self) -> int:
        return sum(g.n_tuples for g in self.groups)

    def payload_bytes(self, tuple_bytes: int) -> int:
        return self.n_tuples * tuple_bytes


class PartitionGroup:
    """One hash partition's window data, fine-tuned into mini-groups."""

    def __init__(
        self,
        pid: int,
        geometry: JoinGeometry,
        on_double: t.Callable[[int, int], None] | None = None,
    ) -> None:
        self.pid = int(pid)
        self.geometry = geometry
        #: Observability hook: ``on_double(pid, new_global_depth)``.
        self._on_double = on_double
        self.directory: ExtendibleDirectory[MiniGroup] = self._new_directory()

    def _new_directory(self) -> ExtendibleDirectory[MiniGroup]:
        hook = None
        if self._on_double is not None:
            hook = lambda depth: self._on_double(self.pid, depth)  # noqa: E731
        return ExtendibleDirectory(MiniGroup(self.geometry), on_double=hook)

    # -- sizes --------------------------------------------------------------
    @property
    def n_tuples(self) -> int:
        return sum(b.payload.n_tuples for b in self.directory.buckets())

    @property
    def bytes_used(self) -> int:
        return sum(b.payload.bytes_used for b in self.directory.buckets())

    @property
    def n_mini_groups(self) -> int:
        return self.directory.n_buckets

    # -- routing --------------------------------------------------------------
    def route(self, keys: np.ndarray) -> tuple[np.ndarray, dict[int, Bucket]]:
        """Bucket assignment for *keys*.

        Returns ``(patterns, buckets)`` where ``patterns[i]`` is the
        bucket *pattern* of key ``i`` and ``buckets`` maps pattern ->
        bucket.  Several directory slots can point to one bucket (when
        its local depth is below the global depth), so grouping must be
        by bucket pattern, not by raw slot — otherwise a mini-group
        would be fed multiple interleaved segments of the same batch,
        breaking temporal order.
        """
        directory = self.directory
        gvals = directory_hash(keys)
        mask = np.uint64((1 << directory.global_depth) - 1)
        slots = (gvals & mask).astype(np.int64)
        patterns = directory.pattern_table()[slots]
        return patterns, {
            int(p): directory.slots[int(p)] for p in np.unique(patterns)
        }

    # -- maintenance --------------------------------------------------------------
    def oversized_buckets(self) -> list[Bucket[MiniGroup]]:
        limit = 2 * self.geometry.theta_bytes
        return [
            b
            for b in self.directory.buckets()
            if b.payload.bytes_used > limit
            and self.directory.can_split(b)
            and b.payload.can_subdivide(b.local_depth)
        ]

    def undersized_buckets(self) -> list[Bucket[MiniGroup]]:
        return [
            b
            for b in self.directory.buckets()
            if b.payload.bytes_used < self.geometry.theta_bytes
            and b.local_depth > 0
        ]

    def split_bucket(self, bucket: Bucket[MiniGroup]) -> int:
        """Split one oversized bucket; returns bytes redistributed."""
        moved = bucket.payload.bytes_used
        self.directory.split(bucket, lambda mg, bit: mg.split_by_bit(bit))
        return moved

    def try_merge_bucket(self, bucket: Bucket[MiniGroup]) -> int:
        """Merge *bucket* with its buddy if the paper's conditions hold
        (same local depth, combined size < 2*theta).  Returns bytes
        touched, or 0 when no merge happened."""
        buddy = self.directory.buddy_of(bucket)
        if buddy is None:
            return 0
        combined = bucket.payload.bytes_used + buddy.payload.bytes_used
        if combined >= 2 * self.geometry.theta_bytes:
            return 0
        if bucket.payload.has_fresh or buddy.payload.has_fresh:
            return 0
        self.directory.merge(bucket, MiniGroup.merged)
        return combined

    # -- state movement ---------------------------------------------------------------
    def extract_state(self) -> PartitionGroupState:
        """Drain this group's entire window state for migration."""
        global_depth = self.directory.global_depth
        groups = []
        for bucket in self.directory.buckets():
            streams = tuple(
                w.extract_all() for w in bucket.payload.windows
            )
            groups.append(
                GroupState(bucket.pattern, bucket.local_depth, streams)
            )
        # Reset to a pristine directory.
        self.directory = self._new_directory()
        return PartitionGroupState(self.pid, global_depth, tuple(groups))

    def snapshot_state(self) -> PartitionGroupState:
        """Copy this group's window state without draining it — the
        owner side of a replication checkpoint."""
        groups = []
        for bucket in self.directory.buckets():
            streams = tuple(
                w.snapshot_all() for w in bucket.payload.windows
            )
            groups.append(
                GroupState(bucket.pattern, bucket.local_depth, streams)
            )
        return PartitionGroupState(
            self.pid, self.directory.global_depth, tuple(groups)
        )

    def install_state(self, state: PartitionGroupState) -> None:
        """Rebuild the fine-tuned directory from a shipped state blob."""
        if self.n_tuples:
            raise ValueError(
                f"installing state into non-empty partition-group {self.pid}"
            )
        directory: ExtendibleDirectory[MiniGroup] = ExtendibleDirectory(
            MiniGroup(self.geometry)
        )
        for group in state.groups:
            # Grow the directory until the recorded local depth fits,
            # splitting along the recorded pattern's bits.
            bucket = directory.bucket_for(group.pattern)
            while bucket.local_depth < group.local_depth:
                directory.split(bucket, lambda mg, bit: mg.split_by_bit(bit))
                bucket = directory.bucket_for(group.pattern)
            mini = bucket.payload
            for sid, (committed, fresh) in enumerate(group.streams):
                window = mini.windows[sid]
                window.install_committed(committed)
                if len(fresh):
                    window.append_fresh(fresh.ts, fresh.key, fresh.seq)
        # Attach the observability hook only after the rebuild: replayed
        # doublings are structure restoration, not new tuning activity.
        if self._on_double is not None:
            directory.on_double = lambda depth: self._on_double(self.pid, depth)
        self.directory = directory
        self.warm_kernels()

    def warm_kernels(self) -> None:
        """Eagerly rebuild every window's kernel-derived state.

        Kernels are never serialized: a shipped
        :class:`PartitionGroupState` carries window contents only, so
        after a state install (migration or crash restore) the consumer
        rebuilds indexes from the installed SoAs.  Lossless by
        construction — the committed store is the single source of
        truth for every kernel.
        """
        for bucket in self.directory.buckets():
            for window in bucket.payload.windows:
                window.kernel.warm()
