"""One stream's window data inside a mini-partition-group.

A :class:`StreamWindow` holds:

* the **committed** window tuples, in temporal (arrival) order so blocks
  expire from the front — the reason the paper rejects sort-based join
  algorithms (Section IV-D);
* the **fresh head block**: up to one block of newly added tuples that
  have not yet participated in a join.  Fresh tuples are excluded when
  the *opposite* stream probes this window (the paper's duplicate
  elimination rule) and are probed themselves when the head block fills
  or the stream buffer drains (:meth:`flush` is called by the join
  module at those points).

Probing is delegated to a pluggable *join kernel*
(:mod:`repro.core.kernels`, selected by ``JoinGeometry.kernel`` /
``SystemConfig.kernel``): the ``blocknlj`` baseline binary-searches a
lazily rebuilt sorted-by-key snapshot of the committed tuples; the
``indexed`` kernel keeps an incrementally maintained hash index with
lazy bulk expiry.  Every kernel computes the *exact* match set — the
simulated CPU cost charged per probe is the kernel's own model
(:mod:`repro.core.costmodel`), not the cost of these structures.
"""

from __future__ import annotations

import numpy as np

from repro.core.kernels import make_kernel
from repro.core.probe import ProbeResult
from repro.data.blocks import block_bytes_used, n_blocks
from repro.data.soa import GrowableSoA
from repro.data.tuples import KEY_DTYPE, SEQ_DTYPE, TS_DTYPE, TupleBatch


class StreamWindow:
    """Committed window + fresh head block for one stream."""

    __slots__ = (
        "stream_id",
        "tuples_per_block",
        "block_bytes",
        "committed",
        "kernel",
        "_fresh_ts",
        "_fresh_key",
        "_fresh_seq",
        "_fresh_n",
        "_sorted_key",
        "_sorted_ts",
        "_sorted_seq",
        "_index_dirty",
    )

    def __init__(
        self,
        stream_id: int,
        tuples_per_block: int,
        block_bytes: int,
        kernel: str = "blocknlj",
    ) -> None:
        self.stream_id = int(stream_id)
        self.tuples_per_block = int(tuples_per_block)
        self.block_bytes = int(block_bytes)
        self.committed = GrowableSoA()
        #: The probe strategy matching the opposite stream's fresh
        #: tuples against this window's committed ones.
        self.kernel = make_kernel(kernel, self)
        self._fresh_ts = np.empty(tuples_per_block, TS_DTYPE)
        self._fresh_key = np.empty(tuples_per_block, KEY_DTYPE)
        self._fresh_seq = np.empty(tuples_per_block, SEQ_DTYPE)
        self._fresh_n = 0
        self._sorted_key: np.ndarray | None = None
        self._sorted_ts: np.ndarray | None = None
        self._sorted_seq: np.ndarray | None = None
        self._index_dirty = True

    # -- sizes -----------------------------------------------------------
    @property
    def n_committed(self) -> int:
        return len(self.committed)

    @property
    def n_fresh(self) -> int:
        return self._fresh_n

    @property
    def n_tuples(self) -> int:
        return len(self.committed) + self._fresh_n

    def bytes_used(self, tuple_bytes: int) -> int:
        """Block-granular footprint (partial head block counts whole)."""
        return block_bytes_used(
            self.n_tuples, self.tuples_per_block, self.block_bytes
        )

    @property
    def committed_blocks(self) -> int:
        return n_blocks(len(self.committed), self.tuples_per_block)

    @property
    def committed_bytes(self) -> int:
        """Block-granular bytes a probe of the opposite stream scans."""
        return self.committed_blocks * self.block_bytes

    # -- head-block protocol ------------------------------------------------
    def head_space(self) -> int:
        """Tuples the head block can still accept before it is full."""
        return self.tuples_per_block - self._fresh_n

    def append_fresh(
        self, ts: np.ndarray, key: np.ndarray, seq: np.ndarray
    ) -> None:
        """Add tuples to the head block (must fit; see :meth:`head_space`)."""
        n = len(ts)
        if n == 0:
            return
        if n > self.head_space():
            raise ValueError(
                f"head block overflow: {n} tuples into {self.head_space()} slots"
            )
        f = self._fresh_n
        self._fresh_ts[f : f + n] = ts
        self._fresh_key[f : f + n] = key
        self._fresh_seq[f : f + n] = seq
        self._fresh_n = f + n

    def fresh_view(self) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """(ts, key, seq) views of the current fresh tuples."""
        f = self._fresh_n
        return self._fresh_ts[:f], self._fresh_key[:f], self._fresh_seq[:f]

    def flush(self, opposite: "StreamWindow", window_seconds: float,
              collect_pairs: bool = False) -> ProbeResult:
        """Join the fresh tuples against *opposite*'s committed window
        and commit them.

        Fresh tuples of *opposite* are excluded (duplicate elimination):
        they will produce those pairs themselves when they flush, by
        which time this window's tuples are committed.
        """
        ts, key, seq = self.fresh_view()
        result = opposite.probe_committed(
            ts, key, seq, window_seconds, collect_pairs=collect_pairs
        )
        self.commit_fresh()
        return result

    # -- probing ----------------------------------------------------------
    def probe_committed(
        self,
        probe_ts: np.ndarray,
        probe_key: np.ndarray,
        probe_seq: np.ndarray,
        window_seconds: float,
        collect_pairs: bool = False,
    ) -> ProbeResult:
        """Match *probe* tuples against this window's committed tuples."""
        return self.kernel.probe(
            probe_ts,
            probe_key,
            probe_seq,
            window_seconds,
            collect_pairs=collect_pairs,
        )

    def probe_scan_bytes(self, probe_key: np.ndarray, tuple_bytes: int) -> int:
        """Bytes the configured kernel touches probing *probe_key* here
        (drives the simulated CPU charge and the disk-spill fraction)."""
        return self.kernel.probe_scan_bytes(probe_key, tuple_bytes)

    def sorted_view(
        self, need_seq: bool = False
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray | None]:
        """Committed tuples sorted by key: ``(key, ts, seq-or-None)``.

        Used by the n-way composite prober and the ``blocknlj`` kernel;
        valid until the next mutation of this window.  Kernels that do
        not call it never pay for the sort.
        """
        self._refresh_index(need_seq)
        return self._sorted_key, self._sorted_ts, self._sorted_seq

    def commit_fresh(self) -> None:
        """Move the fresh head block to committed without probing
        (the n-way prober has already matched it)."""
        ts, key, seq = self.fresh_view()
        if self._fresh_n:
            self.committed.append(ts, key, seq)
            self._fresh_n = 0
            self._index_dirty = True
            # Incremental insert: index the just-committed block now so
            # the structure is maintained at commit time, not probe time.
            self.kernel.on_commit()

    def _refresh_index(self, need_seq: bool) -> None:
        if not self._index_dirty and not (need_seq and self._sorted_seq is None):
            return
        key = self.committed.key
        order = np.argsort(key, kind="stable")
        self._sorted_key = key[order]
        self._sorted_ts = self.committed.ts[order]
        self._sorted_seq = self.committed.seq[order] if need_seq else None
        self._index_dirty = False

    # -- expiry -------------------------------------------------------------
    def expire_before(self, cutoff_ts: float) -> int:
        """Drop committed tuples older than *cutoff_ts*; returns count.

        Fresh tuples never expire: they arrived within the current
        epoch, and the window length is far larger than an epoch.
        """
        dropped = self.committed.expire_before(cutoff_ts)
        if dropped:
            self._index_dirty = True
        return dropped

    # -- state movement --------------------------------------------------------
    def extract_all(self) -> tuple[TupleBatch, TupleBatch]:
        """Remove and return ``(committed, fresh)`` for the state mover."""
        committed = self.committed.pop_all()
        ts, key, seq = self.fresh_view()
        fresh = TupleBatch(
            ts.copy(),
            key.copy(),
            seq.copy(),
            np.full(self._fresh_n, self.stream_id, dtype=np.uint8),
        )
        self._fresh_n = 0
        self._index_dirty = True
        return committed, fresh

    def snapshot_all(self) -> tuple[TupleBatch, TupleBatch]:
        """Non-destructive copy of ``(committed, fresh)`` for the
        replication checkpointer; the window keeps its state."""
        committed = self.committed.snapshot(self.stream_id)
        ts, key, seq = self.fresh_view()
        fresh = TupleBatch(
            ts.copy(),
            key.copy(),
            seq.copy(),
            np.full(self._fresh_n, self.stream_id, dtype=np.uint8),
        )
        return committed, fresh

    def install_committed(self, batch: TupleBatch) -> None:
        """Install moved committed tuples (consumer side of a state move)."""
        self.committed.append(batch.ts, batch.key, batch.seq)
        self._index_dirty = True
