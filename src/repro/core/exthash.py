"""Extendible hashing directory (Fagin et al., TODS 1979).

The paper fine-tunes window partitions with extendible hashing
(Section IV-D): each partition-group owns a directory of
mini-partition-groups.  The directory has ``2**global_depth`` entries
indexed by the ``global_depth`` least-significant bits of the directory
hash ``g(k)``; each bucket (mini-partition-group) has a ``local_depth
<= global_depth`` and is pointed to by ``2**(global_depth -
local_depth)`` entries sharing its ``local_depth`` LSB *pattern*.

Splitting a bucket with ``local_depth < global_depth`` redistributes its
entries between two buckets of depth ``local_depth + 1``; splitting a
bucket at ``local_depth == global_depth`` doubles the directory first.

Buddy rule: with LSB indexing, the buddy of a bucket with pattern ``p``
and depth ``d'`` is the bucket with pattern ``p XOR 2**(d'-1)`` (flip
the most significant bit of the pattern).  The paper states the buddy
formula for a contiguous (MSB-indexed) directory layout; this is the
exact equivalent for the LSB layout it also prescribes.  Buckets merge
only when both have the same local depth.
"""

from __future__ import annotations

import typing as t

from repro.errors import SimulationError

T = t.TypeVar("T")

#: Hard cap on the directory's global depth; prevents unbounded
#: splitting when a single hot key concentrates an entire bucket.
MAX_GLOBAL_DEPTH = 16


class Bucket(t.Generic[T]):
    """A directory bucket (one mini-partition-group)."""

    __slots__ = ("local_depth", "pattern", "payload")

    def __init__(self, local_depth: int, pattern: int, payload: T) -> None:
        self.local_depth = local_depth
        self.pattern = pattern
        self.payload = payload

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<Bucket depth={self.local_depth} "
            f"pattern={self.pattern:0{max(1, self.local_depth)}b}>"
        )


class ExtendibleDirectory(t.Generic[T]):
    """LSB-indexed extendible-hash directory of payload buckets."""

    def __init__(
        self,
        initial_payload: T,
        max_global_depth: int = MAX_GLOBAL_DEPTH,
        on_double: t.Callable[[int], None] | None = None,
    ) -> None:
        self.global_depth = 0
        self.max_global_depth = max_global_depth
        #: Observability hook: called with the new global depth whenever
        #: the directory doubles (the expensive structural change).
        self.on_double = on_double
        self.slots: list[Bucket[T]] = [Bucket(0, 0, initial_payload)]
        self._pattern_table: t.Any = None  # numpy cache, see pattern_table()

    def pattern_table(self):
        """``int64[2**global_depth]`` mapping slot -> bucket pattern.

        Cached between structural changes; used by the vectorized
        router on every batch.
        """
        if self._pattern_table is None or len(self._pattern_table) != len(
            self.slots
        ):
            import numpy as np

            self._pattern_table = np.fromiter(
                (b.pattern for b in self.slots),
                dtype=np.int64,
                count=len(self.slots),
            )
        return self._pattern_table

    def _invalidate_cache(self) -> None:
        self._pattern_table = None

    # -- lookup -----------------------------------------------------------
    def slot_of(self, g: int) -> int:
        return int(g) & ((1 << self.global_depth) - 1)

    def bucket_for(self, g: int) -> Bucket[T]:
        return self.slots[self.slot_of(g)]

    def buckets(self) -> list[Bucket[T]]:
        """Distinct buckets, ordered by their lowest directory slot."""
        seen: dict[int, Bucket[T]] = {}
        for bucket in self.slots:
            seen.setdefault(id(bucket), bucket)
        return list(seen.values())

    @property
    def n_buckets(self) -> int:
        return len(self.buckets())

    # -- splitting ------------------------------------------------------------
    def can_split(self, bucket: Bucket[T]) -> bool:
        return (
            bucket.local_depth < self.max_global_depth
            and (
                bucket.local_depth < self.global_depth
                or self.global_depth < self.max_global_depth
            )
        )

    def split(
        self,
        bucket: Bucket[T],
        splitter: t.Callable[[T, int], tuple[T, T]],
    ) -> tuple[Bucket[T], Bucket[T]]:
        """Split *bucket*, distributing its payload by bit ``local_depth``
        of the directory hash.

        ``splitter(payload, bit_index)`` must return ``(payload0,
        payload1)`` holding the items whose ``g`` has bit ``bit_index``
        clear / set respectively.
        """
        if not self.can_split(bucket):
            raise SimulationError("directory depth limit reached; cannot split")
        if bucket.local_depth == self.global_depth:
            # Double the directory: every existing slot pattern is
            # replicated with the new MSB set.
            self.slots = self.slots + self.slots
            self.global_depth += 1
            if self.on_double is not None:
                self.on_double(self.global_depth)

        bit = bucket.local_depth
        payload0, payload1 = splitter(bucket.payload, bit)
        low = Bucket(bit + 1, bucket.pattern, payload0)
        high = Bucket(bit + 1, bucket.pattern | (1 << bit), payload1)
        self._reassign(bucket, low, high)
        self._invalidate_cache()
        return low, high

    def _reassign(
        self, old: Bucket[T], low: Bucket[T], high: Bucket[T]
    ) -> None:
        bit_mask = 1 << old.local_depth
        for i, slot in enumerate(self.slots):
            if slot is old:
                self.slots[i] = high if (i & bit_mask) else low

    # -- merging ---------------------------------------------------------------
    def buddy_of(self, bucket: Bucket[T]) -> Bucket[T] | None:
        """The bucket's buddy, or None if it is not currently mergeable.

        A buddy exists only when it is a distinct bucket with the same
        local depth (the merge precondition of the paper).
        """
        if bucket.local_depth == 0:
            return None
        buddy_pattern = bucket.pattern ^ (1 << (bucket.local_depth - 1))
        buddy = self.slots[buddy_pattern & ((1 << self.global_depth) - 1)]
        if buddy is bucket or buddy.local_depth != bucket.local_depth:
            return None
        return buddy

    def merge(
        self,
        bucket: Bucket[T],
        merger: t.Callable[[T, T], T],
    ) -> Bucket[T] | None:
        """Merge *bucket* with its buddy; returns the merged bucket or
        None when no eligible buddy exists.  Size policy is the caller's
        responsibility."""
        buddy = self.buddy_of(bucket)
        if buddy is None:
            return None
        depth = bucket.local_depth - 1
        pattern = bucket.pattern & ((1 << depth) - 1)
        merged = Bucket(depth, pattern, merger(bucket.payload, buddy.payload))
        for i, slot in enumerate(self.slots):
            if slot is bucket or slot is buddy:
                self.slots[i] = merged
        self._invalidate_cache()
        return merged

    # -- integrity (used by property tests) -------------------------------------
    def check_invariants(self) -> None:
        """Raise if the directory structure is inconsistent."""
        if len(self.slots) != 1 << self.global_depth:
            raise SimulationError("directory size != 2**global_depth")
        counts: dict[int, int] = {}
        for i, bucket in enumerate(self.slots):
            if bucket.local_depth > self.global_depth:
                raise SimulationError("bucket local depth exceeds global depth")
            mask = (1 << bucket.local_depth) - 1
            if (i & mask) != bucket.pattern:
                raise SimulationError(
                    f"slot {i} pattern mismatch: {i & mask} != {bucket.pattern}"
                )
            counts[id(bucket)] = counts.get(id(bucket), 0) + 1
        for bucket in self.buckets():
            expected = 1 << (self.global_depth - bucket.local_depth)
            if counts[id(bucket)] != expected:
                raise SimulationError(
                    f"bucket {bucket!r} referenced by {counts[id(bucket)]} "
                    f"slots, expected {expected}"
                )
