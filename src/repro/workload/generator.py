"""Online stream generation at the master node.

The paper generates tuples in real time inside the master (scheduled in
the idle period of each distribution epoch).  We mirror that: the master
asks the workload for "everything that arrived since the last epoch" and
receives ready-made :class:`~repro.data.tuples.TupleBatch` objects.
"""

from __future__ import annotations

import typing as t

import numpy as np

from repro.data.tuples import SEQ_DTYPE, TupleBatch
from repro.simul.rng import RngRegistry
from repro.workload.arrivals import PoissonArrivals, RateProfile
from repro.workload.bmodel import BModelKeys


class KeySource(t.Protocol):
    """Anything that can draw n join-attribute values."""

    def draw(self, n: int) -> np.ndarray: ...  # pragma: no cover


class StreamGenerator:
    """One stream: Poisson arrivals tagged with skewed join keys."""

    def __init__(
        self,
        stream_id: int,
        arrivals: PoissonArrivals,
        keys: KeySource,
    ) -> None:
        self.stream_id = int(stream_id)
        self.arrivals = arrivals
        self.keys = keys
        self._next_seq = 0

    def generate(self, t0: float, t1: float) -> TupleBatch:
        """All tuples of this stream arriving in ``[t0, t1)``."""
        times = self.arrivals.times_in(t0, t1)
        n = len(times)
        seq = np.arange(self._next_seq, self._next_seq + n, dtype=SEQ_DTYPE)
        self._next_seq += n
        return TupleBatch(
            times,
            self.keys.draw(n),
            seq,
            np.full(n, self.stream_id, dtype=np.uint8),
        )

    @property
    def tuples_generated(self) -> int:
        return self._next_seq


class TwoStreamWorkload:
    """The paper's workload: two streams S1, S2 with identical law.

    ``generate(t0, t1)`` returns one merged, timestamp-sorted batch with
    the stream-id column distinguishing sources (the paper's "augmented
    attribute" approach to stream identification).
    """

    def __init__(self, generators: t.Sequence[StreamGenerator]) -> None:
        if len(generators) < 2:
            raise ValueError("a join workload needs at least two streams")
        self.generators = list(generators)

    @classmethod
    def poisson_bmodel(
        cls,
        rng: RngRegistry,
        rate: float | RateProfile,
        b: float,
        key_domain: int,
        n_streams: int = 2,
    ) -> "TwoStreamWorkload":
        """The paper's default workload (Poisson + b-model)."""
        profile = (
            rate if isinstance(rate, RateProfile) else RateProfile.constant(rate)
        )
        gens = []
        for sid in range(n_streams):
            arrivals = PoissonArrivals(profile, rng.get(f"arrivals/{sid}"))
            keys = BModelKeys(key_domain, b, rng.get(f"keys/{sid}"))
            gens.append(StreamGenerator(sid, arrivals, keys))
        return cls(gens)

    def generate(self, t0: float, t1: float) -> TupleBatch:
        merged = TupleBatch.concat([g.generate(t0, t1) for g in self.generators])
        if len(merged) == 0:
            return merged
        order = np.argsort(merged.ts, kind="stable")
        return merged.take(order)

    @property
    def n_streams(self) -> int:
        return len(self.generators)

    @property
    def tuples_generated(self) -> int:
        return sum(g.tuples_generated for g in self.generators)
