"""Zipf-distributed join keys (alternative skew model).

Not used by the paper's experiments, but included as an extension so the
ablation benches can contrast b-model skew with the Zipf skew common in
later stream-join literature.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigError


class ZipfKeys:
    """Keys with ``P(rank i) ∝ i^-s`` over a finite domain.

    Ranks are mapped to key values through a fixed pseudo-random
    permutation (splitmix-style) so hot keys don't cluster at the bottom
    of the domain — keeping hash partitioning realistic.
    """

    def __init__(
        self,
        domain: int,
        s: float,
        rng: np.random.Generator,
        n_ranks: int = 100_000,
    ) -> None:
        if domain < 1:
            raise ConfigError(f"domain must be >= 1: {domain}")
        if s < 0:
            raise ConfigError(f"Zipf exponent must be >= 0: {s}")
        self.domain = int(domain)
        self.s = float(s)
        self.rng = rng
        n_ranks = min(int(n_ranks), self.domain)
        pmf = np.arange(1, n_ranks + 1, dtype=np.float64) ** -self.s
        pmf /= pmf.sum()
        self._cdf = np.cumsum(pmf)
        self._collision_mass = float((pmf**2).sum())

    def draw(self, n: int) -> np.ndarray:
        if n <= 0:
            return np.empty(0, dtype=np.int64)
        u = self.rng.random(n)
        ranks = np.searchsorted(self._cdf, u, side="right").astype(np.uint64)
        # splitmix64 finalizer as the rank -> key permutation.
        x = ranks + np.uint64(0x9E3779B97F4A7C15)
        x = (x ^ (x >> np.uint64(30))) * np.uint64(0xBF58476D1CE4E5B9)
        x = (x ^ (x >> np.uint64(27))) * np.uint64(0x94D049BB133111EB)
        x = x ^ (x >> np.uint64(31))
        return (x % np.uint64(self.domain)).astype(np.int64)

    def collision_mass(self) -> float:
        """``sum_k p_k^2`` for statistical tests."""
        return self._collision_mass
