"""Saving and replaying workload traces.

Deterministic replay across processes/machines: a generated workload can
be flushed to an ``.npz`` file and replayed later, which is how the
thread-runtime examples feed the exact same tuples as a simulated run.
"""

from __future__ import annotations

import os

import numpy as np

from repro.data.tuples import TupleBatch


def save_trace(path: str | os.PathLike, batch: TupleBatch) -> None:
    """Write a batch to *path* as a compressed ``.npz`` archive."""
    np.savez_compressed(
        os.fspath(path),
        ts=batch.ts,
        key=batch.key,
        seq=batch.seq,
        stream=batch.stream,
    )


def load_trace(path: str | os.PathLike) -> TupleBatch:
    """Load a batch previously written by :func:`save_trace`."""
    with np.load(os.fspath(path)) as data:
        return TupleBatch(data["ts"], data["key"], data["seq"], data["stream"])


class TraceReplayer:
    """Replays a recorded trace epoch by epoch (drop-in for a workload)."""

    def __init__(self, batch: TupleBatch) -> None:
        order = np.argsort(batch.ts, kind="stable")
        self.batch = batch.take(order)
        self._cursor = 0

    @classmethod
    def from_file(cls, path: str | os.PathLike) -> "TraceReplayer":
        return cls(load_trace(path))

    def replica(self) -> "TraceReplayer":
        """An independent replayer over the same trace (fresh cursor).

        Used by the standby's shadow master, which replays the exact
        tuple sequence the real master generates.
        """
        return TraceReplayer(self.batch)

    def generate(self, t0: float, t1: float) -> TupleBatch:
        """Tuples with ``t0 <= ts < t1`` (must be called in time order)."""
        ts = self.batch.ts
        start = self._cursor
        stop = int(np.searchsorted(ts, t1, side="left"))
        if start > stop:
            raise ValueError("TraceReplayer must be read in increasing time order")
        self._cursor = stop
        out = self.batch.slice(start, stop)
        return out.select(out.ts >= t0) if start == 0 else out
