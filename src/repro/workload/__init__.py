"""Synthetic stream workloads (Section VI-A of the paper).

* Poisson arrivals at a configurable (possibly time-varying) rate.
* Join-attribute values drawn from the **b-model** multiplicative
  cascade of Wang/Ailamaki/Faloutsos — the paper's "80/20-law" skew —
  over the integer domain ``[0, 10^7]``.
* A two-stream online generator producing timestamped
  :class:`~repro.data.tuples.TupleBatch` objects epoch by epoch.
"""

from repro.workload.arrivals import PoissonArrivals, RateProfile
from repro.workload.bmodel import BModelKeys
from repro.workload.generator import StreamGenerator, TwoStreamWorkload
from repro.workload.uniformkeys import UniformKeys
from repro.workload.zipf import ZipfKeys

__all__ = [
    "PoissonArrivals",
    "RateProfile",
    "BModelKeys",
    "ZipfKeys",
    "UniformKeys",
    "StreamGenerator",
    "TwoStreamWorkload",
]
