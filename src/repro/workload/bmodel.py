"""b-model join-attribute generator.

The b-model of Wang, Ailamaki & Faloutsos captures self-similar
("80/20-law") value distributions with a single bias parameter ``b``:
at every dyadic scale, one half of the value range receives a fraction
``b`` of the probability mass and the other half ``1 - b``.  With
``b = 0.5`` the distribution is uniform; the paper's default ``b = 0.7``
concentrates roughly 70% of tuples in half the key space at every scale
(``b = 0.8`` is the classic 80/20 law).

Generation is vectorized: a key is built from ``levels`` independent
biased bits, each selecting the hot or cold half at one scale.  The
probability of the single hottest key is ``b ** levels`` and the
collision ("self-join") mass is ``(b^2 + (1-b)^2) ** levels``, both of
which are exposed for tests.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigError


class BModelKeys:
    """Draws join-attribute values in ``[0, domain)`` from a b-model."""

    def __init__(
        self,
        domain: int,
        b: float,
        rng: np.random.Generator,
        levels: int | None = None,
    ) -> None:
        if domain < 1:
            raise ConfigError(f"domain must be >= 1: {domain}")
        if not 0.0 <= b <= 1.0:
            raise ConfigError(f"b must lie in [0, 1]: {b}")
        self.domain = int(domain)
        self.b = float(b)
        self.rng = rng
        #: Cascade depth; default resolves individual keys of the domain.
        self.levels = (
            int(levels)
            if levels is not None
            else max(1, int(np.ceil(np.log2(self.domain))))
        )

    def draw(self, n: int) -> np.ndarray:
        """Return ``n`` keys (int64) in ``[0, domain)``."""
        if n <= 0:
            return np.empty(0, dtype=np.int64)
        # One biased bit per level: 0 selects the hot half (probability
        # b), 1 the cold half.  The fractional position in [0, 1) is the
        # binary expansion of the bits.
        bits = self.rng.random((n, self.levels)) >= self.b
        weights = np.ldexp(1.0, -np.arange(1, self.levels + 1))
        frac = bits @ weights
        keys = np.floor(frac * self.domain).astype(np.int64)
        # floor can hit `domain` only if frac rounds to 1.0 exactly.
        np.clip(keys, 0, self.domain - 1, out=keys)
        return keys

    # -- analytic properties (used by statistical tests) ---------------------
    def hottest_key_probability(self) -> float:
        """Probability mass of the most frequent key."""
        return max(self.b, 1.0 - self.b) ** self.levels

    def collision_mass(self) -> float:
        """``sum_k p_k^2`` — probability two draws collide."""
        return (self.b**2 + (1.0 - self.b) ** 2) ** self.levels

    def expected_matches_per_probe(self, window_tuples: int) -> float:
        """Expected equi-join partners of one tuple in a window."""
        return window_tuples * self.collision_mass()
