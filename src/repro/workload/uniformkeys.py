"""Uniform join keys (the b = 0.5 degenerate case, kept explicit)."""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigError


class UniformKeys:
    """Keys drawn uniformly from ``[0, domain)``."""

    def __init__(self, domain: int, rng: np.random.Generator) -> None:
        if domain < 1:
            raise ConfigError(f"domain must be >= 1: {domain}")
        self.domain = int(domain)
        self.rng = rng

    def draw(self, n: int) -> np.ndarray:
        if n <= 0:
            return np.empty(0, dtype=np.int64)
        return self.rng.integers(0, self.domain, size=n, dtype=np.int64)

    def collision_mass(self) -> float:
        """``sum_k p_k^2`` — equals ``1/domain`` for the uniform law."""
        return 1.0 / self.domain
