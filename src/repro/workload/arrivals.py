"""Poisson arrival processes.

Tuples within a stream arrive with Poisson arrival rate ``lambda``
(paper Section VI-A).  For a homogeneous Poisson process, the arrivals
inside an interval ``[t0, t1)`` are exactly: a Poisson-distributed count
with mean ``lambda * (t1 - t0)``, at i.i.d. uniform times — which is
what :meth:`PoissonArrivals.times_in` generates (vectorized, per the
HPC guides).  Time-varying rates are supported through a
piecewise-constant :class:`RateProfile` via interval splitting.
"""

from __future__ import annotations

import bisect
import typing as t

import numpy as np

from repro.errors import ConfigError


class RateProfile:
    """Piecewise-constant arrival rate ``r(t)``.

    ``RateProfile.constant(1500)`` is the paper's default.  Breakpoints
    allow experiments with load surges (used to exercise the
    supplier/consumer rebalancing and adaptive declustering).
    """

    def __init__(self, breakpoints: t.Sequence[float], rates: t.Sequence[float]):
        if len(rates) != len(breakpoints) + 1:
            raise ConfigError("need len(rates) == len(breakpoints) + 1")
        if any(r < 0 for r in rates):
            raise ConfigError("rates must be non-negative")
        if list(breakpoints) != sorted(set(breakpoints)):
            raise ConfigError("breakpoints must be strictly increasing")
        self.breakpoints = [float(b) for b in breakpoints]
        self.rates = [float(r) for r in rates]

    @classmethod
    def constant(cls, rate: float) -> "RateProfile":
        return cls([], [rate])

    @classmethod
    def step(cls, t_change: float, before: float, after: float) -> "RateProfile":
        """A single load step at time *t_change*."""
        return cls([t_change], [before, after])

    def rate_at(self, time: float) -> float:
        return self.rates[bisect.bisect_right(self.breakpoints, time)]

    def segments_in(self, t0: float, t1: float) -> list[tuple[float, float, float]]:
        """Constant-rate segments ``(start, stop, rate)`` covering [t0, t1)."""
        if t1 <= t0:
            return []
        edges = [t0] + [b for b in self.breakpoints if t0 < b < t1] + [t1]
        return [
            (lo, hi, self.rate_at(lo)) for lo, hi in zip(edges[:-1], edges[1:])
        ]

    def mean_rate(self, t0: float, t1: float) -> float:
        segs = self.segments_in(t0, t1)
        if not segs:
            return self.rate_at(t0)
        total = sum((hi - lo) * r for lo, hi, r in segs)
        return total / (t1 - t0)


class PoissonArrivals:
    """Generates arrival timestamps for one stream."""

    def __init__(self, profile: RateProfile, rng: np.random.Generator) -> None:
        self.profile = profile
        self.rng = rng

    def times_in(self, t0: float, t1: float) -> np.ndarray:
        """Sorted arrival times in ``[t0, t1)`` (float64 array)."""
        parts: list[np.ndarray] = []
        for lo, hi, rate in self.profile.segments_in(t0, t1):
            mean = rate * (hi - lo)
            if mean <= 0:
                continue
            n = int(self.rng.poisson(mean))
            if n:
                parts.append(self.rng.uniform(lo, hi, size=n))
        if not parts:
            return np.empty(0, dtype=np.float64)
        times = np.concatenate(parts) if len(parts) > 1 else parts[0]
        times.sort()
        return times
