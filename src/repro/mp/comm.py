"""Blocking communicator and collectives.

Point-to-point operations return awaitables to ``yield``; collectives
are generator functions to ``yield from``.  Collectives are built from
serial point-to-point exchanges — exactly how the paper's master
distributes tuples, which is what creates the slot/ordering effects of
Figures 12 and V-B.
"""

from __future__ import annotations

import typing as t

from repro.errors import ProtocolError
from repro.faults.markers import peer_silent


class Endpoint(t.Protocol):
    """Transport-backend endpoint (sim or thread)."""

    node_id: int

    def send(self, dst: int, message: t.Any) -> t.Any: ...  # pragma: no cover

    def recv(
        self, src: int, timeout: float | None = None
    ) -> t.Any: ...  # pragma: no cover

    def drain(self, src: int) -> None: ...  # pragma: no cover


class Communicator:
    """A node's communication interface."""

    def __init__(self, endpoint: Endpoint) -> None:
        self.endpoint = endpoint

    @property
    def node_id(self) -> int:
        return self.endpoint.node_id

    # -- point to point ------------------------------------------------------
    def send(self, dst: int, message: t.Any) -> t.Any:
        """Awaitable: blocking send (rendezvous)."""
        return self.endpoint.send(dst, message)

    def recv(self, src: int, timeout: float | None = None) -> t.Any:
        """Awaitable: blocking receive from *src*.

        With a *timeout*, the awaitable resolves to a
        :class:`~repro.faults.markers.RecvTimeout` marker if the peer
        stays silent that long.
        """
        return self.endpoint.recv(src, timeout)

    def recv_expect(
        self, src: int, *types: type, timeout: float | None = None
    ) -> t.Generator:
        """Receive from *src* and type-check against the fixed schedule.

        Usage: ``msg = yield from comm.recv_expect(src, Shipment, Halt)``.

        Fault markers (``NodeDown``/``RecvTimeout``) bypass the type
        check and are returned as-is: a silent peer is the caller's
        decision to make, not a protocol violation by a live one.
        """
        message = yield self.endpoint.recv(src, timeout)
        if peer_silent(message):
            return message
        if types and not isinstance(message, types):
            names = " | ".join(tp.__name__ for tp in types)
            raise ProtocolError(
                f"protocol violation at node {self.node_id}: expected "
                f"{names} from peer {src}, got {type(message).__name__} "
                f"({message!r:.160s})"
            )
        return message

    def drain(self, src: int) -> None:
        """Fence the channel from *src*: pending and future sends by
        *src* to this node complete silently (see the transport)."""
        self.endpoint.drain(src)

    # -- collectives (serial, fixed order) -----------------------------------
    def bcast(self, targets: t.Sequence[int], message: t.Any) -> t.Generator:
        """Send *message* to each target in order (serial broadcast)."""
        for dst in targets:
            yield self.endpoint.send(dst, message)

    def scatter(
        self, payloads: t.Mapping[int, t.Any]
    ) -> t.Generator:
        """Send each target its own payload, in sorted target order."""
        for dst in sorted(payloads):
            yield self.endpoint.send(dst, payloads[dst])

    def gather(self, sources: t.Sequence[int]) -> t.Generator:
        """Receive one message from each source (in the given order);
        returns ``{source: message}``."""
        out: dict[int, t.Any] = {}
        for src in sources:
            out[src] = yield self.endpoint.recv(src)
        return out

    def barrier_root(self, members: t.Sequence[int], token: t.Any) -> t.Generator:
        """Root side of a barrier: collect a token from every member,
        then release them all."""
        for src in members:
            yield self.endpoint.recv(src)
        for dst in members:
            yield self.endpoint.send(dst, token)

    def barrier_member(self, root: int, token: t.Any) -> t.Generator:
        """Member side of a barrier rooted at *root*."""
        yield self.endpoint.send(root, token)
        yield self.endpoint.recv(root)
