"""MPI-flavoured message passing on top of the transport layer.

The paper implements its prototype on mpiJava/LAM-MPI; here the
equivalent layer is a :class:`~repro.mp.comm.Communicator` providing
blocking point-to-point ``send``/``recv`` plus the collective patterns
the join protocol needs (serial broadcast, gather, barrier), all
expressed as generators so they run unchanged on either runtime
backend.
"""

from repro.mp.comm import Communicator

__all__ = ["Communicator"]
