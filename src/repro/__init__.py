"""repro — parallel windowed stream joins over a shared-nothing cluster.

Reproduction of A. Chakraborty and A. Singh, *"Parallelizing Windowed
Stream Joins in a Shared-Nothing Cluster"*, IEEE CLUSTER 2013
(arXiv:1307.6574).

The package provides:

* :mod:`repro.simul` — a discrete-event simulation kernel (processes,
  events, stores) built from scratch.
* :mod:`repro.runtime` — a runtime abstraction so the same node code runs
  on virtual (simulated) time or on real threads.
* :mod:`repro.net` — a modeled cluster network (rendezvous links, star
  topology, per-node communication accounting).
* :mod:`repro.mp` — an MPI-like message-passing layer (blocking
  send/recv, tags, collectives) on top of the network model.
* :mod:`repro.data` — tuple batches and fixed-size blocks (the paper's
  64-byte tuples in 4 KB blocks).
* :mod:`repro.workload` — Poisson arrivals and b-model skewed join keys.
* :mod:`repro.core` — the paper's contribution: the master/slave windowed
  hash-join with fine-grained partition tuning (extendible hashing),
  buffer-occupancy-driven load balancing, adaptive degree of
  declustering, and sub-group communication.
* :mod:`repro.baselines` — single-node join, no-fine-tuning variant,
  Aligned/Coordinated Tuple Routing, static round-robin.
* :mod:`repro.analysis` — experiment runner reproducing every figure of
  the paper's evaluation section.

Quickstart::

    from repro import JoinSystem, SystemConfig

    cfg = SystemConfig.paper_defaults().scaled(0.05).with_(
        num_slaves=4, rate=2000.0)
    result = JoinSystem(cfg).run()
    print(result.summary())
"""

from repro._version import __version__
from repro.config import CostModelConfig, NetworkConfig, SystemConfig
from repro.core.system import JoinSystem, RunResult

__all__ = [
    "__version__",
    "SystemConfig",
    "NetworkConfig",
    "CostModelConfig",
    "JoinSystem",
    "RunResult",
]
