"""Typed trace events (the structured-tracing vocabulary).

Every event carries the simulated timestamp ``t`` at which it happened
and the ``node`` id it happened on (``0`` is the master, ``1`` the
collector, slaves start at ``2``).  Events serialize to flat JSON
records via :meth:`TraceEvent.to_record`; the ``kind`` discriminator is
stable and is what `swjoin report` and the exporters key on.

The vocabulary mirrors the paper's per-epoch dynamics (Section VI):

==============  ============================================================
kind            meaning
==============  ============================================================
``epoch``       master enters a distribution/reorganization epoch
``drain``       a slave's join module emptied its backlog
``classify``    supplier/consumer/neutral classification with occupancies
``reorg``       the full reorganization decision (moves, DoD deltas)
``dod``         the degree of declustering changed (or was initialized)
``split``       fine tuning split an oversized mini-partition-group
``merge``       fine tuning merged two buddy mini-partition-groups
``directory``   an extendible-hash directory doubled (depth grew)
``state_move``  begin/end of one partition-group state transfer
``transport``   one rendezvous transfer on the wire (opt-in, high volume)
``sample``      one periodic gauge sample of a node (time-series layer)
``fault``       a fault fired (injection) or was detected/fenced (master)
``recovery``    the master reassigned a dead slave's partitions
``checkpoint``  an owner's replication checkpoint reached the master
``restore``     a backup slave rebuilt partitions (checkpoint + replay)
``election``    the standby detected master death and started its takeover
``takeover``    the standby finished re-fencing and is the acting master
==============  ============================================================
"""

from __future__ import annotations

import dataclasses
import typing as t

__all__ = [
    "TraceEvent",
    "EpochEvent",
    "DrainEvent",
    "ClassifyEvent",
    "ReorgEvent",
    "DodEvent",
    "SplitEvent",
    "MergeEvent",
    "DirectoryEvent",
    "StateMoveEvent",
    "TransportEvent",
    "SampleEvent",
    "FaultEvent",
    "RecoveryEvent",
    "CheckpointEvent",
    "RestoreEvent",
    "ElectionEvent",
    "TakeoverEvent",
    "EVENT_KINDS",
]


@dataclasses.dataclass(frozen=True)
class TraceEvent:
    """Base event: simulated time + originating node."""

    kind: t.ClassVar[str] = "event"

    t: float
    node: int

    def to_record(self) -> dict[str, t.Any]:
        """Flat, JSON-serializable record (tuples become lists)."""
        record = {"kind": self.kind}
        record.update(dataclasses.asdict(self))
        return record


@dataclasses.dataclass(frozen=True)
class EpochEvent(TraceEvent):
    """Master enters epoch *epoch* (``phase`` is ``dist``/``reorg``)."""

    kind: t.ClassVar[str] = "epoch"

    epoch: int
    phase: str
    active: int
    buffered_bytes: int


@dataclasses.dataclass(frozen=True)
class DrainEvent(TraceEvent):
    """A slave's join module finished draining its buffered backlog."""

    kind: t.ClassVar[str] = "drain"

    epoch: int
    window_bytes: int


@dataclasses.dataclass(frozen=True)
class ClassifyEvent(TraceEvent):
    """Load classification at a reorganization epoch (Section IV-C)."""

    kind: t.ClassVar[str] = "classify"

    epoch: int
    suppliers: tuple[int, ...]
    consumers: tuple[int, ...]
    neutrals: tuple[int, ...]
    #: Reported average buffer occupancy per active slave.
    occupancy: dict[int, float]


@dataclasses.dataclass(frozen=True)
class ReorgEvent(TraceEvent):
    """The master's full reorganization decision."""

    kind: t.ClassVar[str] = "reorg"

    epoch: int
    suppliers: tuple[int, ...]
    consumers: tuple[int, ...]
    neutrals: tuple[int, ...]
    #: Ordered state moves as ``(pid, src, dst)`` triples.
    moves: tuple[tuple[int, int, int], ...]
    activate: tuple[int, ...]
    deactivate: tuple[int, ...]


@dataclasses.dataclass(frozen=True)
class DodEvent(TraceEvent):
    """Degree-of-declustering change (``epoch == -1``: initial value)."""

    kind: t.ClassVar[str] = "dod"

    epoch: int
    n_active: int
    activated: tuple[int, ...]
    deactivated: tuple[int, ...]


@dataclasses.dataclass(frozen=True)
class SplitEvent(TraceEvent):
    """Fine tuning split an oversized mini-partition-group."""

    kind: t.ClassVar[str] = "split"

    pid: int
    n_buckets: int
    depth: int
    bytes: int


@dataclasses.dataclass(frozen=True)
class MergeEvent(TraceEvent):
    """Fine tuning merged two undersized buddy mini-groups."""

    kind: t.ClassVar[str] = "merge"

    pid: int
    n_buckets: int
    depth: int
    bytes: int


@dataclasses.dataclass(frozen=True)
class DirectoryEvent(TraceEvent):
    """An extendible-hash directory doubled (global depth grew)."""

    kind: t.ClassVar[str] = "directory"

    pid: int
    depth: int


@dataclasses.dataclass(frozen=True)
class StateMoveEvent(TraceEvent):
    """One side of a partition-group state transfer.

    ``phase`` is ``begin``/``end``; ``role`` is ``supplier`` (extract +
    send) or ``consumer`` (receive + install); ``peer`` is the node on
    the other end of the transfer.
    """

    kind: t.ClassVar[str] = "state_move"

    phase: str
    role: str
    pid: int
    peer: int
    nbytes: int


@dataclasses.dataclass(frozen=True)
class TransportEvent(TraceEvent):
    """One transport operation.

    The simulated transport emits a single span per rendezvous with
    ``phase="xfer"`` (``node`` is the sender, ``duration`` the modeled
    transfer time).  The distributed wall-clock transports emit *paired*
    events instead — ``phase="send"`` on the sender (``node`` = sender,
    ``dst`` = receiver) and ``phase="recv"`` on the receiver (``node`` =
    receiver, ``dst`` = sender) — matched by ``xfer_seq``, a per
    directed-channel message counter (channels are FIFO, so the n-th
    send pairs with the n-th receive).  ``swjoin report`` derives
    send→recv latency from the pairs.
    """

    kind: t.ClassVar[str] = "transport"

    dst: int
    msg: str
    nbytes: int
    duration: float
    phase: str = "xfer"
    xfer_seq: int = -1


@dataclasses.dataclass(frozen=True)
class SampleEvent(TraceEvent):
    """One periodic gauge sample of a node."""

    kind: t.ClassVar[str] = "sample"

    gauges: dict[str, float]


@dataclasses.dataclass(frozen=True)
class FaultEvent(TraceEvent):
    """One fault-plane action.

    ``action`` is ``crash``/``drop``/``delay``/``slow`` for injections
    (emitted by the injector; ``node`` is the acting side) and
    ``detect``/``fence`` for the master's failure handling (``node`` is
    the master).  ``target`` is the affected node; ``info`` carries the
    action's scalar (crash time, delay seconds, slowdown factor, or the
    armed detection timeout).
    """

    kind: t.ClassVar[str] = "fault"

    action: str
    target: int
    epoch: int = -1
    info: float = 0.0


@dataclasses.dataclass(frozen=True)
class RecoveryEvent(TraceEvent):
    """The master reassigned dead slaves' partition-groups.

    ``latency`` is the recovery latency of the *oldest* outstanding
    failure folded into this round (detection to reassignment).
    """

    kind: t.ClassVar[str] = "recovery"

    epoch: int
    dead: tuple[int, ...]
    pids: tuple[int, ...]
    adopters: tuple[int, ...]
    latency: float


@dataclasses.dataclass(frozen=True)
class CheckpointEvent(TraceEvent):
    """One replication checkpoint received by the master.

    ``node`` is the master; ``owner`` the checkpointing slave;
    ``backup`` where the copy is (or will be) stored; ``nbytes`` the
    checkpoint's wire size.
    """

    kind: t.ClassVar[str] = "checkpoint"

    epoch: int
    pid: int
    owner: int
    backup: int
    nbytes: int


@dataclasses.dataclass(frozen=True)
class RestoreEvent(TraceEvent):
    """A backup slave rebuilt lost partitions from checkpoint + log.

    ``node`` is the master (which ordered the restore); ``latency`` is
    measured from failure detection to the restore acknowledgement.
    """

    kind: t.ClassVar[str] = "restore"

    epoch: int
    restorer: int
    pids: tuple[int, ...]
    latency: float


@dataclasses.dataclass(frozen=True)
class ElectionEvent(TraceEvent):
    """The standby observed master death and began its takeover.

    ``node`` is the standby; ``fatal_epoch`` the round the master died
    in (one past the last synchronized round); ``synced_epoch`` the last
    round whose :class:`~repro.core.protocol.StandbySync` arrived.
    """

    kind: t.ClassVar[str] = "election"

    fatal_epoch: int
    synced_epoch: int
    plan_epoch: int


@dataclasses.dataclass(frozen=True)
class TakeoverEvent(TraceEvent):
    """The standby finished re-fencing and became the acting master.

    ``latency`` is election latency: master-death detection to the last
    slave's :class:`~repro.core.protocol.Rejoin`.
    """

    kind: t.ClassVar[str] = "takeover"

    epoch: int
    rejoined: tuple[int, ...]
    latency: float


EVENT_KINDS: tuple[str, ...] = tuple(
    cls.kind
    for cls in (
        EpochEvent,
        DrainEvent,
        ClassifyEvent,
        ReorgEvent,
        DodEvent,
        SplitEvent,
        MergeEvent,
        DirectoryEvent,
        StateMoveEvent,
        TransportEvent,
        SampleEvent,
        FaultEvent,
        RecoveryEvent,
        CheckpointEvent,
        RestoreEvent,
        ElectionEvent,
        TakeoverEvent,
    )
)
