"""Offline trace analysis: ``swjoin report <trace.jsonl>``.

Reads a JSONL trace produced by :class:`~repro.obs.exporters.JsonlExporter`
and renders:

* the **epoch timeline** — one row per master epoch with the adaptive
  activity that happened inside it (classification, state moves,
  splits/merges, DoD changes);
* the **top-k hot partitions** — the partition-groups with the most
  tuning and migration activity;
* per-node **occupancy summaries** from the periodic gauge samples;
* cross-node views for distributed traces: per-node **event lanes**,
  **send→recv latency** derived from paired transport events (matched
  by ``(src, dst, xfer_seq)``; the sim backend's single ``xfer`` spans
  report their modeled duration instead), and the **recovery
  timeline** (fault → detect → recovery/restore).
"""

from __future__ import annotations

import bisect
import json
import typing as t
from collections import Counter, defaultdict

from repro.analysis.tables import format_table

__all__ = [
    "load_trace",
    "render_report",
    "epoch_timeline",
    "hot_partitions",
    "node_lanes",
    "transport_latency",
    "recovery_timeline",
]


def load_trace(
    path: str,
) -> tuple[dict[str, t.Any] | None, list[dict[str, t.Any]]]:
    """Parse a JSONL trace file into ``(meta, records)``.

    The ``meta`` header (first line written by the exporter) is split
    off; malformed lines raise — a trace is either intact or suspect.
    """
    meta: dict[str, t.Any] | None = None
    records: list[dict[str, t.Any]] = []
    with open(path, "r", encoding="utf-8") as fh:
        for lineno, line in enumerate(fh, 1):
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError as exc:
                raise ValueError(f"{path}:{lineno}: malformed trace line") from exc
            if record.get("kind") == "meta":
                meta = record
            else:
                records.append(record)
    return meta, records


def _bucket_by_epoch(
    records: list[dict[str, t.Any]],
) -> tuple[list[dict[str, t.Any]], dict[int, list[dict[str, t.Any]]]]:
    """Split records into epoch markers and per-epoch event buckets.

    Events carrying an explicit ``epoch`` field use it; purely
    timestamped events (split/merge/state_move/directory) fall into the
    epoch whose marker precedes them in time.
    """
    epochs = sorted(
        (r for r in records if r["kind"] == "epoch"), key=lambda r: r["t"]
    )
    times = [r["t"] for r in epochs]
    buckets: dict[int, list[dict[str, t.Any]]] = defaultdict(list)
    for record in records:
        if record["kind"] in ("epoch", "sample", "transport"):
            continue
        epoch = record.get("epoch")
        if epoch is None:
            if not epochs:
                continue
            idx = max(0, bisect.bisect_right(times, record["t"]) - 1)
            epoch = epochs[idx]["epoch"]
        buckets[int(epoch)].append(record)
    return epochs, buckets


def epoch_timeline(records: list[dict[str, t.Any]]) -> list[dict[str, t.Any]]:
    """One summary row per epoch marker in the trace."""
    epochs, buckets = _bucket_by_epoch(records)
    rows = []
    for marker in epochs:
        inside = buckets.get(int(marker["epoch"]), [])
        by_kind: dict[str, list[dict[str, t.Any]]] = defaultdict(list)
        for record in inside:
            by_kind[record["kind"]].append(record)
        classify = by_kind["classify"][-1] if by_kind["classify"] else None
        reorg = by_kind["reorg"][-1] if by_kind["reorg"] else None
        moved = sum(
            r["nbytes"]
            for r in by_kind["state_move"]
            if r["phase"] == "end" and r["role"] == "supplier"
        )
        dod = ""
        for record in by_kind["dod"]:
            dod = f"->{record['n_active']}"
        rows.append(
            {
                "t": marker["t"],
                "epoch": marker["epoch"],
                "phase": marker["phase"],
                "active": marker["active"],
                "buf_kb": marker["buffered_bytes"] / 1024.0,
                "sup/con/neu": (
                    "-"
                    if classify is None
                    else "{}/{}/{}".format(
                        len(classify["suppliers"]),
                        len(classify["consumers"]),
                        len(classify["neutrals"]),
                    )
                ),
                "moves": len(reorg["moves"]) if reorg else 0,
                "moved_kb": moved / 1024.0,
                "splits": len(by_kind["split"]),
                "merges": len(by_kind["merge"]),
                "drains": len(by_kind["drain"]),
                "dod": dod,
            }
        )
    return rows


def hot_partitions(
    records: list[dict[str, t.Any]], top: int = 5
) -> list[dict[str, t.Any]]:
    """Partition-groups ranked by tuning + migration activity."""
    stats: dict[int, Counter] = defaultdict(Counter)
    for record in records:
        pid = record.get("pid")
        if pid is None:
            continue
        kind = record["kind"]
        if kind in ("split", "merge", "directory"):
            stats[int(pid)][kind] += 1
        elif kind == "state_move" and record["phase"] == "end":
            if record["role"] == "supplier":
                stats[int(pid)]["moves"] += 1
                stats[int(pid)]["moved_bytes"] += int(record["nbytes"])

    def activity(item: tuple[int, Counter]) -> tuple[int, int]:
        pid, counts = item
        score = counts["split"] + counts["merge"] + counts["moves"]
        return (-score, pid)

    rows = []
    for pid, counts in sorted(stats.items(), key=activity)[:top]:
        rows.append(
            {
                "pid": pid,
                "splits": counts["split"],
                "merges": counts["merge"],
                "dir_doubles": counts["directory"],
                "moves": counts["moves"],
                "moved_kb": counts["moved_bytes"] / 1024.0,
            }
        )
    return rows


def _occupancy_rows(records: list[dict[str, t.Any]]) -> list[dict[str, t.Any]]:
    per_node: dict[int, list[float]] = defaultdict(list)
    for record in records:
        if record["kind"] != "sample":
            continue
        occ = record["gauges"].get("occupancy")
        if occ is not None:
            per_node[int(record["node"])].append(float(occ))
    rows = []
    for node in sorted(per_node):
        values = per_node[node]
        rows.append(
            {
                "node": node,
                "samples": len(values),
                "occ_min": min(values),
                "occ_mean": sum(values) / len(values),
                "occ_max": max(values),
            }
        )
    return rows


def node_lanes(records: list[dict[str, t.Any]]) -> list[dict[str, t.Any]]:
    """One row per node: its share of the merged cluster trace."""
    by_node: dict[int, list[dict[str, t.Any]]] = defaultdict(list)
    for record in records:
        by_node[int(record["node"])].append(record)
    rows = []
    for node in sorted(by_node):
        lane = by_node[node]
        kinds = Counter(r["kind"] for r in lane)
        dominant = ", ".join(
            f"{kind}={n}"
            for kind, n in sorted(kinds.items(), key=lambda kv: (-kv[1], kv[0]))[:3]
        )
        rows.append(
            {
                "node": node,
                "events": len(lane),
                "first_t": min(r["t"] for r in lane),
                "last_t": max(r["t"] for r in lane),
                "top kinds": dominant,
            }
        )
    return rows


def transport_latency(
    records: list[dict[str, t.Any]],
) -> list[dict[str, t.Any]]:
    """Per directed node pair: message count and send→recv latency.

    Wall-clock backends emit paired ``send``/``recv`` transport events;
    the n-th send on a directed channel matches the n-th receive
    (``xfer_seq``), so latency is the receive timestamp minus the send
    timestamp.  Unmatched events (peer died mid-flight) are dropped.
    The sim backend's single ``xfer`` span per rendezvous contributes
    its modeled ``duration`` directly.
    """
    sends: dict[tuple[int, int, int], float] = {}
    latencies: dict[tuple[int, int], list[float]] = defaultdict(list)
    for record in records:
        if record["kind"] != "transport":
            continue
        phase = record.get("phase", "xfer")
        src_dst = (int(record["node"]), int(record["dst"]))
        if phase == "xfer":
            latencies[src_dst].append(float(record["duration"]))
        elif phase == "send":
            sends[(*src_dst, int(record["xfer_seq"]))] = float(record["t"])
    for record in records:
        if record["kind"] != "transport" or record.get("phase") != "recv":
            continue
        # A recv names its sender in ``dst``: flip to the send's key.
        src, dst = int(record["dst"]), int(record["node"])
        sent_at = sends.pop((src, dst, int(record["xfer_seq"])), None)
        if sent_at is not None:
            latencies[(src, dst)].append(float(record["t"]) - sent_at)
    rows = []
    for (src, dst) in sorted(latencies):
        values = latencies[(src, dst)]
        rows.append(
            {
                "src": src,
                "dst": dst,
                "msgs": len(values),
                "lat_mean_ms": 1e3 * sum(values) / len(values),
                "lat_max_ms": 1e3 * max(values),
            }
        )
    return rows


def _unrecovered_targets(records: list[dict[str, t.Any]]) -> set[int]:
    """Nodes whose detected failure never saw a recovery before halt.

    A ``recovery`` event names the dead slaves it recovered; a
    ``takeover`` recovers the dead master (the standby replayed its
    round).  Anything detected but covered by neither stayed
    unrecovered when the run ended.
    """
    detected: set[int] = set()
    recovered: set[int] = set()
    for record in records:
        kind = record["kind"]
        if kind == "fault" and record.get("action") == "detect":
            detected.add(int(record["target"]))
        elif kind == "recovery":
            recovered.update(int(s) for s in record["dead"])
    return detected - recovered


def recovery_timeline(
    records: list[dict[str, t.Any]],
) -> list[dict[str, t.Any]]:
    """Fault-plane events in time order: injection to restoration."""
    rows = []
    for record in records:
        kind = record["kind"]
        if kind == "fault":
            detail = f"{record['action']} target={record['target']}"
            info = record.get("info")
            if info is not None:
                # ``detect`` encodes an unlimited timeout (silence seen
                # via NodeDown, not a timer) as -1.0; 0.0 is a real
                # zero-second timeout and must still render.
                if record["action"] == "detect" and info == -1.0:
                    detail += " timeout=unlimited"
                else:
                    detail += f" info={info:g}"
        elif kind == "election":
            detail = (
                f"fatal_epoch={record['fatal_epoch']} "
                f"synced_epoch={record['synced_epoch']} "
                f"plan={'none' if record['plan_epoch'] < 0 else record['plan_epoch']}"
            )
        elif kind == "takeover":
            detail = (
                f"epoch={record['epoch']} "
                f"rejoined={len(record['rejoined'])} "
                f"latency={record['latency']:.3f}s"
            )
        elif kind == "recovery":
            detail = (
                f"dead={record['dead']} pids={len(record['pids'])} "
                f"latency={record['latency']:.3f}s"
            )
        elif kind == "restore":
            detail = (
                f"restorer={record['restorer']} pids={len(record['pids'])} "
                f"latency={record['latency']:.3f}s"
            )
        elif kind == "checkpoint":
            continue  # high volume; summarized by the kinds header
        else:
            continue
        rows.append(
            {
                "t": record["t"],
                "node": record["node"],
                "kind": kind,
                "detail": detail,
            }
        )
    rows.sort(key=lambda r: (r["t"], r["node"]))
    return rows


def render_report(
    meta: dict[str, t.Any] | None,
    records: list[dict[str, t.Any]],
    top: int = 5,
) -> str:
    """The full human-readable report for one trace file."""
    sections: list[str] = []
    counts = Counter(r["kind"] for r in records)
    header = f"trace: {len(records)} events"
    if meta is not None:
        header += f"  (schema v{meta.get('version', '?')})"
        config = meta.get("config")
        if config:
            header += "\nconfig: " + "  ".join(
                f"{k}={v}" for k, v in sorted(config.items())
            )
    header += "\nkinds:  " + "  ".join(
        f"{kind}={n}" for kind, n in sorted(counts.items())
    )
    sections.append(header)

    timeline = epoch_timeline(records)
    if timeline:
        sections.append(
            format_table(
                timeline,
                [
                    "t",
                    "epoch",
                    "phase",
                    "active",
                    "buf_kb",
                    "sup/con/neu",
                    "moves",
                    "moved_kb",
                    "splits",
                    "merges",
                    "drains",
                    "dod",
                ],
                title="epoch timeline",
            )
        )
    else:
        sections.append("epoch timeline: (no epoch events)")

    hot = hot_partitions(records, top=top)
    if hot:
        sections.append(
            format_table(
                hot,
                ["pid", "splits", "merges", "dir_doubles", "moves", "moved_kb"],
                title=f"top-{top} hot partitions",
            )
        )
    else:
        sections.append("hot partitions: (no tuning or migration activity)")

    occupancy = _occupancy_rows(records)
    if occupancy:
        sections.append(
            format_table(
                occupancy,
                ["node", "samples", "occ_min", "occ_mean", "occ_max"],
                title="buffer occupancy (sampled)",
            )
        )

    lanes = node_lanes(records)
    if len(lanes) > 1:
        sections.append(
            format_table(
                lanes,
                ["node", "events", "first_t", "last_t", "top kinds"],
                title="node lanes",
            )
        )

    latency = transport_latency(records)
    if latency:
        sections.append(
            format_table(
                latency,
                ["src", "dst", "msgs", "lat_mean_ms", "lat_max_ms"],
                title="transport latency (send->recv)",
            )
        )

    recovery = recovery_timeline(records)
    if recovery:
        section = format_table(
            recovery,
            ["t", "node", "kind", "detail"],
            title="recovery timeline",
        )
        unrecovered = _unrecovered_targets(records)
        if unrecovered:
            section += (
                f"\nunrecovered at halt: {sorted(unrecovered)} "
                "(failure detected, no recovery round before the run ended)"
            )
        sections.append(section)
    return "\n\n".join(sections)
