"""Typed per-node metrics registry (counters, gauges, histograms).

Each cluster node owns one :class:`MetricsRegistry`; instruments are
created once at wiring time and updated from hot paths behind the same
null-object discipline the tracer uses (rule OBS002)::

    self.m_outputs = registry.counter("outputs", "joined tuples emitted")
    ...
    if self.registry.enabled:
        self.m_outputs.inc(n)

When observability is off, :data:`NULL_REGISTRY` hands out shared no-op
instruments and every instrumentation site pays one attribute load and
branch — measured by ``benchmarks/bench_obs.py``.

Snapshots are plain nested dicts (JSON-serializable, picklable across
the process backend's result pipes); :func:`render_prometheus` renders
a set of per-node snapshots in the Prometheus text exposition format
for the admin endpoint's ``/metrics``.
"""

from __future__ import annotations

import bisect
import typing as t

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NULL_REGISTRY",
    "DEFAULT_BUCKETS",
    "render_prometheus",
]

#: Default histogram bucket upper bounds, seconds (1 ms .. ~2 min).
#: Log-spaced like :data:`repro.core.metrics.DELAY_BIN_EDGES` but much
#: coarser: registry histograms feed dashboards, not figures.
DEFAULT_BUCKETS: tuple[float, ...] = (
    0.001, 0.005, 0.02, 0.1, 0.5, 2.0, 10.0, 30.0, 120.0,
)


class Instrument:
    """Base class: a named, typed metric owned by one registry."""

    kind: t.ClassVar[str] = "instrument"

    __slots__ = ("name", "help")

    def __init__(self, name: str, help_: str = "") -> None:
        self.name = name
        self.help = help_

    def snapshot(self) -> dict[str, t.Any]:  # pragma: no cover - abstract
        raise NotImplementedError


class Counter(Instrument):
    """Monotonically increasing count."""

    kind = "counter"

    __slots__ = ("value",)

    def __init__(self, name: str, help_: str = "") -> None:
        super().__init__(name, help_)
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.name!r} cannot decrease")
        self.value += amount

    def snapshot(self) -> dict[str, t.Any]:
        return {"kind": self.kind, "value": self.value}


class Gauge(Instrument):
    """Point-in-time value that can move both ways."""

    kind = "gauge"

    __slots__ = ("value",)

    def __init__(self, name: str, help_: str = "") -> None:
        super().__init__(name, help_)
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)

    def add(self, delta: float) -> None:
        self.value += delta

    def snapshot(self) -> dict[str, t.Any]:
        return {"kind": self.kind, "value": self.value}


class Histogram(Instrument):
    """Cumulative-bucket histogram (Prometheus semantics).

    ``buckets`` are upper bounds; an implicit ``+Inf`` bucket catches
    the tail.  ``counts[i]`` is the number of observations ``<=
    buckets[i]`` in that bin (non-cumulative internally; the renderer
    accumulates).
    """

    kind = "histogram"

    __slots__ = ("buckets", "counts", "sum", "count")

    def __init__(
        self,
        name: str,
        help_: str = "",
        buckets: t.Sequence[float] = DEFAULT_BUCKETS,
    ) -> None:
        super().__init__(name, help_)
        ordered = tuple(float(b) for b in buckets)
        if list(ordered) != sorted(set(ordered)):
            raise ValueError(f"histogram {name!r} buckets must strictly increase")
        self.buckets = ordered
        self.counts = [0] * (len(ordered) + 1)
        self.sum = 0.0
        self.count = 0

    def observe(self, value: float) -> None:
        self.counts[bisect.bisect_left(self.buckets, value)] += 1
        self.sum += value
        self.count += 1

    def observe_many(self, values: t.Iterable[float]) -> None:
        for value in values:
            self.observe(float(value))

    def snapshot(self) -> dict[str, t.Any]:
        return {
            "kind": self.kind,
            "buckets": list(self.buckets),
            "counts": list(self.counts),
            "sum": self.sum,
            "count": self.count,
        }


class _NullCounter(Counter):
    __slots__ = ()

    def inc(self, amount: float = 1.0) -> None:
        pass


class _NullGauge(Gauge):
    __slots__ = ()

    def set(self, value: float) -> None:
        pass

    def add(self, delta: float) -> None:
        pass


class _NullHistogram(Histogram):
    __slots__ = ()

    def observe(self, value: float) -> None:
        pass

    def observe_many(self, values: t.Iterable[float]) -> None:
        pass


_NULL_COUNTER = _NullCounter("null")
_NULL_GAUGE = _NullGauge("null")
_NULL_HISTOGRAM = _NullHistogram("null")


class MetricsRegistry:
    """One node's set of typed instruments.

    Instrument factories are idempotent: asking twice for the same name
    returns the same object; asking with a different type raises.  A
    disabled registry (:data:`NULL_REGISTRY`) hands out shared no-op
    instruments and registers nothing.
    """

    __slots__ = ("node", "enabled", "_instruments")

    def __init__(self, node: int = -1, enabled: bool = True) -> None:
        self.node = node
        self.enabled = enabled
        self._instruments: dict[str, Instrument] = {}

    def _get(
        self,
        name: str,
        factory: t.Callable[[], Instrument],
        cls: type,
    ) -> Instrument:
        existing = self._instruments.get(name)
        if existing is not None:
            if not isinstance(existing, cls):
                raise ValueError(
                    f"instrument {name!r} already registered as "
                    f"{existing.kind}, not {cls.__name__.lower()}"
                )
            return existing
        instrument = factory()
        self._instruments[name] = instrument
        return instrument

    def counter(self, name: str, help_: str = "") -> Counter:
        if not self.enabled:
            return _NULL_COUNTER
        out = self._get(name, lambda: Counter(name, help_), Counter)
        assert isinstance(out, Counter)
        return out

    def gauge(self, name: str, help_: str = "") -> Gauge:
        if not self.enabled:
            return _NULL_GAUGE
        out = self._get(name, lambda: Gauge(name, help_), Gauge)
        assert isinstance(out, Gauge)
        return out

    def histogram(
        self,
        name: str,
        help_: str = "",
        buckets: t.Sequence[float] = DEFAULT_BUCKETS,
    ) -> Histogram:
        if not self.enabled:
            return _NULL_HISTOGRAM
        out = self._get(name, lambda: Histogram(name, help_, buckets), Histogram)
        assert isinstance(out, Histogram)
        return out

    def names(self) -> list[str]:
        return sorted(self._instruments)

    def snapshot(self) -> dict[str, dict[str, t.Any]]:
        """All instruments as ``{name: {kind, value|counts...}}``,
        sorted by name (JSON-serializable and picklable)."""
        return {
            name: self._instruments[name].snapshot()
            for name in sorted(self._instruments)
        }

    def __len__(self) -> int:
        return len(self._instruments)


#: Shared disabled registry; the default for every instrumented component.
NULL_REGISTRY = MetricsRegistry(enabled=False)


def _sanitize(name: str) -> str:
    return "".join(c if c.isalnum() or c == "_" else "_" for c in name)


def render_prometheus(
    node_snapshots: t.Mapping[int, t.Mapping[str, t.Mapping[str, t.Any]]],
    prefix: str = "swjoin",
) -> str:
    """Prometheus text exposition of per-node registry snapshots.

    ``node_snapshots`` maps node id -> :meth:`MetricsRegistry.snapshot`
    output.  Metrics sharing a name across nodes become one family with
    a ``node`` label; output order is deterministic (name, then node).
    """
    families: dict[str, str] = {}
    samples: dict[str, list[str]] = {}
    for node in sorted(node_snapshots):
        for name, snap in sorted(node_snapshots[node].items()):
            metric = f"{prefix}_{_sanitize(name)}"
            kind = str(snap["kind"])
            families.setdefault(metric, kind)
            rows = samples.setdefault(metric, [])
            if kind == "counter":
                rows.append(f'{metric}_total{{node="{node}"}} {snap["value"]:g}')
            elif kind == "gauge":
                rows.append(f'{metric}{{node="{node}"}} {snap["value"]:g}')
            elif kind == "histogram":
                cumulative = 0
                for edge, count in zip(snap["buckets"], snap["counts"]):
                    cumulative += int(count)
                    rows.append(
                        f'{metric}_bucket{{node="{node}",le="{edge:g}"}} '
                        f"{cumulative}"
                    )
                cumulative += int(snap["counts"][-1])
                rows.append(
                    f'{metric}_bucket{{node="{node}",le="+Inf"}} {cumulative}'
                )
                rows.append(f'{metric}_sum{{node="{node}"}} {snap["sum"]:g}')
                rows.append(f'{metric}_count{{node="{node}"}} {snap["count"]}')
            else:  # pragma: no cover - defensive
                raise ValueError(f"unknown instrument kind {kind!r}")
    lines: list[str] = []
    for metric in sorted(samples):
        lines.append(f"# TYPE {metric} {families[metric]}")
        lines.extend(samples[metric])
    return "\n".join(lines) + ("\n" if lines else "")
