"""Bounded time-series storage: decimating reservoirs + the sampler.

:class:`Reservoir` is a bounded ring for ``(time, value)`` samples: it
keeps every *stride*-th offered sample and, when full, drops every
other retained sample and doubles the stride.  Memory is therefore
O(capacity) regardless of run length while temporal coverage stays
uniform over the whole run — unlike a plain ring buffer, which forgets
everything before the last ``capacity`` samples.

:class:`TimeSeriesSampler` is a keyed collection of reservoirs, one per
``(node, gauge)`` pair, filled by the cluster's periodic sampling
process and threaded into :class:`~repro.core.system.RunResult` so
analysis code can plot per-node adaptive dynamics.
"""

from __future__ import annotations

import typing as t

__all__ = ["Reservoir", "TimeSeriesSampler"]


class Reservoir:
    """Bounded decimating reservoir of ``(time, value)`` samples."""

    __slots__ = ("capacity", "total", "_stride", "_data")

    def __init__(self, capacity: int = 512) -> None:
        if capacity < 2:
            raise ValueError(f"reservoir capacity must be >= 2: {capacity!r}")
        self.capacity = capacity
        #: Samples offered over the reservoir's lifetime (kept or not).
        self.total = 0
        self._stride = 1
        self._data: list[tuple[float, float]] = []

    def add(self, when: float, value: float) -> None:
        index = self.total
        self.total += 1
        if index % self._stride:
            return
        if len(self._data) >= self.capacity:
            # Decimate: retained indices stay ≡ 0 (mod the new stride).
            self._data = self._data[::2]
            self._stride *= 2
            if index % self._stride:
                return
        self._data.append((float(when), float(value)))

    def items(self) -> list[tuple[float, float]]:
        """Retained ``(time, value)`` samples, oldest first."""
        return list(self._data)

    def values(self) -> list[float]:
        return [v for _, v in self._data]

    @property
    def stride(self) -> int:
        """Current decimation stride (1 until the first overflow)."""
        return self._stride

    def __len__(self) -> int:
        return len(self._data)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<Reservoir {len(self._data)}/{self.capacity} "
            f"stride={self._stride} total={self.total}>"
        )


class TimeSeriesSampler:
    """Per-``(node, gauge)`` reservoirs filled at a fixed cadence."""

    def __init__(self, period: float, capacity: int = 512) -> None:
        if period <= 0:
            raise ValueError(f"sample period must be positive: {period!r}")
        self.period = float(period)
        self.capacity = int(capacity)
        self.series: dict[tuple[int, str], Reservoir] = {}

    def observe(self, now: float, node: int, gauge: str, value: float) -> None:
        key = (node, gauge)
        reservoir = self.series.get(key)
        if reservoir is None:
            reservoir = self.series[key] = Reservoir(self.capacity)
        reservoir.add(now, value)

    def gauges_of(self, node: int) -> list[str]:
        return sorted(g for n, g in self.series if n == node)

    def get(self, node: int, gauge: str) -> list[tuple[float, float]]:
        reservoir = self.series.get((node, gauge))
        return reservoir.items() if reservoir else []

    def series_dict(self) -> dict[str, list[tuple[float, float]]]:
        """Flattened ``{"n<node>.<gauge>": [(t, v), ...]}`` view."""
        return {
            f"n{node}.{gauge}": reservoir.items()
            for (node, gauge), reservoir in sorted(self.series.items())
        }

    def __len__(self) -> int:
        return len(self.series)
