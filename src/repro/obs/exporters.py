"""Pluggable trace exporters.

Exporters receive flat JSON-serializable *records* (the output of
:meth:`~repro.obs.events.TraceEvent.to_record`), never the event
objects themselves, so every sink sees exactly what ends up on disk.

Three sinks cover the common workflows:

* :class:`JsonlExporter` — one JSON object per line, for offline
  analysis and ``swjoin report``;
* :class:`MemoryExporter` — in-process list of records, for tests and
  for threading the trace into :class:`~repro.core.system.RunResult`;
* :class:`ConsoleSummaryExporter` — accumulates per-kind counts and
  prints a one-paragraph human summary when the run finishes.
"""

from __future__ import annotations

import json
import threading
import typing as t
from collections import Counter

__all__ = [
    "Exporter",
    "JsonlExporter",
    "MemoryExporter",
    "ConsoleSummaryExporter",
    "merge_records",
    "replay_records",
]

#: Trace schema version stamped into every JSONL meta header.
#: v2: records carry a per-node ``seq``; transport events gained
#: ``phase``/``xfer_seq`` for cross-process send/recv pairing.
TRACE_VERSION = 2


class Exporter:
    """Interface every trace sink implements."""

    def export(self, record: dict[str, t.Any]) -> None:  # pragma: no cover
        raise NotImplementedError

    def close(self) -> None:
        """Flush and release resources; called once at end of run."""


class MemoryExporter(Exporter):
    """Keeps every record in memory (tests / RunResult threading)."""

    def __init__(self) -> None:
        self.records: list[dict[str, t.Any]] = []

    def export(self, record: dict[str, t.Any]) -> None:
        self.records.append(record)


class JsonlExporter(Exporter):
    """Writes one JSON object per line to *path*.

    The first line is a ``meta`` record carrying the trace schema
    version and a caller-supplied config summary, so readers can
    interpret the file without the producing process.
    """

    def __init__(self, path: str, meta: dict[str, t.Any] | None = None) -> None:
        self.path = path
        self.n_records = 0
        # Guards the file handle: one tracer already serializes its own
        # exports, but nothing stops two tracers (or a tracer plus a
        # merge replay) sharing a sink — a line must never interleave.
        self._lock = threading.Lock()
        self._fh: t.TextIO | None = open(path, "w", encoding="utf-8")
        header = {"kind": "meta", "version": TRACE_VERSION}
        if meta:
            header["config"] = meta
        self._fh.write(json.dumps(header, separators=(",", ":")) + "\n")

    def export(self, record: dict[str, t.Any]) -> None:
        line = json.dumps(record, separators=(",", ":")) + "\n"
        with self._lock:
            if self._fh is None:  # pragma: no cover - defensive
                raise ValueError(f"trace file {self.path} already closed")
            self._fh.write(line)
            self.n_records += 1

    def close(self) -> None:
        with self._lock:
            if self._fh is not None:
                self._fh.close()
                self._fh = None


class ConsoleSummaryExporter(Exporter):
    """Counts records per kind; prints a summary line on close."""

    def __init__(self, stream: t.TextIO | None = None) -> None:
        self.counts: Counter[str] = Counter()
        self._stream = stream

    def export(self, record: dict[str, t.Any]) -> None:
        self.counts[record.get("kind", "?")] += 1

    def summary(self) -> str:
        if not self.counts:
            return "trace: no events"
        parts = [f"{kind}={n}" for kind, n in sorted(self.counts.items())]
        return f"trace: {sum(self.counts.values())} events ({' '.join(parts)})"

    def close(self) -> None:
        import sys

        print(self.summary(), file=self._stream or sys.stdout)


def merge_records(
    per_node: t.Mapping[int, t.Sequence[dict[str, t.Any]]],
) -> list[dict[str, t.Any]]:
    """Merge per-node trace buffers into one stable cluster trace.

    Records are ordered by ``(t, node, seq)``: node-local ``seq``
    numbers break wall-clock timestamp ties, so the merged order is a
    pure function of the records themselves — shipping order over the
    result pipes never leaks into the output.  ``sorted`` is stable,
    and the key is unique per record (each node stamps a strictly
    increasing ``seq``), so equal inputs always merge identically.
    """
    flat = [
        record for node in sorted(per_node) for record in per_node[node]
    ]
    flat.sort(
        key=lambda r: (r["t"], r["node"], r.get("seq", -1))
    )
    return flat


def replay_records(
    records: t.Iterable[dict[str, t.Any]], exporters: t.Sequence[Exporter]
) -> None:
    """Feed already-merged records through *exporters*, then close them.

    Used by the process backend's parent: children trace into pipe
    buffers, the parent merges and replays into the JSONL/console sinks
    the config asked for.
    """
    for record in records:
        for exporter in exporters:
            exporter.export(record)
    for exporter in exporters:
        exporter.close()
