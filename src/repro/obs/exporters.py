"""Pluggable trace exporters.

Exporters receive flat JSON-serializable *records* (the output of
:meth:`~repro.obs.events.TraceEvent.to_record`), never the event
objects themselves, so every sink sees exactly what ends up on disk.

Three sinks cover the common workflows:

* :class:`JsonlExporter` — one JSON object per line, for offline
  analysis and ``swjoin report``;
* :class:`MemoryExporter` — in-process list of records, for tests and
  for threading the trace into :class:`~repro.core.system.RunResult`;
* :class:`ConsoleSummaryExporter` — accumulates per-kind counts and
  prints a one-paragraph human summary when the run finishes.
"""

from __future__ import annotations

import json
import typing as t
from collections import Counter

__all__ = [
    "Exporter",
    "JsonlExporter",
    "MemoryExporter",
    "ConsoleSummaryExporter",
]

#: Trace schema version stamped into every JSONL meta header.
TRACE_VERSION = 1


class Exporter:
    """Interface every trace sink implements."""

    def export(self, record: dict[str, t.Any]) -> None:  # pragma: no cover
        raise NotImplementedError

    def close(self) -> None:
        """Flush and release resources; called once at end of run."""


class MemoryExporter(Exporter):
    """Keeps every record in memory (tests / RunResult threading)."""

    def __init__(self) -> None:
        self.records: list[dict[str, t.Any]] = []

    def export(self, record: dict[str, t.Any]) -> None:
        self.records.append(record)


class JsonlExporter(Exporter):
    """Writes one JSON object per line to *path*.

    The first line is a ``meta`` record carrying the trace schema
    version and a caller-supplied config summary, so readers can
    interpret the file without the producing process.
    """

    def __init__(self, path: str, meta: dict[str, t.Any] | None = None) -> None:
        self.path = path
        self.n_records = 0
        self._fh: t.TextIO | None = open(path, "w", encoding="utf-8")
        header = {"kind": "meta", "version": TRACE_VERSION}
        if meta:
            header["config"] = meta
        self._write(header)

    def _write(self, record: dict[str, t.Any]) -> None:
        assert self._fh is not None
        self._fh.write(json.dumps(record, separators=(",", ":")) + "\n")

    def export(self, record: dict[str, t.Any]) -> None:
        if self._fh is None:  # pragma: no cover - defensive
            raise ValueError(f"trace file {self.path} already closed")
        self._write(record)
        self.n_records += 1

    def close(self) -> None:
        if self._fh is not None:
            self._fh.close()
            self._fh = None


class ConsoleSummaryExporter(Exporter):
    """Counts records per kind; prints a summary line on close."""

    def __init__(self, stream: t.TextIO | None = None) -> None:
        self.counts: Counter[str] = Counter()
        self._stream = stream

    def export(self, record: dict[str, t.Any]) -> None:
        self.counts[record.get("kind", "?")] += 1

    def summary(self) -> str:
        if not self.counts:
            return "trace: no events"
        parts = [f"{kind}={n}" for kind, n in sorted(self.counts.items())]
        return f"trace: {sum(self.counts.values())} events ({' '.join(parts)})"

    def close(self) -> None:
        import sys

        print(self.summary(), file=self._stream or sys.stdout)
