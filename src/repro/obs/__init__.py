"""Observability: structured tracing + time-series sampling.

The subsystem has three layers, all near-zero cost when disabled:

* :mod:`repro.obs.events` / :mod:`repro.obs.tracer` — typed trace
  events fanned out to pluggable exporters;
* :mod:`repro.obs.exporters` — JSONL file, in-memory, console-summary
  sinks;
* :mod:`repro.obs.sampler` — bounded decimating reservoirs and the
  periodic per-node gauge sampler.

:mod:`repro.obs.metrics` adds typed per-node counter/gauge/histogram
registries and :mod:`repro.obs.admin` the opt-in HTTP admin endpoint
(``/health``, ``/status``, Prometheus ``/metrics``).

:mod:`repro.obs.report` (imported lazily by the CLI — it pulls in the
analysis layer) renders epoch timelines, hot-partition tables and
cross-node views from a JSONL trace.
"""

from repro.obs.events import (
    ClassifyEvent,
    DirectoryEvent,
    DodEvent,
    DrainEvent,
    EpochEvent,
    MergeEvent,
    ReorgEvent,
    SampleEvent,
    SplitEvent,
    StateMoveEvent,
    TraceEvent,
    TransportEvent,
)
from repro.obs.exporters import (
    ConsoleSummaryExporter,
    Exporter,
    JsonlExporter,
    MemoryExporter,
    merge_records,
    replay_records,
)
from repro.obs.metrics import (
    NULL_REGISTRY,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    render_prometheus,
)
from repro.obs.sampler import Reservoir, TimeSeriesSampler
from repro.obs.tracer import NULL_TRACER, Tracer, build_tracer

__all__ = [
    "TraceEvent",
    "EpochEvent",
    "DrainEvent",
    "ClassifyEvent",
    "ReorgEvent",
    "DodEvent",
    "SplitEvent",
    "MergeEvent",
    "DirectoryEvent",
    "StateMoveEvent",
    "TransportEvent",
    "SampleEvent",
    "Exporter",
    "JsonlExporter",
    "MemoryExporter",
    "ConsoleSummaryExporter",
    "merge_records",
    "replay_records",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NULL_REGISTRY",
    "render_prometheus",
    "Reservoir",
    "TimeSeriesSampler",
    "Tracer",
    "NULL_TRACER",
    "build_tracer",
]
