"""The structured event tracer.

A :class:`Tracer` fans trace events out to its exporters.  The design
goal is *near-zero overhead when disabled*: the shared
:data:`NULL_TRACER` has ``enabled = False`` and every instrumentation
site guards event **construction** (not just emission) behind it::

    if tracer.enabled:
        tracer.emit(SplitEvent(t=now, node=self.node_id, ...))

so a run without observability pays one attribute load and branch per
hook, nothing else.

Each emitted record is stamped with a per-tracer sequence number
(``seq``): on the distributed backends every node owns its tracer, so
``(t, node, seq)`` is a total order over the merged cluster trace even
when wall-clock timestamps collide.  ``emit`` is serialized by an
internal lock — the thread and process backends run node generators on
real threads sharing one tracer per OS process.
"""

from __future__ import annotations

import threading
import typing as t

from repro.obs.events import TraceEvent
from repro.obs.exporters import (
    ConsoleSummaryExporter,
    Exporter,
    JsonlExporter,
    MemoryExporter,
)

__all__ = ["Tracer", "NULL_TRACER", "build_tracer"]


class Tracer:
    """Fans events out to exporters; disabled when it has none."""

    __slots__ = ("enabled", "exporters", "n_events", "_lock")

    def __init__(self, exporters: t.Sequence[Exporter] = ()) -> None:
        self.exporters: tuple[Exporter, ...] = tuple(exporters)
        self.enabled = bool(self.exporters)
        self.n_events = 0
        self._lock = threading.Lock()

    def emit(self, event: TraceEvent) -> None:
        if not self.enabled:
            return
        record = event.to_record()
        with self._lock:
            record["seq"] = self.n_events
            self.n_events += 1
            for exporter in self.exporters:
                exporter.export(record)

    def memory_records(self) -> list[dict[str, t.Any]] | None:
        """The in-memory trace, if a :class:`MemoryExporter` is wired."""
        for exporter in self.exporters:
            if isinstance(exporter, MemoryExporter):
                return exporter.records
        return None

    def close(self) -> None:
        for exporter in self.exporters:
            exporter.close()


#: Shared disabled tracer; safe default for every instrumented component.
NULL_TRACER = Tracer()


def build_tracer(obs: t.Any, meta: dict[str, t.Any] | None = None) -> Tracer:
    """Build a tracer from an :class:`~repro.config.ObservabilityConfig`.

    ``obs`` is duck-typed (``trace_path`` / ``trace_memory`` /
    ``console_summary`` attributes) so this module stays free of config
    imports.  Returns :data:`NULL_TRACER` when nothing is enabled.
    """
    exporters: list[Exporter] = []
    if getattr(obs, "trace_path", None):
        exporters.append(JsonlExporter(obs.trace_path, meta=meta))
    if getattr(obs, "trace_memory", False):
        exporters.append(MemoryExporter())
    if getattr(obs, "console_summary", False):
        exporters.append(ConsoleSummaryExporter())
    if not exporters:
        return NULL_TRACER
    return Tracer(exporters)
