"""Opt-in admin/health HTTP endpoint (``swjoin run --admin-port``).

A tiny threaded HTTP server hosted by whichever OS process runs the
*master* node (the main process on the sim/thread backends, the
master's forked child on the process backend).  It serves live cluster
introspection while a run is in flight:

``/health``
    ``{"status": "ok", "uptime_s": ...}`` — liveness probe.
``/status``
    JSON cluster introspection: node liveness, per-partition ownership
    and occupancy, epoch progress, replication bytes, recovery
    latencies and the degraded flag (``STATUS_SCHEMA_VERSION``).
``/metrics``
    Prometheus text exposition of every node registry the hosting
    process can see (all nodes on sim/thread; the master's own on the
    process backend — slave registries live in other processes and
    arrive only with the final result payloads).

The server runs on wall-clock daemon threads and is *read-only*: status
callbacks snapshot master-owned state without mutating it, so an
attached dashboard can never perturb the run.  Requests never touch
the modeled clock; the hosting backend passes ``now_fn`` so ``/status``
can report modeled progress.
"""

from __future__ import annotations

import json
import threading
import time
import typing as t
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

__all__ = [
    "AdminServer",
    "ACTIVE_SERVERS",
    "STATUS_SCHEMA_VERSION",
    "cluster_status",
]

#: Version stamped into every ``/status`` document.
STATUS_SCHEMA_VERSION = 1

#: Servers currently serving, newest last.  Lets tests (and notebooks)
#: discover the ephemeral port of a run started with ``admin_port=0``.
ACTIVE_SERVERS: list["AdminServer"] = []


class AdminServer:
    """Threaded HTTP status server bound to ``127.0.0.1``.

    ``status_fn`` returns the ``/status`` document (a JSON-serializable
    dict); ``metrics_fn`` returns the ``/metrics`` text body.  Both run
    on server threads concurrently with the cluster — they must only
    read.  ``port=0`` binds an ephemeral port (see :attr:`port`).
    """

    def __init__(
        self,
        status_fn: t.Callable[[], dict[str, t.Any]],
        metrics_fn: t.Callable[[], str],
        port: int = 0,
        host: str = "127.0.0.1",
        announce: bool = False,
    ) -> None:
        self.status_fn = status_fn
        self.metrics_fn = metrics_fn
        self._started = time.monotonic()
        server = self

        class Handler(BaseHTTPRequestHandler):
            def log_message(self, fmt: str, *args: t.Any) -> None:
                pass  # never spam the run's stdout per request

            def _reply(
                self, code: int, body: bytes, content_type: str
            ) -> None:
                self.send_response(code)
                self.send_header("Content-Type", content_type)
                self.send_header("Content-Length", str(len(body)))
                self.end_headers()
                self.wfile.write(body)

            def do_GET(self) -> None:  # noqa: N802 - http.server API
                try:
                    route = self.path.split("?", 1)[0].rstrip("/") or "/"
                    if route == "/health":
                        body = json.dumps(
                            {
                                "status": "ok",
                                "uptime_s": server.uptime_s,
                            }
                        ).encode()
                        self._reply(200, body, "application/json")
                    elif route == "/status":
                        body = json.dumps(server.status_fn()).encode()
                        self._reply(200, body, "application/json")
                    elif route == "/metrics":
                        body = server.metrics_fn().encode()
                        self._reply(
                            200, body, "text/plain; version=0.0.4"
                        )
                    elif route == "/":
                        body = json.dumps(
                            {"endpoints": ["/health", "/status", "/metrics"]}
                        ).encode()
                        self._reply(200, body, "application/json")
                    else:
                        self._reply(404, b"not found\n", "text/plain")
                except BrokenPipeError:  # pragma: no cover - client gone
                    pass
                except Exception as exc:  # noqa: BLE001 - must not kill the run
                    detail = f"{type(exc).__name__}: {exc}\n".encode()
                    try:
                        self._reply(500, detail, "text/plain")
                    except OSError:  # pragma: no cover - client gone
                        pass

        self._httpd = ThreadingHTTPServer((host, port), Handler)
        self._httpd.daemon_threads = True
        self._thread = threading.Thread(
            target=self._httpd.serve_forever,
            name=f"admin:{self.port}",
            daemon=True,
        )
        ACTIVE_SERVERS.append(self)
        self._thread.start()
        if announce:
            print(f"admin endpoint: {self.url}  (/health /status /metrics)")

    @property
    def port(self) -> int:
        port = self._httpd.server_address[1]
        return int(port)

    @property
    def url(self) -> str:
        host = self._httpd.server_address[0]
        return f"http://{host!s}:{self.port}"

    @property
    def uptime_s(self) -> float:
        return time.monotonic() - self._started

    def close(self) -> None:
        """Stop serving and release the port (idempotent)."""
        if self in ACTIVE_SERVERS:
            ACTIVE_SERVERS.remove(self)
            self._httpd.shutdown()
            self._httpd.server_close()


def _slave_row(
    node_id: int, master: t.Any, owned: int, occupancy: float | None
) -> dict[str, t.Any]:
    return {
        "node": node_id,
        "role": "slave",
        "alive": node_id not in master.dead,
        "active": node_id in master.active,
        "partitions": owned,
        "occupancy": occupancy,
    }


def cluster_status(
    cfg: t.Any,
    cluster: t.Any,
    now_fn: t.Callable[[], float],
    backend: str,
) -> dict[str, t.Any]:
    """The ``/status`` document for a live (or finished) cluster.

    Reads master-owned state only — partition ownership, load reports,
    the dead set, failure records — all of which live in the same OS
    process as the admin server on every backend.

    All coordinator state is read through :attr:`Cluster.acting_master`
    so a probe racing a standby election stays coherent: until the
    takeover completes the master's own (last-known) state answers;
    after it, the standby's live mirror does.  ``acting_master`` (the
    node id) says who answered.
    """
    master = getattr(cluster, "acting_master", None) or cluster.master
    standby = getattr(cluster, "standby", None)
    took_over = standby is not None and standby.took_over
    mm = master.metrics
    owners: dict[int, int] = dict(master.buffer.mapping)
    owned_count: dict[int, int] = {}
    for owner in owners.values():
        owned_count[owner] = owned_count.get(owner, 0) + 1

    nodes: list[dict[str, t.Any]] = [
        {
            "node": cluster.master.comm.node_id,
            "role": "master",
            "alive": not took_over,
        },
        {"node": cluster.collector.node_id, "role": "collector", "alive": True},
    ]
    if standby is not None:
        nodes.append(
            {
                "node": standby.node_id,
                "role": "acting-master" if took_over else "standby",
                "alive": True,
            }
        )
    for slave in cluster.slaves:
        nid = slave.node_id
        report = master.latest_reports.get(nid)
        occupancy = (
            float(report.avg_occupancy) if report is not None else None
        )
        nodes.append(_slave_row(nid, master, owned_count.get(nid, 0), occupancy))

    failures = [dict(f) for f in mm.failures]
    degraded = any(
        f.get("recovered_at") is None or f.get("lost_pids") for f in failures
    )
    return {
        "schema": STATUS_SCHEMA_VERSION,
        "backend": backend,
        "t": now_fn(),
        "run_seconds": cfg.run_seconds,
        "acting_master": master.comm.node_id,
        "epochs": mm.epochs,
        "reorgs": mm.reorgs,
        "nodes": nodes,
        "partition_owners": {str(pid): owners[pid] for pid in sorted(owners)},
        "replication_bytes": mm.replication_bytes,
        "degraded": degraded,
        "failures": failures,
        "recovery_latencies": [
            f["recovery_latency"]
            for f in failures
            if f.get("recovery_latency") is not None
        ],
    }
