#!/usr/bin/env python
"""Sensor fusion: a three-way windowed stream join.

The paper's system model (Section II) defines the windowed join over
*n* streams; its prototype evaluates n = 2.  This example exercises the
n-way generalization end to end: three sensor feeds (say temperature,
vibration and acoustic monitors tagged by machine id) are correlated —
an alert fires when all three report the same machine within a sliding
window.

The full cluster machinery is unchanged: hash partitioning by machine
id, head-block batching, fine tuning, load balancing.  Only the probe
differs — a flushing block completes *composites* against the other
two streams' windows, each composite valid iff every member lies within
its stream's window at the newest member's arrival time.

Run:  python examples/sensor_fusion.py
"""

import numpy as np

from repro import JoinSystem, SystemConfig
from repro.core.nway import naive_multiway_join
from repro.simul.rng import RngRegistry
from repro.workload.generator import TwoStreamWorkload
from repro.workload.traces import TraceReplayer


def main() -> None:
    cfg = (
        SystemConfig.paper_defaults()
        .scaled(0.01)
        .with_(
            n_streams=3,
            num_slaves=3,
            npart=12,
            rate=100.0,          # readings/s per sensor network
            key_domain=200,      # machines on the floor
            b_skew=0.5,          # sensors poll machines uniformly
            window_seconds=3.0,
            run_seconds=30.0,
            warmup_seconds=6.0,
            reorg_epoch=4.0,
        )
    )
    print(f"3-way join: {cfg.rate:g} readings/s/stream over "
          f"{cfg.key_domain} machines, window {cfg.window_seconds:g}s, "
          f"{cfg.num_slaves} slaves\n")

    # Trace-driven so we can check the cluster against the oracle.
    workload = TwoStreamWorkload.poisson_bmodel(
        RngRegistry(cfg.seed), cfg.rate, cfg.b_skew, cfg.key_domain,
        n_streams=3,
    )
    trace = workload.generate(0.0, cfg.run_seconds - 3 * cfg.dist_epoch)

    result = JoinSystem(
        cfg, collect_pairs=True, workload=TraceReplayer(trace)
    ).run()

    composites = result.pairs
    print(f"sensor readings     : {len(trace)}")
    print(f"fused alerts        : {len(composites)} "
          "(temperature, vibration, acoustic) triples")
    print(f"avg fusion delay    : {result.avg_delay:.2f}s "
          "(measured-window outputs)")
    print(f"per-slave windows   : "
          f"{[round(s['max_window_bytes'] / 1024, 1) for s in result.slaves]}"
          " KiB")

    expected = naive_multiway_join(trace, [cfg.window_seconds] * 3)
    got = composites[
        np.lexsort(tuple(composites[:, c] for c in reversed(range(3))))
    ]
    exact = np.array_equal(got, expected)
    print(f"\noracle check        : {len(expected)} composites expected, "
          f"exact match = {exact}")
    assert exact

    # A taste of the output: the three member sequence numbers of the
    # first few alerts (per-stream sequence ids).
    print("\nfirst alerts (seq per stream):")
    for row in composites[:5]:
        print(f"  temp#{row[0]}  vib#{row[1]}  acoustic#{row[2]}")


if __name__ == "__main__":
    main()
