#!/usr/bin/env python
"""Stock-trading surveillance: joining trades with quotes per symbol.

A classic CQ workload (paper Section I): every trade must be correlated
with recent quotes for the same symbol within a sliding window.  Symbol
popularity is Zipf-distributed — a handful of hot tickers dominate —
which concentrates whole partitions and makes the paper's
**fine-grained partition tuning** matter: without it, the hot
partitions' windows grow huge and every probe scans them end to end.

This example runs the same surveillance workload twice (tuning on/off)
and compares CPU time, delay and the split activity.

Run:  python examples/stock_trading.py
"""

from repro import JoinSystem, SystemConfig
from repro.simul.rng import RngRegistry
from repro.workload.arrivals import PoissonArrivals, RateProfile
from repro.workload.generator import StreamGenerator, TwoStreamWorkload
from repro.workload.zipf import ZipfKeys


def make_market_workload(cfg: SystemConfig, n_symbols: int = 100_000):
    """Trades (stream 0) and quotes (stream 1) over Zipf-hot symbols."""
    rng = RngRegistry(cfg.seed)
    streams = []
    for sid, name in ((0, "trades"), (1, "quotes")):
        arrivals = PoissonArrivals(
            RateProfile.constant(cfg.rate), rng.get(f"arrivals/{name}")
        )
        symbols = ZipfKeys(
            n_symbols, 0.7, rng.get(f"symbols/{name}"), n_ranks=n_symbols
        )
        streams.append(StreamGenerator(sid, arrivals, symbols))
    return TwoStreamWorkload(streams)


def run_once(cfg: SystemConfig, fine_tuning: bool):
    run_cfg = cfg.with_(fine_tuning=fine_tuning)
    workload = make_market_workload(run_cfg)
    return JoinSystem(run_cfg, workload=workload).run()


def main() -> None:
    cfg = (
        SystemConfig.paper_defaults()
        .scaled(0.05)
        .with_(num_slaves=4, rate=3500.0)
    )
    print("trades x quotes equi-join on symbol, "
          f"window {cfg.window_seconds:g}s, {cfg.rate:g} events/s/stream, "
          f"{cfg.num_slaves} slaves")
    print("symbol popularity: Zipf(0.7) over 100k tickers "
          "(hot tickers dominate)\n")

    tuned = run_once(cfg, fine_tuning=True)
    untuned = run_once(cfg, fine_tuning=False)

    header = f"{'':24}{'fine tuning':>14}{'no tuning':>14}"
    print(header)
    print("-" * len(header))
    rows = [
        ("avg production delay", f"{tuned.avg_delay:.2f} s",
         f"{untuned.avg_delay:.2f} s"),
        ("avg CPU per slave", f"{tuned.avg_cpu_time:.1f} s",
         f"{untuned.avg_cpu_time:.1f} s"),
        ("avg idle per slave", f"{tuned.avg_idle_time:.1f} s",
         f"{untuned.avg_idle_time:.1f} s"),
        ("join outputs", f"{tuned.outputs}", f"{untuned.outputs}"),
        ("mini-group splits", f"{sum(s['splits'] for s in tuned.slaves)}",
         f"{sum(s['splits'] for s in untuned.slaves)}"),
        ("group moves", f"{tuned.master['moves_ordered']}",
         f"{untuned.master['moves_ordered']}"),
    ]
    for label, a, b in rows:
        print(f"{label:24}{a:>14}{b:>14}")

    print()
    speedup = untuned.avg_cpu_time / max(tuned.avg_cpu_time, 1e-9)
    print(f"Partition tuning cuts join CPU by {speedup:.1f}x on this "
          "workload (the paper's Figure 7 effect), because probes scan a")
    print("bounded [theta, 2*theta] mini-group instead of a hot symbol's "
          "entire partition.")


if __name__ == "__main__":
    main()
