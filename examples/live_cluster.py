#!/usr/bin/env python
"""Live mini-cluster: the same node code on real threads.

Everything else in this repository runs the master/slave/collector
generators on the deterministic discrete-event kernel.  This example
wires the *identical* node implementations to the wall-clock backend —
one OS thread per process, queue-based rendezvous channels — and runs a
small join for a few (compressed) seconds.  It demonstrates that the
node logic is genuinely runtime-agnostic: the fixed communication
schedule, the reorganization protocol and the join modules never know
which backend drives them.

Run:  python examples/live_cluster.py
"""

import time

from repro.config import SystemConfig
from repro.core.cluster import build_cluster
from repro.net.thread_transport import ThreadTransport
from repro.runtime.thread import ThreadRuntime

#: One simulated second passes in 50 wall milliseconds.
TIME_SCALE = 0.05


def main() -> None:
    cfg = (
        SystemConfig.paper_defaults()
        .scaled(0.01)
        .with_(
            num_slaves=2,
            npart=12,
            rate=300.0,
            run_seconds=16.0,
            warmup_seconds=4.0,
            window_seconds=4.0,
            reorg_epoch=4.0,
        )
    )
    runtime = ThreadRuntime(time_scale=TIME_SCALE)
    transport = ThreadTransport(cfg.tuple_bytes, time_scale=TIME_SCALE)
    cluster = build_cluster(cfg, runtime, transport)

    print(
        f"live cluster: 1 master + {cfg.num_slaves} slaves + 1 collector, "
        f"{cfg.run_seconds:g} virtual s at {TIME_SCALE * 1000:.0f} ms per "
        "virtual s..."
    )
    started = time.perf_counter()
    for name, gen in cluster.processes():
        runtime.spawn(gen, name=name)
    runtime.join_all(timeout=180.0)
    wall = time.perf_counter() - started

    outputs = cluster.collector.delays.count
    print(f"done in {wall:.1f}s wall.")
    print(f"join outputs collected : {outputs}")
    print(f"avg production delay   : {cluster.collector.delays.mean:.2f} virtual s")
    for metrics in cluster.slave_metrics:
        print(
            f"slave {metrics.node_id}: processed "
            f"{metrics.tuples_processed} tuples, "
            f"{metrics.outputs_emitted} outputs, "
            f"waited {metrics.idle_time:.1f}s for its comm slots"
        )
    # The collector's merged statistics equal the slaves' local ones —
    # the same invariant the simulated backend upholds.
    assert outputs == sum(m.delays.count for m in cluster.slave_metrics)


if __name__ == "__main__":
    main()
