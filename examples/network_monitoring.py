#!/usr/bin/env python
"""Network monitoring: correlating flow records from two vantage points.

The motivating workload of the paper's introduction: two high-rate
event streams (flow records exported by two routers) joined on a flow
key within a sliding window to detect end-to-end paths.  Traffic is
bursty — here the rate triples mid-run — and the cluster must absorb
the surge: buffer occupancies rise, slaves turn into *suppliers*, the
master moves partition-groups toward *consumers*, and with adaptive
declustering enabled the active slave set grows.

Run:  python examples/network_monitoring.py
"""

from repro import JoinSystem, SystemConfig
from repro.simul.rng import RngRegistry
from repro.workload.arrivals import RateProfile
from repro.workload.generator import TwoStreamWorkload


def main() -> None:
    cfg = (
        SystemConfig.paper_defaults()
        .scaled(0.05)
        .with_(
            num_slaves=5,
            adaptive_declustering=True,
            initial_active_slaves=2,  # start small, grow on demand
            run_seconds=260.0,
            warmup_seconds=40.0,
            # React faster than the paper's default 20 s: one
            # supplier sheds one partition-group per reorganization,
            # so a shorter reorg epoch speeds the scale-out.
            reorg_epoch=10.0,
        )
    )

    # Flow records: calm 1000 t/s, surging to 6000 t/s at t=80 s.
    # Scale-out is *gradual* by design (Section V-A): the degree of
    # declustering grows one node per reorganization epoch and each
    # supplier yields one partition-group per reorganization, so give
    # the run a few minutes to absorb the surge.
    surge_at, calm, surge = 80.0, 1000.0, 6000.0
    profile = RateProfile.step(surge_at, calm, surge)
    workload = TwoStreamWorkload.poisson_bmodel(
        RngRegistry(cfg.seed), profile, cfg.b_skew, cfg.key_domain
    )

    print(f"flow rate     : {calm:g} t/s/stream, surging to {surge:g} at "
          f"t={surge_at:g}s")
    print(f"cluster       : {cfg.num_slaves} slaves available, "
          f"{cfg.n_active_initial} active initially")
    print("adaptive degree of declustering: ON (Section V-A)")
    print()

    result = JoinSystem(cfg, workload=workload).run()

    print(result.summary())
    print()
    print("Degree-of-declustering trace (time, active slaves):")
    if result.dod_trace:
        for when, n in result.dod_trace:
            phase = "surge" if when >= surge_at else "calm"
            print(f"  t={when:7.1f}s  ->  {n} active ({phase})")
    else:
        print("  (no changes)")
    print()
    print(f"partition-group moves ordered: {result.master['moves_ordered']}")
    print("Supplier/consumer counts at each reorganization "
          "(time, suppliers, consumers, neutrals):")
    for when, n_sup, n_con, n_neu in result.master["supplier_counts"]:
        print(f"  t={when:7.1f}s  sup={n_sup}  con={n_con}  neu={n_neu}")

    print()
    print("Delay timeline (collector view, 20 s buckets):")
    _print_timeline(result, cfg)

    # The flip side of Section V-A's "keep the system minimally
    # overloaded": an over-provisioned static cluster absorbs the surge
    # instantly, but pays five nodes' worth of communication all along.
    static = JoinSystem(
        cfg.with_(adaptive_declustering=False, initial_active_slaves=None),
        workload=TwoStreamWorkload.poisson_bmodel(
            RngRegistry(cfg.seed), profile, cfg.b_skew, cfg.key_domain
        ),
    ).run()
    print()
    print("For contrast — all 5 nodes statically active (over-provisioned):")
    _print_timeline(static, cfg)
    print(
        "\nThe over-provisioned cluster absorbs the surge instantly but "
        "burns five nodes through the calm phase; the adaptive cluster "
        "idles only one node when calm and pays for it with a gradual "
        "recovery (one partition-group moves per reorganization — "
        "Section V-A's deliberate trade)."
    )


def _print_timeline(result, cfg) -> None:
    buckets: dict[int, list[tuple[int, float]]] = {}
    for epoch, count, mean in result.delay_timeline:
        t = (epoch + 1) * cfg.dist_epoch
        buckets.setdefault(int(t // 20), []).append((count, mean))
    for b in sorted(buckets):
        rows = buckets[b]
        total = sum(c for c, _ in rows)
        mean = sum(c * m for c, m in rows) / max(total, 1)
        marker = "#" * min(60, int(mean))
        print(f"  t=[{b * 20:4d},{b * 20 + 20:4d})s  outputs={total:7d}  "
              f"avg delay={mean:7.2f}s {marker}")


if __name__ == "__main__":
    main()
