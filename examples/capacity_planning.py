#!/usr/bin/env python
"""Capacity planning: how many slaves does a target stream rate need?

Uses the cluster simulator as a what-if tool: sweep the degree of
declustering for a given arrival rate and report delay, utilization and
communication cost per configuration, then pick the smallest cluster
that keeps the system out of saturation — the operational question
behind Section V-A's adaptive algorithm.

Run:  python examples/capacity_planning.py [rate]
"""

import sys

from repro import JoinSystem, SystemConfig
from repro.analysis.tables import format_table


def plan(rate: float, max_slaves: int = 6, scale: float = 0.05):
    cfg = SystemConfig.paper_defaults().scaled(scale).with_(rate=rate)
    rows = []
    recommended = None
    for n in range(1, max_slaves + 1):
        result = JoinSystem(cfg.with_(num_slaves=n)).run()
        utilization = result.avg_cpu_time / result.duration
        saturated = result.avg_idle_time < 0.05 * result.duration
        rows.append(
            {
                "slaves": n,
                "avg_delay_s": result.avg_delay,
                "cpu_utilization": utilization,
                "aggregate_comm_s": result.aggregate_comm_time,
                "saturated": saturated,
            }
        )
        if recommended is None and not saturated:
            recommended = n
    return rows, recommended


def main() -> None:
    rate = float(sys.argv[1]) if len(sys.argv) > 1 else 5000.0
    print(f"capacity plan for {rate:g} tuples/s/stream "
          "(paper workload, Table I defaults)\n")
    rows, recommended = plan(rate)
    print(format_table(rows))
    print()
    if recommended is None:
        print("even the largest swept cluster saturates — add nodes or shed load")
    else:
        print(
            f"recommendation: {recommended} slave(s) — smallest cluster "
            "with idle headroom; fewer nodes also means the least "
            "aggregate communication (the paper's Figure 11 argument "
            "for keeping the degree of declustering minimal)."
        )


if __name__ == "__main__":
    main()
