#!/usr/bin/env python
"""Quickstart: run one parallel windowed stream join and read the results.

This spins up the simulated shared-nothing cluster of the paper —
a master distributing two Poisson/b-model streams over 4 slave nodes,
sliding 30-second windows (the paper's 10-minute geometry at 5% scale),
hash-partitioned with fine-grained partition tuning — and prints the
evaluation metrics of Section VI.

Run:  python examples/quickstart.py
"""

from repro import JoinSystem, SystemConfig


def main() -> None:
    # Table I defaults, scaled to run in a couple of seconds.  The
    # scaling keeps saturation rates identical to the full-size system
    # (see SystemConfig.scaled), so "3000 tuples/s/stream over 4
    # slaves" means the same thing it does in the paper.
    cfg = (
        SystemConfig.paper_defaults()
        .scaled(0.05)
        .with_(num_slaves=4, rate=3000.0)
    )

    print(f"window        : {cfg.window_seconds:g} s (both streams)")
    print(f"partitions    : {cfg.npart} (level of indirection)")
    print(f"dist epoch    : {cfg.dist_epoch:g} s   reorg epoch: {cfg.reorg_epoch:g} s")
    print(f"theta         : {cfg.theta_bytes / 1024:.0f} KiB  "
          f"(mini-groups kept within [theta, 2*theta])")
    print()

    result = JoinSystem(cfg).run()

    print(result.summary())
    print()
    print("What to look at:")
    print(f" * average production delay {result.avg_delay:.2f} s — time from a")
    print("   tuple's arrival to each join output it participates in;")
    print(f" * per-slave CPU {result.avg_cpu_time:.1f} s of the "
          f"{result.duration:g} s measured — the join work;")
    print(f" * per-slave comm {result.avg_comm_time:.2f} s — the epoch-based")
    print("   distribution cost (Figures 9-12 of the paper);")
    print(f" * max window per node {result.max_window_bytes / 1e6:.2f} MB — about")
    print("   1/4 of the full two-stream window, because load is spread.")


if __name__ == "__main__":
    main()
