"""Configuration: Table I defaults, validation, scaling invariants."""

import dataclasses

import pytest

from repro.config import (
    CostModelConfig,
    MIB,
    NetworkConfig,
    SystemConfig,
)
from repro.errors import ConfigError


class TestPaperDefaults:
    """The defaults must match Table I of the paper exactly."""

    def setup_method(self) -> None:
        self.cfg = SystemConfig.paper_defaults()

    def test_window_is_ten_minutes(self):
        assert self.cfg.window_seconds == 600.0

    def test_rate_is_1500(self):
        assert self.cfg.rate == 1500.0

    def test_b_skew(self):
        assert self.cfg.b_skew == 0.7

    def test_thresholds(self):
        assert self.cfg.th_con == 0.01
        assert self.cfg.th_sup == 0.5

    def test_theta_is_1_5_mb(self):
        assert self.cfg.theta_bytes == int(1.5 * MIB)

    def test_block_4kb_tuple_64b(self):
        assert self.cfg.block_bytes == 4096
        assert self.cfg.tuple_bytes == 64
        assert self.cfg.tuples_per_block == 64

    def test_epochs(self):
        assert self.cfg.dist_epoch == 2.0
        assert self.cfg.reorg_epoch == 20.0

    def test_sixty_partitions(self):
        assert self.cfg.npart == 60

    def test_slave_buffer_1mb(self):
        assert self.cfg.slave_buffer_bytes == MIB

    def test_key_domain(self):
        assert self.cfg.key_domain == 10_000_001

    def test_run_and_warmup(self):
        assert self.cfg.run_seconds == 1200.0
        assert self.cfg.warmup_seconds == 600.0

    def test_validates(self):
        assert self.cfg.validated() is self.cfg


class TestWith:
    def test_with_changes_field(self):
        cfg = SystemConfig.paper_defaults().with_(rate=99.0)
        assert cfg.rate == 99.0

    def test_with_unknown_field_raises(self):
        with pytest.raises(ConfigError, match="unknown config field"):
            SystemConfig.paper_defaults().with_(bogus=1)

    def test_with_validates(self):
        with pytest.raises(ConfigError):
            SystemConfig.paper_defaults().with_(rate=-1.0)

    def test_original_unchanged(self):
        cfg = SystemConfig.paper_defaults()
        cfg.with_(rate=99.0)
        assert cfg.rate == 1500.0


class TestScaled:
    def test_geometry_shrinks(self):
        cfg = SystemConfig.paper_defaults().scaled(0.1)
        assert cfg.window_seconds == 60.0
        assert cfg.run_seconds == 120.0
        assert cfg.warmup_seconds == 60.0
        assert cfg.theta_bytes == int(1.5 * MIB * 0.1)

    def test_scan_cost_grows_inversely(self):
        base = SystemConfig.paper_defaults()
        cfg = base.scaled(0.1)
        assert cfg.cost.scan_byte_cost == pytest.approx(
            base.cost.scan_byte_cost / 0.1
        )

    def test_rate_and_epochs_unchanged(self):
        cfg = SystemConfig.paper_defaults().scaled(0.1)
        assert cfg.rate == 1500.0
        assert cfg.dist_epoch == 2.0
        assert cfg.reorg_epoch == 20.0

    def test_scan_bytes_per_probe_invariant(self):
        """The product (window partition bytes) x (scan cost) — what a
        probe costs per tuple — is scale-invariant."""
        base = SystemConfig.paper_defaults()
        scaled = base.scaled(0.05)
        partition = lambda c: c.rate * c.window_seconds * c.tuple_bytes / c.npart
        assert partition(base) * base.cost.scan_byte_cost == pytest.approx(
            partition(scaled) * scaled.cost.scan_byte_cost
        )

    def test_scale_records_factor(self):
        assert SystemConfig.paper_defaults().scaled(0.05).scale == 0.05

    def test_scale_composes(self):
        cfg = SystemConfig.paper_defaults().scaled(0.5).scaled(0.1)
        assert cfg.scale == pytest.approx(0.05)
        assert cfg.window_seconds == pytest.approx(30.0)

    @pytest.mark.parametrize("sigma", [0.0, -0.5, 1.5])
    def test_invalid_scale(self, sigma):
        with pytest.raises(ConfigError):
            SystemConfig.paper_defaults().scaled(sigma)


class TestValidation:
    @pytest.mark.parametrize(
        "changes",
        [
            {"rate": 0.0},
            {"b_skew": 1.5},
            {"key_domain": 0},
            {"block_bytes": 100},  # not a multiple of tuple_bytes
            {"window_seconds": 0.0},
            {"npart": 0},
            {"theta_bytes": 100},
            {"num_slaves": 0},
            {"num_subgroups": 0},
            {"num_subgroups": 10},  # > num_slaves
            {"dist_epoch": 0.0},
            {"reorg_epoch": 1.0},  # < dist_epoch
            {"th_con": 0.6},  # >= th_sup
            {"beta": 0.0},
            {"beta": 1.0},
            {"warmup_seconds": 2000.0},  # >= run_seconds
            {"slave_buffer_bytes": 16},
        ],
    )
    def test_rejects(self, changes):
        with pytest.raises(ConfigError):
            SystemConfig.paper_defaults().with_(**changes)

    def test_network_validation(self):
        with pytest.raises(ConfigError):
            NetworkConfig(bandwidth=0.0).validated()
        with pytest.raises(ConfigError):
            NetworkConfig(latency=-1.0).validated()

    def test_cost_validation(self):
        with pytest.raises(ConfigError):
            CostModelConfig(tuple_cost=-1.0).validated()


class TestNetworkModel:
    def test_transfer_time(self):
        net = NetworkConfig(latency=1e-3, bandwidth=1e6)
        assert net.transfer_time(1_000_000) == pytest.approx(1.001)

    def test_endpoint_overhead(self):
        net = NetworkConfig(per_message_overhead=0.01, per_byte_overhead=1e-6)
        assert net.endpoint_overhead(1000) == pytest.approx(0.011)

    def test_frozen(self):
        with pytest.raises(dataclasses.FrozenInstanceError):
            SystemConfig.paper_defaults().rate = 1.0
