"""GrowableSoA: append/expire semantics, growth, property test."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data.soa import GrowableSoA


def append_n(soa, ts):
    ts = np.asarray(ts, dtype=float)
    soa.append(ts, np.zeros(len(ts), dtype=np.int64), np.arange(len(ts)))


class TestAppendExpire:
    def test_roundtrip(self):
        soa = GrowableSoA()
        append_n(soa, [1.0, 2.0, 3.0])
        assert list(soa.ts) == [1.0, 2.0, 3.0]
        assert len(soa) == 3

    def test_out_of_order_append_rejected(self):
        soa = GrowableSoA()
        append_n(soa, [5.0])
        with pytest.raises(ValueError, match="temporal order"):
            append_n(soa, [4.0])

    def test_equal_timestamps_allowed(self):
        soa = GrowableSoA()
        append_n(soa, [5.0])
        append_n(soa, [5.0])
        assert len(soa) == 2

    def test_expire_before(self):
        soa = GrowableSoA()
        append_n(soa, [1.0, 2.0, 3.0, 4.0])
        assert soa.expire_before(2.5) == 2
        assert list(soa.ts) == [3.0, 4.0]

    def test_expire_exact_boundary_keeps_cutoff(self):
        soa = GrowableSoA()
        append_n(soa, [1.0, 2.0, 3.0])
        soa.expire_before(2.0)  # strictly-less-than semantics
        assert list(soa.ts) == [2.0, 3.0]

    def test_expire_everything_resets(self):
        soa = GrowableSoA()
        append_n(soa, [1.0, 2.0])
        soa.expire_before(10.0)
        assert len(soa) == 0
        append_n(soa, [0.5])  # order restarts after full reset
        assert list(soa.ts) == [0.5]

    def test_pop_all(self):
        soa = GrowableSoA()
        append_n(soa, [1.0, 2.0])
        batch = soa.pop_all()
        assert len(batch) == 2
        assert len(soa) == 0

    def test_snapshot_copies(self):
        soa = GrowableSoA()
        append_n(soa, [1.0])
        snap = soa.snapshot(stream_id=3)
        append_n(soa, [2.0])
        assert len(snap) == 1
        assert snap.stream[0] == 3


class TestGrowth:
    def test_growth_beyond_initial_capacity(self):
        soa = GrowableSoA(capacity=4)
        for i in range(1000):
            append_n(soa, [float(i)])
        assert len(soa) == 1000
        assert list(soa.ts[:3]) == [0.0, 1.0, 2.0]

    def test_interleaved_growth_and_expiry(self):
        soa = GrowableSoA(capacity=4)
        for i in range(2000):
            append_n(soa, [float(i)])
            if i % 7 == 0:
                soa.expire_before(float(i) - 100.0)
        assert np.all(np.diff(soa.ts) >= 0)
        assert soa.ts[0] >= 1899 - 100


@given(
    ops=st.lists(
        st.one_of(
            st.tuples(st.just("append"), st.integers(1, 5)),
            st.tuples(st.just("expire"), st.floats(0, 1)),
        ),
        max_size=60,
    )
)
@settings(max_examples=100, deadline=None)
def test_soa_matches_list_model(ops):
    """GrowableSoA behaves like a plain sorted list under arbitrary
    interleavings of appends (with increasing timestamps) and expiry."""
    soa = GrowableSoA(capacity=4)
    model: list[float] = []
    clock = 0.0
    for op, arg in ops:
        if op == "append":
            ts = [clock + i * 0.25 for i in range(int(arg))]
            clock = ts[-1]
            append_n(soa, ts)
            model.extend(ts)
        else:
            cutoff = clock * float(arg)
            soa.expire_before(cutoff)
            model = [x for x in model if x >= cutoff]
        assert list(soa.ts) == model
