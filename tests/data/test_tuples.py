"""TupleBatch: construction, views, accounting."""

import numpy as np
import pytest

from repro.data.tuples import TupleBatch


def make(n=5, stream=0):
    return TupleBatch.build(
        ts=np.arange(n, dtype=float),
        key=np.arange(n) * 10,
        stream=stream,
    )


class TestConstruction:
    def test_build_defaults_seq(self):
        batch = make(4)
        assert np.array_equal(batch.seq, [0, 1, 2, 3])

    def test_empty(self):
        batch = TupleBatch.empty()
        assert len(batch) == 0
        assert batch.min_ts() == float("inf")
        assert batch.max_ts() == float("-inf")

    def test_mismatched_columns_rejected(self):
        with pytest.raises(ValueError):
            TupleBatch(
                np.zeros(3),
                np.zeros(2, dtype=np.int64),
                np.zeros(3, dtype=np.int64),
                np.zeros(3, dtype=np.uint8),
            )

    def test_dtype_coercion(self):
        batch = TupleBatch.build(ts=[1, 2], key=[1.0, 2.0])
        assert batch.ts.dtype == np.float64
        assert batch.key.dtype == np.int64


class TestConcat:
    def test_concat_preserves_order(self):
        a, b = make(3), make(2, stream=1)
        merged = TupleBatch.concat([a, b])
        assert len(merged) == 5
        assert np.array_equal(merged.stream, [0, 0, 0, 1, 1])

    def test_concat_skips_empties(self):
        merged = TupleBatch.concat([TupleBatch.empty(), make(2)])
        assert len(merged) == 2

    def test_concat_nothing(self):
        assert len(TupleBatch.concat([])) == 0

    def test_concat_single_is_identity(self):
        a = make(3)
        assert TupleBatch.concat([a]) is a


class TestViews:
    def test_slice_is_view(self):
        batch = make(5)
        view = batch.slice(1, 3)
        assert len(view) == 2
        assert view.ts.base is batch.ts

    def test_take(self):
        batch = make(5)
        sub = batch.take(np.array([4, 0]))
        assert list(sub.ts) == [4.0, 0.0]

    def test_select(self):
        batch = make(5)
        sub = batch.select(batch.ts >= 3)
        assert list(sub.ts) == [3.0, 4.0]

    def test_by_stream(self):
        merged = TupleBatch.concat([make(3, stream=0), make(2, stream=1)])
        assert len(merged.by_stream(0)) == 3
        assert len(merged.by_stream(1)) == 2
        assert len(merged.by_stream(7)) == 0


class TestAccounting:
    def test_payload_bytes(self):
        assert make(10).payload_bytes(64) == 640

    def test_min_max_ts(self):
        batch = make(5)
        assert batch.min_ts() == 0.0
        assert batch.max_ts() == 4.0
