"""Test package."""
