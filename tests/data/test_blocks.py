"""Block arithmetic and block-view iteration."""

import numpy as np
import pytest

from repro.data.blocks import block_bytes_used, iter_blocks, n_blocks
from repro.data.tuples import TupleBatch


class TestBlockMath:
    @pytest.mark.parametrize(
        "tuples,per_block,expected",
        [(0, 64, 0), (1, 64, 1), (64, 64, 1), (65, 64, 2), (128, 64, 2)],
    )
    def test_n_blocks(self, tuples, per_block, expected):
        assert n_blocks(tuples, per_block) == expected

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            n_blocks(-1, 64)

    def test_block_bytes_used(self):
        # 65 tuples of 64 B in 4 KB blocks -> 2 blocks -> 8 KB.
        assert block_bytes_used(65, 64, 4096) == 8192


class TestIterBlocks:
    def test_partial_tail_block(self):
        batch = TupleBatch.build(ts=np.arange(10.0), key=np.arange(10))
        views = list(iter_blocks(batch, 4))
        assert [len(v.batch) for v in views] == [4, 4, 2]
        assert [v.full for v in views] == [True, True, False]
        assert [v.index for v in views] == [0, 1, 2]

    def test_exact_blocks_all_full(self):
        batch = TupleBatch.build(ts=np.arange(8.0), key=np.arange(8))
        views = list(iter_blocks(batch, 4))
        assert [v.full for v in views] == [True, True]

    def test_empty_batch(self):
        assert list(iter_blocks(TupleBatch.empty(), 4)) == []

    def test_invalid_block_size(self):
        with pytest.raises(ValueError):
            list(iter_blocks(TupleBatch.empty(), 0))

    def test_views_are_zero_copy(self):
        batch = TupleBatch.build(ts=np.arange(8.0), key=np.arange(8))
        first = next(iter_blocks(batch, 4))
        assert first.batch.ts.base is batch.ts
