"""Unit suite for the process-backend transport.

Covers the contract :mod:`repro.mp.comm` relies on: framing across
partial reads and large frames, peer EOF mapping to ``NodeDown``,
recv timeouts, and drain/fence semantics matching ``SimTransport``.
"""

from __future__ import annotations

import socket
import struct
import threading
import time

import numpy as np
import pytest

from repro.core.protocol import Halt, MoveAck, Shipment
from repro.data.tuples import TupleBatch
from repro.errors import WireError
from repro.faults.markers import NodeDown, RecvTimeout
from repro.net.proc_transport import (
    FRAME_HEADER,
    FrameReader,
    ProcTransport,
    write_frame,
)
from repro.net.wire import encode_message


def make_pair(a=0, b=2, tuple_bytes=64):
    sa, sb = socket.socketpair()
    ta = ProcTransport(a, {b: sa}, tuple_bytes)
    tb = ProcTransport(b, {a: sb}, tuple_bytes)
    return ta, tb


class TestFraming:
    def test_frame_split_across_many_partial_reads(self):
        sa, sb = socket.socketpair()
        payload = encode_message(Halt(7))
        frame = FRAME_HEADER.pack(len(payload)) + payload

        def dribble():
            # One byte at a time: the reader must reassemble across
            # arbitrarily fragmented reads.
            for i in range(len(frame)):
                sa.sendall(frame[i : i + 1])
                time.sleep(0.0005)

        writer = threading.Thread(target=dribble)
        writer.start()
        reader = FrameReader(sb, chunk_bytes=3)
        got = reader.read_frame(None)
        writer.join()
        assert got == payload
        sa.close(), sb.close()

    def test_several_frames_in_one_write(self):
        sa, sb = socket.socketpair()
        payloads = [encode_message(Halt(k)) for k in range(5)]
        blob = b"".join(
            FRAME_HEADER.pack(len(p)) + p for p in payloads
        )
        sa.sendall(blob)
        reader = FrameReader(sb)
        assert [reader.read_frame(None) for _ in range(5)] == payloads
        sa.close(), sb.close()

    def test_frame_larger_than_64kib(self):
        ta, tb = make_pair()
        ea, eb = ta.endpoint(0), tb.endpoint(2)
        n = 3000  # 3000 tuples * 25 B/tuple of columns >> 64 KiB payload
        batch = TupleBatch.build(
            np.linspace(0.0, 30.0, n), np.arange(n), stream=np.arange(n) % 2
        )
        shipment = Shipment(4, 0.0, 2.0, batch)
        payload = encode_message(shipment)
        assert len(payload) > 64 * 1024

        got = {}

        def receive():
            got["msg"] = eb.recv(0).run()

        rx = threading.Thread(target=receive)
        rx.start()
        ea.send(2, shipment).run()
        rx.join(timeout=30.0)
        assert not rx.is_alive()
        msg = got["msg"]
        assert isinstance(msg, Shipment)
        assert np.array_equal(msg.batch.key, batch.key)
        ta.close(), tb.close()

    def test_torn_frame_is_eof_not_garbage(self):
        # Peer dies mid-frame: the partial payload must never reach the
        # codec; the receiver observes NodeDown.
        sa, sb = socket.socketpair()
        tb = ProcTransport(2, {0: sb}, 64)
        payload = encode_message(Halt(1))
        sa.sendall(FRAME_HEADER.pack(len(payload)) + payload[: len(payload) // 2])
        sa.close()
        assert tb.endpoint(2).recv(0).run() == NodeDown(0)
        tb.close()

    def test_absurd_length_header_rejected(self):
        sa, sb = socket.socketpair()
        sa.sendall(struct.pack("!I", 1 << 31))
        reader = FrameReader(sb)
        with pytest.raises(WireError, match="sanity"):
            reader.read_frame(None)
        sa.close(), sb.close()


class TestFailureSemantics:
    def test_peer_eof_maps_to_node_down(self):
        ta, tb = make_pair()
        ta.close()
        assert tb.endpoint(2).recv(0).run() == NodeDown(0)
        # And again: the marker is sticky, like the sim transport's
        # dead-node fast path.
        assert tb.endpoint(2).recv(0).run() == NodeDown(0)
        tb.close()

    def test_buffered_frames_delivered_before_eof(self):
        # A dying peer's already-sent frames still arrive (TCP-like),
        # then the stream ends in NodeDown.
        ta, tb = make_pair()
        ea, eb = ta.endpoint(0), tb.endpoint(2)
        ea.send(2, MoveAck(3, "supplier")).run()
        ta.close()
        assert eb.recv(0).run() == MoveAck(3, "supplier")
        assert eb.recv(0).run() == NodeDown(0)
        tb.close()

    def test_send_to_dead_peer_completes_silently(self):
        ta, tb = make_pair()
        tb.close()
        ea = ta.endpoint(0)
        # Repeated sends: first may succeed into the kernel buffer,
        # later ones hit EPIPE — all must complete without raising.
        for k in range(4):
            ea.send(2, Halt(k)).run()
        ta.close()

    def test_recv_timeout_marker(self):
        ta, tb = make_pair()
        t0 = time.monotonic()
        got = tb.endpoint(2).recv(0, timeout=0.05).run()
        assert got == RecvTimeout(0.05)
        assert time.monotonic() - t0 < 5.0
        ta.close(), tb.close()

    def test_timeout_is_scaled_to_wall_clock(self):
        sa, sb = socket.socketpair()
        # 20 modeled seconds at time_scale=0.005 -> 100 ms wall.
        tb = ProcTransport(2, {0: sb}, 64, time_scale=0.005)
        t0 = time.monotonic()
        got = tb.endpoint(2).recv(0, timeout=20.0).run()
        wall = time.monotonic() - t0
        assert got == RecvTimeout(20.0)
        assert 0.05 <= wall < 2.0
        sa.close(), tb.close()


class TestDrain:
    def test_drained_pair_discards_and_never_blocks_sender(self):
        ta, tb = make_pair()
        ea, eb = ta.endpoint(0), tb.endpoint(2)
        eb.drain(0)
        # Push well past a socket buffer: without the discard reader
        # the sender would wedge exactly like an unmatched rendezvous.
        n = 2000
        batch = TupleBatch.build(np.linspace(0, 20, n), np.arange(n))
        done = threading.Event()

        def flood():
            for k in range(64):
                ea.send(2, Shipment(k, 0.0, 2.0, batch)).run()
            done.set()

        tx = threading.Thread(target=flood, daemon=True)
        tx.start()
        assert done.wait(timeout=30.0), "fenced sender blocked"
        ta.close(), tb.close()

    def test_recv_after_drain_is_node_down(self):
        ta, tb = make_pair()
        eb = tb.endpoint(2)
        eb.drain(0)
        assert eb.recv(0).run() == NodeDown(0)
        ta.close(), tb.close()

    def test_drain_is_idempotent(self):
        ta, tb = make_pair()
        eb = tb.endpoint(2)
        eb.drain(0)
        eb.drain(0)
        assert len(tb._drain_threads) == 1
        ta.close(), tb.close()


class TestStats:
    class Stats:
        def __init__(self):
            self.comm = []
            self.idle = []

        def record_comm(self, t0, t1, nbytes, sent):
            self.comm.append((t0, t1, nbytes, sent))

        def record_idle(self, t0, t1):
            self.idle.append((t0, t1))

    def test_modeled_wire_bytes_recorded(self):
        ta, tb = make_pair()
        tx_stats, rx_stats = self.Stats(), self.Stats()
        ea, eb = ta.endpoint(0, tx_stats), tb.endpoint(2, rx_stats)
        batch = TupleBatch.build([1.0, 2.0], [5, 6])
        ea.send(2, Shipment(0, 0.0, 2.0, batch)).run()
        msg = eb.recv(0).run()
        assert isinstance(msg, Shipment)
        # Modeled size (64 B control + 2 * 64 B tuples), not the
        # serialized byte count: metrics stay comparable across backends.
        expected = Shipment(0, 0.0, 2.0, batch).wire_bytes(64)
        assert tx_stats.comm[0][2] == expected
        assert rx_stats.comm[0][2] == expected
        assert rx_stats.idle, "receiver wait must be recorded as idle"
        ta.close(), tb.close()

    def test_foreign_endpoint_refuses(self):
        ta, _tb = make_pair()
        foreign = ta.endpoint(2)
        with pytest.raises(RuntimeError, match="another process"):
            foreign.send(0, Halt(0))
        with pytest.raises(RuntimeError, match="another process"):
            foreign.recv(0)
