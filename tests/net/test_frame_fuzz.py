"""Hostile-network fuzzing for the framing layer and TCP receive path.

Property under test: no malformed input — arbitrary chunking, torn or
truncated frames, corrupted magic/version/length bytes, interleaved
garbage — may ever hang the reader, over-read past a frame boundary, or
surface as anything other than a clean decode, ``WireError`` or
``NodeDown``.  The fake socket ends in EOF, so a hang would also show
up as an infinite busy loop — the iteration bounds below catch that.
"""

from __future__ import annotations

import socket
from collections import deque

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.protocol import Halt
from repro.errors import WireError
from repro.faults.markers import NodeDown
from repro.net.proc_transport import (
    _EOF,
    FRAME_HEADER,
    MAX_FRAME_BYTES,
    FrameReader,
    write_frame,
)
from repro.net.tcp_transport import TcpTransport
from repro.net.wire import MAGIC, WIRE_VERSION, decode_message, encode_message

FUZZ = settings(max_examples=50, deadline=None)


class ScriptedSocket:
    """In-memory stream: scripted bytes, scripted read sizes, then EOF.

    Honors the ``recv(n)`` contract (never returns more than *n*
    bytes); the cut list forces arbitrary fragmentation on top of
    whatever chunk size the reader asks for.
    """

    def __init__(self, data: bytes, cuts: list[int] | None = None) -> None:
        self._data = data
        self._cuts = deque(cuts or [])
        self.recv_calls = 0

    def recv(self, n: int) -> bytes:
        self.recv_calls += 1
        if not self._data:
            return b""
        cut = self._cuts.popleft() if self._cuts else len(self._data)
        k = max(1, min(n, cut, len(self._data)))
        out, self._data = self._data[:k], self._data[k:]
        return out

    @property
    def leftover(self) -> int:
        return len(self._data)


def frames_blob(payloads: list[bytes]) -> bytes:
    return b"".join(FRAME_HEADER.pack(len(p)) + p for p in payloads)


class TestFrameReaderFuzz:
    @FUZZ
    @given(
        epochs=st.lists(st.integers(0, 2**31), min_size=1, max_size=6),
        cuts=st.lists(st.integers(1, 7), max_size=64),
    )
    def test_roundtrip_under_arbitrary_chunking(self, epochs, cuts):
        payloads = [encode_message(Halt(e)) for e in epochs]
        reader = FrameReader(ScriptedSocket(frames_blob(payloads), cuts))
        got = [reader.read_frame(None) for _ in range(len(payloads))]
        assert got == payloads
        assert [decode_message(p).epoch for p in got] == epochs
        # No over-read past the last frame: the stream is exactly
        # consumed and the next read is EOF, not a phantom frame.
        assert reader.read_frame(None) is _EOF
        assert reader.read_frame(None) is _EOF

    @FUZZ
    @given(
        epochs=st.lists(st.integers(0, 2**31), min_size=1, max_size=4),
        cut_frac=st.floats(0.0, 1.0, exclude_max=True),
        cuts=st.lists(st.integers(1, 5), max_size=32),
    )
    def test_truncated_tail_yields_complete_frames_then_eof(
        self, epochs, cut_frac, cuts
    ):
        # Truncate the byte stream anywhere inside the *last* frame
        # (possibly mid-header): every complete frame is delivered
        # intact, the torn tail surfaces as EOF, never as a partial
        # payload and never as a hang.
        payloads = [encode_message(Halt(e)) for e in epochs]
        blob = frames_blob(payloads)
        last_start = len(blob) - FRAME_HEADER.size - len(payloads[-1])
        cut_at = last_start + int(
            cut_frac * (len(blob) - last_start - 1)
        )
        reader = FrameReader(ScriptedSocket(blob[:cut_at], cuts))
        got = [reader.read_frame(None) for _ in range(len(payloads) - 1)]
        assert got == payloads[:-1]
        assert reader.read_frame(None) is _EOF

    @FUZZ
    @given(length=st.integers(MAX_FRAME_BYTES + 1, 2**32 - 1))
    def test_absurd_length_header_raises_wireerror(self, length):
        reader = FrameReader(ScriptedSocket(FRAME_HEADER.pack(length)))
        with pytest.raises(WireError, match="sanity"):
            reader.read_frame(None)

    @FUZZ
    @given(
        epoch=st.integers(0, 2**31),
        garbage=st.binary(min_size=1, max_size=48),
        cuts=st.lists(st.integers(1, 5), max_size=32),
    )
    def test_interleaved_garbage_never_hangs_or_leaks_frames(
        self, epoch, garbage, cuts
    ):
        # One valid frame followed by raw garbage: the frame arrives
        # intact, then every further read terminates in bounded steps
        # with EOF or WireError — the garbage is interpreted as frame
        # headers, never delivered as a payload it can't be.
        payload = encode_message(Halt(epoch))
        reader = FrameReader(
            ScriptedSocket(frames_blob([payload]) + garbage, cuts)
        )
        assert reader.read_frame(None) == payload
        for _ in range(len(garbage) + 2):
            try:
                frame = reader.read_frame(None)
            except WireError:
                return  # garbage length header tripped the sanity bound
            if frame is _EOF:
                return  # torn pseudo-frame: stream ends cleanly
            # A garbage run can only parse as a frame if its length
            # header happens to cover bytes that all arrived — in that
            # case the bytes come from the garbage, not a real message.
            assert frame != payload
        raise AssertionError("reader failed to terminate on garbage")


class TestTcpReceivePathFuzz:
    def _pair(self):
        sa, sb = socket.socketpair()
        transport = TcpTransport(2, {0: sb}, 64)
        return sa, transport

    @FUZZ
    @given(junk=st.binary(min_size=0, max_size=64))
    def test_corrupted_magic_raises_wireerror(self, junk):
        sa, transport = self._pair()
        try:
            write_frame(sa, b"XX" + junk)  # magic is never b"XX"
            with pytest.raises(WireError):
                transport.endpoint(2).recv(0).run()
        finally:
            sa.close()
            transport.close()

    @FUZZ
    @given(version=st.integers(0, 255).filter(lambda v: v != WIRE_VERSION))
    def test_corrupted_version_raises_wireerror(self, version):
        sa, transport = self._pair()
        try:
            good = encode_message(Halt(3))
            assert good[:2] == MAGIC
            write_frame(sa, good[:2] + bytes([version]) + good[3:])
            with pytest.raises(WireError, match="version"):
                transport.endpoint(2).recv(0).run()
        finally:
            sa.close()
            transport.close()

    @FUZZ
    @given(cut_frac=st.floats(0.0, 1.0, exclude_max=True))
    def test_torn_frame_resolves_to_node_down(self, cut_frac):
        # Peer dies mid-frame on a real socket: the TCP endpoint must
        # resolve to NodeDown, never hand the codec a partial payload.
        sa, transport = self._pair()
        try:
            payload = encode_message(Halt(9))
            frame = FRAME_HEADER.pack(len(payload)) + payload
            cut_at = 1 + int(cut_frac * (len(frame) - 2))
            sa.sendall(frame[:cut_at])
            sa.close()
            assert transport.endpoint(2).recv(0).run() == NodeDown(0)
        finally:
            transport.close()
