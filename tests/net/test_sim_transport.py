"""The modeled rendezvous network."""

import pytest

from repro.config import NetworkConfig
from repro.core.metrics import MeasurementWindow, SlaveMetrics
from repro.net.sim_transport import SimTransport
from repro.simul.kernel import Simulator


class Msg:
    def __init__(self, nbytes):
        self.nbytes = nbytes

    def wire_bytes(self, tuple_bytes):
        return self.nbytes


@pytest.fixture
def net():
    sim = Simulator()
    cfg = NetworkConfig(
        latency=0.01,
        bandwidth=1e6,
        per_message_overhead=0.1,
        per_byte_overhead=0.0,
    )
    return sim, SimTransport(sim, cfg, tuple_bytes=64)


class TestRendezvous:
    def test_message_delivered(self, net):
        sim, transport = net
        a, b = transport.endpoint(1), transport.endpoint(2)
        got = []

        def sender(sim):
            yield a.send(2, Msg(1000))

        def receiver(sim):
            msg = yield b.recv(1)
            got.append((msg.nbytes, sim.now))

        sim.process(sender(sim))
        sim.process(receiver(sim))
        sim.run(None)
        # duration = overhead 0.1 + latency 0.01 + 1000/1e6.
        assert got == [(1000, pytest.approx(0.111))]

    def test_sender_blocks_until_receiver_arrives(self, net):
        sim, transport = net
        a, b = transport.endpoint(1), transport.endpoint(2)
        sent_at = []

        def sender(sim):
            yield a.send(2, Msg(0))
            sent_at.append(sim.now)

        def receiver(sim):
            yield sim.timeout(5.0)
            yield b.recv(1)

        sim.process(sender(sim))
        sim.process(receiver(sim))
        sim.run(None)
        assert sent_at[0] == pytest.approx(5.11)

    def test_fifo_matching_per_pair(self, net):
        sim, transport = net
        a, b = transport.endpoint(1), transport.endpoint(2)
        got = []

        def sender(sim):
            yield a.send(2, "first")
            yield a.send(2, "second")

        def receiver(sim):
            got.append((yield b.recv(1)))
            got.append((yield b.recv(1)))

        sim.process(sender(sim))
        sim.process(receiver(sim))
        sim.run(None)
        assert got == ["first", "second"]

    def test_pairs_are_independent(self, net):
        sim, transport = net
        a, b, c = (transport.endpoint(i) for i in (1, 2, 3))
        got = []

        def s1(sim):
            yield sim.timeout(3.0)
            yield a.send(3, "from-1")

        def s2(sim):
            yield b.send(3, "from-2")

        def receiver(sim):
            # Waits for node 1 first even though node 2 is ready: the
            # fixed schedule decides, not arrival order.
            got.append((yield c.recv(1)))
            got.append((yield c.recv(2)))

        sim.process(s1(sim))
        sim.process(s2(sim))
        sim.process(receiver(sim))
        sim.run(None)
        assert got == ["from-1", "from-2"]

    def test_transfer_counters(self, net):
        sim, transport = net
        a, b = transport.endpoint(1), transport.endpoint(2)

        def sender(sim):
            yield a.send(2, Msg(500))

        def receiver(sim):
            yield b.recv(1)

        sim.process(sender(sim))
        sim.process(receiver(sim))
        sim.run(None)
        assert transport.n_transfers == 1
        assert transport.bytes_moved == 500


class TestAccounting:
    def test_idle_and_comm_recorded(self, net):
        sim, transport = net
        gate = MeasurementWindow(0.0)
        stats_a = SlaveMetrics(1, gate)
        stats_b = SlaveMetrics(2, gate)
        a = transport.endpoint(1, stats_a)
        b = transport.endpoint(2, stats_b)

        def sender(sim):
            yield sim.timeout(4.0)
            yield a.send(2, Msg(1000))

        def receiver(sim):
            yield b.recv(1)

        sim.process(sender(sim))
        sim.process(receiver(sim))
        sim.run(None)
        # Receiver posted at t=0, met at t=4: 4 s idle.
        assert stats_b.idle_time == pytest.approx(4.0)
        assert stats_a.idle_time == pytest.approx(0.0)
        duration = 0.1 + 0.01 + 1e-3
        assert stats_a.comm_time == pytest.approx(duration)
        assert stats_b.comm_time == pytest.approx(duration)
        assert stats_a.bytes_sent == 1000
        assert stats_b.bytes_received == 1000

    def test_default_size_for_unknown_messages(self, net):
        sim, transport = net
        assert transport._message_bytes(object()) == 64
