"""Test package."""
