"""Unit suite for the TCP transport primitives.

Covers the connect handshake (version/magic/identity rejection), the
bounded retry with its deterministic RNG-substream backoff schedule,
dead-peer send resolving to ``NodeDown``, peer-EOF fail-stop, and the
per-pair byte/frame counters feeding the metrics registry.
"""

from __future__ import annotations

import socket
import threading
import time

import pytest

from repro.core.protocol import Halt, MoveAck
from repro.errors import ConnectError, WireError
from repro.faults.markers import NodeDown
from repro.net.proc_transport import FRAME_HEADER, FrameReader, write_frame
from repro.net.tcp_transport import (
    BACKOFF_CAP_S,
    HELLO,
    KIND_CONTROL,
    KIND_PEER,
    TcpTransport,
    backoff_schedule,
    connect_with_retry,
    read_hello,
    send_hello,
)
from repro.net.wire import MAGIC, WIRE_VERSION, encode_message
from repro.obs.metrics import MetricsRegistry
from repro.simul.rng import RngRegistry


def make_pair(a=0, b=2, tuple_bytes=64):
    sa, sb = socket.socketpair()
    ta = TcpTransport(a, {b: sa}, tuple_bytes)
    tb = TcpTransport(b, {a: sb}, tuple_bytes)
    return ta, tb


def free_port() -> int:
    sock = socket.socket()
    sock.bind(("127.0.0.1", 0))
    port = sock.getsockname()[1]
    sock.close()
    return port


class TestHandshake:
    def test_roundtrip(self):
        sa, sb = socket.socketpair()
        send_hello(sa, KIND_PEER, 5)
        assert read_hello(sb, 5.0) == (KIND_PEER, 5)
        send_hello(sb, KIND_CONTROL, -1)
        assert read_hello(sa, 5.0) == (KIND_CONTROL, -1)
        sa.close(), sb.close()

    def test_version_mismatch_rejected_naming_both_versions(self):
        sa, sb = socket.socketpair()
        sa.sendall(HELLO.pack(MAGIC, WIRE_VERSION + 1, KIND_PEER, 3))
        with pytest.raises(WireError) as err:
            read_hello(sb, 5.0)
        assert str(WIRE_VERSION) in str(err.value)
        assert str(WIRE_VERSION + 1) in str(err.value)
        sa.close(), sb.close()

    def test_bad_magic_rejected(self):
        sa, sb = socket.socketpair()
        sa.sendall(HELLO.pack(b"ZZ", WIRE_VERSION, KIND_PEER, 3))
        with pytest.raises(WireError, match="magic"):
            read_hello(sb, 5.0)
        sa.close(), sb.close()

    def test_unknown_kind_rejected(self):
        sa, sb = socket.socketpair()
        sa.sendall(HELLO.pack(MAGIC, WIRE_VERSION, 9, 3))
        with pytest.raises(WireError, match="kind"):
            read_hello(sb, 5.0)
        sa.close(), sb.close()

    def test_eof_during_handshake_is_connect_error(self):
        sa, sb = socket.socketpair()
        sa.sendall(HELLO.pack(MAGIC, WIRE_VERSION, KIND_PEER, 3)[:4])
        sa.close()
        with pytest.raises(ConnectError, match="closed"):
            read_hello(sb, 5.0)
        sb.close()

    def test_handshake_timeout_is_connect_error(self):
        sa, sb = socket.socketpair()
        with pytest.raises(ConnectError, match="timed out"):
            read_hello(sb, 0.05)
        sa.close(), sb.close()


class TestBackoff:
    def test_schedule_is_deterministic_per_substream(self):
        key = "tcp.backoff.2->3"
        a = backoff_schedule(6, RngRegistry(7).get(key))
        b = backoff_schedule(6, RngRegistry(7).get(key))
        assert a == b

    def test_schedule_varies_with_seed_and_pair(self):
        a = backoff_schedule(6, RngRegistry(7).get("tcp.backoff.2->3"))
        b = backoff_schedule(6, RngRegistry(8).get("tcp.backoff.2->3"))
        c = backoff_schedule(6, RngRegistry(7).get("tcp.backoff.2->4"))
        assert a != b and a != c

    def test_schedule_is_capped_exponential_with_jitter(self):
        delays = backoff_schedule(8, RngRegistry(1).get("tcp.backoff.0->1"))
        assert len(delays) == 8
        assert all(0.0 < d <= BACKOFF_CAP_S * 1.5 for d in delays)
        # Jitter is bounded to [0.5, 1.5) of the exponential step, so
        # the first attempt is always much shorter than the last.
        assert delays[0] < delays[-1]


class TestConnectRetry:
    def test_exhaustion_names_peer_and_address(self):
        port = free_port()  # nothing listens here
        rng = RngRegistry(1).get("tcp.backoff.0->5")
        t0 = time.monotonic()
        with pytest.raises(ConnectError) as err:
            connect_with_retry(
                ("127.0.0.1", port), KIND_PEER, 0, rng,
                expect_node=5, attempts=3, base=0.001, cap=0.004,
            )
        assert time.monotonic() - t0 < 10.0
        message = str(err.value)
        assert "node 5" in message
        assert f"127.0.0.1:{port}" in message
        assert "3 attempts" in message

    def _serve_once(self, reply_version, reply_node, accepted):
        listener = socket.socket()
        listener.bind(("127.0.0.1", 0))
        listener.listen(4)

        def serve():
            conn, _ = listener.accept()
            accepted.append(conn)
            read_hello(conn, 5.0)
            conn.sendall(
                HELLO.pack(MAGIC, reply_version, KIND_PEER, reply_node)
            )

        thread = threading.Thread(target=serve, daemon=True)
        thread.start()
        return listener, listener.getsockname()[1]

    def test_success_path_returns_handshaken_socket(self):
        accepted: list[socket.socket] = []
        listener, port = self._serve_once(WIRE_VERSION, 3, accepted)
        rng = RngRegistry(1).get("tcp.backoff.0->3")
        sock = connect_with_retry(
            ("127.0.0.1", port), KIND_PEER, 0, rng, expect_node=3
        )
        # The returned socket is ready for framed traffic.
        payload = encode_message(Halt(4))
        write_frame(accepted[0], payload)
        assert FrameReader(sock).read_frame(5.0) == payload
        sock.close(), listener.close()

    def test_wrong_peer_identity_is_connect_error(self):
        accepted: list[socket.socket] = []
        listener, port = self._serve_once(WIRE_VERSION, 9, accepted)
        rng = RngRegistry(1).get("tcp.backoff.0->3")
        with pytest.raises(ConnectError, match="node 9"):
            connect_with_retry(
                ("127.0.0.1", port), KIND_PEER, 0, rng, expect_node=3
            )
        listener.close()

    def test_version_skew_fails_fast_without_retry(self):
        accepted: list[socket.socket] = []
        listener, port = self._serve_once(WIRE_VERSION + 1, 3, accepted)
        rng = RngRegistry(1).get("tcp.backoff.0->3")
        with pytest.raises(WireError, match="version"):
            connect_with_retry(
                ("127.0.0.1", port), KIND_PEER, 0, rng,
                expect_node=3, attempts=5,
            )
        # One connection only: skew never resolves by retrying.
        assert len(accepted) == 1
        listener.close()


class TestFailureSemantics:
    def test_send_to_dead_peer_resolves_to_node_down(self):
        ta, tb = make_pair()
        tb.close()
        ea = ta.endpoint(0)
        # The first send may land in the kernel buffer (None); once the
        # broken pipe is visible every send resolves to NodeDown — and
        # none of them raises (silent-completion model preserved).
        results = [ea.send(2, Halt(k)).run() for k in range(8)]
        assert NodeDown(2) in results
        assert set(results) <= {None, NodeDown(2)}
        ta.close()

    def test_peer_eof_maps_to_node_down(self):
        ta, tb = make_pair()
        ta.close()
        assert tb.endpoint(2).recv(0).run() == NodeDown(0)
        tb.close()

    def test_buffered_frames_delivered_before_eof(self):
        ta, tb = make_pair()
        ta.endpoint(0).send(2, MoveAck(3, "supplier")).run()
        ta.close()
        eb = tb.endpoint(2)
        assert eb.recv(0).run() == MoveAck(3, "supplier")
        assert eb.recv(0).run() == NodeDown(0)
        tb.close()


class TestPairCounters:
    def test_tallies_track_frames_and_wire_bytes(self):
        ta, tb = make_pair()
        ea, eb = ta.endpoint(0), tb.endpoint(2)
        payloads = [encode_message(Halt(k)) for k in range(3)]
        for k in range(3):
            ea.send(2, Halt(k)).run()
        for _ in range(3):
            eb.recv(0).run()
        expected = sum(FRAME_HEADER.size + len(p) for p in payloads)
        assert ta.pair_stats()[2] == {
            "tx_frames": 3, "tx_bytes": expected,
            "rx_frames": 0, "rx_bytes": 0,
        }
        assert tb.pair_stats()[0] == {
            "tx_frames": 0, "tx_bytes": 0,
            "rx_frames": 3, "rx_bytes": expected,
        }
        ta.close(), tb.close()

    def test_registry_counters_mirror_tallies(self):
        ta, tb = make_pair()
        registry = MetricsRegistry(2)
        # Attach after traffic already flowed: pre-attach counts must
        # be replayed, post-attach traffic increments live.
        ta.endpoint(0).send(2, Halt(0)).run()
        tb.endpoint(2).recv(0).run()
        tb.attach_registry(registry)
        ta.endpoint(0).send(2, Halt(1)).run()
        tb.endpoint(2).recv(0).run()
        snapshot = registry.snapshot()
        assert snapshot["tcp.rx_frames.from_n0"]["value"] == 2
        assert (
            snapshot["tcp.rx_bytes.from_n0"]["value"]
            == tb.pair_stats()[0]["rx_bytes"]
        )
        ta.close(), tb.close()
