"""Round-trip property suite for the process backend's wire codec.

Every :mod:`repro.core.protocol` message type (plus the payload
structures that ride inside them) must encode/decode to an equal value,
and malformed frames must raise :class:`~repro.errors.WireError` —
never return a partially decoded message.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.metrics import DelayStats
from repro.core.partition_group import GroupState, PartitionGroupState
from repro.core.protocol import (
    Activate,
    Checkpoint,
    Halt,
    LoadReport,
    MoveAck,
    MoveDirective,
    Rejoin,
    ReorgOrder,
    Replicate,
    ResultReport,
    Restore,
    Shipment,
    SlaveSync,
    StandbyPlan,
    StandbySync,
    StateTransfer,
    TakeOver,
)
from repro.core.subgroups import SlotSchedule
from repro.data.tuples import TupleBatch
from repro.errors import WireError
from repro.net.wire import MAGIC, WIRE_VERSION, decode_message, encode_message

# -- strategies ---------------------------------------------------------------

epochs = st.integers(min_value=0, max_value=2**31)
node_ids = st.integers(min_value=0, max_value=64)
pids = st.integers(min_value=0, max_value=2**20)
times = st.floats(
    min_value=0.0, max_value=1e9, allow_nan=False, allow_infinity=False
)
fractions = st.floats(
    min_value=0.0, max_value=1.0, allow_nan=False, allow_infinity=False
)


@st.composite
def tuple_batches(draw, max_size=64):
    n = draw(st.integers(min_value=0, max_value=max_size))
    ts = np.sort(
        np.asarray(
            draw(
                st.lists(times, min_size=n, max_size=n)
            ),
            dtype=np.float64,
        )
    )
    key = np.asarray(
        draw(
            st.lists(
                st.integers(min_value=0, max_value=10**7),
                min_size=n,
                max_size=n,
            )
        ),
        dtype=np.int64,
    )
    seq = np.arange(n, dtype=np.int64)
    stream = np.asarray(
        draw(
            st.lists(
                st.integers(min_value=0, max_value=3), min_size=n, max_size=n
            )
        ),
        dtype=np.uint8,
    )
    return TupleBatch(ts, key, seq, stream)


@st.composite
def delay_stats(draw):
    stats = DelayStats()
    delays = draw(
        st.lists(
            st.floats(
                min_value=0.0,
                max_value=1e4,
                allow_nan=False,
                allow_infinity=False,
            ),
            max_size=32,
        )
    )
    if delays:
        stats.record(np.asarray(delays, dtype=np.float64))
    return stats


schedules = st.one_of(
    st.none(),
    st.builds(
        SlotSchedule,
        st.integers(min_value=0, max_value=7),
        st.integers(min_value=1, max_value=8),
        st.floats(min_value=0.01, max_value=60.0, allow_nan=False),
    ),
)

moves = st.builds(MoveDirective, pids, node_ids, node_ids)


@st.composite
def group_states(draw):
    n_streams = draw(st.integers(min_value=2, max_value=3))
    streams = tuple(
        (draw(tuple_batches(max_size=8)), draw(tuple_batches(max_size=8)))
        for _ in range(n_streams)
    )
    return GroupState(
        pattern=draw(st.integers(min_value=0, max_value=2**16)),
        local_depth=draw(st.integers(min_value=0, max_value=16)),
        streams=streams,
    )


@st.composite
def partition_states(draw):
    return PartitionGroupState(
        pid=draw(pids),
        global_depth=draw(st.integers(min_value=0, max_value=16)),
        groups=tuple(
            draw(st.lists(group_states(), min_size=0, max_size=3))
        ),
    )


load_reports = st.builds(LoadReport, epochs, fractions, fractions, pids)


@st.composite
def pair_matrices(draw, max_rows=8):
    n = draw(st.integers(min_value=0, max_value=max_rows))
    flat = draw(
        st.lists(
            st.integers(min_value=0, max_value=2**40),
            min_size=2 * n,
            max_size=2 * n,
        )
    )
    return np.asarray(flat, dtype=np.int64).reshape(-1, 2)


maybe_pairs = st.one_of(st.none(), pair_matrices())

checkpoints = st.builds(
    Checkpoint, pids, epochs, partition_states(), tuple_batches(), maybe_pairs
)


@st.composite
def log_entries(draw, max_size=3):
    n = draw(st.integers(min_value=0, max_value=max_size))
    return tuple(
        (draw(pids), draw(epochs), draw(tuple_batches(max_size=8)))
        for _ in range(n)
    )


replicates = st.builds(
    Replicate,
    epochs,
    log_entries(),
    st.lists(pids, max_size=4).map(tuple),
    st.lists(checkpoints, max_size=2).map(tuple),
)


@st.composite
def standby_ops(draw, max_size=4):
    """Round-boundary op logs: int-typed slots must hold ints (the
    codec narrows them back from f64 on decode)."""
    out = []
    for _ in range(draw(st.integers(min_value=0, max_value=max_size))):
        kind = draw(st.sampled_from(["gen", "drain", "remap"]))
        if kind == "gen":
            out.append((kind, draw(times), draw(times)))
        elif kind == "drain":
            out.append((kind, draw(node_ids), draw(times)))
        else:
            out.append((kind, draw(pids), draw(node_ids)))
    return tuple(out)


@st.composite
def banked_pairs(draw, max_size=3):
    """StandbySync pair chunks: ``(slave, pid, epoch, rows)``."""
    return tuple(
        (draw(node_ids), draw(pids), draw(epochs), draw(pair_matrices()))
        for _ in range(draw(st.integers(min_value=0, max_value=max_size)))
    )


@st.composite
def rejoin_pairs(draw, max_size=3):
    """Rejoin pair chunks: ``(pid, epoch, rows)``."""
    return tuple(
        (draw(pids), draw(epochs), draw(pair_matrices()))
        for _ in range(draw(st.integers(min_value=0, max_value=max_size)))
    )


standby_syncs = st.builds(
    StandbySync,
    epochs,
    standby_ops(),
    st.lists(node_ids, max_size=6).map(tuple),
    st.lists(node_ids, max_size=4).map(tuple),
    times,
    st.lists(st.tuples(pids, node_ids), max_size=4).map(tuple),
    st.lists(pids, max_size=4).map(tuple),
    st.lists(st.tuples(node_ids, replicates), max_size=2).map(tuple),
    st.sampled_from(
        ["[]", '[{"slave": 3, "epoch": 2, "recovery_latency": null}]']
    ),
    banked_pairs(),
)

standby_plans = st.builds(
    StandbyPlan,
    epochs,
    st.lists(moves, max_size=4).map(tuple),
    st.lists(node_ids, max_size=4).map(tuple),
    st.lists(node_ids, max_size=4).map(tuple),
    st.lists(st.tuples(pids, node_ids), max_size=4).map(tuple),
    st.lists(pids, max_size=4).map(tuple),
)

take_overs = st.builds(
    TakeOver,
    epochs,
    times,
    schedules,
    st.booleans(),
    st.integers(min_value=-1, max_value=2**31),
    st.lists(moves, max_size=4).map(tuple),
)

rejoins = st.builds(
    Rejoin,
    epochs,
    st.lists(pids, max_size=6).map(tuple),
    st.integers(min_value=-1, max_value=2**31),
    st.integers(min_value=-1, max_value=2**31),
    st.booleans(),
    rejoin_pairs(),
)


messages = st.one_of(
    st.builds(Shipment, epochs, times, times, tuple_batches()),
    load_reports,
    st.builds(
        ReorgOrder,
        epochs,
        st.lists(moves, max_size=4).map(tuple),
        st.lists(moves, max_size=4).map(tuple),
        st.booleans(),
        times,
        schedules,
        st.lists(pids, max_size=4).map(tuple),
        st.lists(pids, max_size=4).map(tuple),
    ),
    st.builds(StateTransfer, pids, partition_states(), tuple_batches()),
    st.builds(
        MoveAck,
        pids,
        st.sampled_from(["supplier", "consumer", "adopt", "restore"]),
        maybe_pairs,
    ),
    st.builds(Activate, epochs, times, schedules),
    st.builds(ResultReport, epochs, delay_stats()),
    st.builds(Halt, epochs),
    st.builds(SlaveSync, epochs, load_reports),
    checkpoints,
    replicates,
    st.builds(Restore, epochs, st.lists(pids, max_size=6).map(tuple)),
    standby_syncs,
    standby_plans,
    take_overs,
    rejoins,
)


# -- equality helpers ---------------------------------------------------------


def batches_equal(a: TupleBatch, b: TupleBatch) -> bool:
    return (
        np.array_equal(a.ts, b.ts)
        and np.array_equal(a.key, b.key)
        and np.array_equal(a.seq, b.seq)
        and np.array_equal(a.stream, b.stream)
        and a.ts.dtype == b.ts.dtype
        and a.key.dtype == b.key.dtype
        and a.seq.dtype == b.seq.dtype
        and a.stream.dtype == b.stream.dtype
    )


def stats_equal(a: DelayStats, b: DelayStats) -> bool:
    return (
        a.count == b.count
        and a.total == b.total
        and a.minimum == b.minimum
        and a.maximum == b.maximum
        and np.array_equal(a.histogram, b.histogram)
    )


def states_equal(a: PartitionGroupState, b: PartitionGroupState) -> bool:
    if (a.pid, a.global_depth, len(a.groups)) != (
        b.pid,
        b.global_depth,
        len(b.groups),
    ):
        return False
    for ga, gb in zip(a.groups, b.groups):
        if (ga.pattern, ga.local_depth, len(ga.streams)) != (
            gb.pattern,
            gb.local_depth,
            len(gb.streams),
        ):
            return False
        for (ca, fa), (cb, fb) in zip(ga.streams, gb.streams):
            if not (batches_equal(ca, cb) and batches_equal(fa, fb)):
                return False
    return True


def pairs_equal(a, b) -> bool:
    if a is None or b is None:
        return a is None and b is None
    return np.array_equal(np.asarray(a), np.asarray(b))


def checkpoints_equal(a: Checkpoint, b: Checkpoint) -> bool:
    return (
        (a.pid, a.epoch) == (b.pid, b.epoch)
        and states_equal(a.state, b.state)
        and batches_equal(a.buffered, b.buffered)
        and pairs_equal(a.pairs, b.pairs)
    )


def messages_equal(a, b) -> bool:
    if type(a) is not type(b):
        return False
    if isinstance(a, Checkpoint):
        return checkpoints_equal(a, b)
    if isinstance(a, Replicate):
        return (
            a.epoch == b.epoch
            and a.drops == b.drops
            and len(a.entries) == len(b.entries)
            and all(
                ea[:2] == eb[:2] and batches_equal(ea[2], eb[2])
                for ea, eb in zip(a.entries, b.entries)
            )
            and len(a.checkpoints) == len(b.checkpoints)
            and all(
                checkpoints_equal(ca, cb)
                for ca, cb in zip(a.checkpoints, b.checkpoints)
            )
        )
    if isinstance(a, MoveAck):
        return (a.pid, a.role) == (b.pid, b.role) and pairs_equal(
            a.pairs, b.pairs
        )
    if isinstance(a, StandbySync):
        return (
            (a.epoch, a.ops, a.active, a.dead, a.next_gen_time)
            == (b.epoch, b.ops, b.active, b.dead, b.next_gen_time)
            and (a.backup_of, a.covered, a.failures_json)
            == (b.backup_of, b.covered, b.failures_json)
            and len(a.pending) == len(b.pending)
            and all(
                na == nb and messages_equal(ra, rb)
                for (na, ra), (nb, rb) in zip(a.pending, b.pending)
            )
            and len(a.pairs) == len(b.pairs)
            and all(
                pa[:3] == pb[:3] and pairs_equal(pa[3], pb[3])
                for pa, pb in zip(a.pairs, b.pairs)
            )
        )
    if isinstance(a, Rejoin):
        return (
            (a.epoch, a.owned_pids, a.active)
            == (b.epoch, b.owned_pids, b.active)
            and (a.last_shipment_epoch, a.last_order_epoch)
            == (b.last_shipment_epoch, b.last_order_epoch)
            and len(a.pairs) == len(b.pairs)
            and all(
                pa[:2] == pb[:2] and pairs_equal(pa[2], pb[2])
                for pa, pb in zip(a.pairs, b.pairs)
            )
        )
    if isinstance(a, Shipment):
        return (
            (a.epoch, a.epoch_start, a.epoch_end)
            == (b.epoch, b.epoch_start, b.epoch_end)
            and batches_equal(a.batch, b.batch)
        )
    if isinstance(a, StateTransfer):
        return (
            a.pid == b.pid
            and states_equal(a.state, b.state)
            and batches_equal(a.buffered, b.buffered)
        )
    if isinstance(a, ResultReport):
        return a.epoch == b.epoch and stats_equal(a.stats, b.stats)
    # Remaining types hold only hashable scalars/tuples: dataclass
    # equality is exact.
    return a == b


# -- round-trip properties ----------------------------------------------------


class TestRoundTrip:
    @settings(max_examples=200, deadline=None)
    @given(message=messages)
    def test_every_message_type_round_trips(self, message):
        decoded = decode_message(encode_message(message))
        assert messages_equal(message, decoded)

    def test_empty_batch_round_trips(self):
        shipment = Shipment(0, 0.0, 2.0, TupleBatch.empty())
        decoded = decode_message(encode_message(shipment))
        assert len(decoded.batch) == 0
        assert batches_equal(shipment.batch, decoded.batch)

    def test_single_tuple_batch_round_trips(self):
        batch = TupleBatch.build([1.5], [42], stream=1)
        decoded = decode_message(encode_message(Shipment(3, 1.0, 2.0, batch)))
        assert batches_equal(batch, decoded.batch)

    def test_multi_block_batch_round_trips(self):
        # Larger than one 4 KiB block of 64 B tuples (64 tuples/block).
        n = 1000
        batch = TupleBatch.build(
            np.linspace(0.0, 10.0, n),
            np.arange(n) * 7 % 10_000,
            stream=np.arange(n) % 2,
        )
        decoded = decode_message(encode_message(Shipment(1, 0.0, 10.0, batch)))
        assert batches_equal(batch, decoded.batch)

    def test_empty_delay_stats_round_trips(self):
        # minimum is +inf before the first record; the codec must carry it.
        decoded = decode_message(encode_message(ResultReport(0, DelayStats())))
        assert decoded.stats.count == 0
        assert decoded.stats.minimum == float("inf")


# -- malformed frames ---------------------------------------------------------


class TestMalformed:
    def frame(self):
        return encode_message(
            Shipment(5, 0.0, 2.0, TupleBatch.build([1.0, 2.0], [3, 4]))
        )

    @settings(max_examples=60, deadline=None)
    @given(data=st.data())
    def test_truncation_always_raises(self, data):
        frame = self.frame()
        cut = data.draw(st.integers(min_value=0, max_value=len(frame) - 1))
        with pytest.raises(WireError):
            decode_message(frame[:cut])

    def test_bad_magic(self):
        frame = self.frame()
        with pytest.raises(WireError, match="magic"):
            decode_message(b"XX" + frame[2:])

    def test_unsupported_version(self):
        frame = self.frame()
        bad = MAGIC + bytes([WIRE_VERSION + 1]) + frame[3:]
        with pytest.raises(WireError, match="version"):
            decode_message(bad)

    def test_unknown_tag(self):
        frame = self.frame()
        bad = frame[:3] + bytes([250]) + frame[4:]
        with pytest.raises(WireError, match="tag"):
            decode_message(bad)

    def test_trailing_bytes(self):
        with pytest.raises(WireError, match="trailing"):
            decode_message(self.frame() + b"\x00")

    def test_non_wire_object_rejected(self):
        with pytest.raises(WireError, match="not a wire message"):
            encode_message({"not": "a message"})
