"""The MPI-like communicator layer and its collectives."""

import pytest

from repro.config import NetworkConfig
from repro.errors import ProtocolError
from repro.mp.comm import Communicator
from repro.net.sim_transport import SimTransport
from repro.simul.kernel import Simulator


@pytest.fixture
def cluster():
    sim = Simulator()
    transport = SimTransport(sim, NetworkConfig(), tuple_bytes=64)
    comms = {i: Communicator(transport.endpoint(i)) for i in range(4)}
    return sim, comms


class TestPointToPoint:
    def test_recv_expect_passes_matching_type(self, cluster):
        sim, comms = cluster
        got = []

        def sender(sim):
            yield comms[0].send(1, "hello")

        def receiver(sim):
            msg = yield from comms[1].recv_expect(0, str)
            got.append(msg)

        sim.process(sender(sim))
        sim.process(receiver(sim))
        sim.run(None)
        assert got == ["hello"]

    def test_recv_expect_raises_on_type_violation(self, cluster):
        sim, comms = cluster

        def sender(sim):
            yield comms[0].send(1, 12345)

        def receiver(sim):
            yield from comms[1].recv_expect(0, str)

        sim.process(sender(sim))
        p = sim.process(receiver(sim))
        with pytest.raises(ProtocolError, match="expected str"):
            sim.run(until=p)


class TestCollectives:
    def test_bcast_in_order(self, cluster):
        sim, comms = cluster
        arrival = []

        def root(sim):
            yield from comms[0].bcast([1, 2, 3], "payload")

        def member(sim, i):
            yield comms[i].recv(0)
            arrival.append((i, sim.now))

        sim.process(root(sim))
        for i in (1, 2, 3):
            sim.process(member(sim, i))
        sim.run(None)
        order = [i for i, _ in sorted(arrival, key=lambda x: x[1])]
        assert order == [1, 2, 3]  # serial broadcast

    def test_scatter_delivers_individual_payloads(self, cluster):
        sim, comms = cluster
        got = {}

        def root(sim):
            yield from comms[0].scatter({1: "a", 2: "b"})

        def member(sim, i):
            got[i] = yield comms[i].recv(0)

        sim.process(root(sim))
        sim.process(member(sim, 1))
        sim.process(member(sim, 2))
        sim.run(None)
        assert got == {1: "a", 2: "b"}

    def test_gather_returns_by_source(self, cluster):
        sim, comms = cluster
        result = {}

        def root(sim):
            out = yield from comms[0].gather([1, 2])
            result.update(out)

        def member(sim, i):
            yield comms[i].send(0, i * 100)

        sim.process(root(sim))
        sim.process(member(sim, 1))
        sim.process(member(sim, 2))
        sim.run(None)
        assert result == {1: 100, 2: 200}

    def test_barrier_synchronizes(self, cluster):
        sim, comms = cluster
        release_times = []

        def root(sim):
            yield from comms[0].barrier_root([1, 2], token="go")

        def member(sim, i, delay):
            yield sim.timeout(delay)
            yield from comms[i].barrier_member(0, token="ready")
            release_times.append(sim.now)

        sim.process(root(sim))
        sim.process(member(sim, 1, 1.0))
        sim.process(member(sim, 2, 8.0))
        sim.run(None)
        # Both released only after the slowest member arrived.
        assert min(release_times) >= 8.0
