"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.config import SystemConfig
from repro.core.costmodel import CostModel
from repro.core.metrics import MeasurementWindow, SlaveMetrics
from repro.core.partition_group import JoinGeometry
from repro.simul.kernel import Simulator


@pytest.fixture
def sim() -> Simulator:
    return Simulator()


@pytest.fixture
def tiny_cfg() -> SystemConfig:
    """A fast-running cluster configuration for integration tests:

    3 s window, 12 s run (6 s warm-up), 12 partitions, small theta.
    """
    return (
        SystemConfig.paper_defaults()
        .scaled(0.01)
        .with_(
            npart=12,
            rate=400.0,
            num_slaves=2,
            run_seconds=12.0,
            warmup_seconds=6.0,
            window_seconds=3.0,
            reorg_epoch=4.0,
        )
    )


@pytest.fixture
def geometry() -> JoinGeometry:
    """Small join geometry: 4 tuples per block, theta of 3 blocks."""
    return JoinGeometry(
        tuples_per_block=4,
        block_bytes=256,
        theta_bytes=768,
        window_seconds=10.0,
        fine_tuning=True,
        tuple_bytes=64,
    )


@pytest.fixture
def metrics() -> SlaveMetrics:
    return SlaveMetrics(0, MeasurementWindow(0.0))


@pytest.fixture
def cost_model() -> CostModel:
    return CostModel(SystemConfig.paper_defaults().cost)


def brute_force_pairs(
    ts0: np.ndarray,
    key0: np.ndarray,
    seq0: np.ndarray,
    ts1: np.ndarray,
    key1: np.ndarray,
    seq1: np.ndarray,
    window: float,
) -> set[tuple[int, int]]:
    """O(n*m) reference join used to cross-check the oracles."""
    out = set()
    for i in range(len(ts0)):
        for j in range(len(ts1)):
            if key0[i] == key1[j] and abs(ts0[i] - ts1[j]) <= window:
                out.add((int(seq0[i]), int(seq1[j])))
    return out
