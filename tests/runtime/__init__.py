"""Test package."""
