"""Backend-agnostic sync primitives on the simulated backend."""

import pytest

from repro.runtime.sim import SimRuntime
from repro.simul.kernel import Simulator


@pytest.fixture
def rt(sim):
    return SimRuntime(sim)


class TestSimLock:
    def test_mutual_exclusion(self, sim, rt):
        lock = rt.make_lock("m")
        timeline = []

        def worker(name, hold):
            yield lock.acquire()
            timeline.append((name, "in", sim.now))
            yield rt.sleep(hold)
            timeline.append((name, "out", sim.now))
            lock.release()

        rt.spawn(worker("a", 3.0))
        rt.spawn(worker("b", 1.0))
        sim.run(None)
        assert timeline == [
            ("a", "in", 0.0),
            ("a", "out", 3.0),
            ("b", "in", 3.0),
            ("b", "out", 4.0),
        ]

    def test_fifo_granting(self, sim, rt):
        lock = rt.make_lock()
        order = []

        def worker(name):
            yield lock.acquire()
            order.append(name)
            yield rt.sleep(1.0)
            lock.release()

        for name in "abc":
            rt.spawn(worker(name))
        sim.run(None)
        assert order == ["a", "b", "c"]


class TestSimQueue:
    def test_fifo_handoff(self, sim, rt):
        queue = rt.make_queue("q")
        got = []

        def producer():
            for i in range(3):
                yield queue.put(i)
                yield rt.sleep(1.0)

        def consumer():
            for _ in range(3):
                item = yield queue.get()
                got.append((item, sim.now))

        rt.spawn(producer())
        rt.spawn(consumer())
        sim.run(None)
        assert [i for i, _ in got] == [0, 1, 2]

    def test_get_blocks_until_put(self, sim, rt):
        queue = rt.make_queue()
        got = []

        def consumer():
            got.append((yield queue.get()))

        def late_producer():
            yield rt.sleep(5.0)
            yield queue.put("x")

        rt.spawn(consumer())
        rt.spawn(late_producer())
        sim.run(None)
        assert got == ["x"]
        assert sim.now == 5.0

    def test_len(self, sim, rt):
        queue = rt.make_queue()

        def producer():
            yield queue.put(1)
            yield queue.put(2)

        rt.spawn(producer())
        sim.run(None)
        assert len(queue) == 2


class TestSimRuntimeClock:
    def test_sleep_until_past_is_immediate(self, sim, rt):
        def proc():
            yield rt.sleep(5.0)
            yield rt.sleep_until(1.0)  # already past
            return sim.now

        p = rt.spawn(proc())
        assert sim.run(until=p) == 5.0

    def test_cpu_advances_clock(self, sim, rt):
        def proc():
            yield rt.cpu(2.5)
            return rt.now()

        p = rt.spawn(proc())
        assert sim.run(until=p) == 2.5

    def test_negative_durations_clamped(self, sim, rt):
        def proc():
            yield rt.sleep(-1.0)
            yield rt.cpu(-1.0)
            return rt.now()

        p = rt.spawn(proc())
        assert sim.run(until=p) == 0.0
