"""The master's partitioned buffer and mapping table."""

import numpy as np
import pytest

from repro.core.buffer import MasterBuffer
from repro.core.hashing import partition_of
from repro.data.tuples import TupleBatch
from repro.errors import ProtocolError


def batch_with_keys(keys, t0=0.0):
    n = len(keys)
    return TupleBatch.build(
        ts=np.linspace(t0, t0 + 1.0, n), key=keys, stream=0
    )


@pytest.fixture
def buffer():
    buf = MasterBuffer(npart=8, tuple_bytes=64)
    buf.assign_round_robin([10, 11])
    return buf


class TestMapping:
    def test_round_robin_assignment(self, buffer):
        assert buffer.pids_of(10) == [0, 2, 4, 6]
        assert buffer.pids_of(11) == [1, 3, 5, 7]

    def test_remap(self, buffer):
        buffer.remap(0, 11)
        assert 0 in buffer.pids_of(11)
        assert 0 not in buffer.pids_of(10)

    def test_remap_unknown_pid(self, buffer):
        with pytest.raises(ProtocolError):
            buffer.remap(99, 10)

    def test_empty_slave_set_rejected(self):
        with pytest.raises(ProtocolError):
            MasterBuffer(4, 64).assign_round_robin([])


class TestIngestDrain:
    def test_drain_returns_only_owned_partitions(self, buffer):
        keys = np.arange(400, dtype=np.int64)
        buffer.ingest(batch_with_keys(keys))
        drained, _, _ = buffer.drain_for(10, now=2.0)
        pids = partition_of(drained.key, 8)
        assert set(np.unique(pids)) <= {0, 2, 4, 6}

    def test_drains_are_disjoint_and_complete(self, buffer):
        keys = np.arange(500, dtype=np.int64)
        buffer.ingest(batch_with_keys(keys))
        a, _, _ = buffer.drain_for(10, now=2.0)
        b, _, _ = buffer.drain_for(11, now=2.0)
        assert len(a) + len(b) == 500
        assert not set(a.key.tolist()) & set(b.key.tolist())
        assert buffer.total_bytes == 0

    def test_drain_is_time_sorted(self, buffer):
        buffer.ingest(batch_with_keys(np.arange(100), t0=0.0))
        buffer.ingest(batch_with_keys(np.arange(100, 200), t0=1.0))
        drained, _, _ = buffer.drain_for(10, now=3.0)
        assert np.all(np.diff(drained.ts) >= 0)

    def test_epoch_start_tracks_previous_drain(self, buffer):
        _, start0, _ = buffer.drain_for(10, now=2.0)
        assert start0 == 0.0
        _, start1, _ = buffer.drain_for(10, now=4.0)
        assert start1 == 2.0

    def test_remapped_partition_flows_to_new_owner(self, buffer):
        keys = np.arange(300, dtype=np.int64)
        pids = partition_of(keys, 8)
        pid0_count = int(np.count_nonzero(pids == 0))
        buffer.ingest(batch_with_keys(keys))
        buffer.remap(0, 11)
        drained, _, _ = buffer.drain_for(11, now=2.0)
        drained_pids = partition_of(drained.key, 8)
        assert int(np.count_nonzero(drained_pids == 0)) == pid0_count

    def test_bytes_accounting(self, buffer):
        buffer.ingest(batch_with_keys(np.arange(100)))
        assert buffer.total_bytes == 100 * 64
        assert buffer.bytes_of(10) + buffer.bytes_of(11) == 100 * 64

    def test_empty_ingest(self, buffer):
        buffer.ingest(TupleBatch.empty())
        assert buffer.total_bytes == 0
