"""Classification, supplier/consumer pairing, DoD adaptation."""

import numpy as np
import pytest

from repro.config import SystemConfig
from repro.core.declustering import DeclusteringController


def controller(**changes):
    cfg = SystemConfig.paper_defaults().with_(**changes)
    return DeclusteringController(cfg, np.random.default_rng(0))


class TestClassification:
    def test_thresholds(self):
        ctl = controller()  # th_con=0.01, th_sup=0.5
        cls = ctl.classify({1: 0.9, 2: 0.001, 3: 0.2})
        assert cls.suppliers == (1,)
        assert cls.consumers == (2,)
        assert cls.neutrals == (3,)

    def test_boundaries_are_exclusive(self):
        ctl = controller()
        cls = ctl.classify({1: 0.5, 2: 0.01})
        assert cls.suppliers == ()
        assert cls.consumers == ()
        assert cls.neutrals == (1, 2)


class TestPairing:
    def test_each_supplier_yields_one_group_to_unique_consumer(self):
        ctl = controller()
        ownership = {1: [0, 2], 2: [1, 3], 3: [4], 4: [5]}
        plan = ctl.plan(
            {1: 0.9, 2: 0.8, 3: 0.001, 4: 0.002},
            inactive=[],
            ownership=ownership,
        )
        assert len(plan.moves) == 2
        assert {m.src for m in plan.moves} == {1, 2}
        assert {m.dst for m in plan.moves} == {3, 4}
        for move in plan.moves:
            assert move.pid in ownership[move.src]

    def test_more_suppliers_than_consumers(self):
        ctl = controller()
        plan = ctl.plan(
            {1: 0.9, 2: 0.8, 3: 0.7, 4: 0.001},
            inactive=[],
            ownership={1: [0], 2: [1], 3: [2], 4: []},
        )
        assert len(plan.moves) == 1  # only one consumer available

    def test_no_moves_without_consumers(self):
        ctl = controller()
        plan = ctl.plan(
            {1: 0.9, 2: 0.2},
            inactive=[],
            ownership={1: [0], 2: [1]},
        )
        assert plan.moves == ()

    def test_load_balancing_disabled(self):
        ctl = controller(load_balancing=False)
        plan = ctl.plan(
            {1: 0.9, 2: 0.001},
            inactive=[],
            ownership={1: [0], 2: []},
        )
        assert plan.moves == ()

    def test_empty_supplier_skipped(self):
        ctl = controller()
        plan = ctl.plan(
            {1: 0.9, 2: 0.001},
            inactive=[],
            ownership={1: [], 2: []},
        )
        assert plan.moves == ()


class TestDegreeOfDeclustering:
    def test_shrink_when_no_supplier(self):
        ctl = controller(adaptive_declustering=True)
        plan = ctl.plan(
            {1: 0.001, 2: 0.002, 3: 0.2},
            inactive=[],
            ownership={1: [0, 1], 2: [2], 3: [3]},
        )
        assert plan.deactivate == (1,)  # lowest occupancy consumer
        # All of the victim's groups are drained to survivors.
        victim_moves = [m for m in plan.moves if m.src == 1]
        assert {m.pid for m in victim_moves} == {0, 1}
        assert all(m.dst != 1 for m in plan.moves)

    def test_no_shrink_below_one_node(self):
        ctl = controller(adaptive_declustering=True)
        plan = ctl.plan({1: 0.001}, inactive=[2], ownership={1: [0]})
        assert plan.deactivate == ()

    def test_grow_when_suppliers_dominate(self):
        # beta=0.5: 2 suppliers vs 3 consumers -> 2 > 1.5 -> grow.
        ctl = controller(adaptive_declustering=True, beta=0.5)
        plan = ctl.plan(
            {1: 0.9, 2: 0.8, 3: 0.001, 4: 0.002, 5: 0.003},
            inactive=[6, 7],
            ownership={1: [0], 2: [1], 3: [], 4: [], 5: []},
        )
        assert plan.activate == (6,)

    def test_growth_condition_uses_beta(self):
        # beta=0.9: 2 suppliers vs 3 consumers -> 2 <= 2.7 -> no growth.
        ctl = controller(adaptive_declustering=True, beta=0.9)
        plan = ctl.plan(
            {1: 0.9, 2: 0.8, 3: 0.001, 4: 0.002, 5: 0.003},
            inactive=[6],
            ownership={1: [0], 2: [1], 3: [], 4: [], 5: []},
        )
        assert plan.activate == ()

    def test_grow_without_spare_nodes_is_noop(self):
        ctl = controller(adaptive_declustering=True)
        plan = ctl.plan(
            {1: 0.9, 2: 0.001},
            inactive=[],
            ownership={1: [0], 2: []},
        )
        assert plan.activate == ()

    def test_activated_node_becomes_move_target(self):
        ctl = controller(adaptive_declustering=True, beta=0.5)
        plan = ctl.plan(
            {1: 0.9, 2: 0.8},  # all suppliers, no consumers
            inactive=[9],
            ownership={1: [0], 2: [1]},
        )
        assert plan.activate == (9,)
        assert any(m.dst == 9 for m in plan.moves)

    def test_adaptivity_off_never_changes_set(self):
        ctl = controller(adaptive_declustering=False)
        plan = ctl.plan(
            {1: 0.001, 2: 0.002},
            inactive=[3],
            ownership={1: [0], 2: [1]},
        )
        assert plan.activate == ()
        assert plan.deactivate == ()

    def test_participants_property(self):
        ctl = controller()
        plan = ctl.plan(
            {1: 0.9, 2: 0.001},
            inactive=[],
            ownership={1: [0, 1], 2: []},
        )
        assert plan.participants == (1, 2)


class TestDeterminism:
    def test_same_seed_same_plan(self):
        occupancy = {1: 0.9, 2: 0.001}
        ownership = {1: [0, 1, 2, 3], 2: []}
        a = controller().plan(occupancy, [], ownership)
        b = controller().plan(occupancy, [], ownership)
        assert a == b
