"""Replication building blocks: backup placement, the slave-side
backup store, and the snapshot -> crash -> restore round-trip on the
join module itself (checkpoint + log replay reproduces the window
state *and* exactly the post-snapshot join output)."""

import numpy as np
import pytest

from repro.config import SystemConfig
from repro.core.costmodel import CostModel
from repro.core.declustering import plan_backups, plan_restores
from repro.core.join_module import JoinModule
from repro.core.metrics import MeasurementWindow, SlaveMetrics
from repro.core.protocol import Checkpoint, Replicate, Shipment
from repro.data.tuples import TupleBatch
from repro.replication import BackupStore
from repro.simul.rng import RngRegistry
from repro.workload.generator import TwoStreamWorkload


class TestPlanBackups:
    def test_successor_on_sorted_ring(self):
        owners = {0: 2, 1: 3, 2: 4}
        assert plan_backups(owners, {2, 3, 4}) == {0: 3, 1: 4, 2: 2}

    def test_fewer_than_two_live_slaves_yields_nothing(self):
        assert plan_backups({0: 2}, {2}) == {}
        assert plan_backups({0: 2}, set()) == {}

    def test_dead_owner_skipped(self):
        owners = {0: 2, 1: 9}
        assert plan_backups(owners, {2, 4}) == {0: 4}

    def test_backup_never_equals_owner(self):
        owners = {pid: 2 + pid % 4 for pid in range(16)}
        backups = plan_backups(owners, {2, 3, 4, 5})
        assert all(backups[pid] != owners[pid] for pid in owners)


class TestPlanRestores:
    def test_routes_to_live_backup(self):
        restore, leftovers = plan_restores(
            [3, 1], {1: 4, 3: 4}, live={2, 4}
        )
        assert restore == {4: (1, 3)}
        assert leftovers == ()

    def test_dead_or_unassigned_backup_left_over(self):
        restore, leftovers = plan_restores(
            [1, 2, 3], {1: 9, 2: 4}, live={2, 4}
        )
        assert restore == {4: (2,)}
        assert leftovers == (1, 3)


def batch(ts, keys, seqs, stream):
    n = len(ts)
    return TupleBatch.build(
        ts=ts, key=keys, seq=seqs, stream=[stream] * n
    )


class TestBackupStore:
    def checkpoint(self, pid, epoch, buffered=None):
        from repro.core.partition_group import PartitionGroupState

        state = PartitionGroupState(pid, 0, ())
        return Checkpoint(
            pid, epoch, state, buffered or TupleBatch.empty()
        )

    def test_unknown_pid_takes_genesis(self):
        store = BackupStore()
        assert store.take(7) == (None, None, [])

    def test_apply_order_drop_rebase_append(self):
        store = BackupStore()
        store.apply(
            Replicate(0, entries=((5, 0, TupleBatch.empty()),))
        )
        assert 5 in store
        # One message carrying all three actions for the same pid: the
        # drop clears history first, then the checkpoint re-bases, then
        # the entry lands on the fresh log.
        store.apply(
            Replicate(
                1,
                entries=((5, 1, TupleBatch.empty()),),
                drops=(5,),
                checkpoints=(self.checkpoint(5, 1),),
            )
        )
        state, buffered, log = store.take(5)
        assert state is not None
        assert len(log) == 1

    def test_rebase_truncates_covered_log(self):
        store = BackupStore()
        for epoch in range(4):
            store.apply(
                Replicate(epoch, entries=((3, epoch, TupleBatch.empty()),))
            )
        # Checkpoint at epoch 2 covers shipments <= 1.
        store.apply(Replicate(4, checkpoints=(self.checkpoint(3, 2),)))
        entry = store.entries[3]
        assert entry.base_epoch == 2
        assert [e for e, _b in entry.log] == [2, 3]

    def test_stale_entry_older_than_base_ignored(self):
        store = BackupStore()
        store.apply(Replicate(4, checkpoints=(self.checkpoint(3, 2),)))
        store.apply(Replicate(5, entries=((3, 1, TupleBatch.empty()),)))
        assert store.entries[3].log == []

    def test_take_removes_and_clear_empties(self):
        store = BackupStore()
        store.apply(Replicate(0, checkpoints=(self.checkpoint(1, 0),)))
        store.apply(Replicate(0, checkpoints=(self.checkpoint(2, 0),)))
        assert store.pids() == [1, 2]
        store.take(1)
        assert store.pids() == [2]
        store.clear()
        assert len(store) == 0


class TestSnapshotRestoreRoundTrip:
    """The pair-exactness invariant behind lossless recovery: a
    snapshot plus replay of everything shipped after it reproduces
    exactly the pairs the owner would have produced after the
    snapshot."""

    def make_module(self, geometry, npart=4, owned=True):
        metrics = SlaveMetrics(0, MeasurementWindow(0.0))
        module = JoinModule(
            0,
            geometry,
            CostModel(SystemConfig.paper_defaults().cost),
            npart,
            metrics,
            collect_pairs=True,
        )
        if owned:
            for pid in range(npart):
                module.add_partition(pid)
        return module, metrics

    @staticmethod
    def split_by_pid(batch, npart):
        from repro.core.hashing import partition_of

        pids = partition_of(batch.key, npart)
        return {
            int(pid): batch.take(np.flatnonzero(pids == pid))
            for pid in np.unique(pids)
        }

    def drain(self, module):
        while module.has_work:
            for unit in module.work_units():
                unit.execute(100.0)

    def shipments(self, n_epochs=4, rate=150.0, seed=3):
        wl = TwoStreamWorkload.poisson_bmodel(
            RngRegistry(seed), rate, 0.7, 500
        )
        out = []
        for k in range(n_epochs):
            out.append(
                Shipment(k, 2.0 * k, 2.0 * (k + 1), wl.generate(2.0 * k, 2.0 * (k + 1)))
            )
        return out

    def all_pairs(self, metrics):
        chunks = [c for c in metrics.pair_chunks()]
        if not chunks:
            return set()
        return {tuple(map(int, r)) for r in np.concatenate(chunks)}

    def test_checkpoint_plus_log_replay_is_exact(self, geometry):
        npart = 4
        ships = self.shipments()
        # Reference: one uninterrupted owner.
        ref_module, ref_metrics = self.make_module(geometry, npart)
        for s in ships:
            ref_module.enqueue(s)
            self.drain(ref_module)
        expected = self.all_pairs(ref_metrics)
        assert expected  # non-vacuous

        # Crashing owner: snapshot after epoch 1, then continue.
        owner, owner_metrics = self.make_module(geometry, npart)
        for s in ships[:2]:
            owner.enqueue(s)
            self.drain(owner)
        snapshots = {
            pid: owner.snapshot_partition(pid) for pid in range(npart)
        }
        pre_crash = {
            pid: owner_metrics.pop_pairs(pid) for pid in range(npart)
        }
        for s in ships[2:3]:
            owner.enqueue(s)
            self.drain(owner)
        # Epoch-2 output dies with the owner; epoch 2..3 shipments were
        # teed to the backup log (split per pid, as the master tees
        # them) and replay at the restorer.
        restorer, restorer_metrics = self.make_module(
            geometry, npart, owned=False
        )
        log = [self.split_by_pid(s.batch, npart) for s in ships[2:]]
        for pid in range(npart):
            state, buffered = snapshots[pid]
            restorer.restore_partition(
                pid,
                state,
                buffered,
                [parts[pid] for parts in log if pid in parts],
            )
        self.drain(restorer)
        got = set()
        for chunk in pre_crash.values():
            if chunk is not None and len(chunk):
                got |= {tuple(map(int, r)) for r in chunk}
        got |= self.all_pairs(restorer_metrics)
        assert got == expected
