"""StreamWindow: head-block protocol, flush, dedup, expiry."""

import numpy as np
import pytest

from repro.core.window import StreamWindow


def make_window(stream_id=0, tpb=4):
    return StreamWindow(stream_id, tuples_per_block=tpb, block_bytes=tpb * 64)


def arrs(rows):
    ts = np.array([r[0] for r in rows], dtype=float)
    key = np.array([r[1] for r in rows], dtype=np.int64)
    seq = np.array([r[2] for r in rows], dtype=np.int64)
    return ts, key, seq


class TestHeadBlock:
    def test_head_space(self):
        w = make_window(tpb=4)
        assert w.head_space() == 4
        w.append_fresh(*arrs([(1.0, 5, 0)]))
        assert w.head_space() == 3
        assert w.n_fresh == 1

    def test_overflow_rejected(self):
        w = make_window(tpb=2)
        with pytest.raises(ValueError, match="head block overflow"):
            w.append_fresh(*arrs([(1.0, 1, 0), (2.0, 1, 1), (3.0, 1, 2)]))

    def test_flush_commits_fresh(self):
        w0, w1 = make_window(0), make_window(1)
        w0.append_fresh(*arrs([(1.0, 5, 0), (2.0, 6, 1)]))
        w0.flush(w1, window_seconds=100.0)
        assert w0.n_fresh == 0
        assert w0.n_committed == 2

    def test_bytes_used_counts_partial_head_block(self):
        w = make_window(tpb=4)
        w.append_fresh(*arrs([(1.0, 5, 0)]))
        assert w.bytes_used(64) == 4 * 64  # one partial block

    def test_committed_bytes_is_block_granular(self):
        w0, w1 = make_window(0, tpb=4), make_window(1, tpb=4)
        w0.append_fresh(*arrs([(1.0, 5, 0)]))
        w0.flush(w1, 100.0)
        assert w0.committed_blocks == 1
        assert w0.committed_bytes == 4 * 64


class TestFlushJoinSemantics:
    def test_flush_joins_against_opposite_committed(self):
        w0, w1 = make_window(0), make_window(1)
        w1.append_fresh(*arrs([(1.0, 42, 100)]))
        w1.flush(w0, 100.0)  # commit the stream-1 tuple
        w0.append_fresh(*arrs([(2.0, 42, 0)]))
        result = w0.flush(w1, 100.0, collect_pairs=True)
        assert result.n_pairs == 1
        assert result.pairs.tolist() == [[0, 100]]

    def test_fresh_tuples_of_opposite_are_excluded(self):
        """The duplicate-elimination rule: a probe sees only committed
        tuples; the fresh/fresh pair appears when the second stream
        flushes."""
        w0, w1 = make_window(0), make_window(1)
        w0.append_fresh(*arrs([(1.0, 42, 0)]))
        w1.append_fresh(*arrs([(1.5, 42, 100)]))
        first = w0.flush(w1, 100.0, collect_pairs=True)
        assert first.n_pairs == 0  # w1's tuple still fresh
        second = w1.flush(w0, 100.0, collect_pairs=True)
        assert second.n_pairs == 1  # now w0's tuple is committed

    def test_window_predicate_applied_at_flush(self):
        w0, w1 = make_window(0), make_window(1)
        w1.append_fresh(*arrs([(0.0, 7, 100)]))
        w1.flush(w0, 100.0)
        w0.append_fresh(*arrs([(50.0, 7, 0)]))
        result = w0.flush(w1, window_seconds=10.0, collect_pairs=True)
        assert result.n_pairs == 0  # 50 - 0 > W

    def test_empty_flush_is_noop(self):
        w0, w1 = make_window(0), make_window(1)
        result = w0.flush(w1, 100.0)
        assert result.n_pairs == 0


class TestExpiry:
    def test_expire_drops_old_committed(self):
        w0, w1 = make_window(0), make_window(1)
        w0.append_fresh(*arrs([(1.0, 1, 0), (2.0, 2, 1), (9.0, 3, 2)]))
        w0.flush(w1, 100.0)
        assert w0.expire_before(5.0) == 2
        assert w0.n_committed == 1

    def test_fresh_never_expires(self):
        w = make_window(0)
        w.append_fresh(*arrs([(1.0, 1, 0)]))
        assert w.expire_before(100.0) == 0
        assert w.n_fresh == 1

    def test_probe_after_expiry_sees_survivors_only(self):
        w0, w1 = make_window(0), make_window(1)
        w1.append_fresh(*arrs([(1.0, 9, 100), (8.0, 9, 101)]))
        w1.flush(w0, 100.0)
        w1.expire_before(5.0)
        w0.append_fresh(*arrs([(9.0, 9, 0)]))
        result = w0.flush(w1, 100.0, collect_pairs=True)
        assert result.pairs.tolist() == [[0, 101]]


class TestStateMovement:
    def test_extract_returns_committed_and_fresh(self):
        w0, w1 = make_window(0), make_window(1)
        w0.append_fresh(*arrs([(1.0, 1, 0), (2.0, 2, 1)]))
        w0.flush(w1, 100.0)
        w0.append_fresh(*arrs([(3.0, 3, 2)]))
        committed, fresh = w0.extract_all()
        assert len(committed) == 2
        assert len(fresh) == 1
        assert w0.n_tuples == 0

    def test_install_committed_restores_probe_targets(self):
        src0, src1 = make_window(0), make_window(1)
        src0.append_fresh(*arrs([(1.0, 7, 0)]))
        src0.flush(src1, 100.0)
        committed, _ = src0.extract_all()

        dst0, dst1 = make_window(0), make_window(1)
        dst0.install_committed(committed)
        dst1.append_fresh(*arrs([(2.0, 7, 100)]))
        result = dst1.flush(dst0, 100.0, collect_pairs=True)
        assert result.n_pairs == 1

    def test_fresh_status_preserved_across_move(self):
        """Moved fresh tuples must probe exactly once at the consumer."""
        src0, src1 = make_window(0), make_window(1)
        src0.append_fresh(*arrs([(1.0, 7, 0)]))
        committed, fresh = src0.extract_all()
        assert len(committed) == 0

        dst0, dst1 = make_window(0), make_window(1)
        dst1.append_fresh(*arrs([(0.5, 7, 100)]))
        dst1.flush(dst0, 100.0)
        dst0.append_fresh(fresh.ts, fresh.key, fresh.seq)
        result = dst0.flush(dst1, 100.0, collect_pairs=True)
        assert result.n_pairs == 1
